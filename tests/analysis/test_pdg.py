"""Tests for the loop dependence graph -- checked against the paper's
Fig. 2(b)/(c) structure."""

import pytest

from repro.analysis.memdep import AliasMode, AliasModel
from repro.analysis.pdg import DepKind, build_dependence_graph
from repro.ir.builder import IRBuilder
from repro.ir.loops import find_loop_by_header
from repro.ir.types import Opcode, gen_reg


def arcs_of_kind(graph, kind):
    return [a for a in graph.arcs if a.kind is kind]


class TestFig2Graph:
    @pytest.fixture
    def graph(self, lol):
        func, header, regs = lol
        return build_dependence_graph(func, find_loop_by_header(func, header))

    def test_nodes_exclude_jumps(self, graph):
        assert all(a.opcode is not Opcode.JMP for a in graph.nodes)
        assert len(graph.nodes) == 9  # A,B,C,D,E,F,G,H,J

    def test_five_sccs(self, graph):
        dag = graph.dag_scc()
        assert len(dag) == 5

    def test_scc_membership_matches_paper(self, graph):
        dag = graph.dag_scc()
        groups = [
            {inst.render() for inst in members} for members in dag.sccs
        ]
        # {A,B,J}: outer traversal; {D,E,H}: inner traversal; {G}: sum.
        assert {"cmp.eq p1 = r1, 0", "br p1, BB7, BB3",
                "load r1 = [r1 + 1] !outer"} in groups
        assert any(len(g) == 3 and any("r2 + 0" in s for s in g) for g in groups)
        assert {"add r0 = r0, r3"} in groups

    def test_dag_edges_flow_forward(self, graph):
        dag = graph.dag_scc()
        for src, dsts in dag.edges.items():
            assert all(src < dst for dst in dsts)

    def test_loop_carried_pointer_chase(self, graph, lol):
        _, _, regs = lol
        carried = [
            a for a in graph.arcs
            if a.kind is DepKind.DATA and a.loop_carried
            and a.register == regs["outer"]
        ]
        assert carried, "outer-list pointer recurrence must be loop-carried"

    def test_live_in_uses_include_list_head(self, graph, lol):
        _, _, regs = lol
        live_in_regs = {reg for reg, _ in graph.live_in_uses}
        assert regs["outer"] in live_in_regs
        assert regs["sum"] in live_in_regs

    def test_live_out_defs_contain_sum(self, graph, lol):
        _, _, regs = lol
        assert regs["sum"] in graph.live_out_defs
        defs = graph.live_out_defs[regs["sum"]]
        assert len(defs) == 1
        assert defs[0].render() == "add r0 = r0, r3"

    def test_no_memory_arcs_with_region_info(self, graph):
        assert arcs_of_kind(graph, DepKind.MEMORY) == []


class TestMemoryDeps:
    def _loop_with_mem(self, region_load, region_store, attrs=None):
        b = IRBuilder("mem")
        r_i, r_n, r_a, r_v = (gen_reg(i) for i in range(4))
        p = b.pred()
        b.block("entry", entry=True)
        b.jmp("header")
        b.block("header")
        b.cmp_ge(p, r_i, r_n)
        b.br(p, "exit", "body")
        b.block("body")
        b.load(r_v, r_a, offset=0, region=region_load, attrs=attrs)
        b.add(r_v, r_v, imm=1)
        b.store(r_v, r_a, offset=0, region=region_store, attrs=attrs)
        b.add(r_i, r_i, imm=1)
        b.jmp("header")
        b.block("exit")
        b.ret()
        f = b.done()
        return f, find_loop_by_header(f, "header")

    def test_conservative_creates_cycles(self):
        f, loop = self._loop_with_mem("x", "x")
        g = build_dependence_graph(f, loop, AliasModel(AliasMode.CONSERVATIVE))
        mem = arcs_of_kind(g, DepKind.MEMORY)
        # store->load carried and load->store intra: both directions.
        directions = {(a.src.opcode, a.dst.opcode) for a in mem}
        assert (Opcode.STORE, Opcode.LOAD) in directions
        assert (Opcode.LOAD, Opcode.STORE) in directions

    def test_conservative_merges_mem_ops_into_one_scc(self):
        f, loop = self._loop_with_mem("x", "x")
        g = build_dependence_graph(f, loop, AliasModel(AliasMode.CONSERVATIVE))
        scc_of = g.dag_scc().scc_of()
        load = next(n for n in g.nodes if n.is_load)
        store = next(n for n in g.nodes if n.is_store)
        assert scc_of[load] == scc_of[store]

    def test_affine_regions_break_the_cycle(self):
        attrs = {"affine": True, "affine_base": "arr"}
        f, loop = self._loop_with_mem("x", "x", attrs=attrs)
        g = build_dependence_graph(f, loop)
        scc_of = g.dag_scc().scc_of()
        load = next(n for n in g.nodes if n.is_load)
        store = next(n for n in g.nodes if n.is_store)
        assert scc_of[load] != scc_of[store]
        # Program order within the iteration is still respected.
        mem = arcs_of_kind(g, DepKind.MEMORY)
        assert any(a.src is load and a.dst is store and not a.loop_carried
                   for a in mem)

    def test_disjoint_regions_no_arcs(self):
        f, loop = self._loop_with_mem("x", "y")
        g = build_dependence_graph(f, loop)
        assert arcs_of_kind(g, DepKind.MEMORY) == []


class TestOutputDeps:
    def test_multiple_live_out_defs_forced_into_one_scc(self):
        b = IRBuilder("liveout")
        r, r_i, r_n, r_out = gen_reg(0), gen_reg(1), gen_reg(2), gen_reg(3)
        p, p2 = b.pred(), b.pred()
        b.block("entry", entry=True)
        b.jmp("header")
        b.block("header")
        b.cmp_ge(p, r_i, r_n)
        b.br(p, "exit", "body")
        b.block("body")
        b.cmp_eq(p2, r_i, imm=3)
        b.br(p2, "deftwo", "defone")
        b.block("defone")
        b.mov(r, imm=1)
        b.jmp("latch")
        b.block("deftwo")
        b.mov(r, imm=2)
        b.jmp("latch")
        b.block("latch")
        b.add(r_i, r_i, imm=1)
        b.jmp("header")
        b.block("exit")
        b.store(r, r_out, offset=0, region="result")
        b.ret()
        f = b.done()
        g = build_dependence_graph(f, find_loop_by_header(f, "header"))
        defs = g.live_out_defs[r]
        assert len(defs) == 2
        scc_of = g.dag_scc().scc_of()
        assert scc_of[defs[0]] == scc_of[defs[1]]
        assert arcs_of_kind(g, DepKind.OUTPUT)


class TestConditionalControlDeps:
    def test_branch_over_def_reaches_consumer(self):
        """Fig. 5(a): D control-dep on B, U not; arc B -> U is added."""
        b = IRBuilder("cond")
        r, r_u, r_i, r_n, r_out = (gen_reg(i) for i in range(5))
        p, pc = b.pred(), b.pred()
        b.block("entry", entry=True)
        b.jmp("header")
        b.block("header")
        b.cmp_ge(p, r_i, r_n)
        b.br(p, "exit", "body")
        b.block("body")
        b.cmp_eq(pc, r_i, imm=2)
        b.br(pc, "defblk", "useblk")
        b.block("defblk")
        b.add(r, r, imm=5)  # D (also carried so it stays a recurrence)
        b.jmp("useblk")
        b.block("useblk")
        b.add(r_u, r, imm=1)  # U: uses r but not control-dep on the if
        b.add(r_i, r_i, imm=1)
        b.jmp("header")
        b.block("exit")
        b.store(r_u, r_out, offset=0, region="result")
        b.ret()
        f = b.done()
        g = build_dependence_graph(f, find_loop_by_header(f, "header"))
        branch = f.block("body").terminator
        use = f.block("useblk").instructions[0]
        conditional = [
            a for a in g.arcs
            if a.kind is DepKind.CONTROL and a.conditional
            and a.src is branch and a.dst is use
        ]
        assert conditional, "conditional control dependence B -> U missing"
