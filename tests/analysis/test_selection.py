"""Tests for candidate-loop selection (the §4 methodology)."""

from pathlib import Path

import pytest

from repro.analysis.selection import select_loops
from repro.interp.memory import Memory
from repro.ir.parser import parse_function
from repro.workloads import get_workload

CORPUS = Path(__file__).parent.parent / "ir" / "corpus"


class TestOnWorkloads:
    def test_selects_the_main_loop(self):
        case = get_workload("mcf").build(scale=60)
        report = select_loops(case.function, case.memory,
                              initial_regs=case.initial_regs)
        selected = report.selected
        assert selected is not None
        assert selected.loop.header == case.loop.header
        assert selected.coverage > 0.8

    def test_trip_count_roughly_matches_scale(self):
        case = get_workload("wc").build(scale=120)
        report = select_loops(case.function, case.memory,
                              initial_regs=case.initial_regs)
        selected = report.selected
        assert 115 <= selected.average_trip_count <= 125

    def test_short_loop_rejected_by_threshold(self):
        case = get_workload("wc").build(scale=4)
        report = select_loops(case.function, case.memory,
                              initial_regs=case.initial_regs,
                              min_trip_count=10)
        assert report.selected is None
        candidate = report.candidates[0]
        assert "below 10" in report.rejection_reason(candidate)

    def test_threshold_relaxation(self):
        case = get_workload("wc").build(scale=4)
        report = select_loops(case.function, case.memory,
                              initial_regs=case.initial_regs,
                              min_trip_count=2)
        assert report.selected is not None


class TestNestedLoops:
    @pytest.fixture
    def nested(self):
        func = parse_function((CORPUS / "nested_product.ir").read_text())
        return func

    def test_both_loops_ranked(self, nested):
        report = select_loops(nested, Memory())
        headers = [c.loop.header for c in report.candidates]
        assert set(headers) == {"oh", "ih"}

    def test_outer_loop_covers_more(self, nested):
        report = select_loops(nested, Memory())
        by_header = {c.loop.header: c for c in report.candidates}
        assert by_header["oh"].coverage >= by_header["ih"].coverage
        assert by_header["oh"].nest_depth == 1
        assert by_header["ih"].nest_depth == 2

    def test_inner_loop_entries_counted_per_outer_iteration(self, nested):
        report = select_loops(nested, Memory())
        inner = next(c for c in report.candidates if c.loop.header == "ih")
        assert inner.entries == 12  # one entry per outer iteration

    def test_eligible_respects_threshold(self, nested):
        # Inner loop trips 0..11 per entry (average ~5.5): below 10.
        report = select_loops(nested, Memory(), min_trip_count=10)
        eligible_headers = {c.loop.header for c in report.eligible}
        assert "ih" not in eligible_headers
        assert "oh" in eligible_headers


class TestDegenerate:
    def test_loopless_function(self):
        from repro.ir.builder import IRBuilder
        b = IRBuilder("flat")
        b.block("entry", entry=True)
        b.ret()
        report = select_loops(b.done(), Memory())
        assert report.candidates == []
        assert report.selected is None
