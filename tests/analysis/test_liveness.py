"""Tests for liveness analysis and loop boundary queries."""

from repro.analysis.liveness import (
    block_use_def,
    compute_liveness,
    loop_live_ins,
    loop_live_outs,
)
from repro.ir.builder import IRBuilder
from repro.ir.loops import find_loop_by_header
from repro.ir.types import gen_reg, pred_reg


class TestBlockUseDef:
    def test_upward_exposed_use_only(self):
        b = IRBuilder("f")
        r0, r1 = gen_reg(0), gen_reg(1)
        b.block("entry", entry=True)
        b.mov(r0, imm=1)       # def r0
        b.add(r1, r0, imm=1)   # use r0 (local), def r1
        b.add(r0, r1, r1)      # use r1 (local)
        b.ret()
        f = b.done()
        uses, defs = block_use_def(f.block("entry"))
        assert uses == set()          # everything defined before use
        assert defs == {r0, r1}

    def test_use_before_def_is_exposed(self):
        b = IRBuilder("f")
        r0 = gen_reg(0)
        b.block("entry", entry=True)
        b.add(r0, r0, imm=1)
        b.ret()
        f = b.done()
        uses, defs = block_use_def(f.block("entry"))
        assert uses == {r0}


class TestFunctionLiveness:
    def test_branch_operand_live_into_block(self):
        b = IRBuilder("f")
        p = pred_reg(0)
        b.block("entry", entry=True)
        b.br(p, "a", "b")
        b.block("a")
        b.ret()
        b.block("b")
        b.ret()
        info = compute_liveness(b.done())
        assert p in info.live_in["entry"]

    def test_value_live_across_block(self):
        b = IRBuilder("f")
        r0, r1 = gen_reg(0), gen_reg(1)
        b.block("entry", entry=True)
        b.mov(r0, imm=3)
        b.jmp("next")
        b.block("next")
        b.add(r1, r0, imm=1)
        b.ret()
        info = compute_liveness(b.done())
        assert r0 in info.live_out["entry"]
        assert r0 in info.live_in["next"]
        assert r0 not in info.live_out["next"]

    def test_dead_value_not_live(self):
        b = IRBuilder("f")
        r0 = gen_reg(0)
        b.block("entry", entry=True)
        b.mov(r0, imm=3)
        b.jmp("next")
        b.block("next")
        b.ret()
        info = compute_liveness(b.done())
        assert r0 not in info.live_out["entry"]


class TestLoopBoundary:
    def test_counted_loop_live_ins_and_outs(self, counted):
        func, header, regs = counted
        loop = find_loop_by_header(func, header)
        info = compute_liveness(func)
        ins = loop_live_ins(func, loop, info)
        outs = loop_live_outs(func, loop, info)
        # i/acc enter (initialised outside); n, base are invariants.
        assert regs["i"] in ins
        assert regs["acc"] in ins
        assert regs["n"] in ins
        assert regs["base"] in ins
        # Only the accumulator is read after the loop.
        assert outs == {regs["acc"]}

    def test_loop_live_out_requires_definition_inside(self, counted):
        func, header, regs = counted
        loop = find_loop_by_header(func, header)
        info = compute_liveness(func)
        outs = loop_live_outs(func, loop, info)
        assert regs["out"] not in outs  # used after loop but defined outside
