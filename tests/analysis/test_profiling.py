"""Tests for interpreter-based loop profiling."""

from repro.analysis.profiling import LoopProfile, profile_loop
from repro.interp.memory import Memory
from repro.ir.loops import find_loop_by_header


class TestProfileLoop:
    def test_counts_and_trips(self, counted):
        func, header, regs = counted
        memory = Memory()
        base = memory.store_array([1] * 6)
        out = memory.alloc(1)
        profile = profile_loop(
            func, find_loop_by_header(func, header), memory,
            initial_regs={regs["n"]: 6, regs["base"]: base, regs["out"]: out},
        )
        assert profile.header_trips == 7  # 6 iterations + exit test
        assert profile.block_counts["body"] == 6

    def test_block_weight_is_per_iteration(self, counted):
        func, header, regs = counted
        memory = Memory()
        base = memory.store_array([1] * 4)
        out = memory.alloc(1)
        loop = find_loop_by_header(func, header)
        profile = profile_loop(
            func, loop, memory,
            initial_regs={regs["n"]: 4, regs["base"]: base, regs["out"]: out},
        )
        assert profile.block_weight("header") == 1.0
        assert 0.7 < profile.block_weight("body") < 1.0

    def test_profiling_does_not_mutate_memory(self, counted):
        func, header, regs = counted
        memory = Memory()
        base = memory.store_array([1, 2])
        out = memory.alloc(1)
        profile_loop(
            func, find_loop_by_header(func, header), memory,
            initial_regs={regs["n"]: 2, regs["base"]: base, regs["out"]: out},
        )
        assert memory.read(out) == 0

    def test_instruction_weight(self, counted):
        func, header, regs = counted
        memory = Memory()
        base = memory.store_array([1] * 5)
        out = memory.alloc(1)
        loop = find_loop_by_header(func, header)
        profile = profile_loop(
            func, loop, memory,
            initial_regs={regs["n"]: 5, regs["base"]: base, regs["out"]: out},
        )
        load = next(i for i in loop.instructions() if i.is_load)
        assert profile.instruction_weight(func, load) == profile.block_weight("body")
        # Instructions outside the loop weigh nothing.
        store = func.block("exit").instructions[0]
        assert profile.instruction_weight(func, store) == 0.0


class TestUniformProfile:
    def test_uniform_weights(self, counted):
        func, header, _ = counted
        loop = find_loop_by_header(func, header)
        profile = LoopProfile.uniform(loop)
        assert profile.block_weight("header") == 1.0
        assert profile.block_weight("body") == 1.0
        assert profile.block_weight("not_in_loop") == 0.0
