"""Tests for the region-based may-alias model."""

from repro.analysis.memdep import AliasMode, AliasModel, needs_ordering
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg


def load(region=None, imm=0, attrs=None):
    return Instruction(Opcode.LOAD, dest=gen_reg(0), srcs=[gen_reg(1)],
                       imm=imm, region=region, attrs=attrs)


def store(region=None, imm=0, attrs=None):
    return Instruction(Opcode.STORE, srcs=[gen_reg(0), gen_reg(1)],
                       imm=imm, region=region, attrs=attrs)


def call(pure=False):
    return Instruction(Opcode.CALL, attrs={"callee": "f", "pure": pure})


class TestConservative:
    def test_everything_aliases(self):
        m = AliasModel(AliasMode.CONSERVATIVE)
        assert m.may_alias(load("a"), store("b"))
        assert m.conflicts_cross_iteration(load("a"), store("b"))

    def test_affine_annotations_ignored(self):
        m = AliasModel(AliasMode.CONSERVATIVE)
        attrs = {"affine": True, "affine_base": "x"}
        assert m.conflicts_cross_iteration(
            store("a", attrs=attrs), load("a", attrs=attrs)
        )


class TestRegions:
    def test_distinct_regions_never_alias(self):
        m = AliasModel()
        assert not m.may_alias(load("a"), store("b"))

    def test_same_region_may_alias(self):
        m = AliasModel()
        assert m.may_alias(load("a"), store("a"))

    def test_missing_region_aliases_everything(self):
        m = AliasModel()
        assert m.may_alias(load(None), store("a"))
        assert m.may_alias(load("a"), store(None))

    def test_non_memory_never_aliases(self):
        m = AliasModel()
        add = Instruction(Opcode.ADD, dest=gen_reg(0), srcs=[gen_reg(1)], imm=1)
        assert not m.may_alias(add, store("a"))


class TestAffine:
    ATTRS = {"affine": True, "affine_base": "arr"}

    def test_same_base_same_offset_intra_only(self):
        m = AliasModel()
        ld = load("a", imm=0, attrs=self.ATTRS)
        st = store("a", imm=0, attrs=self.ATTRS)
        assert m.conflicts_same_iteration(ld, st)
        assert not m.conflicts_cross_iteration(ld, st)

    def test_same_base_distinct_offsets_never_alias(self):
        m = AliasModel()
        ld = load("a", imm=0, attrs=self.ATTRS)
        st = store("a", imm=4, attrs=self.ATTRS)
        assert not m.may_alias(ld, st)

    def test_different_bases_stay_conservative(self):
        m = AliasModel()
        ld = load("a", imm=0, attrs={"affine": True, "affine_base": "x"})
        st = store("a", imm=0, attrs={"affine": True, "affine_base": "y"})
        assert m.may_alias(ld, st)
        assert m.conflicts_cross_iteration(ld, st)

    def test_one_sided_annotation_not_enough(self):
        m = AliasModel()
        ld = load("a", attrs=self.ATTRS)
        st = store("a")
        assert m.conflicts_cross_iteration(ld, st)


class TestCalls:
    def test_impure_call_aliases_memory(self):
        m = AliasModel()
        assert m.may_alias(call(), store("a"))
        assert m.may_alias(call(), call())

    def test_pure_call_is_transparent(self):
        m = AliasModel()
        assert not m.may_alias(call(pure=True), store("a"))


class TestNeedsOrdering:
    def test_load_load_needs_nothing(self):
        assert not needs_ordering(load("a"), load("a"))

    def test_store_pairs_need_ordering(self):
        assert needs_ordering(store("a"), load("a"))
        assert needs_ordering(load("a"), store("a"))
        assert needs_ordering(store("a"), store("a"))

    def test_impure_call_needs_ordering(self):
        assert needs_ordering(call(), load("a"))

    def test_pure_call_does_not(self):
        assert not needs_ordering(call(pure=True), load("a"))
