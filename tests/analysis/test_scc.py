"""Tests for SCC discovery and the DAG_SCC condensation."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.scc import DagScc, condense, strongly_connected_components


class TestTarjan:
    def test_simple_cycle(self):
        succ = {1: {2}, 2: {3}, 3: {1}}
        sccs = strongly_connected_components([1, 2, 3], succ)
        assert len(sccs) == 1
        assert set(sccs[0]) == {1, 2, 3}

    def test_dag_gives_singletons(self):
        succ = {1: {2}, 2: {3}, 3: set()}
        sccs = strongly_connected_components([1, 2, 3], succ)
        assert sorted(map(len, sccs)) == [1, 1, 1]

    def test_two_cycles_with_bridge(self):
        succ = {1: {2}, 2: {1, 3}, 3: {4}, 4: {3}}
        sccs = strongly_connected_components([1, 2, 3, 4], succ)
        assert sorted(sorted(s) for s in sccs) == [[1, 2], [3, 4]]

    def test_self_loop(self):
        succ = {1: {1}, 2: set()}
        sccs = strongly_connected_components([1, 2], succ)
        assert sorted(sorted(s) for s in sccs) == [[1], [2]]

    def test_disconnected_nodes_covered(self):
        sccs = strongly_connected_components([1, 2, 3], {})
        assert len(sccs) == 3


class TestCondense:
    def test_fig2_shape(self):
        # Two recurrences feeding three singleton nodes (like Fig 2c).
        succ = {
            "A": {"B"}, "B": {"A", "C"},
            "C": {"D"},
            "D": {"E"}, "E": {"D", "F"},
            "F": set(),
        }
        dag = condense("ABCDEF", succ)
        assert len(dag) == 4
        scc_of = dag.scc_of()
        assert scc_of["A"] == scc_of["B"]
        assert scc_of["D"] == scc_of["E"]

    def test_ids_are_topological(self):
        succ = {1: {2}, 2: {3}, 3: set()}
        dag = condense([1, 2, 3], succ)
        for src, dsts in dag.edges.items():
            for dst in dsts:
                assert src < dst

    def test_topological_order_valid(self):
        succ = {1: {3}, 2: {3}, 3: {4}, 4: set()}
        dag = condense([1, 2, 3, 4], succ)
        order = dag.topological_order()
        pos = {sid: i for i, sid in enumerate(order)}
        for src, dsts in dag.edges.items():
            for dst in dsts:
                assert pos[src] < pos[dst]

    def test_predecessors(self):
        succ = {1: {2}, 2: set()}
        dag = condense([1, 2], succ)
        preds = dag.predecessors()
        scc_of = dag.scc_of()
        assert preds[scc_of[2]] == {scc_of[1]}
        assert preds[scc_of[1]] == set()


@st.composite
def random_digraph(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    edges = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=n * 3,
        )
    )
    succ = {}
    for a, b in edges:
        succ.setdefault(a, set()).add(b)
    return list(range(n)), succ


class TestProperties:
    @given(random_digraph())
    def test_sccs_partition_nodes(self, graph):
        nodes, succ = graph
        sccs = strongly_connected_components(nodes, succ)
        flat = [n for scc in sccs for n in scc]
        assert sorted(flat) == sorted(nodes)
        assert len(flat) == len(set(flat))

    @given(random_digraph())
    def test_condensation_is_acyclic(self, graph):
        nodes, succ = graph
        dag = condense(nodes, succ)
        # topological_order raises if the condensation has a cycle.
        assert len(dag.topological_order()) == len(dag)

    @given(random_digraph())
    def test_mutually_reachable_iff_same_scc(self, graph):
        nodes, succ = graph
        dag = condense(nodes, succ)
        scc_of = dag.scc_of()

        def reachable(a, b):
            seen, stack = set(), [a]
            while stack:
                x = stack.pop()
                if x == b:
                    return True
                if x in seen:
                    continue
                seen.add(x)
                stack.extend(succ.get(x, ()))
            return False

        for a in nodes:
            for b in nodes:
                same = scc_of[a] == scc_of[b]
                mutual = reachable(a, b) and reachable(b, a)
                assert same == mutual
