"""Tests for control dependence, including the Fig. 4 loop-iteration
extension."""

from repro.analysis.controldep import (
    control_dependences_of_graph,
    loop_iteration_control_deps,
    loop_iteration_control_deps_detailed,
    standard_loop_control_deps,
)
from repro.ir.builder import IRBuilder
from repro.ir.loops import find_loop_by_header


class TestStandardControlDependence:
    def test_diamond(self):
        succs = {"b": ["x", "y"], "x": ["j"], "y": ["j"], "j": []}
        deps = control_dependences_of_graph(succs, ["j"])
        assert deps["x"] == {"b"}
        assert deps["y"] == {"b"}
        assert deps["j"] == set()

    def test_nested_diamond(self):
        succs = {
            "b1": ["b2", "j1"],
            "b2": ["x", "y"],
            "x": ["j2"], "y": ["j2"],
            "j2": ["j1"], "j1": [],
        }
        deps = control_dependences_of_graph(succs, ["j1"])
        assert deps["b2"] == {"b1"}
        assert deps["x"] == {"b2"}
        assert deps["j2"] == {"b1"}

    def test_straight_line_has_no_deps(self):
        succs = {"a": ["b"], "b": ["c"], "c": []}
        deps = control_dependences_of_graph(succs, ["c"])
        assert all(not v for v in deps.values())


def fig4_loop():
    """The Fig. 4 CFG: B1 branches to B2 or B3; B3 branches back or out."""
    b = IRBuilder("fig4")
    p1, p3 = b.pred(), b.pred()
    b.block("entry", entry=True)
    b.jmp("B1")
    b.block("B1")
    b.br(p1, "B3", "B2")
    b.block("B2")
    b.jmp("B3")
    b.block("B3")
    b.br(p3, "B1", "exit")
    b.block("exit")
    b.ret()
    return b.done()


class TestLoopIterationControlDeps:
    def test_standard_misses_latch_control(self):
        f = fig4_loop()
        loop = find_loop_by_header(f, "B1")
        std = standard_loop_control_deps(loop)
        # Standard control dependence: nothing depends on B3's branch
        # within one iteration (everything after it is outside or in
        # the next iteration).
        assert "B3" not in std["B1"] or std["B1"] == set()

    def test_peeled_adds_iteration_deps(self):
        f = fig4_loop()
        loop = find_loop_by_header(f, "B1")
        deps = loop_iteration_control_deps(loop)
        # The latch branch (B3) decides whether the next iteration's B1
        # executes: that is the loop-iteration control dependence.
        assert "B3" in deps["B1"]
        # And B1 (the paper's point) controls whether B3 runs this
        # iteration... B3 postdominates B1 here, so B3 depends on B3
        # across iterations instead.
        assert "B3" in deps["B3"]

    def test_b2_depends_on_b1(self):
        f = fig4_loop()
        loop = find_loop_by_header(f, "B1")
        deps = loop_iteration_control_deps(loop)
        assert "B1" in deps["B2"]

    def test_detailed_flags_carried_arcs(self):
        f = fig4_loop()
        loop = find_loop_by_header(f, "B1")
        detailed = loop_iteration_control_deps_detailed(loop)
        # B1-on-B3 crosses the iteration boundary -> carried.
        assert detailed["B1"]["B3"] is True
        # B2-on-B1 is within one iteration -> not carried.
        assert detailed["B2"]["B1"] is False

    def test_detailed_agrees_with_coalesced(self):
        f = fig4_loop()
        loop = find_loop_by_header(f, "B1")
        detailed = loop_iteration_control_deps_detailed(loop)
        coalesced = loop_iteration_control_deps(loop)
        assert {k: set(v) for k, v in detailed.items()} == coalesced

    def test_single_block_self_loop(self):
        b = IRBuilder("selfloop")
        p = b.pred()
        b.block("entry", entry=True)
        b.jmp("h")
        b.block("h")
        b.br(p, "h", "exit")
        b.block("exit")
        b.ret()
        f = b.done()
        loop = find_loop_by_header(f, "h")
        deps = loop_iteration_control_deps(loop)
        # The header's own branch controls its next iteration.
        assert deps["h"] == {"h"}
