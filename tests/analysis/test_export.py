"""Tests for the Graphviz export helpers."""

from repro.analysis.export import cfg_to_dot, dag_scc_to_dot, pdg_to_dot
from repro.analysis.pdg import build_dependence_graph
from repro.core.partition import heuristic_partition
from repro.ir.loops import find_loop_by_header


def _fixture(lol):
    func, header, _ = lol
    loop = find_loop_by_header(func, header)
    graph = build_dependence_graph(func, loop)
    return func, graph


class TestCfgDot:
    def test_contains_all_blocks_and_edges(self, lol):
        func, _ = _fixture(lol)
        dot = cfg_to_dot(func)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        for block in func.blocks():
            assert f'"{block.label}"' in dot
        assert '"BB2" -> "BB3"' in dot
        assert '"BB6" -> "BB2"' in dot  # the back edge

    def test_entry_is_bold(self, lol):
        func, _ = _fixture(lol)
        assert 'style="bold"' in cfg_to_dot(func)


class TestPdgDot:
    def test_node_per_pdg_instruction(self, lol):
        func, graph = _fixture(lol)
        dot = pdg_to_dot(graph)
        for inst in graph.nodes:
            assert f"n{inst.uid} [" in dot

    def test_carried_arcs_dashed(self, lol):
        _, graph = _fixture(lol)
        dot = pdg_to_dot(graph)
        assert "style=dashed" in dot

    def test_control_arcs_blue_data_black(self, lol):
        _, graph = _fixture(lol)
        dot = pdg_to_dot(graph)
        assert "color=blue" in dot
        assert "color=black" in dot

    def test_register_labels_present(self, lol):
        _, graph = _fixture(lol)
        assert 'label="r2"' in pdg_to_dot(graph)


class TestDagDot:
    def test_unpartitioned(self, lol):
        _, graph = _fixture(lol)
        dag = graph.dag_scc()
        dot = dag_scc_to_dot(dag)
        assert dot.count("[label=") == len(dag)
        assert "fillcolor" not in dot

    def test_partition_colours_stages(self, lol):
        _, graph = _fixture(lol)
        dag = graph.dag_scc()
        partition = heuristic_partition(dag, [1.0] * len(dag), threads=2)
        dot = dag_scc_to_dot(dag, partition)
        assert "lightblue" in dot
        assert "lightyellow" in dot

    def test_edges_rendered(self, lol):
        _, graph = _fixture(lol)
        dag = graph.dag_scc()
        dot = dag_scc_to_dot(dag)
        assert "scc0 -> " in dot

    def test_quoting_of_special_characters(self, lol):
        _, graph = _fixture(lol)
        dot = pdg_to_dot(graph)
        # Renders memory operands like [r1 + 2] without breaking quoting.
        assert "\\l" not in dot.split("digraph")[0]
        assert dot.count('"') % 2 == 0
