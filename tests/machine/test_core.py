"""Tests for the in-order core timing model."""

import pytest

from repro.interp.trace import TraceEntry
from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.machine.config import CoreConfig, MachineConfig
from repro.machine.core import CoreSim
from repro.machine.syncarray import QueueTiming
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg, pred_reg


def caches(machine):
    return CacheHierarchy(
        CacheLevel(machine.core.l1),
        CacheLevel(machine.core.l2),
        CacheLevel(machine.l3),
        machine.memory_latency,
    )


def run_core(trace, machine=None):
    machine = machine or MachineConfig()
    core = CoreSim(0, machine.core, machine, trace, caches(machine))
    queues = QueueTiming(machine.queue_size, machine.comm_latency,
                         machine.sa_read_latency)
    while core.step(queues) == CoreSim.PROGRESS:
        pass
    return core


def alu(dest, *srcs, imm=None):
    return TraceEntry(Instruction(Opcode.ADD, dest=gen_reg(dest),
                                  srcs=[gen_reg(s) for s in srcs],
                                  imm=imm if srcs == () or imm is not None else 0))


def independent_alus(n):
    return [
        TraceEntry(Instruction(Opcode.ADD, dest=gen_reg(100 + i),
                               srcs=[gen_reg(200 + i)], imm=1))
        for i in range(n)
    ]


class TestIssueBandwidth:
    def test_independent_ops_share_a_cycle(self):
        core = run_core(independent_alus(6))
        assert core.last_completion == 1  # all issue at cycle 0

    def test_seventh_op_spills_to_next_cycle(self):
        core = run_core(independent_alus(7))
        assert core.last_completion == 2

    def test_half_width_core_issues_three(self):
        machine = MachineConfig(core=CoreConfig(issue_width=3, m_ports=2))
        core = run_core(independent_alus(6), machine)
        assert core.last_completion == 2

    def test_m_port_limit(self):
        # 8 independent loads to the same (warm after first) line:
        loads = [
            TraceEntry(
                Instruction(Opcode.LOAD, dest=gen_reg(100 + i),
                            srcs=[gen_reg(0)], imm=0),
                addr=0,
            )
            for i in range(8)
        ]
        core = run_core(loads)
        # 4 per cycle on the M pipe -> two issue cycles minimum.
        assert core.last_completion >= 2


class TestDependencies:
    def test_dependent_chain_serialises(self):
        entries = []
        for i in range(5):
            entries.append(TraceEntry(
                Instruction(Opcode.ADD, dest=gen_reg(1),
                            srcs=[gen_reg(1)], imm=1)
            ))
        core = run_core(entries)
        assert core.last_completion == 5  # one per cycle, back to back

    def test_load_consumer_waits_for_cache_latency(self):
        machine = MachineConfig()
        ld = TraceEntry(
            Instruction(Opcode.LOAD, dest=gen_reg(1), srcs=[gen_reg(0)], imm=0),
            addr=0,
        )
        use = TraceEntry(
            Instruction(Opcode.ADD, dest=gen_reg(2), srcs=[gen_reg(1)], imm=1)
        )
        core = run_core([ld, use], machine)
        # Cold load goes to memory; the consumer completes after it.
        assert core.last_completion >= machine.memory_latency

    def test_warm_load_is_fast(self):
        machine = MachineConfig()
        def ld():
            return TraceEntry(
                Instruction(Opcode.LOAD, dest=gen_reg(1), srcs=[gen_reg(0)],
                            imm=0),
                addr=0,
            )
        core = run_core([ld(), ld(), ld()], machine)
        # After the cold miss the line is in L1 (hit latency 2).
        assert core.last_completion < machine.memory_latency + 10


class TestBranches:
    def _branch(self, taken):
        return TraceEntry(
            Instruction(Opcode.BR, srcs=[pred_reg(0)], targets=["a", "b"]),
            taken=taken,
        )

    def test_mispredict_stalls_fetch(self):
        # Default counter predicts not-taken; a taken branch mispredicts.
        entries = [self._branch(True)] + independent_alus(1)
        core = run_core(entries)
        penalty = MachineConfig().core.mispredict_penalty
        assert core.last_completion >= penalty

    def test_predicted_branch_is_cheap(self):
        entries = [self._branch(False)] + independent_alus(1)
        core = run_core(entries)
        assert core.last_completion <= 2


class TestStatistics:
    def test_ipc_excludes_flow_instructions(self):
        entries = independent_alus(4)
        entries.append(TraceEntry(
            Instruction(Opcode.PRODUCE, srcs=[gen_reg(100)], queue=0)
        ))
        core = run_core(entries)
        assert core.instructions_executed == 5
        assert core.flow_instructions == 1
        assert core.ipc() == 4 / core.last_completion

    def test_call_latency_honoured(self):
        call = TraceEntry(Instruction(
            Opcode.CALL, dest=gen_reg(1),
            attrs={"callee": "f", "call_cycles": 40},
        ))
        core = run_core([call])
        assert core.last_completion == 41
