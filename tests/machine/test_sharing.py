"""Tests for the offline coherence / false-sharing analysis (§4.2)."""

from repro.interp.trace import TraceEntry
from repro.machine.sharing import analyze_sharing
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg


def load(addr):
    return TraceEntry(
        Instruction(Opcode.LOAD, dest=gen_reg(1), srcs=[gen_reg(0)], imm=0),
        addr=addr,
    )


def store(addr):
    return TraceEntry(
        Instruction(Opcode.STORE, srcs=[gen_reg(1), gen_reg(0)], imm=0),
        addr=addr,
    )


def alu():
    return TraceEntry(
        Instruction(Opcode.ADD, dest=gen_reg(2), srcs=[gen_reg(2)], imm=1)
    )


class TestClassification:
    def test_disjoint_lines_no_events(self):
        report = analyze_sharing([[store(0)], [load(64)]], line_words=8)
        assert report.events == []
        assert not report.has_false_sharing()

    def test_false_sharing_detected(self):
        # Core 0 writes word 0; core 1 only ever reads word 1 (same line).
        report = analyze_sharing(
            [[load(1), store(0)] * 3, [load(1)] * 3], line_words=8
        )
        assert report.has_false_sharing()
        assert all(e.false_sharing for e in report.events
                   if e.victim_core == 1)

    def test_true_sharing_detected(self):
        # Both cores touch word 0.
        report = analyze_sharing(
            [[load(0), store(0)], [load(0), load(0), load(0)]], line_words=8
        )
        kinds = {e.false_sharing for e in report.events}
        assert False in kinds  # at least one true-sharing event

    def test_single_core_never_shares(self):
        report = analyze_sharing([[store(0), load(0), store(1)]])
        assert report.events == []

    def test_writes_without_other_owner_no_event(self):
        report = analyze_sharing([[store(0)] * 5, [alu()] * 5])
        assert report.events == []


class TestMissAccounting:
    def test_baseline_misses_are_first_touches(self):
        report = analyze_sharing([[load(0), load(1), load(8)], []],
                                 line_words=8)
        assert report.baseline_misses[0] == 2  # lines 0 and 1
        assert report.accesses[0] == 3

    def test_invalidation_causes_coherence_miss(self):
        # Core 1 reads the line, core 0 writes it, core 1 re-reads.
        report = analyze_sharing(
            [[alu(), store(0)], [load(1), alu(), load(1)]], line_words=8
        )
        assert report.coherence_misses[1] >= 1
        assert report.miss_rate_delta(1) > 0

    def test_miss_rate_delta_zero_without_sharing(self):
        report = analyze_sharing([[store(0)] * 4, [load(64)] * 4],
                                 line_words=8)
        assert report.miss_rate_delta(0) == 0.0
        assert report.miss_rate_delta(1) == 0.0

    def test_empty_traces(self):
        report = analyze_sharing([[], []])
        assert report.accesses == [0, 0]
        assert report.miss_rate(0, True) == 0.0


class TestOnWorkload:
    def test_bzip2_global_variant_shows_false_sharing(self):
        """§4.2: the write-through bslive global falsely shares a line
        with the consumer-side mask; promoting it to a register (the
        default variant) eliminates the sharing."""
        from repro.harness import run_dswp
        from repro.workloads import Bzip2Workload

        bad = Bzip2Workload(global_bslive=True).build(scale=100)
        run = run_dswp(bad)
        # Only meaningful if the split separated the store and the load.
        assignment_threads = {
            t for inst, t in run.result._split.assignment.items()
            if inst.region in ("glob.bslive", "glob.mask")
        }
        report = analyze_sharing(run.traces)
        if len(assignment_threads) == 2:
            assert report.has_false_sharing()

        good = Bzip2Workload().build(scale=100)
        good_run = run_dswp(good)
        good_report = analyze_sharing(good_run.traces)
        glob_lines = {e.line for e in good_report.events}
        # The register-promoted variant has no globals traffic at all.
        assert not any(
            inst.region and inst.region.startswith("glob.")
            for fn in good_run.result.program.threads
            for inst in fn.instructions()
        )
