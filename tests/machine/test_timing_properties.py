"""Invariant tests for the timing model on real transformed workloads."""

import pytest

from repro.harness.runner import run_baseline, run_dswp
from repro.machine.cmp import simulate
from repro.machine.config import MachineConfig
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def wc_runs():
    case = get_workload("wc").build(scale=150)
    baseline = run_baseline(case)
    transformed = run_dswp(case, baseline)
    return baseline, transformed


class TestDeterminism:
    def test_identical_traces_identical_cycles(self, wc_runs):
        baseline, transformed = wc_runs
        a = simulate(transformed.traces, MachineConfig())
        b = simulate(transformed.traces, MachineConfig())
        assert a.cycles == b.cycles
        assert a.ipcs() == b.ipcs()


class TestMonotonicity:
    def test_cycles_nondecreasing_in_comm_latency(self, wc_runs):
        _, transformed = wc_runs
        previous = 0
        for latency in (1, 2, 5, 10, 20, 50):
            cycles = simulate(
                transformed.traces, MachineConfig(comm_latency=latency)
            ).cycles
            assert cycles >= previous
            previous = cycles

    def test_cycles_nonincreasing_in_queue_size(self, wc_runs):
        _, transformed = wc_runs
        previous = None
        for size in (2, 4, 8, 32, 128):
            cycles = simulate(
                transformed.traces, MachineConfig(queue_size=size)
            ).cycles
            if previous is not None:
                assert cycles <= previous + 2  # small scheduling noise
            previous = cycles

    def test_baseline_untouched_by_queue_knobs(self, wc_runs):
        baseline, _ = wc_runs
        a = simulate([baseline.trace], MachineConfig(comm_latency=1)).cycles
        b = simulate([baseline.trace], MachineConfig(comm_latency=50)).cycles
        assert a == b


class TestSanity:
    def test_pipeline_never_beats_sum_of_work(self, wc_runs):
        """Cycles cannot be lower than the bigger thread's instruction
        count divided by issue width (a loose lower bound)."""
        _, transformed = wc_runs
        machine = MachineConfig()
        sim = simulate(transformed.traces, machine)
        heaviest = max(len(t) for t in transformed.traces)
        assert sim.cycles >= heaviest / machine.core.issue_width

    def test_instructions_match_traces(self, wc_runs):
        _, transformed = wc_runs
        sim = simulate(transformed.traces, MachineConfig())
        assert sim.instructions == sum(len(t) for t in transformed.traces)

    def test_occupancy_events_balance_with_leftovers(self, wc_runs):
        _, transformed = wc_runs
        sim = simulate(transformed.traces, MachineConfig())
        events = sim.occupancy().events
        balance = sum(delta for _, delta in events)
        assert balance >= 0  # leftovers only, never negative
