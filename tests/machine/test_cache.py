"""Tests for the set-associative cache model."""

from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.machine.config import CacheLevelConfig


def level(size=64, line=8, ways=2, latency=2, name="T"):
    return CacheLevel(CacheLevelConfig(name, size, line, ways, latency))


class TestCacheLevel:
    def test_first_access_misses_then_hits(self):
        c = level()
        assert not c.lookup(0)
        assert c.lookup(0)
        assert c.hits == 1 and c.misses == 1

    def test_same_line_hits(self):
        c = level(line=8)
        c.lookup(0)
        assert c.lookup(7)       # same 8-word line
        assert not c.lookup(8)   # next line

    def test_lru_eviction(self):
        c = level(size=32, line=8, ways=2)  # 2 sets x 2 ways
        sets = c.num_sets
        assert sets == 2
        # Three lines mapping to set 0: lines 0, 2, 4 (line*8 addresses).
        c.lookup(0)     # line 0 -> set 0
        c.lookup(16)    # line 2 -> set 0
        c.lookup(32)    # line 4 -> set 0, evicts line 0
        assert not c.contains(0)
        assert c.contains(16)

    def test_lru_refresh_on_hit(self):
        c = level(size=32, line=8, ways=2)
        c.lookup(0)
        c.lookup(16)
        c.lookup(0)     # refresh line 0
        c.lookup(32)    # evicts line 2 (16), not line 0
        assert c.contains(0)
        assert not c.contains(16)

    def test_miss_rate(self):
        c = level()
        c.lookup(0)
        c.lookup(0)
        assert c.miss_rate == 0.5
        assert level().miss_rate == 0.0


class TestHierarchy:
    def _hierarchy(self):
        return CacheHierarchy(
            level(size=16, line=4, ways=1, latency=2, name="L1"),
            level(size=64, line=8, ways=2, latency=6, name="L2"),
            level(size=256, line=8, ways=4, latency=14, name="L3"),
            memory_latency=100,
        )

    def test_miss_goes_to_memory_first_time(self):
        h = self._hierarchy()
        assert h.access(0) == 100

    def test_l1_hit_after_fill(self):
        h = self._hierarchy()
        h.access(0)
        assert h.access(0) == 2

    def test_l2_hit_after_l1_eviction(self):
        h = self._hierarchy()
        h.access(0)
        # Evict line 0 from the tiny direct-mapped L1 (4 sets, 1 way):
        # address 16 maps to the same L1 set as 0 but a different L2 set.
        h.access(16)
        latency = h.access(0)
        assert latency == 6  # L1 miss, L2 hit

    def test_stats_keys(self):
        h = self._hierarchy()
        h.access(0)
        stats = h.stats()
        assert set(stats) == {"l1_miss_rate", "l2_miss_rate", "l3_miss_rate",
                              "l1_accesses"}
        assert stats["l1_accesses"] == 1
