"""Tests for the dual-core co-simulation."""

import pytest

from repro.interp.trace import TraceEntry
from repro.machine.cmp import SimulationDeadlock, simulate
from repro.machine.config import MachineConfig
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg


def produce(q):
    return TraceEntry(Instruction(Opcode.PRODUCE, srcs=[gen_reg(0)], queue=q))


def consume(q, dest=1):
    return TraceEntry(Instruction(Opcode.CONSUME, dest=gen_reg(dest), queue=q))


def alu(i=0):
    return TraceEntry(Instruction(Opcode.ADD, dest=gen_reg(10 + i),
                                  srcs=[gen_reg(20 + i)], imm=1))


class TestHandshake:
    def test_consumer_waits_for_producer(self):
        machine = MachineConfig(comm_latency=10)
        producer = [alu(i) for i in range(20)] + [produce(0)]
        consumer = [consume(0)]
        result = simulate([producer, consumer], machine)
        produce_core, consume_core = result.cores
        # The consume cannot complete before the produce is visible.
        assert consume_core.last_completion > 10

    def test_pipeline_of_values(self):
        producer = []
        consumer = []
        for _ in range(50):
            producer.append(produce(0))
            consumer.append(consume(0))
        result = simulate([producer, consumer])
        assert all(core.done for core in result.cores)
        assert result.cycles > 0

    def test_full_queue_blocks_producer(self):
        machine = MachineConfig(queue_size=4)
        producer = [produce(0) for _ in range(16)]
        # Consumer does a lot of unrelated work before consuming.
        consumer = [alu(i) for i in range(200)] + [
            consume(0) for _ in range(16)
        ]
        result = simulate([producer, consumer], machine)
        stalls = result.cores[0].stall_cycles("produce_full")
        assert stalls > 0

    def test_consumer_stall_recorded(self):
        producer = [alu(i) for i in range(100)] + [produce(0)]
        consumer = [consume(0)]
        result = simulate([producer, consumer])
        assert result.cores[1].stall_cycles("consume_empty") > 0


class TestErrors:
    def test_deadlock_detected(self):
        # Consumer waits on a queue nobody produces.
        with pytest.raises(SimulationDeadlock):
            simulate([[alu()], [consume(9)]])

    def test_too_many_threads_rejected(self):
        machine = MachineConfig(num_cores=2)
        with pytest.raises(ValueError, match="cores"):
            simulate([[alu()], [alu()], [alu()]], machine)


class TestSingleTrace:
    def test_baseline_has_no_queue_telemetry(self):
        result = simulate([[alu(i) for i in range(10)]])
        assert result.queues is None
        assert result.occupancy().events == []

    def test_result_repr(self):
        result = simulate([[alu()]])
        assert "cycles" in repr(result)


class TestWarmup:
    def test_warm_run_is_no_slower(self):
        from repro.harness.runner import run_baseline
        from repro.workloads import get_workload

        case = get_workload("mcf").build(scale=100)
        trace = [run_baseline(case).trace]
        cold = simulate(trace, MachineConfig()).cycles
        warm = simulate(trace, MachineConfig(), warm=True).cycles
        assert warm <= cold

    def test_warm_predictor_reduces_mispredicts(self):
        from repro.harness.runner import run_baseline
        from repro.workloads import get_workload

        case = get_workload("wc").build(scale=100)
        trace = [run_baseline(case).trace]
        cold = simulate(trace, MachineConfig())
        warm = simulate(trace, MachineConfig(), warm=True)
        assert (warm.cores[0].predictor.mispredict_rate
                <= cold.cores[0].predictor.mispredict_rate + 0.35)
