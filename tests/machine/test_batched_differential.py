"""Differential campaign for the batched simulator (``-m batch_smoke``).

:class:`~repro.machine.batch.BatchedSimulator` replays one predecoded
trace set against a whole batch of machine configurations in a single
pass; the per-config :func:`~repro.machine.cmp.simulate` stays behind
as the reference oracle.  This campaign drives fuzz-generated loops
(irregular control flow, random operand shapes) and curated DSWP
pipelines through both paths under *randomized* config batches and
asserts :class:`~repro.machine.stats.SimResult` bit-identity field by
field -- cycles, IPCs, per-core stall records, cache and predictor
counters, queue occupancy events -- plus failure equivalence: a
deadlock, watchdog cut-off or validation error surfaced by the batched
path must carry the oracle's exact exception type, message and
forensic :class:`~repro.resilience.incident.IncidentReport`.

The tier is bounded (fixed seeds, small scales) so it runs inside the
normal suite; deselect with ``-m 'not batch_smoke'``.
"""

import random

import pytest

from repro.fuzz.generator import generate_case
from repro.harness.runner import run_baseline, run_dswp
from repro.interp.interpreter import run_function
from repro.interp.trace import ColumnarTrace
from repro.machine.batch import BatchedSimulator
from repro.machine.cmp import (
    CycleBudgetExceeded,
    SimulationDeadlock,
    simulate,
)
from repro.machine.config import HALF_WIDTH_CORE, MachineConfig
from repro.resilience.faults import CoreFault, FaultPlan, QueueFault
from repro.workloads import get_workload

pytestmark = pytest.mark.batch_smoke

#: Fixed generator seeds: deterministic, structurally diverse loops.
SEEDS = tuple(range(8))

MAX_STEPS = 2_000_000

#: Knob values the randomized batches draw from.  Configs sharing
#: (cache geometry, queue size, memory latency) batch together; the
#: rest are grouped or bypassed by the simulator itself -- the
#: campaign asserts equivalence either way.
COMM_LATENCIES = (1, 2, 5, 10, 20)
SA_READ_LATENCIES = (1, 2, 3)
QUEUE_SIZES = (8, 32, 128)
CORES = (MachineConfig().core, HALF_WIDTH_CORE)


def random_config(rng: random.Random) -> MachineConfig:
    return MachineConfig(
        core=rng.choice(CORES),
        comm_latency=rng.choice(COMM_LATENCIES),
        sa_read_latency=rng.choice(SA_READ_LATENCIES),
        queue_size=rng.choice(QUEUE_SIZES),
    )


def random_batch(rng: random.Random, lo: int = 2, hi: int = 6):
    """A randomized config batch, with duplicates made likely."""
    configs = [random_config(rng) for _ in range(rng.randint(lo, hi))]
    if len(configs) >= 2 and rng.random() < 0.5:
        configs[rng.randrange(len(configs))] = configs[0]
    return configs


def oracle(traces, machine, **kwargs):
    """(result, error) the reference per-config simulate produces."""
    try:
        return simulate(traces, machine, **kwargs), None
    except (SimulationDeadlock, CycleBudgetExceeded, ValueError) as exc:
        return None, exc


# ----------------------------------------------------------------------
# Field-by-field equivalence assertions
# ----------------------------------------------------------------------

def assert_results_identical(ref, got, label=""):
    """Every observable field of two SimResults must match exactly."""
    assert got.cycles == ref.cycles, label
    assert got.ipcs() == ref.ipcs(), label
    assert got.utilizations() == ref.utilizations(), label
    assert len(got.cores) == len(ref.cores), label
    for a, b in zip(ref.cores, got.cores):
        assert b.index == a.index, label
        assert b.instructions_executed == a.instructions_executed, label
        assert b.flow_instructions == a.flow_instructions, label
        assert b.last_completion == a.last_completion, label
        assert len(b.stalls) == len(a.stalls), label
        for s, t in zip(a.stalls, b.stalls):
            assert (t.kind, t.start, t.end, t.queue) == (
                s.kind, s.start, s.end, s.queue), label
        assert b.caches.stats() == a.caches.stats(), label
        assert b.predictor._counters == a.predictor._counters, label
        assert b.predictor.lookups == a.predictor.lookups, label
        assert b.predictor.mispredicts == a.predictor.mispredicts, label
        assert b.stall_breakdown() == a.stall_breakdown(), label
        assert b.stall_breakdown_by_queue() == a.stall_breakdown_by_queue(), \
            label
    if ref.queues is None:
        assert got.queues is None, label
    else:
        assert got.queues is not None, label
        assert got.queues.visible == ref.queues.visible, label
        assert got.queues.freed == ref.queues.freed, label
        assert got.queues.occupancy_events() == \
            ref.queues.occupancy_events(), label
        for q in ref.queues.queue_ids():
            assert got.queues.max_occupancy(q) == \
                ref.queues.max_occupancy(q), label


def assert_errors_identical(ref_exc, got_exc, label=""):
    """Exception type, message and full forensic report must match."""
    assert got_exc is not None, (label, "batched path succeeded where "
                                 "the oracle failed")
    assert type(got_exc) is type(ref_exc), (label, got_exc, ref_exc)
    assert str(got_exc) == str(ref_exc), label
    ref_report = getattr(ref_exc, "report", None)
    got_report = getattr(got_exc, "report", None)
    if ref_report is None:
        assert got_report is None, label
    else:
        assert got_report is not None, label
        assert got_report.to_dict() == ref_report.to_dict(), label


def assert_outcome_matches(traces, machine, out, label="", **kwargs):
    ref_result, ref_exc = oracle(traces, machine, **kwargs)
    if ref_exc is None:
        assert out.error is None, (label, out.error)
        assert_results_identical(ref_result, out.result, label)
    else:
        assert_errors_identical(ref_exc, out.error, label)


# ----------------------------------------------------------------------
# Trace populations
# ----------------------------------------------------------------------

def fuzz_trace(seed: int) -> ColumnarTrace:
    case = generate_case(seed)
    run = run_function(
        case.function, case.fresh_memory(), initial_regs=case.initial_regs,
        max_steps=MAX_STEPS, record_trace=True,
    )
    return run.trace


@pytest.fixture(scope="module")
def pipeline_traces():
    """DSWP-transformed two-thread trace sets for curated workloads."""
    out = {}
    for name, scale in (("compress", 300), ("wc", 150)):
        case = get_workload(name).build(scale=scale)
        baseline = run_baseline(case)
        out[name] = run_dswp(case, baseline).traces
    return out


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------

class TestFuzzDifferential:
    """Fuzz loops (single-trace batches) under randomized configs."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_randomized_batch_matches_oracle(self, seed):
        trace = fuzz_trace(seed)
        rng = random.Random(1000 + seed)
        configs = random_batch(rng)
        outcomes = BatchedSimulator().simulate_batch([trace], configs)
        for j, (machine, out) in enumerate(zip(configs, outcomes)):
            assert_outcome_matches([trace], machine, out,
                                   label=f"fuzz seed {seed} config {j}")


class TestPipelineDifferential:
    """Real DSWP pipelines: queue handshakes, occupancy, stalls."""

    @pytest.mark.parametrize("workload", ("compress", "wc"))
    @pytest.mark.parametrize("round", range(3))
    def test_randomized_batch_matches_oracle(self, pipeline_traces,
                                             workload, round):
        traces = pipeline_traces[workload]
        rng = random.Random(f"{workload}-{round}")
        configs = random_batch(rng, lo=3, hi=6)
        outcomes = BatchedSimulator().simulate_batch(traces, configs)
        for j, (machine, out) in enumerate(zip(configs, outcomes)):
            assert_outcome_matches(traces, machine, out,
                                   label=f"{workload} r{round} config {j}")

    def test_same_geometry_configs_actually_batch(self, pipeline_traces):
        """Configs differing only in width/latency share one replay."""
        traces = pipeline_traces["compress"]
        configs = [MachineConfig(comm_latency=lat) for lat in (1, 5, 10)]
        configs.append(MachineConfig(core=HALF_WIDTH_CORE))
        outcomes = BatchedSimulator().simulate_batch(traces, configs)
        assert all(out.batched for out in outcomes)
        for machine, out in zip(configs, outcomes):
            assert_outcome_matches(traces, machine, out)

    def test_warm_mode_matches_oracle(self, pipeline_traces):
        traces = pipeline_traces["wc"]
        configs = [MachineConfig(comm_latency=lat) for lat in (1, 10)]
        outcomes = BatchedSimulator().simulate_batch(traces, configs,
                                                     warm=True)
        assert all(out.batched for out in outcomes)
        for machine, out in zip(configs, outcomes):
            assert_outcome_matches(traces, machine, out, warm=True)


class TestFailureEquivalence:
    """Deadlock, watchdog and validation failures are bit-identical."""

    @pytest.fixture(scope="class")
    def deadlocking_traces(self, pipeline_traces):
        """Producer trace cut mid-stream: the consumer starves."""
        producer, consumer = pipeline_traces["compress"]
        cut = ColumnarTrace.from_entries(
            producer.to_entries()[: len(producer) // 2])
        return [cut, consumer]

    def test_deadlock_through_the_batched_engine(self, deadlocking_traces):
        configs = [MachineConfig(comm_latency=lat) for lat in (1, 10)]
        outcomes = BatchedSimulator().simulate_batch(
            deadlocking_traces, configs)
        assert all(out.batched for out in outcomes)
        for machine, out in zip(configs, outcomes):
            assert isinstance(out.error, SimulationDeadlock)
            assert_outcome_matches(deadlocking_traces, machine, out)

    def test_watchdog_budget_through_the_batched_engine(
            self, pipeline_traces):
        traces = pipeline_traces["compress"]
        configs = [MachineConfig(comm_latency=lat) for lat in (1, 10)]
        outcomes = BatchedSimulator().simulate_batch(
            traces, configs, cycle_budgets=50)
        assert all(out.batched for out in outcomes)
        for machine, out in zip(configs, outcomes):
            assert isinstance(out.error, CycleBudgetExceeded)
            assert_outcome_matches(traces, machine, out, cycle_budget=50)

    def test_mixed_budgets_fail_only_the_budgeted_configs(
            self, pipeline_traces):
        traces = pipeline_traces["compress"]
        configs = [MachineConfig(comm_latency=lat) for lat in (1, 5, 10)]
        budgets = [None, 50, None]
        outcomes = BatchedSimulator().simulate_batch(
            traces, configs, cycle_budgets=budgets)
        assert outcomes[0].ok and outcomes[2].ok
        assert isinstance(outcomes[1].error, CycleBudgetExceeded)
        for machine, budget, out in zip(configs, budgets, outcomes):
            assert_outcome_matches(traces, machine, out,
                                   cycle_budget=budget)

    def test_thread_overflow_matches_oracle_valueerror(
            self, pipeline_traces):
        traces = pipeline_traces["compress"]
        machine = MachineConfig(num_cores=1)
        with pytest.raises(ValueError) as excinfo:
            simulate(traces, machine)
        outcomes = BatchedSimulator().simulate_batch(traces, [machine])
        assert isinstance(outcomes[0].error, ValueError)
        assert str(outcomes[0].error) == str(excinfo.value)


class TestRandomizedBatchProperties:
    """Property satellite: any batch shape -- singleton, duplicate,
    deadlocking, budget-exceeding, fault-injected -- matches the
    per-config oracle exactly, forensics included."""

    @pytest.mark.parametrize("seed", range(6))
    def test_arbitrary_batch_shape(self, pipeline_traces, seed):
        traces = pipeline_traces["compress"]
        rng = random.Random(7000 + seed)
        configs = random_batch(rng, lo=1, hi=6)
        budgets = [50 if rng.random() < 0.25 else None for _ in configs]
        plans = [
            FaultPlan(queue_faults=(QueueFault("capacity", capacity=1),),
                      name="pinch") if rng.random() < 0.2 else None
            for _ in configs
        ]
        outcomes = BatchedSimulator().simulate_batch(
            traces, configs, fault_plans=plans, cycle_budgets=budgets)
        assert len(outcomes) == len(configs)
        for j, out in enumerate(outcomes):
            ref_result, ref_exc = oracle(
                traces, configs[j], fault_plan=plans[j],
                cycle_budget=budgets[j])
            if ref_exc is None:
                assert out.error is None, (seed, j, out.error)
                assert_results_identical(ref_result, out.result,
                                         label=(seed, j))
            else:
                assert_errors_identical(ref_exc, out.error, label=(seed, j))

    def test_singleton_batch_matches(self, pipeline_traces):
        traces = pipeline_traces["wc"]
        machine = MachineConfig(comm_latency=5)
        outcomes = BatchedSimulator().simulate_batch(traces, [machine])
        assert len(outcomes) == 1
        assert_outcome_matches(traces, machine, outcomes[0])

    def test_duplicate_heavy_batch_matches(self, pipeline_traces):
        traces = pipeline_traces["wc"]
        machine = MachineConfig(comm_latency=5)
        configs = [machine] * 4 + [MachineConfig(comm_latency=1)]
        outcomes = BatchedSimulator().simulate_batch(traces, configs)
        assert all(out.batched for out in outcomes)
        ref, _ = oracle(traces, machine)
        for out in outcomes[:4]:
            assert_results_identical(ref, out.result)


class TestThreeWayDifferential:
    """Vector vs compiled-scalar vs oracle on the same batches.

    ``engine="auto"`` routes clean same-width-class lane members
    through the vectorized one-pass replay; ``engine="scalar"`` forces
    PR 6's compiled per-config path.  Every batch shape -- duplicates,
    singleton lanes, mixed fallback members -- must agree field by
    field across all three engines, forensics included."""

    def vector_batch(self, rng: random.Random):
        """A batch guaranteed to put at least one lane on the vector
        engine: >= 2 clean full-width members sharing one geometry."""
        base_qs = rng.choice(QUEUE_SIZES)
        configs = [
            MachineConfig(comm_latency=lat, queue_size=base_qs)
            for lat in rng.sample(COMM_LATENCIES, rng.randint(2, 4))
        ]
        if rng.random() < 0.6:  # duplicate lane members
            configs.append(configs[0])
        if rng.random() < 0.6:  # a different-class member, same lane
            configs.append(MachineConfig(core=HALF_WIDTH_CORE,
                                         queue_size=base_qs))
        if rng.random() < 0.5:  # a singleton lane (different geometry)
            configs.append(MachineConfig(
                queue_size=rng.choice([q for q in QUEUE_SIZES
                                       if q != base_qs])))
        rng.shuffle(configs)
        return configs

    @pytest.mark.parametrize("workload", ("compress", "wc"))
    @pytest.mark.parametrize("round", range(3))
    def test_three_way_randomized(self, pipeline_traces, workload, round):
        traces = pipeline_traces[workload]
        rng = random.Random(f"3way-{workload}-{round}")
        configs = self.vector_batch(rng)
        # Mixed fallback members: a budgeted and a faulted config ride
        # in the same batch and must bypass per member, not per batch.
        budgets = [None] * len(configs)
        budgets[rng.randrange(len(configs))] = 60
        plans = [None] * len(configs)
        plans[rng.randrange(len(configs))] = FaultPlan(
            queue_faults=(QueueFault("capacity", capacity=1),),
            name="pinch")
        auto = BatchedSimulator().simulate_batch(
            traces, configs, fault_plans=plans, cycle_budgets=budgets)
        scalar = BatchedSimulator().simulate_batch(
            traces, configs, fault_plans=plans, cycle_budgets=budgets,
            engine="scalar")
        for j, (machine, a, s) in enumerate(zip(configs, auto, scalar)):
            label = (workload, round, j)
            # auto vs scalar engine...
            if s.error is None:
                assert a.error is None, (label, a.error)
                assert_results_identical(s.result, a.result, label)
            else:
                assert_errors_identical(s.error, a.error, label)
            # ...and auto vs the per-config oracle.
            ref_result, ref_exc = oracle(
                traces, machine, fault_plan=plans[j],
                cycle_budget=budgets[j])
            if ref_exc is None:
                assert_results_identical(ref_result, a.result, label)
            else:
                assert_errors_identical(ref_exc, a.error, label)

    def test_vector_lane_actually_engages(self, pipeline_traces):
        """The designed fig9b batch must ride the vector engine, not
        silently fall back to scalar."""
        traces = pipeline_traces["compress"]
        configs = [MachineConfig(comm_latency=lat) for lat in (1, 5, 10)]
        bsim = BatchedSimulator()
        outcomes = bsim.simulate_batch(traces, configs)
        assert all(out.batched for out in outcomes)
        assert bsim.last_lanes == [
            {"width": 3, "vector": 3, "scalar": 0, "oracle": 0,
             "chunk_hits": bsim.last_lanes[0]["chunk_hits"],
             "chunk_misses": bsim.last_lanes[0]["chunk_misses"]}]
        assert bsim.last_lanes[0]["chunk_hits"] > 0

    def test_warm_table_replay_stays_identical(self, pipeline_traces):
        """Chunk tables persist process-wide; a repeat call replays
        every lane from the tables and must stay bit-identical."""
        traces = pipeline_traces["compress"]
        configs = [MachineConfig(comm_latency=lat) for lat in (1, 5, 10)]
        bsim = BatchedSimulator()
        first = bsim.simulate_batch(traces, configs)
        second = bsim.simulate_batch(traces, configs)
        misses = bsim.last_lanes[0]["chunk_misses"]
        assert misses == 0, "warm pass should hit the persisted tables"
        for machine, a, b in zip(configs, first, second):
            assert_results_identical(a.result, b.result)
            assert_outcome_matches(traces, machine, b)

    def test_mixed_class_lane_routes_scalar(self, pipeline_traces):
        """A lane whose clean members span two width classes (fig9a's
        full+half pair) takes the compiled-scalar path: per-class
        tables could never amortise the record cost."""
        traces = pipeline_traces["compress"]
        configs = [MachineConfig(), MachineConfig(core=HALF_WIDTH_CORE)]
        bsim = BatchedSimulator()
        outcomes = bsim.simulate_batch(traces, configs)
        assert all(out.batched for out in outcomes)
        assert bsim.last_lanes == [
            {"width": 2, "vector": 0, "scalar": 2, "oracle": 0}]
        for machine, out in zip(configs, outcomes):
            assert_outcome_matches(traces, machine, out)


class TestFaultIsolation:
    """A FaultPlan aimed at one config of a batch must not perturb its
    neighbours (regression: plans bypass to the oracle per config)."""

    def test_faulted_config_does_not_leak_into_neighbour(
            self, pipeline_traces):
        traces = pipeline_traces["compress"]
        clean = MachineConfig(comm_latency=5)
        faulted = MachineConfig(comm_latency=1)
        plan = FaultPlan(core_faults=(CoreFault("stall", after=10),),
                         name="one-sided")
        outcomes = BatchedSimulator().simulate_batch(
            traces, [faulted, clean],
            fault_plans=[plan, None], cycle_budgets=[20_000, None])
        # The faulted config ran the oracle lane (plans bypass) and
        # matches an oracle run with the same plan...
        assert not outcomes[0].batched
        ref_result, ref_exc = oracle(traces, faulted, fault_plan=plan,
                                     cycle_budget=20_000)
        if ref_exc is None:
            assert_results_identical(ref_result, outcomes[0].result)
        else:
            assert_errors_identical(ref_exc, outcomes[0].error)
        # ...while the neighbour is bit-identical to a clean run: the
        # injected fault fired only in the targeted config.
        clean_ref, _ = oracle(traces, clean)
        assert outcomes[1].error is None
        assert_results_identical(clean_ref, outcomes[1].result)
        # And the fault really did change something, or this test
        # would pass vacuously.
        if ref_exc is None:
            assert ref_result.cycles != clean_ref.cycles

    def test_fault_forensics_match_oracle(self, pipeline_traces):
        """A deadlocking fault's IncidentReport survives the batch
        path unchanged, field by field."""
        traces = pipeline_traces["compress"]
        plan = FaultPlan(queue_faults=(QueueFault("drop", after=3),),
                         name="drop-one")
        machine = MachineConfig()
        outcomes = BatchedSimulator().simulate_batch(
            traces, [machine, machine.with_comm_latency(5)],
            fault_plans=[plan, None], cycle_budgets=[50_000, None])
        ref_result, ref_exc = oracle(traces, machine, fault_plan=plan,
                                     cycle_budget=50_000)
        if ref_exc is None:
            assert_results_identical(ref_result, outcomes[0].result)
        else:
            assert_errors_identical(ref_exc, outcomes[0].error)
            assert outcomes[0].error.report.fault == plan.describe()
        assert outcomes[1].error is None
