"""Tests for occupancy telemetry and result statistics."""

from hypothesis import given, strategies as st

from repro.machine.core import StallRecord
from repro.machine.stats import OccupancyProfile, SimResult, speedup
from repro.machine.syncarray import QueueTiming
from repro.obs.metrics import MetricsRegistry


class FakeResult:
    def __init__(self, cycles):
        self.cycles = cycles


class FakeCore:
    """The slice of the CoreSim surface ``record_metrics`` reads."""

    def __init__(self, core_id, instructions, cycles, stalls=(),
                 issue_width=6):
        self.core_id = core_id
        self.instructions_executed = instructions
        self.flow_instructions = 0
        self.last_completion = cycles
        self.stalls = list(stalls)
        self._issue_width = issue_width

    def ipc(self):
        if self.last_completion <= 0:
            return 0.0
        return self.instructions_executed / self.last_completion

    def utilization(self):
        if self.last_completion <= 0:
            return 0.0
        return self.instructions_executed / (
            self.last_completion * self._issue_width)

    def stall_breakdown(self):
        out = {}
        for s in self.stalls:
            out[s.kind] = out.get(s.kind, 0) + s.duration
        return out

    def stall_cycles(self, kind):
        return sum(s.duration for s in self.stalls if s.kind == kind)


class TestOccupancyHistogram:
    def test_simple_fill_and_drain(self):
        # +1 at t=2, -1 at t=5, total 10 cycles.
        profile = OccupancyProfile([(2, +1), (5, -1)], 10, 0, 0)
        hist = profile.occupancy_histogram()
        assert hist == {0: 7, 1: 3}

    def test_histogram_total_equals_cycles(self):
        events = [(1, +1), (3, +1), (4, -1), (9, -1)]
        profile = OccupancyProfile(events, 20, 0, 0)
        assert sum(profile.occupancy_histogram().values()) == 20

    def test_cycles_with_occupancy_at_least(self):
        events = [(0, +1), (5, +1), (10, -1), (15, -1)]
        profile = OccupancyProfile(events, 20, 0, 0)
        assert profile.cycles_with_occupancy_at_least(1) == 15
        assert profile.cycles_with_occupancy_at_least(2) == 5

    def test_empty_events(self):
        profile = OccupancyProfile([], 10, 0, 0)
        assert profile.occupancy_histogram() == {0: 10}

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.sampled_from([1, -1])),
            max_size=30,
        ),
        st.integers(min_value=1, max_value=200),
    )
    def test_histogram_conserves_time(self, raw_events, total):
        # Keep the running level non-negative like real queue telemetry.
        events, level = [], 0
        for t, d in sorted(raw_events):
            if d < 0 and level == 0:
                continue
            level += d
            events.append((t, d))
        profile = OccupancyProfile(events, total, 0, 0)
        assert sum(profile.occupancy_histogram().values()) == total


class TestSeries:
    def test_series_tracks_level(self):
        events = [(0, +1), (50, +1), (80, -1)]
        profile = OccupancyProfile(events, 100, 0, 0)
        series = dict(profile.series(samples=10))
        assert series[0] == 1
        assert series[60] == 2
        assert series[100] == 1

    def test_series_on_empty(self):
        assert OccupancyProfile([], 10, 0, 0).series() == [(0, 0)]

    def test_more_samples_than_cycles_degrades_to_per_cycle(self):
        # samples >> total_cycles: the step clamps to 1 cycle, every
        # cycle is sampled once, and levels still track the events.
        events = [(1, +1), (3, +1), (4, -1)]
        profile = OccupancyProfile(events, 5, 0, 0)
        series = profile.series(samples=1000)
        assert [t for t, _ in series] == [0, 1, 2, 3, 4, 5]
        assert dict(series) == {0: 0, 1: 1, 2: 1, 3: 2, 4: 1, 5: 1}


class TestBuckets:
    def test_buckets_sum_to_one(self):
        events = [(0, +1), (40, -1)]
        profile = OccupancyProfile(events, 100, producer_stall=10,
                                   consumer_stall=20)
        buckets = profile.buckets()
        assert abs(sum(buckets.values()) - 1.0) < 1e-9

    def test_stall_fractions(self):
        profile = OccupancyProfile([(0, +1), (40, -1)], 100, 10, 20)
        buckets = profile.buckets()
        assert buckets["full_producer_stalled"] == 0.10
        assert buckets["empty_consumer_stalled"] == 0.20

    def test_balanced_fraction_reflects_occupancy(self):
        profile = OccupancyProfile([(0, +1), (50, -1)], 100, 0, 0)
        buckets = profile.buckets()
        assert buckets["balanced_both_active"] == 0.5
        assert buckets["empty_both_active"] == 0.5

    @given(
        st.integers(0, 60), st.integers(0, 60),
        st.integers(0, 100), st.integers(min_value=1, max_value=100),
    )
    def test_percentages_sum_to_100(self, producer_stall, consumer_stall,
                                    drain, total):
        # Whatever the stall measurements claim (they can overlap the
        # occupancy transitions), the reported percentages always total
        # exactly 100.
        events = [(0, +1), (min(drain, total), -1)]
        profile = OccupancyProfile(events, total, producer_stall,
                                   consumer_stall)
        percentages = [fraction * 100 for fraction
                       in profile.buckets().values()]
        assert abs(sum(percentages) - 100.0) < 1e-9
        assert all(p >= 0 for p in percentages)


class TestRecordMetrics:
    def _two_core_result(self):
        core0 = FakeCore(0, instructions=600, cycles=1000,
                         stalls=[StallRecord("produce_full", 10, 40, 0)])
        core1 = FakeCore(1, instructions=400, cycles=900,
                         stalls=[StallRecord("consume_empty", 0, 5, 0),
                                 StallRecord("consume_empty", 50, 60, 1)])
        queues = QueueTiming(queue_size=32, comm_latency=1, sa_read_latency=1)
        for k in range(4):
            queues.record_produce(0, 10 * k)
        for k in range(3):
            queues.record_consume(0, 10 * k + 20)
        return SimResult([core0, core1], queues)

    def test_core_and_queue_telemetry_published(self):
        registry = MetricsRegistry()
        self._two_core_result().record_metrics(registry)
        snap = registry.snapshot()
        assert snap["sim.cycles"] == 1000
        assert snap["sim.instructions"] == 1000
        assert snap["sim.core_cycles{core=1}"] == 900
        assert snap["sim.ipc{core=0}"] == 0.6
        assert snap["sim.issue_utilization{core=0}"] == 0.1
        assert snap["sim.stall_cycles{core=0,kind=produce_full}"] == 30
        assert snap["sim.stall_cycles{core=1,kind=consume_empty}"] == 15
        hist = snap["sim.stall_duration{core=1,kind=consume_empty}"]
        assert hist["count"] == 2 and hist["sum"] == 15.0
        assert snap["sim.queue_produced{queue=0}"] == 4
        assert snap["sim.queue_consumed{queue=0}"] == 3
        assert snap["sim.queue_max_occupancy{queue=0}"] >= 1
        assert snap["sim.queue_occupancy{queue=0}"]  # non-empty series
        buckets = [k for k in snap if k.startswith("sim.occupancy_bucket")]
        assert len(buckets) == 4

    def test_single_core_skips_queue_metrics(self):
        registry = MetricsRegistry()
        SimResult([FakeCore(0, 100, 200)], None).record_metrics(registry)
        snap = registry.snapshot()
        assert snap["sim.cycles"] == 200
        assert not any(k.startswith("sim.queue") for k in snap)

    def test_prefix_overridable(self):
        registry = MetricsRegistry()
        SimResult([FakeCore(0, 100, 200)], None).record_metrics(
            registry, prefix="base")
        assert "base.cycles" in registry.snapshot()


def test_speedup():
    assert speedup(FakeResult(200), FakeResult(100)) == 2.0
    assert speedup(FakeResult(100), FakeResult(200)) == 0.5
