"""Tests for occupancy telemetry and result statistics."""

from hypothesis import given, strategies as st

from repro.machine.stats import OccupancyProfile, speedup


class FakeResult:
    def __init__(self, cycles):
        self.cycles = cycles


class TestOccupancyHistogram:
    def test_simple_fill_and_drain(self):
        # +1 at t=2, -1 at t=5, total 10 cycles.
        profile = OccupancyProfile([(2, +1), (5, -1)], 10, 0, 0)
        hist = profile.occupancy_histogram()
        assert hist == {0: 7, 1: 3}

    def test_histogram_total_equals_cycles(self):
        events = [(1, +1), (3, +1), (4, -1), (9, -1)]
        profile = OccupancyProfile(events, 20, 0, 0)
        assert sum(profile.occupancy_histogram().values()) == 20

    def test_cycles_with_occupancy_at_least(self):
        events = [(0, +1), (5, +1), (10, -1), (15, -1)]
        profile = OccupancyProfile(events, 20, 0, 0)
        assert profile.cycles_with_occupancy_at_least(1) == 15
        assert profile.cycles_with_occupancy_at_least(2) == 5

    def test_empty_events(self):
        profile = OccupancyProfile([], 10, 0, 0)
        assert profile.occupancy_histogram() == {0: 10}

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.sampled_from([1, -1])),
            max_size=30,
        ),
        st.integers(min_value=1, max_value=200),
    )
    def test_histogram_conserves_time(self, raw_events, total):
        # Keep the running level non-negative like real queue telemetry.
        events, level = [], 0
        for t, d in sorted(raw_events):
            if d < 0 and level == 0:
                continue
            level += d
            events.append((t, d))
        profile = OccupancyProfile(events, total, 0, 0)
        assert sum(profile.occupancy_histogram().values()) == total


class TestSeries:
    def test_series_tracks_level(self):
        events = [(0, +1), (50, +1), (80, -1)]
        profile = OccupancyProfile(events, 100, 0, 0)
        series = dict(profile.series(samples=10))
        assert series[0] == 1
        assert series[60] == 2
        assert series[100] == 1

    def test_series_on_empty(self):
        assert OccupancyProfile([], 10, 0, 0).series() == [(0, 0)]


class TestBuckets:
    def test_buckets_sum_to_one(self):
        events = [(0, +1), (40, -1)]
        profile = OccupancyProfile(events, 100, producer_stall=10,
                                   consumer_stall=20)
        buckets = profile.buckets()
        assert abs(sum(buckets.values()) - 1.0) < 1e-9

    def test_stall_fractions(self):
        profile = OccupancyProfile([(0, +1), (40, -1)], 100, 10, 20)
        buckets = profile.buckets()
        assert buckets["full_producer_stalled"] == 0.10
        assert buckets["empty_consumer_stalled"] == 0.20

    def test_balanced_fraction_reflects_occupancy(self):
        profile = OccupancyProfile([(0, +1), (50, -1)], 100, 0, 0)
        buckets = profile.buckets()
        assert buckets["balanced_both_active"] == 0.5
        assert buckets["empty_both_active"] == 0.5


def test_speedup():
    assert speedup(FakeResult(200), FakeResult(100)) == 2.0
    assert speedup(FakeResult(100), FakeResult(200)) == 0.5
