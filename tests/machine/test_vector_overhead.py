"""Overhead guard for the vectorized replay engine (``-m batch_smoke``).

The tentpole claim of the vector lane is throughput: on a wide batch
of same-width-class configs it must beat PR 6's compiled-scalar replay
by a real margin, and batch shapes it cannot help (singleton lanes)
must keep taking exactly the pre-existing path.  Timing assertions use
best-of-N interleaved measurements at bench scale so scheduler noise
cannot flip the verdict on an idle machine.
"""

from __future__ import annotations

import time

import pytest

from repro.harness.runner import run_baseline, run_dswp
from repro.machine.batch import BatchedSimulator
from repro.machine.config import MachineConfig
from repro.workloads import get_workload

pytestmark = pytest.mark.batch_smoke

#: The bench default (``python -m repro bench --scale``).
BENCH_SCALE = 800

#: The vector lane must beat compiled-scalar replay by this factor on
#: a batch of >= 8 same-class configs (measured headroom is ~2x).
MIN_SPEEDUP = 1.5

REPS = 5


@pytest.fixture(scope="module")
def traces():
    case = get_workload("compress").build(scale=BENCH_SCALE)
    baseline = run_baseline(case)
    return run_dswp(case, baseline).traces


def best_of(fn, reps: int = REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestVectorOverheadGuard:
    def test_vector_beats_scalar_on_wide_batch(self, traces):
        configs = [MachineConfig(comm_latency=lat) for lat in range(1, 9)]
        bsim = BatchedSimulator()
        # Warm every layer both engines share (annotation, schedule,
        # compiled factories, chunk tables) so the measurement is the
        # steady-state replay cost, not one-time setup.
        bsim.simulate_batch(traces, configs)
        bsim.simulate_batch(traces, configs, engine="scalar")
        assert bsim.last_lanes[-1]["scalar"] == len(configs)

        t_vector = best_of(lambda: bsim.simulate_batch(traces, configs))
        assert bsim.last_lanes[-1]["vector"] == len(configs)
        t_scalar = best_of(
            lambda: bsim.simulate_batch(traces, configs, engine="scalar"))
        speedup = t_scalar / t_vector
        assert speedup >= MIN_SPEEDUP, (
            f"vector lane {t_vector * 1e3:.1f}ms vs scalar "
            f"{t_scalar * 1e3:.1f}ms: {speedup:.2f}x < {MIN_SPEEDUP}x")

    def test_singleton_lane_does_not_regress(self, traces):
        """A singleton geometry group must take the PR 6 path --
        straight to the per-config oracle, no vector machinery on the
        way -- so it cannot regress by construction."""
        bsim = BatchedSimulator()
        outcomes = bsim.simulate_batch(traces, [MachineConfig()])
        assert bsim.last_lanes == [
            {"width": 1, "vector": 0, "scalar": 0, "oracle": 1}]
        assert outcomes[0].ok and not outcomes[0].batched
