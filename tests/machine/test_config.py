"""Tests for machine configuration and the static latency model."""

from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg
from repro.machine.config import (
    FULL_WIDTH_MACHINE,
    HALF_WIDTH_MACHINE,
    STATIC_LATENCIES,
    MachineConfig,
    static_latency,
    static_latency_with_calls,
)


class TestStaticLatency:
    def test_alu_is_single_cycle(self):
        add = Instruction(Opcode.ADD, dest=gen_reg(0), srcs=[gen_reg(1)], imm=1)
        assert static_latency(add) == 1

    def test_load_uses_average_estimate(self):
        ld = Instruction(Opcode.LOAD, dest=gen_reg(0), srcs=[gen_reg(1)], imm=0)
        assert static_latency(ld) == 2

    def test_fp_slower_than_int(self):
        fmul = Instruction(Opcode.FMUL, dest=gen_reg(0),
                           srcs=[gen_reg(1), gen_reg(2)])
        mul = Instruction(Opcode.MUL, dest=gen_reg(0),
                          srcs=[gen_reg(1), gen_reg(2)])
        assert static_latency(fmul) >= static_latency(mul)

    def test_call_latency_excluded_by_default(self):
        """The paper notes call latencies do not include the callee."""
        call = Instruction(Opcode.CALL, attrs={"callee": "f", "call_cycles": 500})
        assert static_latency(call) == 1
        assert static_latency_with_calls(call) == 501

    def test_every_opcode_has_a_latency(self):
        assert set(STATIC_LATENCIES) == set(Opcode)


class TestMachineConfig:
    def test_defaults_match_paper(self):
        m = FULL_WIDTH_MACHINE
        assert m.queue_size == 32
        assert m.num_queues == 256
        assert m.comm_latency == 1
        assert m.core.issue_width == 6
        assert m.core.m_ports == 4

    def test_half_width_halves_front_end(self):
        assert HALF_WIDTH_MACHINE.core.issue_width == 3
        assert HALF_WIDTH_MACHINE.core.m_ports == 2

    def test_with_comm_latency(self):
        m = MachineConfig().with_comm_latency(10)
        assert m.comm_latency == 10
        assert MachineConfig().comm_latency == 1  # original untouched

    def test_with_queue_size(self):
        assert MachineConfig().with_queue_size(128).queue_size == 128

    def test_with_core(self):
        m = MachineConfig().with_core(HALF_WIDTH_MACHINE.core)
        assert m.core.issue_width == 3
