"""Tests for the two-bit branch predictor."""

from repro.machine.branch import TwoBitPredictor


class TestTwoBitPredictor:
    def test_initial_prediction_not_taken(self):
        p = TwoBitPredictor()
        # Initial counter 1 (< threshold 2) predicts not-taken.
        assert p.predict_and_update(1, taken=False)

    def test_learns_taken_branch(self):
        p = TwoBitPredictor()
        p.predict_and_update(1, True)   # counter 1 -> 2 (mispredict)
        assert p.predict_and_update(1, True)   # predicts taken now
        assert p.predict_and_update(1, True)

    def test_hysteresis_tolerates_one_flip(self):
        p = TwoBitPredictor()
        for _ in range(4):
            p.predict_and_update(1, True)  # saturate to 3
        p.predict_and_update(1, False)     # one not-taken: counter 2
        assert p.predict_and_update(1, True)  # still predicts taken

    def test_counter_saturates(self):
        p = TwoBitPredictor()
        for _ in range(10):
            p.predict_and_update(1, True)
        # Two not-takens flip the prediction (3 -> 2 -> 1).
        p.predict_and_update(1, False)
        p.predict_and_update(1, False)
        assert p.predict_and_update(1, False)

    def test_branches_tracked_independently(self):
        p = TwoBitPredictor()
        for _ in range(4):
            p.predict_and_update(1, True)
        assert p.predict_and_update(2, False)  # fresh key, default state

    def test_mispredict_rate(self):
        p = TwoBitPredictor()
        p.predict_and_update(1, True)    # mispredict
        p.predict_and_update(1, True)    # correct
        assert p.lookups == 2
        assert p.mispredicts == 1
        assert p.mispredict_rate == 0.5

    def test_rate_zero_without_lookups(self):
        assert TwoBitPredictor().mispredict_rate == 0.0
