"""Tests for the synchronization-array timing state."""

from repro.machine.syncarray import QueueTiming


def make(size=2, comm=1, read=1):
    return QueueTiming(size, comm, read)


class TestProducerSide:
    def test_empty_queue_slot_immediately_free(self):
        q = make()
        assert q.produce_slot_ready(0) == 0

    def test_visibility_includes_comm_latency(self):
        q = make(comm=5)
        q.record_produce(0, issue_cycle=10)
        assert q.visible[0] == [16]  # 10 + 1 + 5

    def test_full_queue_waits_for_consume(self):
        q = make(size=2)
        q.record_produce(0, 0)
        q.record_produce(0, 1)
        # Third produce needs the first consume, not yet simulated.
        assert q.produce_slot_ready(0) is None
        q.record_consume(0, 50)
        assert q.produce_slot_ready(0) == 50

    def test_slot_frees_in_fifo_order(self):
        q = make(size=1)
        q.record_produce(0, 0)
        q.record_consume(0, 7)
        assert q.produce_slot_ready(0) == 7
        q.record_produce(0, 8)
        assert q.produce_slot_ready(0) is None


class TestConsumerSide:
    def test_empty_queue_not_ready(self):
        q = make()
        assert q.consume_data_ready(3) is None

    def test_data_ready_at_visibility(self):
        q = make(comm=2)
        q.record_produce(1, 4)
        assert q.consume_data_ready(1) == 7

    def test_fifo_matching(self):
        q = make(comm=0)
        q.record_produce(0, 10)
        q.record_produce(0, 20)
        assert q.consume_data_ready(0) == 11
        q.record_consume(0, 12)
        assert q.consume_data_ready(0) == 21


class TestTelemetry:
    def test_occupancy_events_sorted(self):
        q = make()
        q.record_produce(0, 5)
        q.record_produce(1, 1)
        q.record_consume(0, 9)
        events = q.occupancy_events()
        assert events == sorted(events)
        assert sum(delta for _, delta in events) == 1  # one leftover

    def test_queues_independent(self):
        q = make(size=1)
        q.record_produce(0, 0)
        assert q.produce_slot_ready(1) == 0
