"""Shared-memory transport: round-trip fidelity and segment hygiene.

The transport's contract is strict: a decoded result is *equal* to the
encoded value whether it travelled through a shared-memory segment or
the pickle fallback, and no code path -- including worker crashes and
shutdown -- may leak a ``/dev/shm`` segment.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.interp.trace import ColumnarTrace, TraceEntry
from repro.ir.instruction import Instruction, Opcode
from repro.ir.types import gen_reg, pred_reg
from repro.parallel import (
    PoolTask,
    SegmentAllocator,
    SegmentChecksumError,
    WorkerPool,
    corrupt_segment,
    decode_result,
    encode_result,
    release_result,
    shm_available,
    sweep_worker_segments,
    wire_segment_names,
)

pytestmark = pytest.mark.parallel_smoke

needs_shm = pytest.mark.skipif(not shm_available(),
                               reason="no shared memory on this platform")


def make_trace(entries: int = 5000) -> ColumnarTrace:
    r0, r1 = gen_reg(0), gen_reg(1)
    add = Instruction(Opcode.ADD, dest=r0, srcs=[r0, r1])
    load = Instruction(Opcode.LOAD, dest=r1, srcs=[r0], region="arr")
    br = Instruction(Opcode.BR, srcs=[pred_reg(0)], targets=["a", "b"])
    trace = ColumnarTrace()
    for i in range(entries):
        trace.append_entry(TraceEntry(add, block="body"))
        trace.append_entry(TraceEntry(load, addr=1000 + i, block="body"))
        trace.append_entry(TraceEntry(br, taken=i % 3 == 0, block="body"))
    # Exercise the int64-overflow side table across the wire too.
    trace.append_entry(TraceEntry(load, addr=1 << 70, block="body"))
    return trace


def traces_equal(a: ColumnarTrace, b: ColumnarTrace) -> bool:
    if len(a) != len(b):
        return False
    for x, y in zip(a, b):
        if (x.inst.opcode != y.inst.opcode or x.addr != y.addr
                or x.taken != y.taken or x.block != y.block):
            return False
    return True


def _leftover_segments() -> list[str]:
    if not os.path.isdir("/dev/shm"):
        return []
    return [name for name in os.listdir("/dev/shm")
            if name.startswith("repro-")]


class TestRoundTrip:
    @needs_shm
    def test_trace_through_shm_segment(self):
        allocator = SegmentAllocator("t1", 0)
        allocator.threshold = 1  # force the segment path
        trace = make_trace()
        wire = encode_result(trace, allocator)
        assert wire[0] == "trace-shm"
        assert allocator.seq == 1
        decoded = decode_result(wire)
        assert traces_equal(trace, decoded)
        assert not _leftover_segments()  # decode unlinks

    def test_trace_through_pickle_fallback(self):
        trace = make_trace()
        wire = encode_result(trace, None)
        assert wire[0] == "trace-inline"
        assert traces_equal(trace, decode_result(wire))

    @needs_shm
    def test_fallback_and_shm_decode_identically(self):
        allocator = SegmentAllocator("t2", 0)
        allocator.threshold = 1
        trace = make_trace(500)
        via_shm = decode_result(encode_result(trace, allocator))
        via_pickle = decode_result(encode_result(trace, None))
        assert traces_equal(via_shm, via_pickle)

    @needs_shm
    def test_bulk_object_payload_through_shm(self):
        allocator = SegmentAllocator("t3", 0)
        allocator.threshold = 1
        # Containers recurse, so the bulk object must be an opaque
        # value (a set) to exercise the pickled-segment path.
        payload = {"rows": set(range(4000)), "label": "sim"}
        wire = encode_result(payload, allocator)
        tags = {wire[0]} | {v[0] for _, v in wire[1]}
        assert "pickle-shm" in tags
        assert decode_result(wire) == payload
        assert not _leftover_segments()

    def test_containers_encode_recursively(self):
        value = {"traces": [make_trace(50), make_trace(50)],
                 "summary": {"cycles": 123, "ok": True},
                 "pair": (1, "two")}
        decoded = decode_result(encode_result(value, None))
        assert decoded["summary"] == value["summary"]
        assert decoded["pair"] == value["pair"]
        assert traces_equal(decoded["traces"][0], value["traces"][0])

    @needs_shm
    def test_release_unlinks_without_decoding(self):
        allocator = SegmentAllocator("t4", 0)
        allocator.threshold = 1
        wire = encode_result(make_trace(), allocator)
        assert wire[0] == "trace-shm"
        release_result(wire)
        assert not _leftover_segments()
        release_result(wire)  # idempotent on already-gone segments


class TestIntegrity:
    @needs_shm
    def test_corrupted_trace_segment_fails_decode_loudly(self):
        # Trace columns are raw bytes: without the CRC a scribbled
        # segment would decode into silently wrong data.
        allocator = SegmentAllocator("ck1", 0)
        allocator.threshold = 1
        wire = encode_result(make_trace(), allocator)
        assert wire[0] == "trace-shm"
        assert corrupt_segment(wire[1][0])
        with pytest.raises(SegmentChecksumError, match="CRC"):
            decode_result(wire)
        assert not _leftover_segments()  # failed decode still unlinks

    @needs_shm
    def test_corrupted_pickle_segment_fails_decode_loudly(self):
        allocator = SegmentAllocator("ck2", 0)
        allocator.threshold = 1
        wire = encode_result({"rows": set(range(4000))}, allocator)
        names = wire_segment_names(wire)
        assert names and all(corrupt_segment(name) for name in names)
        with pytest.raises(SegmentChecksumError):
            decode_result(wire)
        assert not _leftover_segments()

    def test_corrupt_segment_reports_missing_segment(self):
        assert corrupt_segment("repro-no-such-segment") is False


class TestSweep:
    @needs_shm
    def test_sweep_collects_unconsumed_segments(self):
        allocator = SegmentAllocator("sw1", 2, incarnation=1)
        allocator.threshold = 1
        # A crashed worker: segments created, descriptors never decoded.
        for _ in range(3):
            encode_result(make_trace(200), allocator)
        assert len(_leftover_segments()) == 3
        swept = sweep_worker_segments("sw1", 2, 1, 0)
        assert swept == 3
        assert not _leftover_segments()

    @needs_shm
    def test_sweep_starts_after_the_acked_watermark(self):
        allocator = SegmentAllocator("sw2", 0)
        allocator.threshold = 1
        first = encode_result(make_trace(200), allocator)
        encode_result(make_trace(200), allocator)
        decode_result(first)  # seq 0 consumed and acked
        swept = sweep_worker_segments("sw2", 0, 0, 1)
        assert swept == 1
        assert not _leftover_segments()

    @needs_shm
    def test_sweep_of_clean_worker_is_a_noop(self):
        assert sweep_worker_segments("nothing", 0, 0, 0) == 0


class TestPoolIntegration:
    @staticmethod
    def _assert_results(results):
        assert len(results) == 4
        for i, result in enumerate(results):
            assert result.value["index"] == i
            assert traces_equal(result.value["trace"], make_trace(2000))

    def test_clean_shutdown_leaves_no_segments(self):
        with WorkerPool(2) as pool:
            results = pool.run([
                PoolTask(f"t{i}", big_trace_task, {"index": i})
                for i in range(4)
            ])
            self._assert_results(results)
        assert not _leftover_segments()

    def test_pickle_fallback_pool_matches_shm_pool(self):
        with WorkerPool(2, use_shm=False) as pool:
            results = pool.run([
                PoolTask(f"t{i}", big_trace_task, {"index": i})
                for i in range(4)
            ])
            self._assert_results(results)
        assert not _leftover_segments()

    @needs_shm
    def test_crash_during_run_leaves_no_segments(self, tmp_path):
        # A worker that dies mid-task: retried, sweep still clean.
        pool = WorkerPool(2)
        results = pool.run([
            PoolTask(f"t{i}", crash_once_big_trace_task,
                     {"index": i, "dir": str(tmp_path)})
            for i in range(3)
        ])
        assert [r.value["index"] for r in results] == [0, 1, 2]
        assert pool.crashes >= 1
        pool.close()
        assert not _leftover_segments()

    @needs_shm
    def test_shutdown_sweeps_past_the_acked_watermark(self):
        # Simulate the true crash-leak window -- a worker that created
        # a segment whose descriptor never reached the driver -- by
        # allocating past worker 0's acked watermark under the pool's
        # own naming scheme, then closing.
        pool = WorkerPool(2)
        pool.run([PoolTask(f"t{i}", small_task, {"index": i})
                  for i in range(4)])
        orphan = SegmentAllocator(pool._uid, 0, incarnation=0)
        orphan.seq = pool._acked_seq[(0, 0)]
        orphan.threshold = 1
        encode_result(make_trace(300), orphan)
        encode_result(make_trace(300), orphan)
        assert len(_leftover_segments()) == 2
        pool.close()
        assert pool.segments_swept == 2
        assert not _leftover_segments()


def big_trace_task(payload):
    return {"index": payload["index"], "trace": make_trace(2000)}


def small_task(payload):
    return {"index": payload["index"]}


def crash_once_big_trace_task(payload):
    marker = os.path.join(payload["dir"], f"crashed-{payload['index']}")
    if (multiprocessing.parent_process() is not None
            and not os.path.exists(marker)):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("x\n")
        os._exit(13)
    return {"index": payload["index"], "trace": make_trace(2000)}
