"""Scheduler placement and stealing properties."""

from __future__ import annotations

import pytest

from repro.parallel import PoolTask, StealScheduler

pytestmark = pytest.mark.parallel_smoke


def _noop(payload):
    return payload


def make(task_id, cost=1.0, affinity=None):
    return PoolTask(task_id, _noop, None, cost=cost, affinity=affinity)


class TestAssignment:
    def test_affinity_groups_stay_on_one_worker(self):
        tasks = [make(f"wc:{i}", cost=2.0, affinity="wc") for i in range(3)]
        tasks += [make(f"art:{i}", cost=2.0, affinity="art") for i in range(3)]
        sched = StealScheduler(tasks, 2)
        owners = {sched.owner[t.id] for t in tasks if t.affinity == "wc"}
        assert len(owners) == 1
        owners = {sched.owner[t.id] for t in tasks if t.affinity == "art"}
        assert len(owners) == 1

    def test_longest_group_is_placed_first_on_least_loaded(self):
        heavy = [make(f"h{i}", cost=10.0, affinity="heavy") for i in range(2)]
        light = [make(f"l{i}", cost=1.0, affinity="light") for i in range(2)]
        sched = StealScheduler(light + heavy, 2)
        # Heavy group lands on one worker, light on the other: loads
        # 20 vs 2 beats 22 vs 0.
        assert sched.owner["h0"] != sched.owner["l0"]

    def test_within_worker_order_is_descending_cost(self):
        tasks = [make(f"t{i}", cost=float(i), affinity="one")
                 for i in range(5)]
        sched = StealScheduler(tasks, 1)
        order = sched.assigned_order(0)
        costs = [float(t[1:]) for t in order]
        assert costs == sorted(costs, reverse=True)

    def test_deterministic_assignment(self):
        tasks = [make(f"t{i}", cost=float(i % 4), affinity=f"g{i % 3}")
                 for i in range(12)]
        a = StealScheduler(tasks, 3)
        b = StealScheduler(tasks, 3)
        for worker in range(3):
            assert a.assigned_order(worker) == b.assigned_order(worker)


class TestStealing:
    def test_idle_worker_steals_from_the_back(self):
        tasks = [make(f"t{i}", cost=float(5 - i), affinity="all")
                 for i in range(5)]
        sched = StealScheduler(tasks, 2)
        # All tasks land on one worker; the other must steal.
        loaded = sched.owner["t0"]
        idle = 1 - loaded
        victim_order = sched.assigned_order(loaded)
        task, stolen = sched.next_for(idle)
        assert stolen
        assert task.id == victim_order[-1]  # cheapest, least affine
        assert sched.steals[idle] == 1

    def test_no_steal_when_nothing_pending(self):
        sched = StealScheduler([make("t0")], 2)
        owner = sched.owner["t0"]
        task, stolen = sched.next_for(owner)
        assert not stolen
        assert sched.next_for(1 - owner) is None
        assert sched.next_for(owner) is None

    def test_every_task_dispatched_exactly_once(self):
        tasks = [make(f"t{i}", cost=float(i % 7), affinity=f"g{i % 4}")
                 for i in range(40)]
        sched = StealScheduler(tasks, 3)
        seen = []
        worker = 0
        while True:
            item = sched.next_for(worker)
            if item is None and sched.pending() == 0:
                break
            if item is not None:
                seen.append(item[0].id)
            worker = (worker + 1) % 3
        assert sorted(seen) == sorted(t.id for t in tasks)

    def test_clear_pending_drops_everything(self):
        sched = StealScheduler([make(f"t{i}") for i in range(6)], 2)
        assert sched.clear_pending() == 6
        assert sched.pending() == 0
        assert sched.next_for(0) is None

    def test_requeue_puts_task_back_first(self):
        tasks = [make(f"t{i}", cost=1.0, affinity="g") for i in range(3)]
        sched = StealScheduler(tasks, 1)
        task, _ = sched.next_for(0)
        sched.requeue(task, 0)
        again, stolen = sched.next_for(0)
        assert again.id == task.id
        assert not stolen

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            StealScheduler([], 0)
