"""Cost-model fitting from bench history and cold-start ordering."""

from __future__ import annotations

import json
import os

import pytest

from repro.parallel import CostModel, point_kind

pytestmark = pytest.mark.parallel_smoke


class TestPointKind:
    def test_splits_workload_and_kind(self):
        assert point_kind("wc:dswp-full") == ("wc", "dswp")
        assert point_kind("wc:dswp-half") == ("wc", "dswp")
        assert point_kind("art:base-full") == ("art", "base")
        assert point_kind("mcf:dswp-full-comm10") == ("mcf", "dswp")


class TestColdModel:
    def test_cold_order_prefers_dswp_and_scale(self):
        model = CostModel()
        assert not model.fitted
        assert model.describe() == "cold"
        base = model.estimate("wc", "base", 100)
        dswp = model.estimate("wc", "dswp", 100)
        assert dswp > base
        assert model.estimate("wc", "dswp", 200) > dswp

    def test_estimate_point_uses_spec_fields(self):
        model = CostModel()
        spec = {"id": "wc:dswp-full", "workload": "wc", "kind": "dswp",
                "scale": 50}
        assert model.estimate_point(spec) == model.estimate("wc", "dswp", 50)


class TestFitting:
    def test_fit_normalises_by_scale(self):
        report = {"scale": 100,
                  "point_seconds": {"wc:base-full": 1.0,
                                    "wc:dswp-full": 3.0}}
        model = CostModel.fit([report])
        assert model.fitted
        assert model.estimate("wc", "base", 100) == pytest.approx(1.0)
        assert model.estimate("wc", "dswp", 200) == pytest.approx(6.0)

    def test_unknown_workload_borrows_kind_average(self):
        report = {"scale": 10, "point_seconds": {"wc:dswp-full": 2.0}}
        model = CostModel.fit([report])
        # "art" has no history: it borrows the fitted dswp rate rather
        # than falling back to the unitless cold heuristic.
        assert model.estimate("art", "dswp", 10) == pytest.approx(2.0)

    def test_fit_ignores_garbage_samples(self):
        report = {"scale": 10,
                  "point_seconds": {"wc:base-full": -5.0,
                                    "wc:dswp-full": "soon"}}
        assert not CostModel.fit([report]).fitted

    def test_load_reads_bench_reports(self, tmp_path):
        report = {"scale": 40,
                  "point_seconds": {"wc:base-full": 0.4,
                                    "wc:dswp-full": 1.2}}
        with open(tmp_path / "BENCH_fig9a.json", "w") as fh:
            json.dump(report, fh)
        with open(tmp_path / "BENCH_broken.json", "w") as fh:
            fh.write("{not json")
        model = CostModel.load(str(tmp_path))
        assert model.fitted
        assert "fitted" in model.describe()
        assert model.estimate("wc", "dswp", 40) == pytest.approx(1.2)

    def test_load_of_empty_directory_degrades_to_cold(self, tmp_path):
        model = CostModel.load(str(tmp_path))
        assert not model.fitted
        model = CostModel.load(os.path.join(str(tmp_path), "missing"))
        assert not model.fitted
