"""Worker-pool semantics: parity, crash recovery, accounting.

Everything here must hold on a 1-core container: the pool's guarantees
are about *correctness* (bit-identical results, exact accounting,
always-completes), not about observed wall-clock speedups.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.obs.metrics import MetricsRegistry, parse_metric_key
from repro.parallel import PoolTask, TaskFailed, WorkerPool, worker_arena

pytestmark = pytest.mark.parallel_smoke


def square(payload):
    return {"pid": os.getpid(), "value": payload["x"] * payload["x"]}


def arena_counter(payload):
    arena = worker_arena()
    arena["calls"] = arena.get("calls", 0) + 1
    return {"pid": os.getpid(), "calls": arena["calls"]}


def explode(payload):
    raise ValueError(f"bad payload {payload['x']}")


def crash_once(payload):
    marker = os.path.join(payload["dir"], f"crashed-{payload['x']}")
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("x\n")
        os._exit(13)
    return {"value": payload["x"]}


def crash_always(payload):
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return {"value": payload["x"], "pid": os.getpid()}


def _tasks(n):
    return [PoolTask(f"t{i}", square, {"x": i}, cost=float(i + 1))
            for i in range(n)]


class TestParity:
    def test_parallel_matches_serial_bit_for_bit(self):
        with WorkerPool(1) as serial, WorkerPool(3) as parallel:
            expect = [r.value["value"] for r in serial.run(_tasks(16))]
            got = [r.value["value"] for r in parallel.run(_tasks(16))]
        assert got == expect

    def test_results_come_back_in_task_order(self):
        # Costs descend, so execution order differs from submission
        # order; the returned list must not.
        tasks = list(reversed(_tasks(9)))
        with WorkerPool(2) as pool:
            results = pool.run(tasks)
        assert [r.task.id for r in results] == [t.id for t in tasks]

    def test_work_is_actually_distributed(self):
        with WorkerPool(3) as pool:
            results = pool.run(_tasks(12))
            pids = {r.value["pid"] for r in results}
        assert len(pids) == 3
        assert os.getpid() not in pids

    def test_serial_runs_in_process(self):
        with WorkerPool(1) as pool:
            results = pool.run(_tasks(4))
        assert {r.value["pid"] for r in results} == {os.getpid()}
        assert pool.jobs == 1

    def test_duplicate_task_ids_rejected(self):
        with WorkerPool(1) as pool:
            with pytest.raises(ValueError, match="unique"):
                pool.run([PoolTask("a", square, {"x": 1}),
                          PoolTask("a", square, {"x": 2})])


class TestWarmth:
    def test_workers_stay_warm_across_runs(self):
        # The arena persists for the worker's lifetime: a second
        # pool.run() sees the counts left by the first.
        with WorkerPool(2) as pool:
            first = pool.run([PoolTask(f"a{i}", arena_counter, {})
                              for i in range(4)])
            second = pool.run([PoolTask(f"b{i}", arena_counter, {})
                               for i in range(4)])
        by_pid_max = {}
        for r in first + second:
            pid = r.value["pid"]
            by_pid_max[pid] = max(by_pid_max.get(pid, 0), r.value["calls"])
        # Each worker accumulated across both runs (4 tasks/run over 2
        # workers -> someone reached at least 3 calls).
        assert max(by_pid_max.values()) >= 3

    def test_serial_lane_gets_a_fresh_arena_per_run(self):
        with WorkerPool(1) as pool:
            first = pool.run([PoolTask("a", arena_counter, {})])
            second = pool.run([PoolTask("b", arena_counter, {})])
        assert first[0].value["calls"] == 1
        assert second[0].value["calls"] == 1
        assert "calls" not in worker_arena()


class TestFailures:
    def test_task_exception_raises_task_failed(self):
        with WorkerPool(2) as pool:
            with pytest.raises(TaskFailed, match="bad payload 3"):
                pool.run([PoolTask("t", explode, {"x": 3})])
            # The pool survives a failed run.
            ok = pool.run([PoolTask("t2", square, {"x": 2})])
        assert ok[0].value["value"] == 4

    def test_serial_task_exception_raises_task_failed(self):
        with WorkerPool(1) as pool:
            with pytest.raises(TaskFailed, match="bad payload 9"):
                pool.run([PoolTask("t", explode, {"x": 9})])

    def test_crash_once_is_retried_on_a_fresh_worker(self, tmp_path):
        tasks = [PoolTask(f"c{i}", crash_once, {"x": i, "dir": str(tmp_path)})
                 for i in range(4)]
        with WorkerPool(2) as pool:
            results = pool.run(tasks)
            assert [r.value["value"] for r in results] == [0, 1, 2, 3]
            assert pool.crashes == 4
            assert pool.fallbacks == 0
            assert all(r.attempts == 2 for r in results)
            assert not any(r.degraded for r in results)
            # Respawned workers keep serving.
            again = pool.run([PoolTask("z", square, {"x": 6})])
        assert again[0].value["value"] == 36

    def test_repeated_crashes_degrade_to_driver_execution(self):
        tasks = [PoolTask(f"a{i}", crash_always, {"x": i}) for i in range(3)]
        with WorkerPool(2) as pool:
            results = pool.run(tasks)
        assert [r.value["value"] for r in results] == [0, 1, 2]
        assert all(r.degraded for r in results)
        assert all(r.worker == -1 for r in results)
        # Degraded tasks ran in the driver process itself.
        assert {r.value["pid"] for r in results} == {os.getpid()}
        assert pool.fallbacks == 3

    def test_cancel_stops_handing_out_work(self):
        seen = []

        def cancel(result):
            seen.append(result.task.id)
            return len(seen) >= 3

        with WorkerPool(2) as pool:
            results = pool.run(_tasks(20), cancel=cancel)
        assert 3 <= len(results) < 20


class TestTelemetry:
    def test_pool_metrics_account_for_every_task(self):
        registry = MetricsRegistry()
        with WorkerPool(2, metrics=registry) as pool:
            pool.run(_tasks(10))
        snapshot = registry.snapshot()
        tasks_per_worker = {}
        for key, value in snapshot.items():
            name, labels = parse_metric_key(key)
            if name == "pool.tasks":
                tasks_per_worker[int(labels["worker"])] = value
        assert sum(tasks_per_worker.values()) == 10
        assert snapshot["pool.workers"] == 2
        assert snapshot["pool.crashes"] == 0
        assert snapshot["pool.fallback_tasks"] == 0
        assert snapshot["pool.wall_seconds"] > 0
        for worker in (0, 1):
            util = snapshot[f"pool.utilization{{worker={worker}}}"]
            assert 0.0 <= util <= 1.0

    def test_serial_lane_records_the_same_metric_names(self):
        registry = MetricsRegistry()
        with WorkerPool(1, metrics=registry) as pool:
            pool.run(_tasks(5))
        snapshot = registry.snapshot()
        assert snapshot["pool.tasks{worker=0}"] == 5
        assert snapshot["pool.workers"] == 1
