"""Pool lifecycle hardening: idempotent close, warm(), shared leases.

The service closes the pool from its SIGTERM drain path, which can
race a normal close (or interrupt one mid-flight from a signal
handler).  A second close must be a no-op: re-escalating the
terminate -> kill sequence against workers the first close already
reaped would miscount ``workers_killed`` and could signal reused pids.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.parallel import PoolTask, WorkerPool

pytestmark = pytest.mark.parallel_smoke


def square(payload):
    return {"pid": os.getpid(), "value": payload["x"] * payload["x"]}


def _tasks(n):
    return [PoolTask(f"t{i}", square, {"x": i}) for i in range(n)]


class TestIdempotentClose:
    def test_double_close_is_a_noop(self):
        pool = WorkerPool(2)
        pool.run(_tasks(4))
        pool.close()
        killed, reaped = pool.workers_killed, pool.workers_reaped
        pool.close()
        pool.close()
        assert pool.workers_killed == killed
        assert pool.workers_reaped == reaped

    def test_reentrant_close_mid_flight_returns_immediately(self):
        """A close() that interrupts a close in progress (the signal-
        handler shape) must return instead of re-escalating."""
        pool = WorkerPool(2)
        pool.run(_tasks(2))
        reentered = []
        original = pool._close_impl

        def interrupting_close():
            # Simulates SIGTERM arriving mid-close: the handler calls
            # close() again while the first call is inside the body.
            pool.close()
            reentered.append(True)
            original()

        pool._close_impl = interrupting_close
        pool.close()
        assert reentered == [True]
        assert pool._closed
        # And the pool is genuinely shut down afterwards.
        with pytest.raises(RuntimeError):
            pool.run(_tasks(1))

    def test_concurrent_closers_dont_collide(self):
        pool = WorkerPool(2)
        pool.run(_tasks(2))
        errors = []
        barrier = threading.Barrier(4)

        def closer():
            barrier.wait()
            try:
                pool.close()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert pool._closed

    def test_serial_pool_close_is_also_idempotent(self):
        pool = WorkerPool(1)
        pool.run(_tasks(2))
        pool.close()
        pool.close()


class TestWarm:
    def test_warm_pre_forks_before_first_run(self):
        pool = WorkerPool(2)
        try:
            pool.warm()
            if pool.jobs > 1:
                assert len(pool._workers) == pool.jobs
                pids = {w.process.pid for w in pool._workers}
                results = pool.run(_tasks(8))
                assert {r.value["pid"] for r in results} <= pids
        finally:
            pool.close()

    def test_warm_after_close_raises(self):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(RuntimeError):
            pool.warm()


class TestLease:
    def test_lease_serialises_concurrent_holders(self):
        pool = WorkerPool(2)
        order = []
        lock = threading.Lock()

        def holder(name):
            with pool.lease() as leased:
                with lock:
                    order.append(("enter", name))
                leased.run(_tasks(3))
                with lock:
                    order.append(("exit", name))

        threads = [threading.Thread(target=holder, args=(i,))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        pool.close()
        # Strict nesting: every enter is immediately followed by its
        # own exit (no interleaving between lease holders).
        assert len(order) == 6
        for i in range(0, 6, 2):
            assert order[i][0] == "enter"
            assert order[i + 1] == ("exit", order[i][1])

    def test_lease_on_closed_pool_raises(self):
        pool = WorkerPool(2)
        pool.close()
        with pytest.raises(RuntimeError):
            with pool.lease():
                pass

    def test_lease_is_reentrant_for_its_holder(self):
        pool = WorkerPool(1)
        try:
            with pool.lease() as outer:
                with outer.lease() as inner:
                    results = inner.run(_tasks(2))
            assert [r.value["value"] for r in results] == [0, 1]
        finally:
            pool.close()
