"""Protocol-layer unit tests: validation, canonical keys, payloads."""

from __future__ import annotations

import pytest

from repro.harness.runner import run_experiment
from repro.service.protocol import (
    MAX_IR_BYTES,
    ProtocolError,
    experiment_payload,
    functional_key,
    machine_from_spec,
    parse_request,
    request_key,
)
from repro.workloads.registry import get_workload

IR_TEXT = """
func f entry=entry
entry:
    mov r1 = 0
    jmp loop
loop:
    add r1 = r1, 1
    cmp.lt p1 = r1, 5
    br p1, loop, done
done:
    ret
"""


def test_workload_request_minimal():
    req = parse_request({"workload": "wc"})
    assert req.kind == "workload"
    assert req.workload == "wc"
    assert req.check is True
    assert req.machine == {"core": "full", "comm_latency": 1,
                           "queue_size": 32}


def test_request_key_canonical_across_field_order_and_tenant():
    a = parse_request({"workload": "wc", "machine": {"comm_latency": 5}})
    b = parse_request({"machine": {"comm_latency": 5, "core": "full",
                                   "queue_size": 32},
                       "workload": "wc", "tenant": "someone-else"})
    assert request_key(a) == request_key(b)
    assert functional_key(a) == functional_key(b)


def test_functional_key_ignores_machine_but_not_scale():
    base = parse_request({"workload": "wc", "scale": 50})
    other_machine = parse_request({"workload": "wc", "scale": 50,
                                   "machine": {"comm_latency": 10}})
    other_scale = parse_request({"workload": "wc", "scale": 51})
    assert functional_key(base) == functional_key(other_machine)
    assert request_key(base) != request_key(other_machine)
    assert functional_key(base) != functional_key(other_scale)


@pytest.mark.parametrize("body,fragment", [
    ("not a dict", "JSON object"),
    ({}, "exactly one of"),
    ({"workload": "wc", "ir": IR_TEXT, "loop_header": "loop"},
     "exactly one of"),
    ({"workload": "wc", "typo_field": 1}, "unknown request keys"),
    ({"workload": "wc", "machine": {"cores": 4}}, "unknown machine keys"),
    ({"workload": "wc", "machine": {"core": "quad"}}, "machine.core"),
    ({"workload": "wc", "machine": {"comm_latency": 0}}, "comm_latency"),
    ({"workload": "wc", "machine": {"queue_size": -1}}, "queue_size"),
    ({"workload": "wc", "scale": 0}, "scale"),
    ({"workload": "wc", "scale": "big"}, "scale"),
    ({"workload": "wc", "check": "yes"}, "check must be a boolean"),
    ({"workload": "wc", "tenant": ""}, "tenant"),
    ({"workload": "wc", "tenant": "x" * 65}, "tenant"),
    ({"workload": "wc", "loop_header": "loop"}, "only applies to IR"),
    ({"workload": ""}, "workload"),
    ({"ir": IR_TEXT}, "loop_header"),
    ({"ir": "   ", "loop_header": "loop"}, "ir must be"),
    ({"ir": IR_TEXT, "loop_header": "loop", "check": True},
     "check=true is not supported"),
    ({"ir": IR_TEXT, "loop_header": "loop", "memory": {"nope": 1}},
     "memory address"),
    ({"ir": IR_TEXT, "loop_header": "loop", "memory": {"-8": 1}},
     "negative"),
    ({"ir": IR_TEXT, "loop_header": "loop", "memory": {"8": "x"}},
     "must be an integer"),
])
def test_rejections_are_400s_with_clear_detail(body, fragment):
    with pytest.raises(ProtocolError) as info:
        parse_request(body)
    assert info.value.status == 400
    assert fragment in info.value.detail


def test_oversized_ir_is_413():
    big = IR_TEXT + "# pad\n" * (MAX_IR_BYTES // 6)
    with pytest.raises(ProtocolError) as info:
        parse_request({"ir": big, "loop_header": "loop"})
    assert info.value.status == 413


def test_ir_request_canonicalises_memory_addresses():
    a = parse_request({"ir": IR_TEXT, "loop_header": "loop",
                       "memory": {"16": 3, "0x20": 4}})
    b = parse_request({"ir": IR_TEXT, "loop_header": "loop",
                       "memory": {32: 4, 16: 3}})
    assert a.memory == {16: 3, 32: 4}
    assert request_key(a) == request_key(b)
    assert a.check is False


def test_machine_from_spec_round_trip():
    req = parse_request({"workload": "wc",
                         "machine": {"core": "half", "comm_latency": 5,
                                     "queue_size": 8}})
    machine = machine_from_spec(req.machine)
    assert machine.core.issue_width == 3
    assert machine.comm_latency == 5
    assert machine.queue_size == 8


def test_experiment_payload_carries_fingerprints():
    result = run_experiment(get_workload("wc"), scale=40)
    payload = experiment_payload(result)
    assert payload["workload"] == "wc"
    fps = payload["fingerprints"]
    assert len(fps["baseline"]) == 64
    assert len(fps["pipeline"]) == 64
    assert fps["baseline"] != fps["pipeline"]
    # Deterministic: the same experiment fingerprints identically.
    again = experiment_payload(run_experiment(get_workload("wc"), scale=40))
    assert again == payload
