"""serve_smoke: end-to-end campaign against a real ``repro serve`` daemon.

One daemon subprocess on an ephemeral port, one mixed campaign, four
gates (the PR's acceptance criteria):

(a) every served payload is bit-identical to the same request run
    through :func:`~repro.harness.runner.run_experiment` in-process;
(b) 16 concurrent clients with 4 duplicate requests coalesce: exactly
    12 unique configs are dispatched, the 4 duplicates are absorbed by
    coalescing or the response cache, and the configs batch into far
    fewer pool tasks than requests;
(c) SIGTERM drains gracefully: the in-flight request finishes and is
    answered, new submits get 503 while draining, and the daemon
    exits 0;
(d) ``/metrics`` exposes the service counters and the pool's fabric
    telemetry, consistent with the traffic actually sent.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.harness.runner import run_experiment
from repro.service.client import ReproClient, ServiceError
from repro.service.protocol import (
    experiment_payload,
    machine_from_spec,
    parse_request,
)
from repro.workloads.registry import get_workload

pytestmark = pytest.mark.serve_smoke

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")
WORKLOAD = "wc"
SCALE = 120
#: The drain-phase request: ~8 s of simulation, comfortably in flight
#: when SIGTERM lands.
DRAIN_SCALE = 120_000

#: 12 unique machine configs; the campaign adds 4 duplicates of the
#: first four.
UNIQUE_CONFIGS = [
    {"comm_latency": latency, "queue_size": size}
    for latency in (1, 2, 5, 10)
    for size in (8, 16, 32)
]
CAMPAIGN = UNIQUE_CONFIGS + UNIQUE_CONFIGS[:4]
QUOTA_BURST = 4


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    env = {**os.environ, "PYTHONPATH": SRC_DIR}
    cache_dir = str(tmp_path_factory.mktemp("serve-cache"))
    proc = None
    for _ in range(3):  # the free-port probe can race another process
        port = _free_port()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", str(port), "--jobs", "2",
             "--batch-window", "0.25", "--cache-dir", cache_dir,
             "--quota-rate", "0.05", "--quota-burst", str(QUOTA_BURST),
             "--max-inflight", "64"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        banner = proc.stdout.readline()
        if "listening" in banner:
            break
        proc.wait(timeout=10)
    else:
        pytest.fail("daemon failed to boot on three ports")
    yield {"proc": proc, "port": port}
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


def _client(port: int, tenant: str) -> ReproClient:
    return ReproClient(port=port, timeout=300, tenant=tenant)


def _body(config: dict, scale: int = SCALE) -> dict:
    return {"workload": WORKLOAD, "scale": scale, "machine": dict(config)}


def test_campaign_coalesces_and_serves_bit_identical_results(daemon):
    port = daemon["port"]
    n = len(CAMPAIGN)
    outcomes: list = [None] * n
    barrier = threading.Barrier(n)

    def client_thread(i: int) -> None:
        barrier.wait()
        # Four tenants, four requests each: inside the quota burst.
        client = _client(port, tenant=f"fleet-{i % 4}")
        try:
            outcomes[i] = client.submit(_body(CAMPAIGN[i]))
        except BaseException as exc:  # noqa: BLE001
            outcomes[i] = exc

    threads = [threading.Thread(target=client_thread, args=(i,))
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)

    failures = [o for o in outcomes if not isinstance(o, dict)]
    assert not failures, f"client failures: {failures!r}"
    assert all(o["status"] == "ok" for o in outcomes)

    # (b) the 4 duplicate pairs got identical bytes back.
    for dup in range(4):
        original = json.dumps(outcomes[dup]["payload"], sort_keys=True)
        duplicate = json.dumps(outcomes[12 + dup]["payload"],
                               sort_keys=True)
        assert original == duplicate

    # (a) bit-identity against in-process run_experiment, through the
    # same payload serialisation, for a sample of the campaign.
    for index in (0, 5, 11):
        request = parse_request(_body(CAMPAIGN[index]))
        reference = experiment_payload(run_experiment(
            get_workload(WORKLOAD),
            machine=machine_from_spec(request.machine),
            scale=SCALE))
        assert (json.dumps(reference, sort_keys=True)
                == json.dumps(outcomes[index]["payload"], sort_keys=True)), \
            f"served result diverged from in-process run for {CAMPAIGN[index]}"

    # (b) + (d) metric consistency: 16 admitted requests, 12 unique
    # configs dispatched, the 4 duplicates absorbed, and far fewer
    # pool tasks than requests (functional-group batching).
    metrics = _client(port, tenant="metrics").metrics()
    snap = metrics["metrics"]
    fleet_requests = sum(v for k, v in snap.items()
                         if k.startswith("service.requests{tenant=fleet-"))
    assert fleet_requests == n
    assert snap["service.configs_dispatched"] == len(UNIQUE_CONFIGS)
    absorbed = (snap.get("service.coalesced", 0)
                + snap.get("service.response_cache_hits", 0))
    assert absorbed == 4
    tasks = snap["service.tasks_dispatched"]
    assert 1 <= tasks <= 4, \
        f"expected the 12 configs to batch into a few tasks, got {tasks}"
    # Fabric telemetry rode along in the same registry.
    assert any(key.startswith("pool.") for key in snap)
    assert metrics["pool"]["jobs"] == 2
    assert metrics["status"]["status"] == "ok"
    assert metrics["cache"]["object.response.puts"] >= len(UNIQUE_CONFIGS)


def test_quota_exceeded_mid_campaign(daemon):
    port = daemon["port"]
    client = _client(port, tenant="greedy")
    refused = []
    served = 0
    for _ in range(QUOTA_BURST + 3):
        try:
            outcome = client.submit(_body(UNIQUE_CONFIGS[0]))
            assert outcome["status"] == "ok"
            served += 1
        except ServiceError as exc:
            refused.append(exc)
    assert served >= 1
    assert refused, "greedy tenant was never throttled"
    assert all(e.status == 429 and e.code == "quota-exceeded"
               for e in refused)
    assert all(e.retry_after is not None and e.retry_after > 0
               for e in refused)
    snap = _client(port, tenant="metrics").metrics()["metrics"]
    assert snap["service.rejected{reason=quota-exceeded}"] >= len(refused)


def test_sigterm_drains_inflight_and_rejects_new_with_503(daemon):
    port = daemon["port"]
    proc = daemon["proc"]
    result: dict = {}

    def slow_request() -> None:
        client = _client(port, tenant="drain")
        result["outcome"] = client.submit(
            _body({"comm_latency": 3}, scale=DRAIN_SCALE))

    worker = threading.Thread(target=slow_request)
    worker.start()
    # Wait until the slow request is admitted (in flight).
    probe = _client(port, tenant="probe")
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if probe.healthz()["inflight"] >= 1:
            break
        time.sleep(0.02)
    else:
        pytest.fail("slow request never became in-flight")

    proc.send_signal(signal.SIGTERM)

    # (c) while draining, the listener stays open and new submits are
    # refused with 503 draining -- not connection-refused.
    saw_draining = False
    for attempt in range(100):
        try:
            # A fresh tenant each attempt so quota never masks the
            # draining refusal.
            _client(port, tenant=f"probe-{attempt}").submit(
                _body({"comm_latency": 7}, scale=SCALE))
        except ServiceError as exc:
            assert exc.status == 503
            assert exc.code in ("draining", "saturated")
            saw_draining = exc.code == "draining" or saw_draining
            if saw_draining:
                break
        except OSError:
            break  # listener closed: drain already finished
        time.sleep(0.02)
    assert saw_draining, "never saw a 503 draining refusal"

    # The in-flight request still completes and is answered.
    worker.join(timeout=300)
    assert result.get("outcome", {}).get("status") == "ok", \
        f"drained request was dropped: {result!r}"

    assert proc.wait(timeout=120) == 0, "daemon did not exit 0 after drain"
