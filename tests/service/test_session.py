"""Session-level tests: coalescing, batching, caching, drain, errors.

The satellite coverage for concurrent cache readers + coalesced
writers lives here: N clients submitting an identical request must
produce ONE pool task, N identical responses, and metric counts that
add up.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.harness.runner import run_experiment
from repro.service.admission import Draining
from repro.service.protocol import (
    experiment_payload,
    machine_from_spec,
    parse_request,
)
from repro.service.session import ServiceSession
from repro.workloads.registry import get_workload

SCALE = 40


@pytest.fixture
def session():
    sess = ServiceSession(jobs=1, batch_window=0.05)
    yield sess
    sess.drain(timeout=30)


def _request(comm_latency: int = 1, scale: int = SCALE, **extra):
    return parse_request({"workload": "wc", "scale": scale,
                          "machine": {"comm_latency": comm_latency},
                          **extra})


def test_identical_requests_coalesce_to_one_task(session):
    n = 6
    futures = [session.submit(_request()) for _ in range(n)]
    outcomes = [f.result(timeout=120) for f in futures]
    assert all(o["status"] == "ok" for o in outcomes)
    blobs = {json.dumps(o["payload"], sort_keys=True) for o in outcomes}
    assert len(blobs) == 1, "coalesced clients must get identical bytes"

    snap = session.metrics.snapshot()
    assert snap["service.requests{tenant=default}"] == n
    # Duplicates either joined the in-flight entry or (when they landed
    # after it resolved) hit the response cache; between them all n-1
    # are accounted for, and only one task reached the pool.
    coalesced = snap.get("service.coalesced", 0)
    cache_hits = snap.get("service.response_cache_hits", 0)
    assert coalesced + cache_hits == n - 1
    assert snap["service.tasks_dispatched"] == 1
    assert snap["service.configs_dispatched"] == 1
    assert all(o["request_key"] == outcomes[0]["request_key"]
               for o in outcomes)


def test_concurrent_submitters_across_threads(session):
    n = 8
    outcomes: list = [None] * n
    barrier = threading.Barrier(n)

    def client(i: int) -> None:
        barrier.wait()
        future = session.submit(_request())
        outcomes[i] = future.result(timeout=120)

    threads = [threading.Thread(target=client, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert all(o is not None and o["status"] == "ok" for o in outcomes)
    assert len({json.dumps(o["payload"], sort_keys=True)
                for o in outcomes}) == 1
    snap = session.metrics.snapshot()
    assert (snap.get("service.coalesced", 0)
            + snap.get("service.response_cache_hits", 0)) == n - 1
    assert snap["service.tasks_dispatched"] == 1


def test_functional_group_batches_configs_into_one_task(session):
    futures = [session.submit(_request(comm_latency=c)) for c in (1, 5, 10)]
    outcomes = [f.result(timeout=120) for f in futures]
    assert all(o["status"] == "ok" for o in outcomes)
    cycles = [o["payload"]["pipeline"]["cycles"] for o in outcomes]
    assert cycles[0] < cycles[1] < cycles[2], \
        "higher comm latency must cost cycles"
    snap = session.metrics.snapshot()
    assert snap["service.tasks_dispatched"] == 1
    assert snap["service.configs_dispatched"] == 3


def test_served_payload_is_bit_identical_to_in_process(session):
    req = _request(comm_latency=5)
    outcome = session.submit(req).result(timeout=120)
    assert outcome["status"] == "ok"
    reference = experiment_payload(run_experiment(
        get_workload("wc"), machine=machine_from_spec(req.machine),
        scale=SCALE))
    assert (json.dumps(outcome["payload"], sort_keys=True)
            == json.dumps(reference, sort_keys=True))


def test_response_cache_serves_repeats_without_dispatch(session):
    first = session.submit(_request()).result(timeout=120)
    assert first["status"] == "ok"
    second = session.submit(_request()).result(timeout=120)
    assert second["status"] == "ok"
    assert second["cached"] is True
    assert (json.dumps(first["payload"], sort_keys=True)
            == json.dumps(second["payload"], sort_keys=True))
    snap = session.metrics.snapshot()
    assert snap["service.tasks_dispatched"] == 1
    assert snap["service.response_cache_hits"] == 1


def test_response_cache_persists_across_sessions(tmp_path):
    cache_dir = str(tmp_path / "svc")
    first = ServiceSession(jobs=1, batch_window=0.02, cache_dir=cache_dir)
    try:
        a = first.submit(_request()).result(timeout=120)
    finally:
        first.drain(timeout=30)
    second = ServiceSession(jobs=1, batch_window=0.02, cache_dir=cache_dir)
    try:
        b = second.submit(_request()).result(timeout=120)
        assert b["cached"] is True
        assert (json.dumps(a["payload"], sort_keys=True)
                == json.dumps(b["payload"], sort_keys=True))
        assert second.metrics.snapshot().get(
            "service.tasks_dispatched", 0) == 0
    finally:
        second.drain(timeout=30)


def test_unknown_workload_is_an_error_outcome_not_a_crash(session):
    bad = parse_request({"workload": "no-such-workload"})
    outcome = session.submit(bad).result(timeout=120)
    assert outcome["status"] == "error"
    assert "no-such-workload" in outcome.get("detail", "")
    assert session.incidents, "group failures are recorded as incidents"
    # The session is still healthy afterwards.
    good = session.submit(_request()).result(timeout=120)
    assert good["status"] == "ok"


def test_error_in_one_group_does_not_poison_the_batch(session):
    bad = parse_request({"workload": "no-such-workload"})
    good = _request()
    futures = [session.submit(bad), session.submit(good)]
    outcomes = [f.result(timeout=120) for f in futures]
    assert outcomes[0]["status"] == "error"
    assert outcomes[1]["status"] == "ok"


def test_drain_finishes_inflight_then_refuses(session):
    future = session.submit(_request())
    assert session.drain(timeout=60)
    assert future.result(timeout=1)["status"] == "ok"
    with pytest.raises(Draining):
        session.submit(_request())
    assert session.status()["status"] == "draining"
    # Idempotent.
    assert session.drain(timeout=5)


def test_ir_request_round_trips(session):
    ir = """
func f entry=entry
entry:
    mov r1 = 0
    mov r2 = 0
    jmp loop
loop:
    add r2 = r2, r1
    add r1 = r1, 1
    cmp.lt p1 = r1, 20
    br p1, loop, done
done:
    ret
"""
    req = parse_request({"ir": ir, "loop_header": "loop"})
    outcome = session.submit(req).result(timeout=120)
    assert outcome["status"] == "ok", outcome
    payload = outcome["payload"]
    assert payload["workload"] == "ir:loop"
    assert payload["baseline"]["cycles"] > 0
