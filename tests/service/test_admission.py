"""Admission-control unit tests (fake clock, no sleeping)."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.service.admission import (
    AdmissionController,
    Draining,
    QuotaExceeded,
    Saturated,
    TokenBucket,
)


class Clock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def test_token_bucket_burst_then_refill():
    clock = Clock()
    bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
    assert bucket.try_take()
    assert bucket.try_take()
    assert not bucket.try_take()
    assert bucket.wait_time() == pytest.approx(1.0)
    clock.now += 0.5
    assert not bucket.try_take()
    clock.now += 0.5
    assert bucket.try_take()


def test_token_bucket_caps_at_burst():
    clock = Clock()
    bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
    clock.now += 100.0
    assert bucket.try_take()
    assert bucket.try_take()
    assert not bucket.try_take()


def test_zero_rate_disables_quota():
    bucket = TokenBucket(rate=0.0, burst=1.0, clock=Clock())
    assert all(bucket.try_take() for _ in range(100))
    assert bucket.wait_time() == 0.0


def test_saturation_then_release():
    ctrl = AdmissionController(max_inflight=2, clock=Clock())
    ctrl.admit("a")
    ctrl.admit("b")
    with pytest.raises(Saturated) as info:
        ctrl.admit("c")
    assert info.value.status == 503
    ctrl.release()
    ctrl.admit("c")
    assert ctrl.inflight == 2


def test_quota_is_per_tenant():
    clock = Clock()
    ctrl = AdmissionController(max_inflight=100, quota_rate=1.0,
                               quota_burst=1.0, clock=clock)
    ctrl.admit("alpha")
    with pytest.raises(QuotaExceeded) as info:
        ctrl.admit("alpha")
    assert info.value.status == 429
    assert info.value.retry_after > 0
    # A different tenant has its own bucket.
    ctrl.admit("beta")
    clock.now += 1.0
    ctrl.admit("alpha")


def test_saturation_wins_over_quota():
    ctrl = AdmissionController(max_inflight=1, quota_rate=1.0,
                               quota_burst=1.0, clock=Clock())
    ctrl.admit("t")
    with pytest.raises(Saturated):
        ctrl.admit("t")


def test_draining_refuses_everything():
    ctrl = AdmissionController(max_inflight=10, clock=Clock())
    ctrl.admit("t")
    ctrl.start_draining()
    with pytest.raises(Draining) as info:
        ctrl.admit("t")
    assert info.value.status == 503
    # The slot admitted before the drain still releases normally.
    ctrl.release()
    assert ctrl.wait_idle(timeout=0.1)


def test_release_without_admit_is_an_error():
    ctrl = AdmissionController(clock=Clock())
    with pytest.raises(RuntimeError):
        ctrl.release()


def test_rejections_and_inflight_are_counted():
    metrics = MetricsRegistry()
    ctrl = AdmissionController(max_inflight=1, quota_rate=1.0,
                               quota_burst=1.0, metrics=metrics,
                               clock=Clock())
    ctrl.admit("t")
    for _ in range(2):
        with pytest.raises(Saturated):
            ctrl.admit("t")
    ctrl.release()
    with pytest.raises(QuotaExceeded):
        ctrl.admit("t")
    snap = metrics.snapshot()
    assert snap["service.rejected{reason=saturated}"] == 2
    assert snap["service.rejected{reason=quota-exceeded}"] == 1
    assert snap["service.inflight"] == 0


def test_max_inflight_must_be_positive():
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=0)
