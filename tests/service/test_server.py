"""HTTP front-end integration tests (in-process daemon, real sockets).

The daemon runs its asyncio loop on a background thread; the tests
talk to it through :class:`ReproClient` and raw ``http.client`` calls,
covering routing, protocol errors, trace envelopes, streaming,
admission refusals and the drain path.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.obs import TraceEnvelope
from repro.service.client import ReproClient, ServiceError
from repro.service.server import ReproServer
from repro.service.session import ServiceSession

SCALE = 40


class Daemon:
    """A live server on an ephemeral port, loop on a daemon thread."""

    def __init__(self, **session_kwargs) -> None:
        session_kwargs.setdefault("jobs", 1)
        session_kwargs.setdefault("batch_window", 0.02)
        self.session = ServiceSession(**session_kwargs)
        self.server = ReproServer(self.session, port=0)
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(timeout=10), "server failed to start"

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        await self.server.start()
        self._ready.set()
        await self.server.run()

    @property
    def port(self) -> int:
        return self.server.port

    def client(self, **kwargs) -> ReproClient:
        kwargs.setdefault("timeout", 60)
        return ReproClient(port=self.port, **kwargs)

    def stop(self) -> None:
        future = asyncio.run_coroutine_threadsafe(self.server.drain(),
                                                  self.loop)
        future.result(timeout=60)
        self._thread.join(timeout=10)


@pytest.fixture
def daemon():
    d = Daemon()
    yield d
    d.stop()


def test_healthz_and_unknown_route(daemon):
    health = daemon.client().healthz()
    assert health["status"] == "ok"
    assert health["workers"] == 1
    conn = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=10)
    try:
        conn.request("GET", "/nope")
        response = conn.getresponse()
        assert response.status == 404
        body = json.loads(response.read())
        assert "routes" in body["detail"]
    finally:
        conn.close()


def test_submit_and_metrics_consistency(daemon):
    client = daemon.client()
    outcome = client.submit({"workload": "wc", "scale": SCALE})
    assert outcome["status"] == "ok"
    assert outcome["payload"]["workload"] == "wc"
    assert "trace" in outcome

    metrics = client.metrics()
    snap = metrics["metrics"]
    assert snap["service.requests{tenant=default}"] == 1
    assert snap["service.tasks_dispatched"] == 1
    assert metrics["pool"]["jobs"] == 1
    assert metrics["status"]["status"] == "ok"


def test_bad_json_and_protocol_errors_are_http_400(daemon):
    conn = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=10)
    try:
        conn.request("POST", "/v1/experiments", body=b"{nope",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 400
        assert json.loads(response.read())["error"] == "bad-json"
    finally:
        conn.close()
    with pytest.raises(ServiceError) as info:
        daemon.client().submit({"workload": "wc", "bogus": 1})
    assert info.value.status == 400
    assert info.value.code == "unknown-field"


def test_get_on_experiments_is_405(daemon):
    conn = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=10)
    try:
        conn.request("GET", "/v1/experiments")
        assert conn.getresponse().status == 405
    finally:
        conn.close()


def test_trace_envelope_joins_callers_trace(daemon):
    envelope = TraceEnvelope()
    outcome = daemon.client().submit({"workload": "wc", "scale": SCALE},
                                     envelope=envelope)
    trace = outcome["trace"]
    assert trace["trace_id"] == envelope.trace_id
    assert trace["parent_span_id"] == envelope.span_id
    assert trace["span_id"] != envelope.span_id
    assert trace["request_id"].startswith("req-")


def test_streaming_events_end_with_done(daemon):
    events = list(daemon.client().submit_stream(
        {"workload": "wc", "scale": SCALE,
         "machine": {"comm_latency": 2}}))
    kinds = [e.get("event") for e in events]
    assert kinds[-1] == "done"
    assert "result" in kinds
    done = events[-1]
    assert done["status"] == "ok"
    assert done["payload"]["workload"] == "wc"
    assert all("trace" in e for e in events)


def test_quota_exceeded_is_429_with_retry_after():
    daemon = Daemon(quota_rate=0.001, quota_burst=1.0)
    try:
        client = daemon.client(tenant="greedy")
        assert client.submit({"workload": "wc",
                              "scale": SCALE})["status"] == "ok"
        with pytest.raises(ServiceError) as info:
            client.submit({"workload": "wc", "scale": SCALE,
                           "machine": {"comm_latency": 9}})
        assert info.value.status == 429
        assert info.value.code == "quota-exceeded"
        assert info.value.retry_after and info.value.retry_after > 0
        # Another tenant is unaffected.
        other = daemon.client(tenant="patient")
        assert other.submit({"workload": "wc",
                             "scale": SCALE})["status"] == "ok"
    finally:
        daemon.stop()


def test_drain_serves_503_until_listener_closes(daemon):
    client = daemon.client()
    assert client.submit({"workload": "wc", "scale": SCALE})["status"] == "ok"
    # Flip the session to draining without closing the listener yet.
    daemon.session.admission.start_draining()
    assert client.healthz()["status"] == "draining"
    with pytest.raises(ServiceError) as info:
        client.submit({"workload": "wc", "scale": SCALE,
                       "machine": {"queue_size": 8}})
    assert info.value.status == 503
    assert info.value.code == "draining"
    assert info.value.retry_after is not None
