"""Tests for the metrics registry."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry, Series


class TestIdentity:
    def test_labels_sorted_into_key(self):
        registry = MetricsRegistry()
        registry.counter("interp.produce_waits", thread=0, queue=3).inc()
        assert "interp.produce_waits{queue=3,thread=0}" in registry
        # Label order must not matter.
        registry.counter("interp.produce_waits", queue=3, thread=0).inc()
        snap = registry.snapshot()
        assert snap["interp.produce_waits{queue=3,thread=0}"] == 2

    def test_unlabelled_key_is_bare_name(self):
        registry = MetricsRegistry()
        registry.counter("fuzz.cases").inc(5)
        assert registry.snapshot() == {"fuzz.cases": 5}

    def test_hostile_label_values_sanitised(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits", kind="a,b={c}").inc()
        (key,) = registry.snapshot()
        assert key == "cache.hits{kind=a_b__c_}"

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("sim.cycles")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("sim.cycles")


class TestCounterGaugeInfo:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("fuzz.runs")
        counter.inc()
        counter.inc(9)
        assert counter.to_value() == 10
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("sim.ipc", core=0)
        gauge.set(1.5)
        gauge.set(0.5)
        assert gauge.to_value() == 0.5

    def test_info_stringifies(self):
        registry = MetricsRegistry()
        registry.info("provenance.bench_scale").set(800)
        assert registry.snapshot() == {"provenance.bench_scale": "800"}


class TestHistogram:
    def test_buckets_fill_by_upper_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sim.stall_duration", bounds=(1, 4, 16))
        for value in (1, 2, 3, 20):
            hist.observe(value)
        snap = hist.to_value()
        assert snap["count"] == 4
        assert snap["sum"] == 26.0
        assert snap["buckets"] == {"le_1": 1, "le_4": 2, "le_16": 0, "inf": 1}

    def test_unsorted_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="sorted"):
            registry.histogram("bad", bounds=(4, 1))


class TestSeries:
    def test_decimation_bounds_memory(self):
        series = Series(max_points=8)
        for t in range(1000):
            series.append(t, t * 2)
        assert len(series.points) <= 8
        # Coverage spans the run, not just its head.
        assert series.points[0][0] == 0
        assert series.points[-1][0] >= 500

    def test_short_series_kept_verbatim(self):
        series = Series(max_points=512)
        for t in range(10):
            series.append(t, t)
        assert series.to_value() == [[t, t] for t in range(10)]

    def test_min_points_validated(self):
        with pytest.raises(ValueError, match="max_points"):
            Series(max_points=1)


class TestExportFormats:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(3)
        registry.gauge("sim.cycles").set(100)
        registry.histogram("sim.stall_duration", bounds=(2,),
                           core=0).observe(1)
        registry.series("sim.queue_occupancy", queue=0).append(5, 2)
        registry.info("provenance.git_commit").set("abc123")
        return registry

    def test_snapshot_roundtrips_through_json(self):
        registry = self._registry()
        snap = json.loads(registry.to_json())
        assert snap["cache.hits"] == 3
        assert snap["sim.cycles"] == 100
        assert snap["sim.stall_duration{core=0}"]["buckets"]["le_2"] == 1
        assert snap["sim.queue_occupancy{queue=0}"] == [[5, 2]]
        assert snap["provenance.git_commit"] == "abc123"

    def test_csv_one_row_per_field(self):
        lines = self._registry().to_csv().strip().splitlines()
        assert lines[0] == "metric,type,field,value"
        assert "cache.hits,counter,,3" in lines
        assert "sim.cycles,gauge,,100" in lines
        assert "sim.stall_duration{core=0},histogram,le_2,1" in lines
        assert "sim.queue_occupancy{queue=0},series,5,2" in lines
