"""The ``obs_smoke`` tier: end-to-end observability guardrails.

Two invariants this suite pins down (``make obs-smoke``):

* **Enabled**: a fully observed ``run_experiment`` emits a Chrome
  trace that round-trips through the strict ``trace_event`` schema
  validator, with one named track per pipeline thread and
  produce->consume flow arrows between stages.
* **Disabled**: observing nothing is free -- the null observers record
  nothing, the simulation results are bit-identical to an unobserved
  run, and the disabled-tracer call overhead stays negligible.
"""

import json
import time

import pytest

from repro.harness.runner import run_experiment
from repro.obs import (
    NULL_OBS,
    NULL_TRACER,
    ObsConfig,
    build_chrome_trace,
    validate_chrome_trace,
)
from repro.workloads import get_workload

pytestmark = pytest.mark.obs_smoke

SCALE = 30


@pytest.fixture(scope="module")
def observed():
    obs = ObsConfig.enabled()
    result = run_experiment(get_workload("listtraverse"), scale=SCALE,
                            obs=obs)
    return obs, result


class TestEnabledTrace:
    def test_trace_validates_with_stage_tracks_and_flows(self, observed):
        obs, result = observed
        payload = build_chrome_trace(tracer=obs.tracer,
                                     sim=result.dswp_sim,
                                     base_sim=result.base_sim)
        count = validate_chrome_trace(payload)
        assert count == len(payload["traceEvents"])

        events = payload["traceEvents"]
        pipeline_tracks = [
            e for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["pid"] == 0  # CYCLE_PID
        ]
        assert len(pipeline_tracks) >= len(result.dswp_sim.cores) >= 2
        assert any(e["ph"] == "s" for e in events), "no flow starts"
        assert any(e["ph"] == "f" for e in events), "no flow finishes"
        assert any(e["ph"] == "B" for e in events), "no harness spans"

    def test_trace_roundtrips_through_json(self, observed):
        obs, result = observed
        payload = build_chrome_trace(tracer=obs.tracer,
                                     sim=result.dswp_sim,
                                     base_sim=result.base_sim)
        reloaded = json.loads(json.dumps(payload))
        assert validate_chrome_trace(reloaded) == len(payload["traceEvents"])

    def test_metrics_cover_every_domain_in_play(self, observed):
        obs, _ = observed
        snapshot = obs.metrics.snapshot()
        assert snapshot["sim.cycles"] > 0
        assert any(k.startswith("interp.steps") for k in snapshot)
        assert any(k.startswith("sim.issue_utilization") for k in snapshot)
        assert any(k.startswith("sim.occupancy_bucket") for k in snapshot)

    def test_harness_spans_are_closed(self, observed):
        obs, _ = observed
        assert obs.tracer.open_spans() == []


class TestDisabledIsFree:
    def test_results_bit_identical_with_and_without_observers(self):
        workload = get_workload("listtraverse")
        plain = run_experiment(workload, scale=SCALE)
        nulled = run_experiment(workload, scale=SCALE, obs=NULL_OBS)
        enabled = run_experiment(workload, scale=SCALE,
                                 obs=ObsConfig.enabled())
        for other in (nulled, enabled):
            assert other.base_sim.cycles == plain.base_sim.cycles
            assert other.dswp_sim.cycles == plain.dswp_sim.cycles
            assert other.dswp_sim.ipcs() == plain.dswp_sim.ipcs()
            assert ([c.instructions_executed for c in other.dswp_sim.cores]
                    == [c.instructions_executed for c in plain.dswp_sim.cores])
            assert ([sorted(c.stall_breakdown().items())
                     for c in other.dswp_sim.cores]
                    == [sorted(c.stall_breakdown().items())
                        for c in plain.dswp_sim.cores])

    def test_null_observers_record_nothing(self):
        run_experiment(get_workload("listtraverse"), scale=SCALE,
                       obs=NULL_OBS)
        assert NULL_TRACER.events == []
        assert NULL_OBS.metrics is None

    def test_disabled_tracer_overhead_guard(self):
        """Disabled-tracer calls must stay in no-op territory.

        Generous bound (well over 100x a realistic per-call cost) so
        the guard only trips on a structural regression -- e.g. someone
        making the disabled path allocate or format strings.
        """
        calls = 50_000
        start = time.perf_counter()
        for i in range(calls):
            NULL_TRACER.instant("tick", index=i)
            NULL_TRACER.complete("slice", ts=i, dur=1)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, (
            f"{2 * calls} disabled-tracer calls took {elapsed:.2f}s")
        assert NULL_TRACER.events == []
