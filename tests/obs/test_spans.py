"""Tests for the structured tracing core."""

import pytest

from repro.obs.spans import (
    CYCLE_PID,
    NULL_TRACER,
    WALL_PID,
    Tracer,
    get_tracer,
    set_tracer,
)


def fake_clock(times):
    """A deterministic clock popping from ``times`` (seconds)."""
    values = list(times)

    def clock():
        return values.pop(0) if len(values) > 1 else values[0]

    return clock


class TestSpans:
    def test_begin_end_emit_balanced_pair(self):
        tracer = Tracer(clock=fake_clock([0.0, 0.001, 0.002]))
        tracer.begin("interp.baseline", workload="queens")
        tracer.end()
        phases = [e["ph"] for e in tracer.events]
        assert phases == ["B", "E"]
        begin, end = tracer.events
        assert begin["name"] == end["name"] == "interp.baseline"
        assert begin["pid"] == end["pid"] == WALL_PID
        assert begin["args"] == {"workload": "queens"}
        assert begin["ts"] == pytest.approx(1000.0)  # 1ms in us
        assert end["ts"] == pytest.approx(2000.0)

    def test_nested_spans_close_inner_first(self):
        tracer = Tracer(clock=fake_clock([0.0]))
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert tracer.open_spans() == ["outer", "inner"]
            assert tracer.open_spans() == ["outer"]
        assert tracer.open_spans() == []
        names = [(e["ph"], e["name"]) for e in tracer.events]
        assert names == [("B", "outer"), ("B", "inner"),
                         ("E", "inner"), ("E", "outer")]

    def test_span_closes_on_exception(self):
        tracer = Tracer(clock=fake_clock([0.0]))
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert tracer.open_spans() == []
        assert [e["ph"] for e in tracer.events] == ["B", "E"]

    def test_end_without_begin_raises(self):
        tracer = Tracer(clock=fake_clock([0.0]))
        with pytest.raises(RuntimeError, match="no open span"):
            tracer.end()

    def test_instant_counter_flow_metadata_shapes(self):
        tracer = Tracer(clock=fake_clock([0.0]))
        tracer.instant("incident", category="resilience", kind="deadlock")
        tracer.complete("execute", ts=10, dur=5, tid=1)
        tracer.counter("occupancy", ts=3, values={"q0": 2})
        tracer.flow_start("q0", "q0:0", ts=1, tid=0)
        tracer.flow_finish("q0", "q0:0", ts=4, tid=1)
        tracer.metadata("thread_name", pid=CYCLE_PID, tid=1, name="core 1")
        by_ph = {e["ph"]: e for e in tracer.events}
        assert by_ph["i"]["s"] == "t"
        assert by_ph["i"]["args"] == {"kind": "deadlock"}
        assert by_ph["X"]["dur"] == 5
        assert by_ph["C"]["args"] == {"q0": 2}
        assert by_ph["s"]["id"] == by_ph["f"]["id"] == "q0:0"
        assert by_ph["f"]["bp"] == "e"
        assert by_ph["M"]["args"] == {"name": "core 1"}

    def test_to_chrome_wraps_events(self):
        tracer = Tracer(clock=fake_clock([0.0]))
        tracer.instant("mark")
        payload = tracer.to_chrome()
        assert payload["traceEvents"] == tracer.events
        assert payload["displayTimeUnit"] == "ms"


class TestDisabledTracer:
    def test_every_method_is_a_noop(self):
        tracer = Tracer(enabled=False)
        tracer.begin("a")
        tracer.end()  # no error: disabled end is a no-op too
        with tracer.span("b", category="x", extra=1):
            tracer.instant("c")
        tracer.complete("d", ts=0, dur=1)
        tracer.counter("e", ts=0, values={"v": 1})
        tracer.flow_start("f", "id", ts=0)
        tracer.flow_finish("f", "id", ts=0)
        tracer.metadata("process_name", pid=0, name="x")
        assert tracer.events == []
        assert tracer.open_spans() == []

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.events == []


class TestProcessWideDefault:
    def test_get_set_roundtrip(self):
        original = get_tracer()
        try:
            mine = Tracer(clock=fake_clock([0.0]))
            previous = set_tracer(mine)
            assert previous is original
            assert get_tracer() is mine
        finally:
            set_tracer(original)
        assert get_tracer() is original
