"""Tests for the Chrome-trace exporter, validator and provenance."""

import json

import pytest

from repro.harness.runner import run_experiment
from repro.machine.config import MachineConfig
from repro.obs import (
    CYCLE_PID,
    ObsConfig,
    TraceValidationError,
    Tracer,
    build_chrome_trace,
    machine_config_digest,
    provenance_from_snapshot,
    record_provenance,
    sim_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def pipeline_sim():
    result = run_experiment(get_workload("listtraverse"), scale=20)
    return result.dswp_sim, result.base_sim


class TestValidator:
    def _ok(self, *events):
        return {"traceEvents": list(events)}

    def test_accepts_minimal_trace(self):
        payload = self._ok(
            {"name": "a", "ph": "X", "ts": 0, "dur": 2, "pid": 0, "tid": 0},
        )
        assert validate_chrome_trace(payload) == 1

    def test_rejects_non_object_top_level(self):
        with pytest.raises(TraceValidationError, match="JSON object"):
            validate_chrome_trace([])

    def test_rejects_unknown_phase(self):
        with pytest.raises(TraceValidationError, match="unknown phase"):
            validate_chrome_trace(self._ok(
                {"name": "a", "ph": "Z", "ts": 0, "pid": 0, "tid": 0}))

    def test_rejects_x_without_dur(self):
        with pytest.raises(TraceValidationError, match="dur"):
            validate_chrome_trace(self._ok(
                {"name": "a", "ph": "X", "ts": 0, "pid": 0, "tid": 0}))

    def test_rejects_negative_ts(self):
        with pytest.raises(TraceValidationError, match="negative ts"):
            validate_chrome_trace(self._ok(
                {"name": "a", "ph": "i", "s": "t", "ts": -1,
                 "pid": 0, "tid": 0}))

    def test_rejects_unbalanced_begin(self):
        with pytest.raises(TraceValidationError, match="unbalanced B/E"):
            validate_chrome_trace(self._ok(
                {"name": "a", "ph": "B", "ts": 0, "pid": 0, "tid": 0}))

    def test_rejects_end_without_begin(self):
        with pytest.raises(TraceValidationError, match="E without matching B"):
            validate_chrome_trace(self._ok(
                {"name": "a", "ph": "E", "ts": 1, "pid": 0, "tid": 0}))

    def test_rejects_unmatched_flow(self):
        with pytest.raises(TraceValidationError, match="flow start"):
            validate_chrome_trace(self._ok(
                {"name": "q0", "ph": "s", "id": "q0:0", "ts": 0,
                 "pid": 0, "tid": 0}))

    def test_rejects_non_numeric_counter(self):
        with pytest.raises(TraceValidationError, match="not numeric"):
            validate_chrome_trace(self._ok(
                {"name": "c", "ph": "C", "ts": 0, "pid": 0, "tid": 0,
                 "args": {"q0": "high"}}))

    def test_aggregates_problems(self):
        events = [{"name": "", "ph": "X", "ts": -1, "pid": "x", "tid": 0}]
        with pytest.raises(TraceValidationError, match="problem"):
            validate_chrome_trace({"traceEvents": events})


class TestSimTraceEvents:
    def test_tracks_slices_and_flows(self, pipeline_sim):
        sim, _ = pipeline_sim
        events = sim_trace_events(sim)
        validate_chrome_trace({"traceEvents": events})
        thread_names = [e for e in events
                        if e["ph"] == "M" and e["name"] == "thread_name"]
        assert len(thread_names) == len(sim.cores)
        assert all(e["pid"] == CYCLE_PID for e in thread_names)
        slices = [e for e in events if e["ph"] == "X"]
        assert {e["tid"] for e in slices} == {c.core_id for c in sim.cores}
        starts = {e["id"]: e for e in events if e["ph"] == "s"}
        finishes = {e["id"]: e for e in events if e["ph"] == "f"}
        assert starts and set(starts) == set(finishes)
        for flow_id, start in starts.items():
            finish = finishes[flow_id]
            # Arrows run producer core -> consumer core, forward in time.
            assert start["tid"] != finish["tid"]
            assert finish["ts"] >= start["ts"]

    def test_execute_slices_cover_the_run(self, pipeline_sim):
        sim, _ = pipeline_sim
        events = sim_trace_events(sim)
        for core in sim.cores:
            spans = [e for e in events
                     if e["ph"] == "X" and e["tid"] == core.core_id]
            covered = sum(e["dur"] for e in spans)
            assert covered == core.last_completion

    def test_flow_cap_samples_evenly(self, pipeline_sim):
        sim, _ = pipeline_sim
        capped = [e for e in sim_trace_events(sim, max_flows=4)
                  if e["ph"] in ("s", "f")]
        assert 0 < len(capped) // 2 <= 5  # cap + kept-last sample


class TestBuildAndWrite:
    def test_combined_trace_validates_and_writes(self, pipeline_sim, tmp_path):
        sim, base_sim = pipeline_sim
        tracer = Tracer(clock=iter([0.0] * 100).__next__)
        with tracer.span("harness.run_experiment"):
            tracer.instant("mark")
        payload = build_chrome_trace(tracer=tracer, sim=sim,
                                     base_sim=base_sim)
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), payload)
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == len(payload["traceEvents"])
        pids = {e["pid"] for e in loaded["traceEvents"]}
        assert len(pids) == 3  # wall clock + pipeline + baseline

    def test_write_rejects_invalid_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        with pytest.raises(TraceValidationError):
            write_chrome_trace(str(path), {"traceEvents": [{"ph": "?"}]})
        assert not path.exists()


class TestProvenance:
    def test_machine_digest_stable_and_sensitive(self):
        a = machine_config_digest(MachineConfig())
        assert a == machine_config_digest(MachineConfig())
        assert a != machine_config_digest(MachineConfig(comm_latency=9))

    def test_record_and_extract(self):
        registry = MetricsRegistry()
        values = record_provenance(registry, machine=MachineConfig(),
                                   extra={"bench_scale": 800})
        assert values["machine_config"] == machine_config_digest(
            MachineConfig())
        assert values["bench_scale"] == "800"
        extracted = provenance_from_snapshot(registry.snapshot())
        assert extracted == values

    def test_write_metrics_csv_and_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(2)
        csv_path = write_metrics(str(tmp_path / "m.csv"), registry)
        assert "cache.hits,counter,,2" in open(csv_path).read()
        json_path = write_metrics(str(tmp_path / "m.json"), registry)
        assert json.load(open(json_path)) == {"cache.hits": 2}


class TestObsConfig:
    def test_default_is_inactive(self):
        assert ObsConfig().active is False

    def test_enabled_builds_both(self):
        obs = ObsConfig.enabled()
        assert obs.tracer.enabled and obs.metrics is not None
        assert obs.active

    def test_partial_configs(self):
        assert ObsConfig.enabled(tracing=False).tracer.enabled is False
        assert ObsConfig.enabled(metrics=False).metrics is None
