"""Scale tests: the pipeline stays linear-time at 10x benchmark sizes,
and results remain correct and consistent with small-scale runs."""

import time

import pytest

from repro.core.program import dswp_program
from repro.harness.runner import run_experiment
from repro.interp.interpreter import run_function
from repro.interp.memory import Memory
from repro.interp.multithread import run_threads
from repro.workloads import get_workload


class TestLargeScale:
    @pytest.mark.parametrize("name", ["mcf", "wc"])
    def test_10x_scale_stays_fast_and_correct(self, name):
        start = time.monotonic()
        result = run_experiment(get_workload(name), scale=5000)
        elapsed = time.monotonic() - start
        assert elapsed < 60, f"{name} at 10x scale took {elapsed:.0f}s"
        assert result.loop_speedup > 1.0

    def test_speedup_stable_across_scales(self):
        small = run_experiment(get_workload("wc"), scale=500)
        large = run_experiment(get_workload("wc"), scale=4000)
        assert abs(large.loop_speedup - small.loop_speedup) < 0.25


class TestThreeThreadProgram:
    def test_whole_program_with_three_stages(self):
        """dswp_program at threads=3: two auxiliary master threads."""
        from tests.core.test_program import two_loop_function

        func, regs = two_loop_function()
        memory = Memory()
        base = memory.store_array([(i * 11 + 4) % 97 for i in range(40)])
        out = memory.alloc(1)
        initial = {regs["n"]: 40, regs["base"]: base, regs["out"]: out}
        seq = run_function(func, memory.clone(), initial_regs=initial)
        result = dswp_program(func, ["h1", "h2"], threads=3)
        assert len(result.program) >= 2
        par = run_threads(result.program, memory.clone(),
                          initial_regs=initial, max_steps=8_000_000)
        assert seq.memory.snapshot() == par.memory.snapshot()
