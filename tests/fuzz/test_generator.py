"""Tests for the random loop generator."""

import pytest

from repro.fuzz.generator import GeneratorConfig, generate_case
from repro.interp.interpreter import run_function
from repro.ir.loops import find_loops
from repro.ir.printer import render_function
from repro.ir.types import Opcode
from repro.ir.verifier import verify_reachable

SEEDS = range(40)


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_functions_verify(seed):
    case = generate_case(seed)
    verify_reachable(case.function)


@pytest.mark.parametrize("seed", SEEDS)
def test_exactly_one_natural_loop(seed):
    case = generate_case(seed)
    loops = find_loops(case.function)
    headers = {loop.header for loop in loops}
    assert case.loop.header in headers
    # The generator promises a single natural loop (nested diamonds are
    # acyclic): the transformation target is unambiguous.
    assert len(loops) == 1


@pytest.mark.parametrize("seed", SEEDS)
def test_sequential_run_terminates(seed):
    case = generate_case(seed)
    result = run_function(case.function, case.fresh_memory(),
                          initial_regs=case.initial_regs, max_steps=100_000)
    for reg in case.live_outs:
        result.reg(reg)  # live-outs must be defined


def test_determinism():
    for seed in (0, 7, 123):
        a, b = generate_case(seed), generate_case(seed)
        assert render_function(a.function) == render_function(b.function)
        assert a.initial_regs == b.initial_regs
        assert a.base_memory.snapshot() == b.base_memory.snapshot()
        assert a.live_outs == b.live_outs


def test_seeds_differ():
    texts = {render_function(generate_case(s).function) for s in range(10)}
    assert len(texts) > 5


def test_fresh_memory_is_independent():
    case = generate_case(0)
    m1, m2 = case.fresh_memory(), case.fresh_memory()
    m1.write(4096, 999)
    assert m2.read(4096) != 999 or case.base_memory.read(4096) == 999


def test_config_bounds_trip_count():
    cfg = GeneratorConfig(min_trip_count=2, max_trip_count=3)
    for seed in range(10):
        case = generate_case(seed, cfg)
        assert 2 <= case.initial_regs[case.bound_reg] <= 3


def test_constructs_appear_across_seeds():
    """The statement mix actually exercises the interesting opcodes."""
    opcodes = set()
    regions = set()
    for seed in range(30):
        case = generate_case(seed)
        for block in case.function.blocks():
            for inst in block:
                opcodes.add(inst.opcode)
                if inst.region:
                    regions.add(inst.region)
    assert {Opcode.LOAD, Opcode.STORE, Opcode.BR, Opcode.JMP}.issubset(opcodes)
    assert {"A", "B", "shared", "acc", "chain"}.issubset(regions)


def test_affine_attrs_emitted():
    found = False
    for seed in range(30):
        case = generate_case(seed)
        for block in case.function.blocks():
            for inst in block:
                if inst.attrs.get("affine"):
                    found = True
                    assert "affine_base" in inst.attrs
    assert found
