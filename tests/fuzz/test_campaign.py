"""Campaign driver tests plus the bounded ``fuzz_smoke`` tier.

The smoke tier is the differential-fuzzing regression net that runs in
tier-1 CI: 200 fixed-seed cases through a reduced oracle matrix.  It
is deterministic (fixed campaign seed, seeded generator and partition
choices), so a failure here is always reproducible with
``python -m repro fuzz --seed <campaign-seed>``.
"""

import pytest

from repro.fuzz import (
    case_seed,
    generate_case,
    get_fault,
    run_campaign,
    smoke_config,
)

SMOKE_CASES = 200


def test_case_seeds_are_disjoint_across_campaigns():
    a = {case_seed(0, i) for i in range(1000)}
    b = {case_seed(1, i) for i in range(1000)}
    assert not a & b


def test_campaign_counts_iterations():
    result = run_campaign(9, 5, oracle_config=smoke_config())
    assert result.iterations == 5
    assert result.runs > 0
    assert result.ok
    assert "OK" in result.summary()


def test_campaign_with_fault_stops_at_max_failures(tmp_path):
    result = run_campaign(
        1, 50, oracle_config=smoke_config(),
        fault=get_fault("drop-produce"),
        out_dir=str(tmp_path), max_failures=3,
    )
    assert len(result.failures) == 3
    assert all(f.reproducer_path for f in result.failures)
    # Shrinking happened: witnesses are no larger than the originals.
    for failure in result.failures:
        assert failure.shrunk_instructions <= failure.original_instructions


def test_campaign_accepts_fault_by_name(tmp_path):
    result = run_campaign(
        1, 20, oracle_config=smoke_config(),
        fault="drop-initial-flow", shrink=False, max_failures=1,
    )
    assert result.failures


def test_campaign_records_metrics():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    result = run_campaign(9, 5, oracle_config=smoke_config(),
                          metrics=registry)
    snap = registry.snapshot()
    assert snap["fuzz.cases"] == result.iterations == 5
    assert snap["fuzz.runs"] == result.runs
    assert snap["fuzz.applied"] == result.applied
    assert snap.get("fuzz.declined", 0) == result.declined
    assert "fuzz.divergences" not in snap  # clean campaign


def test_campaign_metrics_count_detected_faults():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    result = run_campaign(1, 50, oracle_config=smoke_config(),
                          fault=get_fault("drop-produce"), shrink=False,
                          max_failures=2, metrics=registry)
    snap = registry.snapshot()
    assert snap["fuzz.divergences"] == len(result.failures) == 2
    assert snap["fuzz.faults_detected{fault=drop-produce}"] == 2


@pytest.mark.fuzz_smoke
@pytest.mark.parametrize("campaign_seed", [0, 1])
def test_fuzz_smoke_campaign(campaign_seed):
    """The bounded tier-1 fuzz net: 2 x 100 fixed cases, reduced
    matrix, zero divergences expected."""
    result = run_campaign(campaign_seed, SMOKE_CASES // 2,
                          oracle_config=smoke_config(), shrink=False)
    assert result.ok, result.summary()
    assert result.applied > 0


@pytest.mark.fuzz_smoke
def test_fuzz_smoke_oracle_still_sensitive():
    """Paired canary: the same reduced matrix must still catch a
    planted bug, so a green smoke run means 'no divergence', never
    'oracle went blind'."""
    result = run_campaign(1, 15, oracle_config=smoke_config(),
                          fault=get_fault("drop-produce"),
                          shrink=False, max_failures=1)
    assert result.failures


def test_smoke_determinism():
    """Same campaign seed -> byte-identical generated cases."""
    from repro.ir.printer import render_function

    for index in (0, 13, 99):
        seed = case_seed(0, index)
        assert (render_function(generate_case(seed).function)
                == render_function(generate_case(seed).function))
