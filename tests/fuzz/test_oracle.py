"""Tests for the differential oracle and its fault sensitivity."""

import pytest

from repro.analysis.memdep import AliasMode
from repro.fuzz import (
    OracleConfig,
    OracleSetting,
    check_case,
    generate_case,
    get_fault,
    run_setting,
)
from repro.fuzz.faults import FAULTS

FAST = OracleConfig(
    thread_counts=(2,),
    alias_modes=(AliasMode.REGIONS,),
    quanta=(1, 7),
    queue_capacities=(2, None),
    random_partitions=1,
)


def test_clean_cases_agree():
    for seed in range(15):
        report = check_case(generate_case(seed), FAST)
        assert report.ok, report.divergences


def test_report_counts_runs_and_transforms():
    report = check_case(generate_case(0), FAST)
    assert report.applied >= 1
    # Every applied transform is re-executed under each scheduled
    # (quantum, capacity) pair.
    assert report.runs == report.applied * len(FAST.quanta)


def test_random_partitions_extend_coverage():
    none = OracleConfig(thread_counts=(2,), alias_modes=(AliasMode.REGIONS,),
                        quanta=(1,), queue_capacities=(None,),
                        random_partitions=0)
    some = OracleConfig(thread_counts=(2,), alias_modes=(AliasMode.REGIONS,),
                        quanta=(1,), queue_capacities=(None,),
                        random_partitions=2)
    base = check_case(generate_case(3), none)
    more = check_case(generate_case(3), some)
    assert more.applied > base.applied


def test_schedule_pairs_rotate_through_capacities():
    cfg = OracleConfig()
    seen = set()
    for rotation in range(len(cfg.queue_capacities)):
        seen.update(cfg.schedule_pairs(rotation))
    # Jointly, consecutive rotations cover the full product matrix.
    assert seen == {(q, c) for q in cfg.quanta for c in cfg.queue_capacities}


def test_run_setting_clean_returns_none():
    case = generate_case(1)
    setting = OracleSetting(threads=2, alias=AliasMode.REGIONS,
                            quantum=3, capacity=2)
    assert run_setting(case, setting) is None


def test_setting_dict_roundtrip():
    setting = OracleSetting(threads=3, alias=AliasMode.CONSERVATIVE,
                            quantum=7, capacity=None, partition_seed=42)
    assert OracleSetting.from_dict(setting.to_dict()) == setting


@pytest.mark.parametrize("fault_name", sorted(FAULTS))
def test_every_fault_is_caught(fault_name):
    """The oracle is only trustworthy if it fails on known-bad
    transformations: each planted fault must produce a divergence on at
    least one of a handful of seeds."""
    fault = get_fault(fault_name)
    caught = 0
    for seed in range(12):
        report = check_case(generate_case(seed), FAST, fault=fault)
        caught += bool(report.divergences)
    assert caught >= 1, f"fault {fault_name} never detected"


def test_unknown_fault_name_raises():
    with pytest.raises(ValueError, match="unknown fault"):
        get_fault("bogus")
