"""Tests for the shrinker and the reproducer file format."""

import pytest

from repro.analysis.memdep import AliasMode
from repro.fuzz import (
    OracleConfig,
    check_case,
    generate_case,
    get_fault,
    read_reproducer,
    run_setting,
    shrink_divergence,
    write_reproducer,
)
from repro.fuzz.shrinker import Shrinker, clone_case
from repro.ir.printer import render_function

FAST = OracleConfig(
    thread_counts=(2,),
    alias_modes=(AliasMode.REGIONS,),
    quanta=(1, 7),
    queue_capacities=(2, None),
    random_partitions=0,
)


def _first_divergence(fault, max_seed=20):
    for seed in range(max_seed):
        case = generate_case(seed)
        report = check_case(case, FAST, fault=fault)
        if report.divergences:
            return case, report.divergences[0]
    pytest.fail(f"fault {fault.name} produced no divergence in {max_seed} seeds")


def test_clone_case_is_deep():
    case = generate_case(0)
    clone = clone_case(case)
    assert render_function(clone.function) == render_function(case.function)
    clone.function.block(clone.loop.header).instructions.pop(0)
    assert (render_function(clone.function)
            != render_function(case.function))
    clone.base_memory.write(4096, 1234)
    assert case.base_memory.read(4096) != 1234


def test_shrinker_minimizes_injected_fault():
    """The acceptance-criterion scenario: a dropped dependence arc is
    caught and the witness shrinks to a handful of instructions."""
    fault = get_fault("drop-dep-arc")
    case, divergence = _first_divergence(fault)
    witness = shrink_divergence(case, divergence.setting, fault=fault)
    assert witness.function.instruction_count() <= 20
    assert witness.function.instruction_count() < case.function.instruction_count()
    # The minimized case still reproduces.
    assert run_setting(witness, divergence.setting, fault=fault) is not None


def test_shrinker_rejects_non_reproducing_case():
    shrinker = Shrinker(lambda case: False)
    with pytest.raises(ValueError, match="does not reproduce"):
        shrinker.shrink(generate_case(0))


def test_shrinker_respects_attempt_budget():
    calls = []

    def pred(case):
        calls.append(1)
        return True  # everything "reproduces": worst case for ddmin

    shrinker = Shrinker(pred, max_attempts=25)
    shrinker.shrink(generate_case(0))
    # +1 for the initial confirmation run.
    assert len(calls) <= 26


def test_reproducer_roundtrip(tmp_path):
    fault = get_fault("drop-produce")
    case, divergence = _first_divergence(fault)
    path = tmp_path / "repro.ir"
    write_reproducer(path, case, divergence.setting,
                     detail=divergence.detail, fault=fault)
    loaded, setting, fault_name = read_reproducer(path)
    assert setting == divergence.setting
    assert fault_name == fault.name
    assert render_function(loaded.function) == render_function(case.function)
    assert loaded.initial_regs == case.initial_regs
    assert loaded.base_memory.snapshot() == case.base_memory.snapshot()
    assert loaded.live_outs == case.live_outs
    # Replaying the loaded case reproduces the divergence.
    assert run_setting(loaded, setting, fault=get_fault(fault_name)) is not None


def test_reproducer_of_clean_case_replays_clean(tmp_path):
    from repro.fuzz import OracleSetting

    case = generate_case(5)
    setting = OracleSetting(quantum=7, capacity=2)
    path = tmp_path / "clean.ir"
    write_reproducer(path, case, setting)
    loaded, got_setting, fault_name = read_reproducer(path)
    assert fault_name is None
    assert run_setting(loaded, got_setting) is None
