"""Parallel fuzz campaigns must be indistinguishable from serial ones:
same accounting, same failures in the same order, byte-identical
reproducer files."""

from __future__ import annotations

import filecmp
import os

import pytest

from repro.fuzz.campaign import run_campaign, smoke_config

pytestmark = pytest.mark.parallel_smoke

SEED = 7
ITERATIONS = 30
FAULT = "drop-dep-arc"


def _accounting(result):
    return (result.iterations, result.runs, result.applied,
            result.declined, result.fault_skipped,
            [f.seed for f in result.failures],
            [f.divergence.kind for f in result.failures],
            [(f.original_instructions, f.shrunk_instructions)
             for f in result.failures])


class TestSerialParity:
    def test_injected_fault_campaign_matches_serial(self, tmp_path):
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        serial = run_campaign(
            seed=SEED, iterations=ITERATIONS, oracle_config=smoke_config(),
            fault=FAULT, out_dir=serial_dir, max_failures=3)
        parallel = run_campaign(
            seed=SEED, iterations=ITERATIONS, oracle_config=smoke_config(),
            fault=FAULT, out_dir=parallel_dir, max_failures=3, jobs=2)
        assert serial.failures  # the fault must be detectable at all
        assert _accounting(serial) == _accounting(parallel)
        assert serial.summary() == parallel.summary()

    def test_reproducer_files_are_byte_identical(self, tmp_path):
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        run_campaign(seed=SEED, iterations=ITERATIONS,
                     oracle_config=smoke_config(), fault=FAULT,
                     out_dir=serial_dir, max_failures=3)
        run_campaign(seed=SEED, iterations=ITERATIONS,
                     oracle_config=smoke_config(), fault=FAULT,
                     out_dir=parallel_dir, max_failures=3, jobs=2)
        serial_files = sorted(os.listdir(serial_dir))
        assert serial_files
        assert sorted(os.listdir(parallel_dir)) == serial_files
        for name in serial_files:
            assert filecmp.cmp(os.path.join(serial_dir, name),
                               os.path.join(parallel_dir, name),
                               shallow=False), name

    def test_clean_campaign_parity(self):
        serial = run_campaign(seed=11, iterations=20,
                              oracle_config=smoke_config())
        parallel = run_campaign(seed=11, iterations=20,
                                oracle_config=smoke_config(), jobs=3)
        assert _accounting(serial) == _accounting(parallel)
        assert serial.ok and parallel.ok

    def test_early_stop_point_matches_serial(self, tmp_path):
        serial = run_campaign(
            seed=SEED, iterations=ITERATIONS, oracle_config=smoke_config(),
            fault=FAULT, max_failures=1, shrink=False)
        parallel = run_campaign(
            seed=SEED, iterations=ITERATIONS, oracle_config=smoke_config(),
            fault=FAULT, max_failures=1, shrink=False, jobs=2)
        assert len(serial.failures) == len(parallel.failures) == 1
        assert serial.iterations == parallel.iterations
