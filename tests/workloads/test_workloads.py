"""Tests for the workload suite: construction, oracles, metadata."""

import pytest

from repro.interp.interpreter import run_function
from repro.ir.verifier import verify_reachable
from repro.workloads import (
    ALL_WORKLOADS,
    TABLE1_WORKLOADS,
    ArtWorkload,
    get_workload,
)


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
class TestEveryWorkload:
    def test_builds_valid_ir(self, workload):
        case = workload.build(scale=50)
        verify_reachable(case.function)

    def test_has_loop_with_preheader(self, workload):
        case = workload.build(scale=50)
        loop = case.loop
        assert loop.preheader() is not None
        assert loop.exit_edges()

    def test_baseline_satisfies_oracle(self, workload):
        case = workload.build(scale=50)
        memory = case.fresh_memory()
        result = run_function(case.function, memory,
                              initial_regs=case.initial_regs,
                              max_steps=10_000_000,
                              call_handlers=case.call_handlers)
        case.checker(memory, result.regs)

    def test_build_is_deterministic(self, workload):
        a = workload.build(scale=30)
        b = workload.build(scale=30)
        assert a.function.render() == b.function.render()
        assert a.memory.snapshot() == b.memory.snapshot()

    def test_different_seeds_differ(self, workload):
        a = workload.build(scale=30, seed=1)
        b = workload.build(scale=30, seed=2)
        assert a.memory.snapshot() != b.memory.snapshot()


class TestMetadata:
    def test_table1_has_ten_rows(self):
        assert len(TABLE1_WORKLOADS) == 10

    def test_names_unique(self):
        names = [w.name for w in ALL_WORKLOADS]
        assert len(names) == len(set(names))

    def test_exec_fractions_in_paper_range(self):
        """Table 1's loops account for 6%-98% of execution."""
        for w in TABLE1_WORKLOADS:
            assert 0.06 <= w.exec_fraction <= 0.98

    def test_registry_lookup(self):
        assert get_workload("mcf").paper_benchmark == "181.mcf"
        with pytest.raises(KeyError):
            get_workload("nonexistent")


class TestOracleSensitivity:
    def test_checker_rejects_corrupted_memory(self):
        case = get_workload("compress").build(scale=30)
        memory = case.fresh_memory()
        result = run_function(case.function, memory,
                              initial_regs=case.initial_regs)
        case.checker(memory, result.regs)
        # Corrupt one output cell: the checker must notice.
        target = next(
            addr for addr in sorted(memory.snapshot())
            if addr >= max(case.initial_regs.values())
        )
        corrupted = False
        for addr in sorted(memory.snapshot()):
            memory.write(addr, memory.read(addr) + 1)
            try:
                case.checker(memory, result.regs)
                memory.write(addr, memory.read(addr) - 1)
            except AssertionError:
                corrupted = True
                break
        assert corrupted


class TestArtExpansion:
    def test_expanded_variant_same_answer(self):
        plain = ArtWorkload().build(scale=40)
        expanded = ArtWorkload(expanded=True).build(scale=40)
        for case in (plain, expanded):
            memory = case.fresh_memory()
            run_function(case.function, memory, initial_regs=case.initial_regs)
            case.checker(memory, {})
