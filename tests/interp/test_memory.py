"""Tests for the word-addressed memory model."""

from hypothesis import given, strategies as st

from repro.interp.memory import Memory


class TestBasics:
    def test_uninitialised_reads_zero(self):
        assert Memory().read(0x1234) == 0

    def test_write_then_read(self):
        m = Memory()
        m.write(10, 42)
        assert m.read(10) == 42

    def test_snapshot_is_a_copy(self):
        m = Memory()
        m.write(1, 1)
        snap = m.snapshot()
        m.write(1, 2)
        assert snap[1] == 1

    def test_clone_is_independent(self):
        m = Memory()
        m.write(5, 7)
        c = m.clone()
        c.write(5, 8)
        assert m.read(5) == 7

    def test_equality_ignores_explicit_zeros(self):
        a, b = Memory(), Memory()
        a.write(3, 0)
        assert a == b
        a.write(3, 1)
        assert a != b


class TestAllocation:
    def test_alloc_is_aligned_and_disjoint(self):
        m = Memory()
        first = m.alloc(10, align=16)
        second = m.alloc(10, align=16)
        assert first % 16 == 0 and second % 16 == 0
        assert second >= first + 10

    def test_store_and_load_array(self):
        m = Memory()
        base = m.store_array([1, 2, 3])
        assert m.load_array(base, 3) == [1, 2, 3]

    def test_store_array_with_stride(self):
        m = Memory()
        base = m.store_array([9, 8], stride=4)
        assert m.read(base) == 9
        assert m.read(base + 4) == 8

    def test_empty_array(self):
        m = Memory()
        base = m.store_array([])
        assert m.load_array(base, 0) == []


class TestLinkedLists:
    def test_roundtrip(self):
        m = Memory()
        head = m.build_linked_list([4, 5, 6])
        assert m.read_linked_list(head) == [4, 5, 6]

    def test_empty_list_is_null(self):
        assert Memory().build_linked_list([]) == 0

    def test_custom_value_offset(self):
        m = Memory()
        head = m.build_linked_list([7], node_words=4, value_offset=3)
        assert m.read(head + 3) == 7
        assert m.read(head) == 0

    @given(st.lists(st.integers(min_value=0, max_value=1 << 30), max_size=40))
    def test_roundtrip_property(self, payloads):
        m = Memory()
        head = m.build_linked_list(payloads)
        assert m.read_linked_list(head) == payloads


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=1 << 20),
        st.integers(min_value=-(1 << 40), max_value=1 << 40),
        max_size=50,
    )
)
def test_memory_is_a_map(contents):
    m = Memory()
    for addr, value in contents.items():
        m.write(addr, value)
    for addr, value in contents.items():
        assert m.read(addr) == value
