"""Scheduler-fairness tests.

The DSWP correctness claim (paper Section 3) is that the transformed
pipeline computes the sequential result under *any* fair schedule.
The round-robin scheduler's only degree of freedom is its quantum, so
we pin one transformed pipeline per workload and re-execute it under
quanta {1, 3, 7, 64}: every run must produce the identical final
memory image and main-thread live-outs -- equal to the sequential
reference, and therefore to each other.
"""

import pytest

from repro.core.dswp import dswp
from repro.interp.interpreter import run_function
from repro.interp.multithread import run_threads
from repro.workloads import get_workload

QUANTA = [1, 3, 7, 64]

#: Workload -> build scale; small enough to keep the matrix cheap,
#: large enough that the pipeline wraps many scheduling turns.
WORKLOADS = {"mcf": 60, "wc": 40, "listtraverse": 50, "compress": 40}


@pytest.fixture(scope="module")
def pipelines():
    """(case, transformed program, sequential snapshot) per workload."""
    built = {}
    for name, scale in WORKLOADS.items():
        case = get_workload(name).build(scale=scale)
        seq_mem = case.fresh_memory()
        run_function(case.function, seq_mem, initial_regs=case.initial_regs,
                     max_steps=10_000_000)
        result = dswp(case.function, case.loop, require_profitable=False)
        assert result.applied, f"{name}: {result.reason}"
        built[name] = (case, result.program, seq_mem.snapshot())
    return built


@pytest.mark.parametrize("name", sorted(WORKLOADS))
@pytest.mark.parametrize("quantum", QUANTA)
def test_quantum_does_not_change_memory(pipelines, name, quantum):
    case, program, seq_snapshot = pipelines[name]
    mem = case.fresh_memory()
    run_threads(program, mem, initial_regs=case.initial_regs,
                quantum=quantum, max_steps=20_000_000)
    assert mem.snapshot() == seq_snapshot


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_quanta_agree_on_live_registers(pipelines, name):
    """The main thread's final register file is schedule-independent."""
    case, program, _ = pipelines[name]
    finals = []
    for quantum in QUANTA:
        result = run_threads(program, case.fresh_memory(),
                             initial_regs=case.initial_regs,
                             quantum=quantum, max_steps=20_000_000)
        finals.append(result.contexts[0].regs)
    assert all(regs == finals[0] for regs in finals[1:])


@pytest.mark.parametrize("quantum", QUANTA)
@pytest.mark.parametrize("capacity", [1, 8])
def test_quantum_capacity_cross_product(pipelines, quantum, capacity):
    """Quantum and queue capacity interact (blocking points move);
    neither may affect the result."""
    case, program, seq_snapshot = pipelines["mcf"]
    mem = case.fresh_memory()
    run_threads(program, mem, initial_regs=case.initial_regs,
                quantum=quantum, queue_capacity=capacity,
                max_steps=20_000_000)
    assert mem.snapshot() == seq_snapshot
