"""Tests for the multi-threaded interpreter: queues, blocking, deadlock."""

import pytest

from repro.interp.errors import DeadlockError, QueueProtocolError, StepLimitExceeded
from repro.interp.memory import Memory
from repro.interp.multithread import QueueSet, ThreadProgram, run_threads
from repro.ir.builder import IRBuilder
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg


def producer_consumer(n=5):
    """Thread 0 produces 0..n-1 on queue 0; thread 1 sums into memory[0]."""
    p = IRBuilder("producer")
    r_i, r_n = gen_reg(0), gen_reg(1)
    from repro.ir.types import pred_reg
    pr = pred_reg(0)
    p.block("entry", entry=True)
    p.mov(r_i, imm=0)
    p.jmp("header")
    p.block("header")
    p.cmp_ge(pr, r_i, r_n)
    p.br(pr, "exit", "body")
    p.block("body")
    p.emit(Instruction(Opcode.PRODUCE, srcs=[r_i], queue=0))
    p.add(r_i, r_i, imm=1)
    p.jmp("header")
    p.block("exit")
    p.ret()

    c = IRBuilder("consumer")
    r_j, r_m, r_acc, r_v, r_addr = (gen_reg(i) for i in range(5))
    pc = pred_reg(1)
    c.block("entry", entry=True)
    c.mov(r_j, imm=0)
    c.mov(r_acc, imm=0)
    c.jmp("header")
    c.block("header")
    c.cmp_ge(pc, r_j, r_m)
    c.br(pc, "exit", "body")
    c.block("body")
    c.emit(Instruction(Opcode.CONSUME, dest=r_v, queue=0))
    c.add(r_acc, r_acc, r_v)
    c.add(r_j, r_j, imm=1)
    c.jmp("header")
    c.block("exit")
    c.mov(r_addr, imm=0)
    c.store(r_acc, r_addr, offset=0)
    c.ret()

    program = ThreadProgram([p.done(), c.done()])
    initial = {r_i: 0, r_n: n, r_j: 0, r_m: n}
    return program, initial


class TestProduceConsume:
    def test_values_match_in_order(self):
        program, initial = producer_consumer(10)
        # run_threads passes initial regs to thread 0 only; the consumer
        # reads its bound from its own register file, so bake it in.
        result = run_threads(program, initial_regs=initial)
        # NOTE: r_m is 0 in the consumer (initial regs only reach main);
        # so the consumer exits immediately -- covered below.
        assert result.contexts[1].finished

    def test_sum_through_queue(self):
        program, initial = producer_consumer(10)
        # Bake the consumer's trip count into its entry block.
        consumer = program.threads[1]
        entry = consumer.block("entry")
        entry.instructions.insert(
            0, Instruction(Opcode.MOV, dest=gen_reg(1), imm=10)
        )
        result = run_threads(program, initial_regs=initial)
        assert result.memory.read(0) == sum(range(10))

    @pytest.mark.parametrize("quantum", [1, 2, 7, 64])
    def test_schedule_independence(self, quantum):
        program, initial = producer_consumer(10)
        consumer = program.threads[1]
        consumer.block("entry").instructions.insert(
            0, Instruction(Opcode.MOV, dest=gen_reg(1), imm=10)
        )
        result = run_threads(program, initial_regs=initial, quantum=quantum)
        assert result.memory.read(0) == sum(range(10))

    @pytest.mark.parametrize("capacity", [1, 2, 32])
    def test_bounded_queues_still_complete(self, capacity):
        program, initial = producer_consumer(10)
        consumer = program.threads[1]
        consumer.block("entry").instructions.insert(
            0, Instruction(Opcode.MOV, dest=gen_reg(1), imm=10)
        )
        result = run_threads(
            program, initial_regs=initial, queue_capacity=capacity
        )
        assert result.memory.read(0) == sum(range(10))
        assert max(result.queues.max_occupancy.values()) <= capacity


class TestErrors:
    def test_consume_after_producers_exit(self):
        a = IRBuilder("a")
        a.block("entry", entry=True)
        a.ret()
        b = IRBuilder("b")
        b.block("entry", entry=True)
        b.emit(Instruction(Opcode.CONSUME, dest=gen_reg(0), queue=7))
        b.ret()
        with pytest.raises(QueueProtocolError):
            run_threads(ThreadProgram([a.done(), b.done()]))

    def test_cyclic_wait_deadlocks(self):
        a = IRBuilder("a")
        a.block("entry", entry=True)
        a.emit(Instruction(Opcode.CONSUME, dest=gen_reg(0), queue=0))
        a.emit(Instruction(Opcode.PRODUCE, srcs=[gen_reg(0)], queue=1))
        a.ret()
        b = IRBuilder("b")
        b.block("entry", entry=True)
        b.emit(Instruction(Opcode.CONSUME, dest=gen_reg(0), queue=1))
        b.emit(Instruction(Opcode.PRODUCE, srcs=[gen_reg(0)], queue=0))
        b.ret()
        with pytest.raises(DeadlockError):
            run_threads(ThreadProgram([a.done(), b.done()]))

    def test_step_limit(self):
        a = IRBuilder("spin")
        a.block("entry", entry=True)
        a.jmp("entry")
        with pytest.raises(StepLimitExceeded):
            run_threads(ThreadProgram([a.done()]), max_steps=50)

    def test_empty_program_rejected(self):
        with pytest.raises(ValueError):
            ThreadProgram([])


class TestQueueSet:
    def test_fifo_order(self):
        q = QueueSet()
        q.produce(0, 1)
        q.produce(0, 2)
        assert q.consume(0) == 1
        assert q.consume(0) == 2

    def test_capacity_limits_produce(self):
        q = QueueSet(capacity=2)
        q.produce(0, 1)
        q.produce(0, 2)
        assert not q.can_produce(0)
        q.consume(0)
        assert q.can_produce(0)

    def test_unbounded_always_producible(self):
        q = QueueSet()
        for i in range(1000):
            q.produce(3, i)
        assert q.can_produce(3)
        assert q.max_occupancy[3] == 1000

    def test_pending(self):
        q = QueueSet()
        q.produce(1, 5)
        q.produce(2, 5)
        q.consume(1)
        assert q.pending() == {2: 1}

    def test_token_produce_defaults_to_zero(self):
        """Token flows (no source register) enqueue the value 0."""
        a = IRBuilder("a")
        a.block("entry", entry=True)
        a.emit(Instruction(Opcode.PRODUCE, queue=0))
        a.ret()
        b = IRBuilder("b")
        b.block("entry", entry=True)
        b.emit(Instruction(Opcode.CONSUME, queue=0))
        b.ret()
        result = run_threads(ThreadProgram([a.done(), b.done()]))
        assert all(c.finished for c in result.contexts)
