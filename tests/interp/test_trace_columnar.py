"""Columnar-trace equivalence: the compact trace format must be
observationally identical to the legacy object-entry format, both as a
container and as input to the timing model."""

import pytest

from repro.harness.runner import run_baseline, run_dswp
from repro.interp.reference import run_function_reference
from repro.interp.trace import NO_ADDR, ColumnarTrace, TraceEntry, as_columnar
from repro.machine.cmp import simulate
from repro.machine.config import HALF_WIDTH_MACHINE, MachineConfig
from repro.machine.reference import simulate_reference
from repro.workloads import get_workload

#: Three structurally different workloads: pointer chasing with control
#: flow (mcf), affine array walks (art), nested lists (listoflists).
WORKLOADS = ("mcf", "art", "listoflists")
SCALE = 120

#: The legacy burst-polling scheduler changed shared-L3 contents with
#: its polling granularity (an arbitrary simulator knob).  The
#: event-driven scheduler always runs a core to its next *true*
#: dependency, which is exactly the legacy schedule as burst -> inf,
#: so reference comparisons pin that canonical schedule.
RUN_TO_BLOCK = 1 << 30


def _stall_key(core):
    return [(s.kind, s.start, s.end, s.queue) for s in core.stalls]


def _assert_sims_equal(fast, ref):
    assert fast.cycles == ref.cycles
    assert fast.ipcs() == ref.ipcs()
    for fast_core, ref_core in zip(fast.cores, ref.cores):
        assert fast_core.instructions_executed == ref_core.instructions_executed
        assert fast_core.flow_instructions == ref_core.flow_instructions
        assert fast_core.last_completion == ref_core.last_completion
        assert _stall_key(fast_core) == _stall_key(ref_core)


@pytest.mark.parametrize("name", WORKLOADS)
def test_baseline_sim_identical_across_formats(name):
    case = get_workload(name).build(scale=SCALE)
    columnar = run_baseline(case).trace
    legacy = run_function_reference(
        case.function, case.fresh_memory(), initial_regs=case.initial_regs,
        max_steps=50_000_000, record_trace=True,
        call_handlers=case.call_handlers,
    ).trace
    assert isinstance(columnar, ColumnarTrace)
    assert len(columnar) == len(legacy)
    for machine in (MachineConfig(), HALF_WIDTH_MACHINE):
        _assert_sims_equal(
            simulate([columnar], machine),
            simulate_reference([legacy], machine, burst=RUN_TO_BLOCK),
        )


@pytest.mark.parametrize("name", WORKLOADS)
def test_dswp_sim_identical_across_formats(name):
    case = get_workload(name).build(scale=SCALE)
    traces = run_dswp(case).traces
    legacy = [t.to_entries() for t in traces]
    for machine in (MachineConfig(), MachineConfig().with_comm_latency(5)):
        _assert_sims_equal(
            simulate(traces, machine),
            simulate_reference(legacy, machine, burst=RUN_TO_BLOCK),
        )


@pytest.mark.parametrize("name", WORKLOADS)
def test_new_simulator_accepts_legacy_entry_lists(name):
    # as_columnar() must make object-entry traces and columnar traces
    # indistinguishable to the new simulator.
    case = get_workload(name).build(scale=SCALE)
    columnar = run_baseline(case).trace
    legacy = columnar.to_entries()
    _assert_sims_equal(simulate([legacy]), simulate([columnar]))


class TestColumnarContainer:
    def _trace(self, name="mcf"):
        case = get_workload(name).build(scale=40)
        return run_baseline(case).trace

    def test_round_trip(self):
        trace = self._trace()
        entries = trace.to_entries()
        rebuilt = ColumnarTrace.from_entries(entries)
        assert len(rebuilt) == len(trace)
        for a, b in zip(rebuilt, trace):
            assert a.inst is b.inst
            assert a.addr == b.addr
            assert a.taken == b.taken
            assert a.block == b.block
            assert a.root_uid == b.root_uid

    def test_getitem_matches_iteration(self):
        trace = self._trace()
        from_iter = list(trace)
        assert len(from_iter) == len(trace)
        for i in (0, 1, len(trace) // 2, len(trace) - 1, -1):
            entry = trace[i]
            assert entry.inst is from_iter[i].inst
            assert entry.addr == from_iter[i].addr

    def test_slices(self):
        trace = self._trace()
        window = trace[3:7]
        assert [e.inst for e in window] == [trace[i].inst for i in range(3, 7)]

    def test_as_columnar_identity_and_conversion(self):
        trace = self._trace()
        assert as_columnar(trace) is trace
        entries = trace.to_entries()
        converted = as_columnar(entries)
        assert isinstance(converted, ColumnarTrace)
        assert len(converted) == len(entries)

    def test_huge_addresses_survive_int64_overflow(self):
        # Fuzz-generated address arithmetic can exceed int64; the
        # compact column stores a sentinel and spills to a side table.
        inst_trace = self._trace()
        inst = inst_trace.statics[0].inst
        big = 1 << 70
        trace = ColumnarTrace()
        trace.append_entry(TraceEntry(inst, addr=big, block="entry"))
        trace.append_entry(TraceEntry(inst, addr=104, block="entry"))
        assert trace.addrs[0] == NO_ADDR
        assert trace[0].addr == big
        assert trace.addr_at(0) == big
        assert trace[1].addr == 104

    def test_memory_footprint_is_columnar(self):
        # The point of the format: per-entry cost is a few bytes of
        # array storage, not a Python object.  Guard against a silent
        # regression to per-entry allocation.
        trace = self._trace("art")
        per_entry = (
            trace.sids.itemsize + trace.addrs.itemsize + trace.takens.itemsize
        )
        assert per_entry <= 16
        assert len(trace._addr_overflow) == 0
