"""Tests for the single-threaded interpreter: opcode semantics, traces,
profiles, traps, and limits."""

import pytest

from repro.interp.errors import InterpreterError, StepLimitExceeded, TrapError
from repro.interp.interpreter import run_function
from repro.interp.memory import Memory
from repro.ir.builder import IRBuilder
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg


def run_straightline(emit, initial=None, memory=None):
    """Build a one-block function with ``emit(builder)`` and run it."""
    b = IRBuilder("straight")
    b.block("entry", entry=True)
    emit(b)
    b.ret()
    return run_function(b.done(), memory=memory, initial_regs=initial)


class TestArithmetic:
    @pytest.mark.parametrize(
        "method,a,b,expected",
        [
            ("add", 3, 4, 7),
            ("sub", 10, 4, 6),
            ("mul", 6, 7, 42),
            ("and_", 0b1100, 0b1010, 0b1000),
            ("or_", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 3, 2, 12),
            ("shr", 12, 2, 3),
            ("fadd", 5, 6, 11),
            ("fsub", 5, 6, -1),
            ("fmul", 5, 6, 30),
        ],
    )
    def test_binary_ops(self, method, a, b, expected):
        r0, r1, r2 = gen_reg(0), gen_reg(1), gen_reg(2)

        def emit(builder):
            getattr(builder, method)(r2, r0, r1)

        result = run_straightline(emit, initial={r0: a, r1: b})
        assert result.reg(r2) == expected

    def test_immediate_operand(self):
        r0, r1 = gen_reg(0), gen_reg(1)
        result = run_straightline(lambda b: b.add(r1, r0, imm=5), initial={r0: 1})
        assert result.reg(r1) == 6

    @pytest.mark.parametrize(
        "a,b,q,r", [(7, 2, 3, 1), (-7, 2, -3, -1), (7, -2, -3, 1)]
    )
    def test_division_truncates_toward_zero(self, a, b, q, r):
        r0, r1, r2, r3 = (gen_reg(i) for i in range(4))

        def emit(builder):
            builder.div(r2, r0, r1)
            builder.mod(r3, r0, r1)

        result = run_straightline(emit, initial={r0: a, r1: b})
        assert result.reg(r2) == q
        assert result.reg(r3) == r

    def test_divide_by_zero_traps(self):
        r0, r1 = gen_reg(0), gen_reg(1)
        with pytest.raises(TrapError):
            run_straightline(lambda b: b.div(r1, r0, imm=0), initial={r0: 1})

    @pytest.mark.parametrize(
        "method,a,b,expected",
        [
            ("cmp_eq", 3, 3, 1), ("cmp_eq", 3, 4, 0),
            ("cmp_ne", 3, 4, 1), ("cmp_lt", 3, 4, 1),
            ("cmp_le", 4, 4, 1), ("cmp_gt", 5, 4, 1),
            ("cmp_ge", 3, 4, 0),
        ],
    )
    def test_compares(self, method, a, b, expected):
        r0, r1 = gen_reg(0), gen_reg(1)
        from repro.ir.types import pred_reg
        p = pred_reg(0)

        def emit(builder):
            getattr(builder, method)(p, r0, r1)

        result = run_straightline(emit, initial={r0: a, r1: b})
        assert result.reg(p) == expected

    def test_mov_imm_and_reg(self):
        r0, r1 = gen_reg(0), gen_reg(1)

        def emit(builder):
            builder.mov(r0, imm=9)
            builder.mov(r1, r0)

        result = run_straightline(emit)
        assert result.reg(r1) == 9

    def test_mov_zero_immediate(self):
        # Regression: ``mov r1, 0`` must distinguish an explicit zero
        # immediate from a missing one (an ``imm or 0`` truthiness check
        # conflates them); both write 0, via the is-None path.
        r0, r1 = gen_reg(0), gen_reg(1)

        def emit(builder):
            builder.mov(r0, imm=0)
            builder.mov(r1, imm=0)

        result = run_straightline(emit, initial={r0: 41, r1: 42})
        assert result.reg(r0) == 0
        assert result.reg(r1) == 0

    def test_mov_zero_immediate_matches_reference(self):
        from repro.interp.reference import run_function_reference
        from repro.ir.builder import IRBuilder

        b = IRBuilder("movzero")
        b.block("entry", entry=True)
        r0 = gen_reg(0)
        b.mov(r0, imm=0)
        b.ret()
        fn = b.done()
        fast = run_function(fn, initial_regs={r0: 99})
        ref = run_function_reference(fn, initial_regs={r0: 99})
        assert fast.reg(r0) == ref.reg(r0) == 0

    def test_unset_register_reads_zero(self):
        r0, r1 = gen_reg(0), gen_reg(1)
        result = run_straightline(lambda b: b.add(r1, r0, imm=0))
        assert result.reg(r1) == 0


class TestMemoryOps:
    def test_load_store(self):
        r0, r1 = gen_reg(0), gen_reg(1)
        memory = Memory()
        memory.write(104, 77)

        def emit(builder):
            builder.load(r1, r0, offset=4)
            builder.store(r1, r0, offset=8)

        result = run_straightline(emit, initial={r0: 100}, memory=memory)
        assert result.reg(r1) == 77
        assert memory.read(108) == 77

    def test_trace_records_addresses(self):
        b = IRBuilder("t")
        r0, r1 = gen_reg(0), gen_reg(1)
        b.block("entry", entry=True)
        b.load(r1, r0, offset=4)
        b.ret()
        result = run_function(b.done(), initial_regs={r0: 100}, record_trace=True)
        assert result.trace[0].addr == 104


class TestControlFlow:
    def test_branch_taken_and_not_taken(self, counted):
        func, header, regs = counted
        memory = Memory()
        base = memory.store_array([5, 6, 7])
        out = memory.alloc(1)
        result = run_function(
            func, memory,
            initial_regs={regs["n"]: 3, regs["base"]: base, regs["out"]: out},
        )
        assert memory.read(out) == 18
        assert result.reg(regs["acc"]) == 18

    def test_trace_records_branch_outcomes(self, counted):
        func, _, regs = counted
        memory = Memory()
        base = memory.store_array([1])
        out = memory.alloc(1)
        result = run_function(
            func, memory, record_trace=True,
            initial_regs={regs["n"]: 1, regs["base"]: base, regs["out"]: out},
        )
        outcomes = [e.taken for e in result.trace if e.inst.opcode is Opcode.BR]
        assert outcomes == [False, True]

    def test_profile_counts_blocks(self, counted):
        func, header, regs = counted
        memory = Memory()
        base = memory.store_array([1, 1, 1, 1])
        out = memory.alloc(1)
        result = run_function(
            func, memory, record_profile=True,
            initial_regs={regs["n"]: 4, regs["base"]: base, regs["out"]: out},
        )
        assert result.block_counts["header"] == 5
        assert result.block_counts["body"] == 4
        assert result.block_counts["exit"] == 1


class TestCalls:
    def test_call_handler_invoked(self):
        b = IRBuilder("c")
        r0, r1 = gen_reg(0), gen_reg(1)
        b.block("entry", entry=True)
        b.call("double", dest=r1, srcs=[r0])
        b.ret()
        result = run_function(
            b.done(), initial_regs={r0: 21},
            call_handlers={"double": lambda mem, args: args[0] * 2},
        )
        assert result.reg(r1) == 42

    def test_unknown_callee_returns_zero(self):
        b = IRBuilder("c")
        r1 = gen_reg(1)
        b.block("entry", entry=True)
        b.call("mystery", dest=r1)
        b.ret()
        assert run_function(b.done(), initial_regs={r1: 5}).reg(r1) == 0


class TestLimitsAndErrors:
    def test_step_limit(self):
        b = IRBuilder("spin")
        b.block("entry", entry=True)
        b.jmp("entry")
        with pytest.raises(StepLimitExceeded):
            run_function(b.done(), max_steps=100)

    def test_queue_ops_rejected_single_threaded(self):
        b = IRBuilder("q")
        b.block("entry", entry=True)
        b.emit(Instruction(Opcode.PRODUCE, srcs=[gen_reg(0)], queue=0))
        b.ret()
        with pytest.raises(InterpreterError, match="multi-threaded"):
            run_function(b.done())

    def test_missing_operand_raises(self):
        b = IRBuilder("bad")
        b.block("entry", entry=True)
        b.emit(Instruction(Opcode.ADD, dest=gen_reg(0), srcs=[gen_reg(1)]))
        b.ret()
        with pytest.raises(InterpreterError, match="operand"):
            run_function(b.done())
