"""Regression tests: mismatched produce/consume pairs must fail *fast*
and *deterministically*.

A splitter bug that drops or miscounts a flow instruction must surface
as :class:`DeadlockError` or :class:`QueueProtocolError` under every
scheduler quantum -- never as a hang that only the step limit cuts
off.  Each test therefore runs with a tight ``max_steps``: if the
interpreter spun instead of diagnosing, it would raise
:class:`StepLimitExceeded` and the ``pytest.raises`` match would fail.
"""

import pytest

from repro.interp.errors import DeadlockError, QueueProtocolError
from repro.interp.multithread import ThreadProgram, run_threads
from repro.ir.builder import IRBuilder
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg

QUANTA = [1, 3, 7, 64]

#: Small enough that a hang would trip StepLimitExceeded instead of
#: the expected diagnosis -- promptness is part of the contract.
TIGHT_BUDGET = 5_000


def _straight_line(name, flows):
    """A thread that runs a fixed sequence of produce/consume ops."""
    b = IRBuilder(name)
    b.block("entry", entry=True)
    for opcode, queue in flows:
        if opcode is Opcode.PRODUCE:
            b.emit(Instruction(Opcode.PRODUCE, srcs=[gen_reg(0)], queue=queue))
        else:
            b.emit(Instruction(Opcode.CONSUME, dest=gen_reg(1), queue=queue))
    b.ret()
    return b.done()


def _program(*threads):
    return ThreadProgram(list(threads))


@pytest.mark.parametrize("quantum", QUANTA)
def test_underfed_consumer_raises_protocol_error(quantum):
    """Producer sends 3 values, consumer wants 5: once the producer has
    exited, the 4th consume is a protocol violation, not a wait."""
    producer = _straight_line("prod", [(Opcode.PRODUCE, 0)] * 3)
    consumer = _straight_line("cons", [(Opcode.CONSUME, 0)] * 5)
    with pytest.raises(QueueProtocolError, match="all other threads have exited"):
        run_threads(_program(producer, consumer), quantum=quantum,
                    max_steps=TIGHT_BUDGET)


@pytest.mark.parametrize("quantum", QUANTA)
@pytest.mark.parametrize("capacity", [1, 2])
def test_overfed_bounded_queue_raises_protocol_error(quantum, capacity):
    """Producer sends 10 values into a bounded queue, consumer takes 2
    and exits: the blocked produce must be diagnosed, not spun on."""
    producer = _straight_line("prod", [(Opcode.PRODUCE, 0)] * 10)
    consumer = _straight_line("cons", [(Opcode.CONSUME, 0)] * 2)
    with pytest.raises(QueueProtocolError, match="produce to full queue"):
        run_threads(_program(producer, consumer), quantum=quantum,
                    queue_capacity=capacity, max_steps=TIGHT_BUDGET)


@pytest.mark.parametrize("quantum", QUANTA)
def test_cyclic_wait_raises_deadlock(quantum):
    """Two threads each consume what the other never produced."""
    t0 = _straight_line("t0", [(Opcode.CONSUME, 1), (Opcode.PRODUCE, 0)])
    t1 = _straight_line("t1", [(Opcode.CONSUME, 0), (Opcode.PRODUCE, 1)])
    with pytest.raises(DeadlockError) as excinfo:
        run_threads(_program(t0, t1), quantum=quantum, max_steps=TIGHT_BUDGET)
    assert excinfo.value.blocked == {
        0: "consume on empty queue 1",
        1: "consume on empty queue 0",
    }


@pytest.mark.parametrize("quantum", QUANTA)
def test_full_queue_cycle_raises_deadlock(quantum):
    """Both threads block producing into full queues the other side
    never drains."""
    t0 = _straight_line("t0", [(Opcode.PRODUCE, 0)] * 3 + [(Opcode.CONSUME, 1)])
    t1 = _straight_line("t1", [(Opcode.PRODUCE, 1)] * 3 + [(Opcode.CONSUME, 0)])
    with pytest.raises(DeadlockError) as excinfo:
        run_threads(_program(t0, t1), quantum=quantum, queue_capacity=1,
                    max_steps=TIGHT_BUDGET)
    assert set(excinfo.value.blocked) == {0, 1}
    assert all("full queue" in why for why in excinfo.value.blocked.values())


@pytest.mark.parametrize("quantum", QUANTA)
def test_leftover_values_are_not_an_error(quantum):
    """Unconsumed values at exit are legal (e.g. a speculative flow):
    both threads finish and the queue keeps its pending entries."""
    producer = _straight_line("prod", [(Opcode.PRODUCE, 0)] * 4)
    consumer = _straight_line("cons", [(Opcode.CONSUME, 0)])
    result = run_threads(_program(producer, consumer), quantum=quantum,
                         max_steps=TIGHT_BUDGET)
    assert all(ctx.finished for ctx in result.contexts)
    assert result.queues.pending() == {0: 3}
