"""Smoke tests: every shipped example runs end to end (small scales)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    names = {p.stem for p in EXAMPLES.glob("*.py")}
    assert {"quickstart", "doacross_vs_dswp", "partition_explorer",
            "benchmark_suite", "custom_loop", "multi_loop_pipeline",
            "speculative_gzip", "scaling_out"} <= names


def test_quickstart(capsys):
    load_example("quickstart").main(scale=120)
    out = capsys.readouterr().out
    assert "functional check" in out
    assert "loop speedup" in out


def test_doacross_vs_dswp(capsys):
    load_example("doacross_vs_dswp").main(scale=120)
    out = capsys.readouterr().out
    assert "DOACROSS speedup" in out


def test_custom_loop(capsys):
    load_example("custom_loop").main()
    out = capsys.readouterr().out
    assert "both versions agree" in out


def test_multi_loop_pipeline(capsys):
    load_example("multi_loop_pipeline").main(n=150)
    out = capsys.readouterr().out
    assert "transformed 2 loops" in out
    assert "checksum" in out


def test_speculative_gzip(capsys):
    load_example("speculative_gzip").main(scale=150)
    out = capsys.readouterr().out
    assert "speculated branches" in out
    assert "speedup over baseline" in out


def test_partition_explorer(capsys):
    load_example("partition_explorer").main("wc", scale=100)
    out = capsys.readouterr().out
    assert "heuristic pick" in out


def test_benchmark_suite(capsys):
    load_example("benchmark_suite").main(scale=60)
    out = capsys.readouterr().out
    assert "geomean loop speedup" in out


def test_scaling_out(capsys):
    load_example("scaling_out").main("compress", scale=80)
    out = capsys.readouterr().out
    assert "DOALL (3 threads)" in out
    assert "parallel-stage DSWP" in out
