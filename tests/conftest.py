"""Shared fixtures: canonical IR functions used across the test suite."""

from __future__ import annotations

import pytest

from repro.interp.memory import Memory
from repro.ir.builder import IRBuilder
from repro.ir.types import gen_reg, pred_reg


def build_list_of_lists():
    """The paper's Fig. 2(a) loop: sum a list of lists.

    Returns (function, outer-loop header label, registers dict).
    """
    b = IRBuilder("lol")
    r0, r1, r2, r3 = gen_reg(0), gen_reg(1), gen_reg(2), gen_reg(3)
    r_out = gen_reg(4)
    p1, p2 = pred_reg(1), pred_reg(2)
    b.block("entry", entry=True)
    b.mov(r0, imm=0)
    b.jmp("BB2")
    b.block("BB2")
    b.cmp_eq(p1, r1, imm=0)
    b.br(p1, "BB7", "BB3")
    b.block("BB3")
    b.load(r2, r1, offset=2, region="outer")
    b.jmp("BB4")
    b.block("BB4")
    b.cmp_eq(p2, r2, imm=0)
    b.br(p2, "BB6", "BB5")
    b.block("BB5")
    b.load(r3, r2, offset=3, region="inner")
    b.add(r0, r0, r3)
    b.load(r2, r2, offset=0, region="inner")
    b.jmp("BB4")
    b.block("BB6")
    b.load(r1, r1, offset=1, region="outer")
    b.jmp("BB2")
    b.block("BB7")
    b.store(r0, r_out, offset=0, region="result")
    b.ret()
    func = b.done()
    regs = {"sum": r0, "outer": r1, "inner": r2, "val": r3, "out": r_out,
            "p_outer": p1, "p_inner": p2}
    return func, "BB2", regs


def build_list_of_lists_memory(rng, count=20):
    """Memory image for the Fig. 2 loop; returns (memory, head, out, total)."""
    memory = Memory()
    total = 0
    inner_heads = []
    for _ in range(count):
        values = [rng.randrange(100) for _ in range(rng.randrange(1, 6))]
        total += sum(values)
        nodes = [memory.alloc(4) for _ in values]
        for addr, value in zip(nodes, values):
            memory.write(addr + 3, value)
        for cur, nxt in zip(nodes, nodes[1:]):
            memory.write(cur, nxt)
        memory.write(nodes[-1], 0)
        inner_heads.append(nodes[0])
    outer = [memory.alloc(4) for _ in inner_heads]
    for addr, inner in zip(outer, inner_heads):
        memory.write(addr + 2, inner)
    for cur, nxt in zip(outer, outer[1:]):
        memory.write(cur + 1, nxt)
    memory.write(outer[-1] + 1, 0)
    out_addr = memory.alloc(1)
    return memory, outer[0], out_addr, total


def build_counted_loop(n=10):
    """A simple counted loop: sum += arr[i] for i in range(n).

    Returns (function, header label, regs dict).
    """
    b = IRBuilder("counted")
    r_i, r_n, r_base, r_acc, r_v, r_addr, r_out = (
        gen_reg(0), gen_reg(1), gen_reg(2), gen_reg(3), gen_reg(4),
        gen_reg(5), gen_reg(6),
    )
    p = pred_reg(0)
    b.block("entry", entry=True)
    b.mov(r_i, imm=0)
    b.mov(r_acc, imm=0)
    b.jmp("header")
    b.block("header")
    b.cmp_ge(p, r_i, r_n)
    b.br(p, "exit", "body")
    b.block("body")
    b.add(r_addr, r_base, r_i)
    b.load(r_v, r_addr, offset=0, region="arr",
           attrs={"affine": True, "affine_base": "arr"})
    b.add(r_acc, r_acc, r_v)
    b.add(r_i, r_i, imm=1)
    b.jmp("header")
    b.block("exit")
    b.store(r_acc, r_out, offset=0, region="result")
    b.ret()
    func = b.done()
    regs = {"i": r_i, "n": r_n, "base": r_base, "acc": r_acc, "out": r_out}
    return func, "header", regs


@pytest.fixture
def lol():
    return build_list_of_lists()


@pytest.fixture
def counted():
    return build_counted_loop()
