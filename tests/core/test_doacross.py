"""Tests for the DOACROSS baseline transformation."""

import random

import pytest

from repro.core.doacross import DoacrossError, doacross
from repro.interp.interpreter import run_function
from repro.interp.memory import Memory
from repro.interp.multithread import run_threads
from repro.ir.builder import IRBuilder
from repro.ir.loops import find_loop_by_header
from repro.ir.verifier import verify_function
from repro.workloads import ListSumWorkload


@pytest.fixture
def list_case():
    return ListSumWorkload().build(scale=60)


class TestTransformation:
    def test_functional_equivalence(self, list_case):
        result = doacross(list_case.function, list_case.loop,
                          assume_no_carried_memory=True)
        seq_mem = list_case.fresh_memory()
        run_function(list_case.function, seq_mem,
                     initial_regs=list_case.initial_regs)
        par_mem = list_case.fresh_memory()
        run_threads(result.program, par_mem,
                    initial_regs=list_case.initial_regs)
        assert seq_mem.snapshot() == par_mem.snapshot()
        list_case.checker(par_mem, {})

    def test_threads_verify(self, list_case):
        result = doacross(list_case.function, list_case.loop,
                          assume_no_carried_memory=True)
        for fn in result.program.threads:
            verify_function(fn)

    def test_carried_registers_detected(self, list_case):
        result = doacross(list_case.function, list_case.loop,
                          assume_no_carried_memory=True)
        # The traversal pointer and the checksum are carried.
        assert len(result.carried) == 2

    @pytest.mark.parametrize("quantum", [1, 5, 64])
    def test_schedule_independence(self, list_case, quantum):
        result = doacross(list_case.function, list_case.loop,
                          assume_no_carried_memory=True)
        mem = list_case.fresh_memory()
        run_threads(result.program, mem, initial_regs=list_case.initial_regs,
                    quantum=quantum)
        list_case.checker(mem, {})

    def test_single_iteration_loop(self):
        case = ListSumWorkload().build(scale=1)
        result = doacross(case.function, case.loop,
                          assume_no_carried_memory=True)
        mem = case.fresh_memory()
        run_threads(result.program, mem, initial_regs=case.initial_regs)
        case.checker(mem, {})


class TestRestrictions:
    def test_carried_memory_dependence_rejected(self):
        """Same-region load/store without affine info: carried dep."""
        b = IRBuilder("carriedmem")
        r_p, r_v = b.reg(), b.reg()
        p = b.pred()
        b.block("entry", entry=True)
        b.jmp("h")
        b.block("h")
        b.load(r_p, r_p, offset=0, region="list")
        b.cmp_eq(p, r_p, imm=0)
        b.br(p, "exit", "body")
        b.block("body")
        b.load(r_v, r_p, offset=1, region="list")
        b.add(r_v, r_v, imm=1)
        b.store(r_v, r_p, offset=1, region="list")
        b.jmp("h")
        b.block("exit")
        b.ret()
        f = b.done()
        with pytest.raises(DoacrossError, match="memory dependence"):
            doacross(f, find_loop_by_header(f, "h"))

    def test_multiple_branches_rejected(self):
        b = IRBuilder("twobranch")
        r = b.reg()
        p1, p2 = b.pred(), b.pred()
        b.block("entry", entry=True)
        b.jmp("h")
        b.block("h")
        b.br(p1, "exit", "mid")
        b.block("mid")
        b.cmp_eq(p2, r, imm=0)
        b.br(p2, "a", "bq")
        b.block("a")
        b.jmp("latch")
        b.block("bq")
        b.jmp("latch")
        b.block("latch")
        b.add(r, r, imm=1)
        b.jmp("h")
        b.block("exit")
        b.ret()
        f = b.done()
        with pytest.raises(DoacrossError):
            doacross(f, find_loop_by_header(f, "h"),
                     assume_no_carried_memory=True)

    def test_loopless_function_rejected(self):
        b = IRBuilder("flat")
        b.block("entry", entry=True)
        b.ret()
        with pytest.raises(DoacrossError, match="no loops"):
            doacross(b.done())

    def test_live_out_not_carried_rejected(self):
        """A live-out defined every iteration but not carried."""
        b = IRBuilder("liveout")
        r_i, r_n, r_v, r_out = (b.reg() for _ in range(4))
        p = b.pred()
        b.block("entry", entry=True)
        b.jmp("h")
        b.block("h")
        b.cmp_ge(p, r_i, r_n)
        b.br(p, "exit", "body")
        b.block("body")
        b.mul(r_v, r_i, imm=3)  # defined each iteration, not carried
        b.add(r_i, r_i, imm=1)
        b.jmp("h")
        b.block("exit")
        b.store(r_v, r_out, offset=0, region="res")
        b.ret()
        f = b.done()
        with pytest.raises(DoacrossError, match="live-outs"):
            doacross(f, find_loop_by_header(f, "h"),
                     assume_no_carried_memory=True)
