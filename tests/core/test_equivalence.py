"""Semantic-equivalence tests: the DSWP pipeline must compute exactly
what the sequential loop computes.

Two layers:

* every workload in the suite, sequential vs. transformed, across
  queue capacities and scheduler quanta;
* property-based: randomly generated structured loops (arithmetic,
  branchy regions, loads/stores with mixed alias precision) are
  transformed with both the heuristic and randomly chosen valid
  partitions, and the final memory image must match the interpreter's.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dswp import dswp
from repro.core.partition import enumerate_two_way_partitions
from repro.interp.interpreter import run_function
from repro.interp.memory import Memory
from repro.interp.multithread import run_threads
from repro.ir.builder import IRBuilder
from repro.ir.loops import find_loop_by_header
from repro.ir.verifier import verify_reachable
from repro.workloads import ALL_WORKLOADS, get_workload

APPLICABLE = [w.name for w in ALL_WORKLOADS if w.name != "gzip"]


@pytest.mark.parametrize("name", APPLICABLE)
def test_workload_equivalence(name):
    workload = get_workload(name)
    case = workload.build(scale=100)
    seq_mem = case.fresh_memory()
    run_function(case.function, seq_mem, initial_regs=case.initial_regs,
                 max_steps=10_000_000)
    result = dswp(case.function, case.loop, require_profitable=False)
    assert result.applied, result.reason
    par_mem = case.fresh_memory()
    run_threads(result.program, par_mem, initial_regs=case.initial_regs,
                max_steps=20_000_000)
    assert seq_mem.snapshot() == par_mem.snapshot()
    case.checker(par_mem, {})


@pytest.mark.parametrize("capacity", [1, 3, 32])
def test_workload_equivalence_small_queues(capacity):
    case = get_workload("mcf").build(scale=60)
    result = dswp(case.function, case.loop, require_profitable=False)
    par_mem = case.fresh_memory()
    run_threads(result.program, par_mem, initial_regs=case.initial_regs,
                queue_capacity=capacity, max_steps=20_000_000)
    case.checker(par_mem, {})


# ----------------------------------------------------------------------
# Random structured loops
# ----------------------------------------------------------------------

ARRAY_WORDS = 64


class LoopSpec:
    """A generated loop description (kept for shrinking/debug output)."""

    def __init__(self, trip_count, segments, exit_stores):
        self.trip_count = trip_count
        self.segments = segments
        self.exit_stores = exit_stores

    def __repr__(self) -> str:
        return (
            f"LoopSpec(trips={self.trip_count}, "
            f"segments={self.segments}, exit={self.exit_stores})"
        )


_OPS = ["add", "sub", "mul", "xor", "and_", "or_"]

_stmt = st.one_of(
    st.tuples(
        st.just("alu"),
        st.sampled_from(_OPS),
        st.integers(0, 5),  # dest register index
        st.integers(0, 5),  # src register index
        st.integers(-7, 7),  # immediate
    ),
    st.tuples(
        st.just("alu2"),
        st.sampled_from(_OPS),
        st.integers(0, 5),
        st.integers(0, 5),
        st.integers(0, 5),
    ),
    st.tuples(
        st.just("load_affine"),
        st.integers(0, 5),          # dest
        st.sampled_from(["A", "B"]),
    ),
    st.tuples(
        st.just("load_indexed"),
        st.integers(0, 5),          # dest
        st.integers(0, 5),          # index register
        st.sampled_from(["A", "B"]),
    ),
    st.tuples(
        st.just("store_affine"),
        st.integers(0, 5),          # value register
        st.sampled_from(["A", "B"]),
    ),
    st.tuples(
        st.just("store_indexed"),
        st.integers(0, 5),
        st.integers(0, 5),
        st.sampled_from(["A", "B"]),
    ),
)

_segment = st.one_of(
    st.tuples(st.just("straight"), st.lists(_stmt, min_size=1, max_size=4)),
    st.tuples(
        st.just("ifelse"),
        st.integers(0, 5),   # condition register
        st.integers(-3, 3),  # compared against
        st.lists(_stmt, min_size=1, max_size=3),
        st.lists(_stmt, min_size=0, max_size=3),
    ),
)

loop_specs = st.builds(
    LoopSpec,
    st.integers(min_value=0, max_value=9),
    st.lists(_segment, min_size=1, max_size=3),
    st.lists(st.integers(0, 5), min_size=1, max_size=3),
)


def build_program(spec: LoopSpec):
    """Materialise a LoopSpec as IR + initial memory/registers."""
    b = IRBuilder("generated")
    data = [b.reg() for _ in range(6)]
    r_i, r_n = b.reg(), b.reg()
    base = {"A": b.reg(), "B": b.reg()}
    r_out = b.reg()
    r_tmp = b.reg()
    p_done = b.pred()
    label_counter = [0]

    def fresh_label(prefix):
        label_counter[0] += 1
        return f"{prefix}{label_counter[0]}"

    def emit_stmt(stmt):
        kind = stmt[0]
        if kind == "alu":
            _, op, d, s, imm = stmt
            getattr(b, op)(data[d], data[s], imm=imm)
        elif kind == "alu2":
            _, op, d, s1, s2 = stmt
            getattr(b, op)(data[d], data[s1], data[s2])
        elif kind == "load_affine":
            _, d, region = stmt
            b.add(r_tmp, base[region], r_i)
            b.load(data[d], r_tmp, offset=0, region=region,
                   attrs={"affine": True, "affine_base": region})
        elif kind == "load_indexed":
            _, d, idx, region = stmt
            b.and_(r_tmp, data[idx], imm=ARRAY_WORDS - 1)
            b.add(r_tmp, base[region], r_tmp)
            b.load(data[d], r_tmp, offset=0, region=region)
        elif kind == "store_affine":
            _, v, region = stmt
            b.add(r_tmp, base[region], r_i)
            b.store(data[v], r_tmp, offset=0, region=region,
                    attrs={"affine": True, "affine_base": region})
        elif kind == "store_indexed":
            _, v, idx, region = stmt
            b.and_(r_tmp, data[idx], imm=ARRAY_WORDS - 1)
            b.add(r_tmp, base[region], r_tmp)
            b.store(data[v], r_tmp, offset=0, region=region)
        else:  # pragma: no cover
            raise AssertionError(kind)

    b.block("entry", entry=True)
    b.jmp("header")
    b.block("header")
    b.cmp_ge(p_done, r_i, r_n)
    b.br(p_done, "exit", "seg0")

    current = "seg0"
    b.block(current)
    for segment in spec.segments:
        if segment[0] == "straight":
            for stmt in segment[1]:
                emit_stmt(stmt)
        else:
            _, cond, cval, then_stmts, else_stmts = segment
            then_l, else_l, join_l = (
                fresh_label("then"), fresh_label("else"), fresh_label("join"),
            )
            p = b.pred()
            b.cmp_gt(p, data[cond], imm=cval)
            b.br(p, then_l, else_l)
            b.block(then_l)
            for stmt in then_stmts:
                emit_stmt(stmt)
            b.jmp(join_l)
            b.block(else_l)
            for stmt in else_stmts:
                emit_stmt(stmt)
            b.jmp(join_l)
            b.block(join_l)
    b.add(r_i, r_i, imm=1)
    b.jmp("header")
    b.block("exit")
    for pos, reg_idx in enumerate(spec.exit_stores):
        b.store(data[reg_idx], r_out, offset=pos, region="out")
    b.ret()
    func = b.done()
    verify_reachable(func)

    memory = Memory()
    a_base = memory.store_array([(i * 37 + 11) % 251 for i in range(ARRAY_WORDS)])
    b_base = memory.store_array([(i * 73 + 5) % 241 for i in range(ARRAY_WORDS)])
    out_base = memory.alloc(8)
    initial = {r_i: 0, r_n: spec.trip_count, base["A"]: a_base,
               base["B"]: b_base, r_out: out_base}
    for k, reg in enumerate(data):
        initial[reg] = (k * 13 + 1) % 17
    return func, memory, initial


def _dswp_matches_sequential(spec, partition_choice, threads=2,
                             queue_capacity=None):
    func, memory, initial = build_program(spec)
    loop = find_loop_by_header(func, "header")
    seq_mem = memory.clone()
    run_function(func, seq_mem, initial_regs=initial, max_steps=1_000_000)

    result = dswp(func, loop, threads=threads, require_profitable=False)
    if not result.applied:
        return  # single-SCC graphs are legitimately declined
    if partition_choice is not None and threads == 2:
        options = enumerate_two_way_partitions(result.dag, limit=64)
        if options:
            chosen = options[partition_choice % len(options)]
            result = dswp(func, loop, partition=chosen,
                          require_profitable=False)
    par_mem = memory.clone()
    run_threads(result.program, par_mem, initial_regs=initial,
                max_steps=2_000_000, queue_capacity=queue_capacity)
    assert seq_mem.snapshot() == par_mem.snapshot(), spec


class TestRandomLoops:
    @settings(max_examples=60, deadline=None)
    @given(loop_specs)
    def test_heuristic_partition_equivalence(self, spec):
        _dswp_matches_sequential(spec, partition_choice=None)

    @settings(max_examples=60, deadline=None)
    @given(loop_specs, st.integers(min_value=0, max_value=1 << 16))
    def test_random_partition_equivalence(self, spec, choice):
        _dswp_matches_sequential(spec, partition_choice=choice)

    @settings(max_examples=25, deadline=None)
    @given(loop_specs)
    def test_three_thread_equivalence(self, spec):
        _dswp_matches_sequential(spec, partition_choice=None, threads=3)

    @settings(max_examples=25, deadline=None)
    @given(loop_specs, st.integers(min_value=1, max_value=4))
    def test_tiny_queue_equivalence(self, spec, capacity):
        _dswp_matches_sequential(spec, partition_choice=None,
                                 queue_capacity=capacity)
