"""Property tests: general unrolling preserves semantics on random
structured loops (reusing the generator from the equivalence suite),
and composes with DSWP."""

from hypothesis import given, settings, strategies as st

from repro.core.dswp import dswp
from repro.core.unroll import unroll_loop
from repro.interp.interpreter import run_function
from repro.interp.multithread import run_threads
from repro.ir.loops import find_loop_by_header
from repro.ir.verifier import verify_reachable

from tests.core.test_equivalence import build_program, loop_specs


@settings(max_examples=40, deadline=None)
@given(loop_specs, st.integers(min_value=1, max_value=5))
def test_unroll_preserves_semantics(spec, factor):
    func, memory, initial = build_program(spec)
    loop = find_loop_by_header(func, "header")
    unrolled = unroll_loop(func, loop, factor)
    verify_reachable(unrolled)
    seq = run_function(func, memory.clone(), initial_regs=initial,
                       max_steps=1_000_000)
    unr = run_function(unrolled, memory.clone(), initial_regs=initial,
                       max_steps=1_000_000)
    assert seq.memory.snapshot() == unr.memory.snapshot()


@settings(max_examples=20, deadline=None)
@given(loop_specs, st.integers(min_value=2, max_value=3))
def test_unroll_then_dswp_preserves_semantics(spec, factor):
    func, memory, initial = build_program(spec)
    loop = find_loop_by_header(func, "header")
    unrolled = unroll_loop(func, loop, factor)
    new_loop = find_loop_by_header(unrolled, "header")
    result = dswp(unrolled, new_loop, require_profitable=False)
    if not result.applied:
        return
    seq = run_function(func, memory.clone(), initial_regs=initial,
                       max_steps=1_000_000)
    par_mem = memory.clone()
    run_threads(result.program, par_mem, initial_regs=initial,
                max_steps=2_000_000)
    assert seq.memory.snapshot() == par_mem.snapshot()
