"""Tests for whole-program DSWP with the master-queue runtime (§3)."""

import pytest

from repro.core.program import dswp_program
from repro.interp.interpreter import run_function
from repro.interp.memory import Memory
from repro.interp.multithread import run_threads
from repro.ir.builder import IRBuilder
from repro.ir.types import Opcode
from repro.ir.verifier import verify_function


def two_loop_function():
    """Loop 1 scales an array; loop 2 sums the result."""
    b = IRBuilder("twoloops")
    r_i, r_n, r_base, r_v, r_addr = (b.reg() for _ in range(5))
    r_j, r_acc, r_out = (b.reg() for _ in range(3))
    p1, p2 = b.pred(), b.pred()
    affine = {"affine": True, "affine_base": "arr"}

    b.block("entry", entry=True)
    b.mov(r_i, imm=0)
    b.jmp("h1")
    b.block("h1")
    b.cmp_ge(p1, r_i, r_n)
    b.br(p1, "mid", "body1")
    b.block("body1")
    b.add(r_addr, r_base, r_i)
    b.load(r_v, r_addr, offset=0, region="arr", attrs=dict(affine))
    b.mul(r_v, r_v, imm=3)
    b.add(r_v, r_v, imm=1)
    b.store(r_v, r_addr, offset=0, region="arr", attrs=dict(affine))
    b.add(r_i, r_i, imm=1)
    b.jmp("h1")
    b.block("mid")
    b.mov(r_j, imm=0)
    b.mov(r_acc, imm=0)
    b.jmp("h2")
    b.block("h2")
    b.cmp_ge(p2, r_j, r_n)
    b.br(p2, "exit", "body2")
    b.block("body2")
    b.add(r_addr, r_base, r_j)
    b.load(r_v, r_addr, offset=0, region="arr", attrs=dict(affine))
    b.xor(r_v, r_v, r_j)
    b.add(r_acc, r_acc, r_v)
    b.add(r_j, r_j, imm=1)
    b.jmp("h2")
    b.block("exit")
    b.store(r_acc, r_out, offset=0, region="result")
    b.ret()
    func = b.done()
    return func, {"n": r_n, "base": r_base, "out": r_out}


@pytest.fixture
def two_loops():
    func, regs = two_loop_function()
    memory = Memory()
    base = memory.store_array([(i * 11 + 4) % 97 for i in range(30)])
    out = memory.alloc(1)
    initial = {regs["n"]: 30, regs["base"]: base, regs["out"]: out}
    return func, memory, initial, out


class TestDswpProgram:
    def test_both_loops_transformed(self, two_loops):
        func, memory, initial, _ = two_loops
        result = dswp_program(func, ["h1", "h2"])
        assert len(result.applied_loops) == 2
        assert [t.loop_id for t in result.applied_loops] == [1, 2]
        assert len(result.program) == 2  # one shared auxiliary thread

    def test_functional_equivalence(self, two_loops):
        func, memory, initial, out = two_loops
        seq = run_function(func, memory.clone(), initial_regs=initial)
        result = dswp_program(func, ["h1", "h2"])
        par = run_threads(result.program, memory.clone(), initial_regs=initial)
        assert seq.memory.snapshot() == par.memory.snapshot()
        assert par.memory.read(out) == seq.memory.read(out)

    def test_threads_verify(self, two_loops):
        func, *_ = two_loops
        result = dswp_program(func, ["h1", "h2"])
        for fn in result.program.threads:
            verify_function(fn)

    def test_master_queue_protocol(self, two_loops):
        """The aux thread must see ids 1, 2, 0 on its master queue."""
        func, memory, initial, _ = two_loops
        result = dswp_program(func, ["h1", "h2"])
        aux = result.program.threads[1]
        # One consume from the master queue in the dispatch loop.
        mq = result.master_queues[1]
        master_consumes = [
            i for i in aux.instructions()
            if i.opcode is Opcode.CONSUME and i.queue == mq
        ]
        assert len(master_consumes) == 1
        # Main produces on the master queue three times: loop1, loop2,
        # terminate.
        main = result.program.threads[0]
        produces = [
            i for i in main.instructions()
            if i.opcode is Opcode.PRODUCE and i.queue == mq
        ]
        assert len(produces) == 3

    def test_sections_renamed(self, two_loops):
        func, *_ = two_loops
        result = dswp_program(func, ["h1", "h2"])
        aux = result.program.threads[1]
        labels = {b.label for b in aux.blocks()}
        assert "master" in labels
        assert any(l.startswith("L1_") for l in labels)
        assert any(l.startswith("L2_") for l in labels)

    def test_default_headers_pick_all_loops(self, two_loops):
        func, memory, initial, _ = two_loops
        result = dswp_program(func)
        assert len(result.applied_loops) == 2

    def test_schedule_independence(self, two_loops):
        func, memory, initial, out = two_loops
        result = dswp_program(func, ["h1", "h2"])
        values = set()
        for quantum in (1, 3, 64):
            par = run_threads(result.program, memory.clone(),
                              initial_regs=initial, quantum=quantum)
            values.add(par.memory.read(out))
        assert len(values) == 1


class TestPartialApplication:
    def test_single_scc_loop_left_sequential(self):
        """A gzip-like serialised loop stays in the main thread; the
        other loop is still transformed."""
        from repro.workloads import GzipWorkload
        b = IRBuilder("mixed")
        r_i, r_n, r_base, r_v, r_addr, r_out = (b.reg() for _ in range(6))
        r_h = b.reg()
        p1, p2 = b.pred(), b.pred()
        b.block("entry", entry=True)
        b.mov(r_i, imm=0)
        b.jmp("h1")
        b.block("h1")
        b.cmp_ge(p1, r_i, r_n)
        b.br(p1, "mid", "body1")
        b.block("body1")
        b.add(r_addr, r_base, r_i)
        b.load(r_v, r_addr, offset=0, region="arr",
               attrs={"affine": True, "affine_base": "arr"})
        b.add(r_v, r_v, imm=7)
        b.store(r_v, r_addr, offset=0, region="arr",
                attrs={"affine": True, "affine_base": "arr"})
        b.add(r_i, r_i, imm=1)
        b.jmp("h1")
        # Second loop: pure serialised recurrence (single SCC).
        b.block("mid")
        b.jmp("h2")
        b.block("h2")
        b.cmp_eq(p2, r_h, imm=0)
        b.br(p2, "exit", "body2")
        b.block("body2")
        b.mul(r_h, r_h, imm=5)
        b.and_(r_h, r_h, imm=255)
        b.sub(r_h, r_h, imm=1)
        b.jmp("h2")
        b.block("exit")
        b.store(r_h, r_out, offset=0, region="res")
        b.ret()
        func = b.done()

        result = dswp_program(func, ["h1", "h2"])
        applied = result.applied_loops
        assert len(applied) == 1
        assert applied[0].header == "h1"
        declined = [t for t in result.loops if not t.applied]
        assert declined[0].reason == "single SCC"

        memory = Memory()
        base = memory.store_array(list(range(20)))
        out = memory.alloc(1)
        initial = {r_n: 20, r_base: base, r_out: out, r_h: 7}
        seq = run_function(func, memory.clone(), initial_regs=initial)
        par = run_threads(result.program, memory.clone(), initial_regs=initial)
        assert seq.memory.snapshot() == par.memory.snapshot()
