"""Tests for flow planning: deduplication, queue allocation, counts."""

import pytest

from repro.core.flows import FlowKind, FlowPlan, QueueAllocator
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg, pred_reg


def some_inst():
    return Instruction(Opcode.ADD, dest=gen_reg(0), srcs=[gen_reg(1)], imm=1)


def some_branch():
    return Instruction(Opcode.BR, srcs=[pred_reg(0)], targets=["a", "b"])


class TestQueueAllocator:
    def test_sequential_ids(self):
        alloc = QueueAllocator()
        assert [alloc.allocate() for _ in range(3)] == [0, 1, 2]
        assert alloc.used == 3

    def test_limit_enforced(self):
        alloc = QueueAllocator(limit=2)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(RuntimeError, match="exhausted"):
            alloc.allocate()


class TestDeduplication:
    def test_data_flow_deduped_per_source_register_thread(self):
        plan = FlowPlan()
        src = some_inst()
        a = plan.add_data_flow(src, gen_reg(0), 0, 1)
        b = plan.add_data_flow(src, gen_reg(0), 0, 1)
        assert a is b
        assert len(plan.loop_flows) == 1

    def test_data_flow_distinct_threads_get_distinct_queues(self):
        plan = FlowPlan()
        src = some_inst()
        a = plan.add_data_flow(src, gen_reg(0), 0, 1)
        c = plan.add_data_flow(src, gen_reg(0), 0, 2)
        assert a.queue != c.queue

    def test_control_flow_deduped(self):
        plan = FlowPlan()
        br = some_branch()
        a = plan.add_control_flow(br, 0, 1)
        b = plan.add_control_flow(br, 0, 1)
        assert a is b
        assert a.kind is FlowKind.CONTROL
        assert a.register is pred_reg(0)

    def test_memory_flow_deduped_per_thread(self):
        plan = FlowPlan()
        st_inst = Instruction(Opcode.STORE, srcs=[gen_reg(0), gen_reg(1)], imm=0)
        a = plan.add_memory_flow(st_inst, 0, 1)
        b = plan.add_memory_flow(st_inst, 0, 1)
        assert a is b
        assert a.register is None

    def test_boundary_flows_deduped(self):
        plan = FlowPlan()
        a = plan.add_initial_flow(gen_reg(3), 1)
        b = plan.add_initial_flow(gen_reg(3), 1)
        assert a is b
        x = plan.add_final_flow(gen_reg(3), 1)
        y = plan.add_final_flow(gen_reg(3), 1)
        assert x is y
        assert x.queue != a.queue


class TestQueries:
    def test_loop_flows_from_sorted_by_queue(self):
        plan = FlowPlan()
        src = some_inst()
        f1 = plan.add_data_flow(src, gen_reg(0), 0, 1)
        f2 = plan.add_memory_flow(src, 0, 1)
        flows = plan.loop_flows_from(src)
        assert flows == sorted([f1, f2], key=lambda f: f.queue)

    def test_counts(self):
        plan = FlowPlan()
        src = some_inst()
        plan.add_data_flow(src, gen_reg(0), 0, 1)
        plan.add_control_flow(some_branch(), 0, 1)
        plan.add_initial_flow(gen_reg(1), 1)
        plan.add_final_flow(gen_reg(2), 1)
        assert plan.counts() == {"initial": 1, "loop": 2, "final": 1}
