"""Tests for parallel-stage DSWP (the PS-DSWP anticipation)."""

import pytest

from repro.core.parallel_stage import ParallelStageError, parallel_stage_dswp
from repro.interp.interpreter import run_function
from repro.interp.multithread import run_threads
from repro.ir.types import Opcode
from repro.ir.verifier import verify_function
from repro.workloads import get_workload

REPLICABLE = ("compress", "jpegenc", "equake", "art", "epicdec")
NOT_REPLICABLE = {
    "mcf": "loop-carried",
    "ammp": "loop-carried",
    "wc": "not a reduction",
    "bzip2": "not a reduction",
    "adpcmdec": "not a reduction",
    "gzip": "DSWP itself declined",
}


@pytest.mark.parametrize("name", REPLICABLE)
class TestReplicates:
    def test_functional_equivalence(self, name):
        case = get_workload(name).build(scale=97)
        result = parallel_stage_dswp(case.function, case.loop, replicas=2)
        assert len(result.program) == 3  # producer + 2 replicas
        for fn in result.program.threads:
            verify_function(fn)
        seq = run_function(case.function, case.fresh_memory(),
                           initial_regs=case.initial_regs)
        par_mem = case.fresh_memory()
        run_threads(result.program, par_mem, initial_regs=case.initial_regs,
                    max_steps=20_000_000)
        assert seq.memory.snapshot() == par_mem.snapshot()
        case.checker(par_mem, {})

    @pytest.mark.parametrize("scale", [1, 2, 3, 5])
    def test_edge_trip_counts(self, name, scale):
        """Trip counts around (and below) the replica count."""
        case = get_workload(name).build(scale=scale)
        result = parallel_stage_dswp(case.function, case.loop, replicas=2)
        par_mem = case.fresh_memory()
        run_threads(result.program, par_mem, initial_regs=case.initial_regs,
                    max_steps=20_000_000)
        case.checker(par_mem, {})

    def test_three_replicas(self, name):
        case = get_workload(name).build(scale=80)
        result = parallel_stage_dswp(case.function, case.loop, replicas=3)
        assert len(result.program) == 4
        par_mem = case.fresh_memory()
        run_threads(result.program, par_mem, initial_regs=case.initial_regs,
                    max_steps=20_000_000)
        case.checker(par_mem, {})

    @pytest.mark.parametrize("quantum", [1, 13, 64])
    def test_schedule_independence(self, name, quantum):
        case = get_workload(name).build(scale=40)
        result = parallel_stage_dswp(case.function, case.loop, replicas=2)
        par_mem = case.fresh_memory()
        run_threads(result.program, par_mem, initial_regs=case.initial_regs,
                    quantum=quantum, max_steps=20_000_000)
        case.checker(par_mem, {})


@pytest.mark.parametrize("name,reason", sorted(NOT_REPLICABLE.items()))
def test_unsafe_stages_declined(name, reason):
    case = get_workload(name).build(scale=30)
    with pytest.raises(ParallelStageError, match=reason):
        parallel_stage_dswp(case.function, case.loop, replicas=2)


class TestStructure:
    def test_producer_deals_round_robin(self):
        case = get_workload("jpegenc").build(scale=20)
        result = parallel_stage_dswp(case.function, case.loop, replicas=2)
        main = result.program.threads[0]
        copy0 = {i.queue for b in main.blocks() if b.label == "body"
                 for i in b if i.opcode is Opcode.PRODUCE}
        copy1 = {i.queue for b in main.blocks() if b.label == "body@u1"
                 for i in b if i.opcode is Opcode.PRODUCE}
        assert copy0 and copy1
        assert not (copy0 & copy1), "copies must use disjoint queue sets"

    def test_replicas_use_disjoint_queues(self):
        case = get_workload("jpegenc").build(scale=20)
        result = parallel_stage_dswp(case.function, case.loop, replicas=2)
        queues = []
        for replica in result.program.threads[1:]:
            queues.append({
                i.queue for i in replica.instructions()
                if i.is_flow and i.queue is not None
            })
        assert not (queues[0] & queues[1])

    def test_localised_induction_not_streamed(self):
        """When the output index crosses the cut, each replica
        recomputes it locally instead of consuming a (misaligned)
        carried stream.  Force a cut that keeps only the induction SCC
        in the producer so the crossing is guaranteed."""
        from repro.core.dswp import dswp
        from repro.core.partition import Partition
        from repro.interp.interpreter import run_function
        from repro.interp.multithread import run_threads

        case = get_workload("compress").build(scale=21)
        probe = dswp(case.function, case.loop, require_profitable=False)
        dag = probe.dag
        induction_scc = next(
            sid for sid, members in enumerate(dag.sccs)
            if any(m.is_branch for m in members)
        )
        cut = Partition(dag, [{induction_scc},
                              set(range(len(dag))) - {induction_scc}])
        result = parallel_stage_dswp(case.function, case.loop,
                                     replicas=2, partition=cut)
        localised_adds = [
            i
            for replica in result.program.threads[1:]
            for i in replica.instructions()
            if i.opcode is Opcode.ADD and i.imm == 2 and i.srcs == [i.dest]
        ]
        assert localised_adds, "replicas should step the induction by 2"
        seq = run_function(case.function, case.fresh_memory(),
                           initial_regs=case.initial_regs)
        par_mem = case.fresh_memory()
        run_threads(result.program, par_mem, initial_regs=case.initial_regs,
                    max_steps=20_000_000)
        assert seq.memory.snapshot() == par_mem.snapshot()

    def test_reduction_partials_combined(self):
        case = get_workload("art").build(scale=30)
        result = parallel_stage_dswp(case.function, case.loop, replicas=2)
        assert result.reductions
        main = result.program.threads[0]
        staging = [b for b in main.blocks()
                   if b.label.startswith("dswp_exit_")]
        assert staging
        consumes = [i for i in staging[0] if i.opcode is Opcode.CONSUME]
        assert len(consumes) == 2  # one partial per replica


def test_single_replica_rejected():
    case = get_workload("jpegenc").build(scale=10)
    with pytest.raises(ParallelStageError, match="two replicas"):
        parallel_stage_dswp(case.function, case.loop, replicas=1)
