"""Splitter edge cases: multi-exit loops, cross-thread memory tokens,
conditional definitions, and empty-header threads."""

import pytest

from repro.analysis.pdg import build_dependence_graph, DepKind
from repro.core.dswp import dswp
from repro.core.partition import Partition, enumerate_two_way_partitions
from repro.core.splitter import split_loop
from repro.interp.interpreter import run_function
from repro.interp.memory import Memory
from repro.interp.multithread import run_threads
from repro.ir.builder import IRBuilder
from repro.ir.loops import find_loop_by_header
from repro.ir.types import Opcode
from repro.ir.verifier import verify_function


def run_all_cuts(func, header, memory, initial, max_cuts=16):
    """Transform with every enumerated 2-way cut and check equivalence."""
    loop = find_loop_by_header(func, header)
    seq = run_function(func, memory.clone(), initial_regs=initial,
                       max_steps=2_000_000)
    probe = dswp(func, loop, require_profitable=False)
    assert probe.applied, probe.reason
    cuts = enumerate_two_way_partitions(probe.dag, limit=max_cuts)
    assert cuts
    for cut in cuts:
        result = dswp(func, loop, partition=cut, require_profitable=False)
        for fn in result.program.threads:
            verify_function(fn)
        for quantum in (1, 17, 64):
            par = run_threads(result.program, memory.clone(),
                              initial_regs=initial, quantum=quantum,
                              max_steps=4_000_000)
            assert seq.memory.snapshot() == par.memory.snapshot(), (
                f"cut {cut} quantum {quantum}"
            )
    return len(cuts)


class TestMultiExitLoops:
    def test_two_distinct_exit_targets(self):
        """A loop that exits to two different continuations; the main
        thread must retarget each exit edge to the right post-loop
        code (with final-flow staging on both)."""
        b = IRBuilder("multiexit")
        r_i, r_n, r_acc, r_out = (b.reg() for _ in range(4))
        p_done, p_big = b.pred(), b.pred()
        b.block("entry", entry=True)
        b.mov(r_i, imm=0)
        b.mov(r_acc, imm=0)
        b.jmp("header")
        b.block("header")
        b.cmp_ge(p_done, r_i, r_n)
        b.br(p_done, "normal_exit", "body")
        b.block("body")
        r_v = b.reg()
        b.mul(r_v, r_i, imm=13)
        b.and_(r_v, r_v, imm=63)
        b.mul(r_acc, r_acc, imm=3)
        b.add(r_acc, r_acc, r_v)
        b.and_(r_acc, r_acc, imm=0xFFFF)
        b.cmp_eq(p_big, r_v, imm=17)
        b.br(p_big, "overflow_exit", "latch")
        b.block("latch")
        b.add(r_i, r_i, imm=1)
        b.jmp("header")
        b.block("normal_exit")
        b.store(r_acc, r_out, offset=0, region="res")
        b.ret()
        b.block("overflow_exit")
        b.store(r_acc, r_out, offset=1, region="res")
        b.store(r_i, r_out, offset=2, region="res")
        b.ret()
        func = b.done()
        memory = Memory()
        out = memory.alloc(4)
        cuts = run_all_cuts(func, "header", memory,
                            {r_n: 40, r_out: out})
        assert cuts >= 1

    def test_exit_choice_depends_on_aux_value(self):
        """The overflow exit's condition is computed in whichever
        thread owns the accumulator; the main thread must still resume
        at the correct continuation."""
        # Same CFG as above -- run_all_cuts already sweeps partitions
        # where the accumulator lands in the auxiliary thread.


class TestMemoryTokens:
    def _store_load_loop(self):
        """stage-crossing memory ordering: the same cell is written
        then read within each iteration."""
        b = IRBuilder("tokens")
        r_i, r_n, r_base, r_v, r_w, r_addr, r_out, r_acc = (
            b.reg() for _ in range(8)
        )
        p = b.pred()
        affine = {"affine": True, "affine_base": "scratch"}
        b.block("entry", entry=True)
        b.mov(r_i, imm=0)
        b.mov(r_acc, imm=0)
        b.jmp("header")
        b.block("header")
        b.cmp_ge(p, r_i, r_n)
        b.br(p, "exit", "body")
        b.block("body")
        b.add(r_addr, r_base, r_i)
        b.mul(r_v, r_i, imm=7)
        b.store(r_v, r_addr, offset=0, region="scratch", attrs=dict(affine))
        b.load(r_w, r_addr, offset=0, region="scratch", attrs=dict(affine))
        b.add(r_acc, r_acc, r_w)
        b.add(r_i, r_i, imm=1)
        b.jmp("header")
        b.block("exit")
        b.store(r_acc, r_out, offset=0, region="res")
        b.ret()
        return b.done(), {"n": r_n, "base": r_base, "out": r_out}

    def test_intra_iteration_store_load_dependence_exists(self):
        func, regs = self._store_load_loop()
        loop = find_loop_by_header(func, "header")
        graph = build_dependence_graph(func, loop)
        mem_arcs = [a for a in graph.arcs if a.kind is DepKind.MEMORY]
        assert any(a.src.is_store and a.dst.is_load and not a.loop_carried
                   for a in mem_arcs)

    def test_cross_thread_token_preserves_ordering(self):
        """Force the store and the load into different stages; the
        token flow must order them under every scheduler quantum."""
        func, regs = self._store_load_loop()
        memory = Memory()
        base = memory.alloc(64)
        out = memory.alloc(1)
        initial = {regs["n"]: 50, regs["base"]: base, regs["out"]: out}
        loop = find_loop_by_header(func, "header")
        probe = dswp(func, loop, require_profitable=False)
        store_scc = probe.dag.scc_of()[
            next(n for n in probe.graph.nodes
                 if n.is_store and n.region == "scratch")
        ]
        load_scc = probe.dag.scc_of()[
            next(n for n in probe.graph.nodes if n.is_load)
        ]
        split_cut = None
        for cut in enumerate_two_way_partitions(probe.dag, limit=64):
            stage_of = cut.stage_of_scc()
            if stage_of[store_scc] == 0 and stage_of[load_scc] == 1:
                split_cut = cut
                break
        assert split_cut is not None, "no cut separates store from load"
        result = dswp(func, loop, partition=split_cut,
                      require_profitable=False)
        tokens = [
            f for f in result.flow_plan.loop_flows
            if f.register is None and f.kind.name == "MEMORY"
        ]
        assert tokens, "expected a memory-ordering token flow"
        seq = run_function(func, memory.clone(), initial_regs=initial)
        for quantum in (1, 2, 5, 64):
            par = run_threads(result.program, memory.clone(),
                              initial_regs=initial, quantum=quantum)
            assert seq.memory.snapshot() == par.memory.snapshot()


class TestConditionalDefinitions:
    def test_conditionally_updated_live_out(self):
        """A live-out updated on some iterations only; the auxiliary
        thread's copy is seeded with the pre-loop value (initial flow)
        so the final flow is correct on every path."""
        b = IRBuilder("condliveout")
        r_i, r_n, r_best, r_out = (b.reg() for _ in range(4))
        r_v = b.reg()
        p_done, p_better = b.pred(), b.pred()
        b.block("entry", entry=True)
        b.mov(r_i, imm=0)
        b.mov(r_best, imm=5)  # sentinel best value
        b.jmp("header")
        b.block("header")
        b.cmp_ge(p_done, r_i, r_n)
        b.br(p_done, "exit", "body")
        b.block("body")
        b.mul(r_v, r_i, imm=13)
        b.and_(r_v, r_v, imm=63)
        b.cmp_gt(p_better, r_v, r_best)
        b.br(p_better, "update", "latch")
        b.block("update")
        b.mov(r_best, r_v)
        b.jmp("latch")
        b.block("latch")
        b.add(r_i, r_i, imm=1)
        b.jmp("header")
        b.block("exit")
        b.store(r_best, r_out, offset=0, region="res")
        b.ret()
        func = b.done()
        memory = Memory()
        out = memory.alloc(1)
        # n=0 exercises the never-updated path (sentinel flows back).
        for n in (0, 1, 30):
            run_all_cuts(func, "header", memory, {b.reg(): 0, r_n: n,
                                                  r_out: out}, max_cuts=8)
