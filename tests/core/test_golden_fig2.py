"""Golden test: the Fig. 2 running example's transformed threads.

Pins down the exact code the splitter generates for the paper's
list-of-lists loop under the paper's partition, so any change to
consume placement, branch duplication, retargeting, or queue
allocation shows up as a diff here.
"""

from repro.analysis.pdg import build_dependence_graph
from repro.core.splitter import split_loop
from repro.ir.loops import find_loop_by_header
from repro.ir.printer import render_function

from tests.conftest import build_list_of_lists
from tests.core.test_splitter import paper_partition

EXPECTED_MAIN = """\
func lol@main entry=entry
entry:
    mov r0 = 0
    produce [2] = r0
    jmp BB2
BB2:
    cmp.eq p1 = r1, 0
    produce [1] = p1
    br p1, dswp_exit_0, BB3
BB3:
    load r2 = [r1 + 2] !outer
    produce [0] = r2
    jmp BB6
BB6:
    load r1 = [r1 + 1] !outer
    jmp BB2
BB7:
    store [r4 + 0] = r0 !result
    ret
dswp_exit_0:
    consume r0 = [3]
    jmp BB7
"""

EXPECTED_AUX = """\
func lol@t1 entry=entry
entry:
    consume r0 = [2]
    jmp BB2
BB2:
    consume p1 = [1]
    br p1, post, BB3
BB3:
    consume r2 = [0]
    jmp BB4
BB4:
    cmp.eq p2 = r2, 0
    br p2, BB2, BB5
BB5:
    load r3 = [r2 + 3] !inner
    add r0 = r0, r3
    load r2 = [r2 + 0] !inner
    jmp BB4
post:
    produce [3] = r0
    ret
"""


def test_fig2_transformed_threads_golden():
    func, header, _ = build_list_of_lists()
    loop = find_loop_by_header(func, header)
    graph = build_dependence_graph(func, loop)
    result = split_loop(func, loop, graph, paper_partition(graph))
    main, aux = result.program.threads
    assert render_function(main) == EXPECTED_MAIN
    assert render_function(aux) == EXPECTED_AUX
