"""Failure-injection tests: corrupting a transformed pipeline must be
*detected* (deadlock, protocol error, or wrong-result assertion), never
silently tolerated.  These tests establish that the equivalence suite's
green results are meaningful -- the machinery notices when the queue
discipline is broken."""

import pytest

from repro.core.dswp import dswp
from repro.interp.errors import DeadlockError, QueueProtocolError
from repro.interp.multithread import run_threads
from repro.ir.loops import find_loop_by_header
from repro.ir.types import Opcode
from repro.workloads import get_workload


@pytest.fixture
def transformed():
    case = get_workload("listoflists").build(scale=30)
    result = dswp(case.function, case.loop, require_profitable=False)
    assert result.applied
    return case, result


def find_flow(program, opcode, queue=None):
    for fn in program.threads:
        for block in fn.blocks():
            for inst in block:
                if inst.opcode is opcode and (
                    queue is None or inst.queue == queue
                ):
                    return fn, block, inst
    raise AssertionError("flow instruction not found")


class TestDroppedFlows:
    def test_dropped_produce_detected(self, transformed):
        """Removing a loop produce starves the consumer: the run must
        end in a deadlock or protocol error, not a wrong answer."""
        case, result = transformed
        loop_flow = result.flow_plan.loop_flows[0]
        fn, block, inst = find_flow(result.program, Opcode.PRODUCE,
                                    loop_flow.queue)
        block.instructions.remove(inst)
        with pytest.raises((DeadlockError, QueueProtocolError)):
            run_threads(result.program, case.fresh_memory(),
                        initial_regs=case.initial_regs, max_steps=4_000_000)

    def test_dropped_consume_detected_or_flagged(self, transformed):
        """Removing a consume leaves the register stale; either the
        oracle or the leftover-queue check must notice."""
        case, result = transformed
        loop_flow = next(f for f in result.flow_plan.loop_flows
                         if f.register is not None)
        fn, block, inst = find_flow(result.program, Opcode.CONSUME,
                                    loop_flow.queue)
        block.instructions.remove(inst)
        try:
            mt = run_threads(result.program, case.fresh_memory(),
                             initial_regs=case.initial_regs,
                             max_steps=4_000_000)
        except (DeadlockError, QueueProtocolError):
            return
        with pytest.raises(AssertionError):
            case.checker(mt.memory, mt.main_regs)

    def test_dropped_initial_flow_detected(self, transformed):
        case, result = transformed
        init = result.flow_plan.initial_flows[0]
        fn, block, inst = find_flow(result.program, Opcode.PRODUCE,
                                    init.queue)
        block.instructions.remove(inst)
        with pytest.raises((DeadlockError, QueueProtocolError)):
            run_threads(result.program, case.fresh_memory(),
                        initial_regs=case.initial_regs, max_steps=4_000_000)


class TestCorruptedQueues:
    def test_crossed_queue_ids_detected(self, transformed):
        """Rerouting a produce onto another queue breaks the in-order
        matching; the run must not silently produce the right answer
        by luck."""
        case, result = transformed
        flows = result.flow_plan.loop_flows
        if len(flows) < 2:
            pytest.skip("needs two loop flows")
        a, b = flows[0], flows[1]
        fn, block, inst = find_flow(result.program, Opcode.PRODUCE, a.queue)
        inst.queue = b.queue
        try:
            mt = run_threads(result.program, case.fresh_memory(),
                             initial_regs=case.initial_regs,
                             max_steps=4_000_000)
        except (DeadlockError, QueueProtocolError):
            return
        with pytest.raises(AssertionError):
            case.checker(mt.memory, mt.main_regs)

    def test_duplicated_produce_detected(self, transformed):
        """An extra produce desynchronises the FIFO pairing."""
        case, result = transformed
        loop_flow = next(f for f in result.flow_plan.loop_flows
                         if f.register is not None)
        fn, block, inst = find_flow(result.program, Opcode.PRODUCE,
                                    loop_flow.queue)
        from repro.ir.instruction import Instruction
        block.insert_after(inst, Instruction(
            Opcode.PRODUCE, srcs=list(inst.srcs), queue=inst.queue
        ))
        try:
            mt = run_threads(result.program, case.fresh_memory(),
                             initial_regs=case.initial_regs,
                             max_steps=4_000_000)
        except (DeadlockError, QueueProtocolError):
            return
        with pytest.raises(AssertionError):
            case.checker(mt.memory, mt.main_regs)


class TestTimingDomainDetection:
    def test_timing_simulation_rejects_starved_consume(self, transformed):
        """The cycle-level co-simulation also detects a missing
        producer (SimulationDeadlock), mirroring the functional check."""
        from repro.interp.trace import TraceEntry
        from repro.ir.instruction import Instruction
        from repro.machine.cmp import SimulationDeadlock, simulate
        from repro.ir.types import gen_reg

        orphan = [TraceEntry(
            Instruction(Opcode.CONSUME, dest=gen_reg(0), queue=99)
        )]
        busy = [TraceEntry(Instruction(
            Opcode.ADD, dest=gen_reg(1), srcs=[gen_reg(1)], imm=1
        ))]
        with pytest.raises(SimulationDeadlock):
            simulate([busy, orphan])
