"""Tests for speculative loop-termination DSWP (§5.4 extension)."""

import pytest

from repro.core.dswp import dswp
from repro.core.speculation import (
    SpeculationError,
    speculative_dswp,
)
from repro.interp.interpreter import run_function
from repro.interp.multithread import run_threads
from repro.ir.builder import IRBuilder
from repro.ir.loops import find_loop_by_header
from repro.ir.types import Opcode
from repro.ir.verifier import verify_function
from repro.workloads import GzipMatchWorkload, GzipWorkload, get_workload


@pytest.fixture(scope="module")
def gzip_case():
    return GzipWorkload().build(scale=200)


@pytest.fixture(scope="module")
def match_case():
    return GzipMatchWorkload().build(scale=200)


class TestApplicability:
    def test_plain_dswp_declines_gzip(self, gzip_case):
        result = dswp(gzip_case.function, gzip_case.loop,
                      require_profitable=False)
        assert not result.applied

    def test_speculation_applies_to_gzip(self, gzip_case):
        result = speculative_dswp(gzip_case.function, gzip_case.loop)
        assert len(result.program) == 2
        assert result.speculated_branches
        for fn in result.program.threads:
            verify_function(fn)

    def test_producer_slice_is_side_effect_free(self, match_case):
        result = speculative_dswp(match_case.function, match_case.loop)
        assert all(not inst.is_store and not inst.is_call
                   for inst in result.producer_instructions)

    def test_detection_stays_with_consumer(self, match_case):
        """The exit compares and branches live in the main thread."""
        result = speculative_dswp(match_case.function, match_case.loop)
        producer = result.program.threads[1]
        branches = [i for i in producer.instructions() if i.is_branch]
        # Exactly one branch: the credit stop-check.
        assert len(branches) == 1


class TestCorrectness:
    @pytest.mark.parametrize("window", [1, 2, 8, 31])
    def test_equivalence_across_windows(self, gzip_case, window):
        result = speculative_dswp(gzip_case.function, gzip_case.loop,
                                  window=window)
        seq = run_function(gzip_case.function, gzip_case.fresh_memory(),
                           initial_regs=gzip_case.initial_regs)
        par_mem = gzip_case.fresh_memory()
        run_threads(result.program, par_mem,
                    initial_regs=gzip_case.initial_regs)
        assert seq.memory.snapshot() == par_mem.snapshot()
        gzip_case.checker(par_mem, {})

    def test_match_loop_equivalence(self, match_case):
        result = speculative_dswp(match_case.function, match_case.loop)
        seq = run_function(match_case.function, match_case.fresh_memory(),
                           initial_regs=match_case.initial_regs)
        par_mem = match_case.fresh_memory()
        run_threads(result.program, par_mem,
                    initial_regs=match_case.initial_regs)
        assert seq.memory.snapshot() == par_mem.snapshot()
        match_case.checker(par_mem, {})

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_varied_exit_reasons(self, seed):
        """Different seeds exit via h==0, the step limit, or the
        sentinel probe; all must reconcile."""
        case = GzipMatchWorkload().build(scale=150, seed=seed)
        result = speculative_dswp(case.function, case.loop, window=4)
        par_mem = case.fresh_memory()
        run_threads(result.program, par_mem, initial_regs=case.initial_regs)
        case.checker(par_mem, {})

    @pytest.mark.parametrize("quantum", [1, 7, 64])
    def test_schedule_independence(self, gzip_case, quantum):
        result = speculative_dswp(gzip_case.function, gzip_case.loop)
        par_mem = gzip_case.fresh_memory()
        run_threads(result.program, par_mem,
                    initial_regs=gzip_case.initial_regs, quantum=quantum)
        gzip_case.checker(par_mem, {})

    def test_bounded_overrun(self, gzip_case):
        """The producer executes at most `window` extra iterations."""
        window = 5
        result = speculative_dswp(gzip_case.function, gzip_case.loop,
                                  window=window)
        par_mem = gzip_case.fresh_memory()
        mt = run_threads(result.program, par_mem,
                         initial_regs=gzip_case.initial_regs,
                         record_trace=True)
        producer_trace = mt.traces()[1]
        producer_loads = sum(1 for e in producer_trace if e.inst.is_load)
        seq = run_function(gzip_case.function, gzip_case.fresh_memory(),
                           initial_regs=gzip_case.initial_regs,
                           record_trace=True)
        seq_loads = sum(1 for e in seq.trace if e.inst.is_load)
        assert producer_loads <= seq_loads + window


class TestRestrictions:
    def test_rejects_store_in_recurrence(self):
        b = IRBuilder("storerec")
        r_p, r_v = b.reg(), b.reg()
        p = b.pred()
        b.block("entry", entry=True)
        b.jmp("h")
        b.block("h")
        b.load(r_p, r_p, offset=0, region="list")
        b.cmp_eq(p, r_p, imm=0)
        b.br(p, "exit", "body")
        b.block("body")
        b.add(r_v, r_p, imm=1)
        b.store(r_v, r_p, offset=1, region="list")
        b.jmp("h")
        b.block("exit")
        b.ret()
        f = b.done()
        with pytest.raises(SpeculationError):
            speculative_dswp(f, find_loop_by_header(f, "h"))

    def test_rejects_non_exit_branches(self):
        case = get_workload("mcf").build(scale=10)
        with pytest.raises(SpeculationError, match="loop exit"):
            speculative_dswp(case.function, case.loop)

    def test_rejects_zero_window(self, gzip_case):
        with pytest.raises(SpeculationError, match="window"):
            speculative_dswp(gzip_case.function, gzip_case.loop, window=0)

    def test_rejects_loopless_function(self):
        b = IRBuilder("flat")
        b.block("entry", entry=True)
        b.ret()
        with pytest.raises(SpeculationError, match="no loops"):
            speculative_dswp(b.done())
