"""Tests for loop unrolling and its interaction with DSWP."""

import pytest

from repro.core.dswp import dswp
from repro.core.unroll import UnrollError, unroll_loop, unrolled_loop
from repro.interp.interpreter import run_function
from repro.interp.multithread import run_threads
from repro.ir.builder import IRBuilder
from repro.ir.loops import find_loop_by_header
from repro.ir.verifier import verify_reachable
from repro.workloads import EpicWorkload, get_workload


@pytest.fixture
def epic_case():
    return EpicWorkload().build(scale=37)  # deliberately not a multiple of 4


class TestUnrollCorrectness:
    @pytest.mark.parametrize("factor", [1, 2, 4, 8])
    def test_equivalent_for_any_factor(self, epic_case, factor):
        case = epic_case
        unrolled = unroll_loop(case.function, case.loop, factor)
        verify_reachable(unrolled)
        seq = run_function(case.function, case.fresh_memory(),
                           initial_regs=case.initial_regs)
        unr = run_function(unrolled, case.fresh_memory(),
                           initial_regs=case.initial_regs)
        assert seq.memory.snapshot() == unr.memory.snapshot()
        case.checker(unr.memory, unr.regs)

    @pytest.mark.parametrize("trips", [0, 1, 3, 4, 5])
    def test_edge_trip_counts(self, trips):
        """Trip counts around the unroll factor, including zero."""
        case = EpicWorkload().build(scale=8)
        func, _ = unrolled_loop(case.function, case.loop.header, 4)
        initial = dict(case.initial_regs)
        n_reg = next(r for r, v in initial.items() if v == 8)
        initial[n_reg] = trips
        seq = run_function(case.function, case.fresh_memory(),
                           initial_regs=initial)
        unr = run_function(func, case.fresh_memory(), initial_regs=initial)
        assert seq.memory.snapshot() == unr.memory.snapshot()

    def test_instruction_count_scales(self, epic_case):
        case = epic_case
        base_count = len(case.loop.instructions())
        func, loop = unrolled_loop(case.function, case.loop.header, 4)
        assert len(loop.instructions()) > 3 * base_count

    def test_factor_one_is_identity_shape(self, epic_case):
        case = epic_case
        func, loop = unrolled_loop(case.function, case.loop.header, 1)
        assert len(loop.blocks()) == len(case.loop.blocks())

    def test_pointer_chasing_loop_unrolls(self):
        """The general unroller handles multi-branch loops (mcf)."""
        case = get_workload("mcf").build(scale=25)
        func, loop = unrolled_loop(case.function, case.loop.header, 3)
        seq = run_function(case.function, case.fresh_memory(),
                           initial_regs=case.initial_regs)
        unr = run_function(func, case.fresh_memory(),
                           initial_regs=case.initial_regs)
        assert seq.memory.snapshot() == unr.memory.snapshot()

    def test_nested_inner_loop_stays_per_replica(self):
        """Unrolling the outer list-of-lists loop replicates the inner
        loop inside each replica without cross-linking them."""
        case = get_workload("listoflists").build(scale=9)
        func, loop = unrolled_loop(case.function, case.loop.header, 2)
        seq = run_function(case.function, case.fresh_memory(),
                           initial_regs=case.initial_regs)
        unr = run_function(func, case.fresh_memory(),
                           initial_regs=case.initial_regs)
        assert seq.memory.snapshot() == unr.memory.snapshot()


class TestUnrollRestrictions:
    def test_rejects_zero_factor(self, epic_case):
        with pytest.raises(UnrollError):
            unroll_loop(epic_case.function, epic_case.loop, 0)

    def test_rejects_loopless_function(self):
        b = IRBuilder("flat")
        b.block("entry", entry=True)
        b.ret()
        with pytest.raises(UnrollError, match="no loops"):
            unroll_loop(b.done())


class TestUnrollPlusDswp:
    def test_unrolled_loop_has_more_sccs(self, epic_case):
        case = epic_case
        plain = dswp(case.function, case.loop, require_profitable=False)
        func, loop = unrolled_loop(case.function, case.loop.header, 4)
        unrolled = dswp(func, loop, require_profitable=False)
        assert unrolled.num_sccs > plain.num_sccs

    def test_dswp_on_unrolled_loop_is_correct(self):
        case = EpicWorkload().build(scale=50)
        func, loop = unrolled_loop(case.function, case.loop.header, 4)
        result = dswp(func, loop, require_profitable=False)
        assert result.applied
        par = run_threads(result.program, case.fresh_memory(),
                          initial_regs=case.initial_regs)
        case.checker(par.memory, par.main_regs)
