"""Tests for the top-level DSWP driver (the Fig. 3 algorithm)."""

import pytest

from repro.core.dswp import dswp
from repro.core.partition import Partition
from repro.ir.builder import IRBuilder
from repro.ir.loops import find_loop_by_header
from repro.ir.types import Opcode
from repro.ir.verifier import verify_function
from repro.workloads import GzipWorkload


class TestDecline:
    def test_single_scc_loop_declined(self):
        """Step (3): a single-SCC graph is not partitionable (gzip)."""
        case = GzipWorkload().build(scale=64)
        result = dswp(case.function, case.loop, require_profitable=False)
        assert not result.applied
        assert "single SCC" in result.reason
        assert result.num_sccs == 1
        with pytest.raises(ValueError):
            _ = result.program

    def test_unprofitable_partition_declined(self, lol):
        """Step (6): an estimated slowdown declines the transformation."""
        func, header, _ = lol
        result = dswp(func, find_loop_by_header(func, header),
                      require_profitable=True, profit_threshold=1e9)
        assert not result.applied
        assert "below threshold" in result.reason
        assert result.estimate is not None

    def test_function_without_loops_raises(self):
        b = IRBuilder("flat")
        b.block("entry", entry=True)
        b.ret()
        with pytest.raises(ValueError, match="no loops"):
            dswp(b.done())


class TestApply:
    def test_applied_result_contents(self, lol):
        func, header, _ = lol
        result = dswp(func, find_loop_by_header(func, header),
                      require_profitable=False)
        assert result.applied
        assert result.reason is None
        assert result.num_sccs == 5
        assert len(result.program) == 2
        assert result.estimate is not None
        counts = result.flow_counts()
        assert counts["loop"] >= 1

    def test_original_function_untouched(self, lol):
        func, header, _ = lol
        before = func.render()
        dswp(func, find_loop_by_header(func, header), require_profitable=False)
        assert func.render() == before

    def test_threads_verify(self, lol):
        func, header, _ = lol
        result = dswp(func, find_loop_by_header(func, header),
                      require_profitable=False)
        for fn in result.program.threads:
            verify_function(fn)

    def test_defaults_to_largest_loop(self, lol):
        func, header, _ = lol
        result = dswp(func, require_profitable=False)
        assert result.loop.header == header

    def test_explicit_partition_used(self, lol):
        func, header, _ = lol
        probe = dswp(func, find_loop_by_header(func, header),
                     require_profitable=False)
        dag = probe.dag
        manual = Partition(dag, [{0}, set(range(1, len(dag)))])
        result = dswp(func, find_loop_by_header(func, header),
                      partition=manual, require_profitable=False)
        assert result.partition is manual

    def test_flow_counts_zero_when_declined(self):
        case = GzipWorkload().build(scale=64)
        result = dswp(case.function, case.loop, require_profitable=False)
        assert result.flow_counts() == {"initial": 0, "loop": 0, "final": 0}

    def test_queue_instructions_only_in_transformed_code(self, lol):
        func, header, _ = lol
        result = dswp(func, find_loop_by_header(func, header),
                      require_profitable=False)
        for fn in result.program.threads:
            flows = [i for i in fn.instructions() if i.is_flow]
            assert flows, f"{fn.name} should contain produce/consume"
            assert all(i.queue is not None for i in flows)

    def test_repr(self, lol):
        func, header, _ = lol
        result = dswp(func, find_loop_by_header(func, header),
                      require_profitable=False)
        assert "applied" in repr(result)
