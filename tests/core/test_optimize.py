"""Tests for the §2.2.4 flow code-motion passes."""

import random

from repro.analysis.pdg import build_dependence_graph
from repro.core.optimize import hoist_initial_flows, optimize_flows, sink_final_flows
from repro.core.splitter import split_loop
from repro.interp.interpreter import run_function
from repro.interp.multithread import run_threads
from repro.ir.builder import IRBuilder
from repro.ir.loops import find_loop_by_header
from repro.ir.types import Opcode, gen_reg

from tests.conftest import build_list_of_lists, build_list_of_lists_memory
from tests.core.test_splitter import paper_partition


def split_fig2():
    func, header, regs = build_list_of_lists()
    loop = find_loop_by_header(func, header)
    graph = build_dependence_graph(func, loop)
    result = split_loop(func, loop, graph, paper_partition(graph))
    return func, regs, result


class TestHoistInitialFlows:
    def test_produce_moves_above_unrelated_work(self):
        """Padding the preheader with unrelated work: the initial-flow
        produce should hoist above it (but stay after the def it needs)."""
        func, regs, result = split_fig2()
        main = result.program.threads[0]
        entry = main.block("entry")
        # Inject busy work between the def of r0 and the produce.
        pad = gen_reg(90)
        produce_idx = next(
            i for i, inst in enumerate(entry.instructions)
            if inst.opcode is Opcode.PRODUCE
        )
        for _ in range(3):
            entry.instructions.insert(
                produce_idx,
                type(entry.instructions[0])(
                    Opcode.ADD, dest=pad, srcs=[pad], imm=1
                ),
            )
        initial_queues = {f.queue for f in result.flow_plan.initial_flows}
        moved = hoist_initial_flows(main, initial_queues)
        assert moved == 1
        ops = [i.opcode for i in entry.instructions]
        # mov r0, produce, then the padding.
        assert ops[0] is Opcode.MOV
        assert ops[1] is Opcode.PRODUCE

    def test_hoist_respects_definition(self):
        """The produce never moves above the def of its operand."""
        func, regs, result = split_fig2()
        main = result.program.threads[0]
        initial_queues = {f.queue for f in result.flow_plan.initial_flows}
        hoist_initial_flows(main, initial_queues)
        entry = main.block("entry")
        def_idx = next(i for i, inst in enumerate(entry.instructions)
                       if inst.opcode is Opcode.MOV)
        produce_idx = next(i for i, inst in enumerate(entry.instructions)
                           if inst.opcode is Opcode.PRODUCE)
        assert produce_idx > def_idx

    def test_noop_without_slack(self):
        func, regs, result = split_fig2()
        main = result.program.threads[0]
        initial_queues = {f.queue for f in result.flow_plan.initial_flows}
        assert hoist_initial_flows(main, initial_queues) == 0


class TestSinkFinalFlows:
    def test_consume_sinks_below_unrelated_work(self):
        func, regs, result = split_fig2()
        main = result.program.threads[0]
        stage = main.block("dswp_exit_0")
        pad = gen_reg(91)
        # Unrelated post-loop work after the consume.
        insert_at = 1
        for _ in range(2):
            stage.instructions.insert(
                insert_at,
                type(stage.instructions[0])(
                    Opcode.ADD, dest=pad, srcs=[pad], imm=1
                ),
            )
        final_queues = {f.queue for f in result.flow_plan.final_flows}
        moved = sink_final_flows(main, final_queues)
        assert moved == 1
        ops = [i.opcode for i in stage.instructions]
        assert ops[-2] is Opcode.CONSUME  # just before the terminator

    def test_noop_when_terminator_follows(self):
        func, regs, result = split_fig2()
        main = result.program.threads[0]
        final_queues = {f.queue for f in result.flow_plan.final_flows}
        assert sink_final_flows(main, final_queues) == 0


class TestSemanticsPreserved:
    def test_optimized_pipeline_still_correct(self):
        func, regs, result = split_fig2()
        main = result.program.threads[0]
        stats = optimize_flows(
            main,
            {f.queue for f in result.flow_plan.initial_flows},
            {f.queue for f in result.flow_plan.final_flows},
        )
        rng = random.Random(9)
        memory, head, out_addr, total = build_list_of_lists_memory(rng)
        initial = {regs["outer"]: head, regs["out"]: out_addr}
        seq = run_function(func, memory.clone(), initial_regs=initial)
        par = run_threads(result.program, memory.clone(), initial_regs=initial)
        assert seq.memory.snapshot() == par.memory.snapshot()
        assert par.memory.read(out_addr) == total
