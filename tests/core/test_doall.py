"""Tests for the DOALL transform (§4.1's comparison point)."""

import pytest

from repro.analysis.memdep import AliasMode, AliasModel
from repro.core.doall import DoallError, doall
from repro.interp.interpreter import run_function
from repro.interp.multithread import run_threads
from repro.ir.verifier import verify_function
from repro.workloads import get_workload

DOALL_NAMES = ("compress", "jpegenc", "art", "equake", "epicdec")
NOT_DOALL = ("mcf", "ammp", "bzip2", "adpcmdec", "wc", "listtraverse")


@pytest.mark.parametrize("name", DOALL_NAMES)
class TestApplies:
    def test_functional_equivalence(self, name):
        case = get_workload(name).build(scale=90)
        result = doall(case.function, case.loop)
        for fn in result.program.threads:
            verify_function(fn)
        seq = run_function(case.function, case.fresh_memory(),
                           initial_regs=case.initial_regs)
        par_mem = case.fresh_memory()
        run_threads(result.program, par_mem, initial_regs=case.initial_regs)
        assert seq.memory.snapshot() == par_mem.snapshot()
        case.checker(par_mem, {})

    def test_no_loop_flows(self, name):
        """DOALL's defining property: no communication inside the loop."""
        from repro.ir.loops import find_loops
        case = get_workload(name).build(scale=30)
        result = doall(case.function, case.loop)
        for fn in result.program.threads:
            for loop in find_loops(fn):
                flows = [i for i in loop.instructions() if i.is_flow]
                assert flows == [], f"{fn.name} communicates inside the loop"

    def test_odd_trip_counts(self, name):
        """Iteration counts that do not divide evenly across threads."""
        for scale in (1, 2, 7):
            case = get_workload(name).build(scale=scale)
            result = doall(case.function, case.loop)
            par_mem = case.fresh_memory()
            run_threads(result.program, par_mem,
                        initial_regs=case.initial_regs)
            case.checker(par_mem, {})


@pytest.mark.parametrize("name", NOT_DOALL)
def test_non_doall_loops_declined(name):
    case = get_workload(name).build(scale=20)
    with pytest.raises(DoallError):
        doall(case.function, case.loop)


class TestPrecisionDependence:
    def test_conservative_analysis_blocks_doall(self):
        """§5.1's point from the DOALL side: without precise memory
        analysis, epicdec's independent iterations cannot be proven."""
        case = get_workload("epicdec").build(scale=20)
        with pytest.raises(DoallError, match="memory conflict"):
            doall(case.function, case.loop,
                  alias_model=AliasModel(AliasMode.CONSERVATIVE))


class TestThreeThreads:
    def test_three_way_interleave(self):
        case = get_workload("compress").build(scale=70)
        result = doall(case.function, case.loop, threads=3)
        assert len(result.program) == 3
        par_mem = case.fresh_memory()
        run_threads(result.program, par_mem, initial_regs=case.initial_regs)
        case.checker(par_mem, {})

    def test_reduction_combined_across_three(self):
        case = get_workload("art").build(scale=60)
        result = doall(case.function, case.loop, threads=3)
        par_mem = case.fresh_memory()
        run_threads(result.program, par_mem, initial_regs=case.initial_regs)
        case.checker(par_mem, {})


class TestRestrictions:
    def test_single_thread_rejected(self):
        case = get_workload("compress").build(scale=10)
        with pytest.raises(DoallError, match="two threads"):
            doall(case.function, case.loop, threads=1)

    def test_live_out_induction_rejected(self):
        from repro.ir.builder import IRBuilder
        b = IRBuilder("liveouti")
        r_i, r_n, r_out = b.reg(), b.reg(), b.reg()
        p = b.pred()
        b.block("entry", entry=True)
        b.mov(r_i, imm=0)
        b.jmp("h")
        b.block("h")
        b.cmp_ge(p, r_i, r_n)
        b.br(p, "exit", "body")
        b.block("body")
        b.add(r_i, r_i, imm=1)
        b.jmp("h")
        b.block("exit")
        b.store(r_i, r_out, offset=0, region="res")
        b.ret()
        f = b.done()
        with pytest.raises(DoallError, match="live-outs"):
            doall(f)
