"""Tests for the static profitability estimator."""

from repro.analysis.pdg import build_dependence_graph
from repro.analysis.profiling import LoopProfile
from repro.core.estimate import PartitionEstimate, estimate_partition
from repro.core.partition import Partition, estimated_scc_cycles
from repro.core.splitter import LoopSplitter
from repro.ir.loops import find_loop_by_header
from repro.machine.config import static_latency


class TestPartitionEstimate:
    def test_bottleneck_and_speedup(self):
        est = PartitionEstimate([10.0, 5.0], [1.0, 2.0], 15.0)
        assert est.bottleneck == 11.0
        assert abs(est.speedup - 15.0 / 11.0) < 1e-9

    def test_profitable_threshold(self):
        est = PartitionEstimate([10.0, 10.0], [0.0, 0.0], 20.0)
        assert est.profitable(1.5)
        assert not est.profitable(2.5)

    def test_degenerate_zero_cost(self):
        est = PartitionEstimate([0.0], [0.0], 0.0)
        assert est.speedup == 1.0

    def test_repr_mentions_speedup(self):
        est = PartitionEstimate([4.0], [1.0], 5.0)
        assert "speedup" in repr(est)


class TestEstimateOnFig2(object):
    def test_balanced_cut_beats_degenerate_cut(self, lol):
        func, header, _ = lol
        loop = find_loop_by_header(func, header)
        graph = build_dependence_graph(func, loop)
        dag = graph.dag_scc()
        profile = LoopProfile.uniform(loop)

        def estimate_for(stages):
            partition = Partition(dag, stages)
            splitter = LoopSplitter(func, loop, graph, partition)
            splitter._plan_flows()
            return estimate_partition(
                partition, dag, graph, profile, static_latency, splitter.plan
            )

        n = len(dag)
        balanced = estimate_for([{0, 1}, set(range(2, n))])
        degenerate = estimate_for([set(range(n - 1)), {n - 1}])
        assert balanced.speedup > degenerate.speedup

    def test_scc_cycles_positive(self, lol):
        func, header, _ = lol
        loop = find_loop_by_header(func, header)
        graph = build_dependence_graph(func, loop)
        dag = graph.dag_scc()
        cycles = estimated_scc_cycles(
            dag, graph, LoopProfile.uniform(loop), static_latency
        )
        assert len(cycles) == len(dag)
        assert all(c > 0 for c in cycles)
