"""Tests for partition validity, the TPP heuristic, and enumeration."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.scc import DagScc
from repro.core.partition import (
    Partition,
    PartitionError,
    cut_flow_count,
    enumerate_two_way_partitions,
    heuristic_partition,
    single_stage_partition,
)


def chain_dag(n):
    """SCC ids 0 -> 1 -> ... -> n-1."""
    return DagScc([[f"s{i}"] for i in range(n)],
                  {i: ({i + 1} if i + 1 < n else set()) for i in range(n)})


def diamond_dag():
    """0 -> {1, 2} -> 3."""
    return DagScc([["a"], ["b"], ["c"], ["d"]],
                  {0: {1, 2}, 1: {3}, 2: {3}, 3: set()})


class TestValidity:
    def test_valid_partition_accepted(self):
        Partition(chain_dag(3), [{0, 1}, {2}])

    def test_backward_arc_rejected(self):
        with pytest.raises(PartitionError, match="backward"):
            Partition(chain_dag(3), [{0, 2}, {1}])

    def test_missing_scc_rejected(self):
        with pytest.raises(PartitionError):
            Partition(chain_dag(3), [{0}, {2}])

    def test_duplicate_scc_rejected(self):
        with pytest.raises(PartitionError):
            Partition(chain_dag(3), [{0, 1}, {1, 2}])

    def test_assignment_maps_instructions(self):
        p = Partition(chain_dag(2), [{0}, {1}])
        assignment = p.assignment()
        assert assignment["s0"] == 0
        assert assignment["s1"] == 1

    def test_stage_of_scc(self):
        p = Partition(diamond_dag(), [{0, 1}, {2, 3}])
        assert p.stage_of_scc() == {0: 0, 1: 0, 2: 1, 3: 1}


class TestHeuristic:
    def test_balances_a_chain(self):
        dag = chain_dag(4)
        p = heuristic_partition(dag, [10, 10, 10, 10], threads=2)
        assert len(p) == 2
        sizes = [len(s) for s in p.stages]
        assert sizes == [2, 2]

    def test_huge_first_scc_gets_own_stage(self):
        dag = chain_dag(4)
        p = heuristic_partition(dag, [100, 5, 5, 5], threads=2)
        assert p.stages[0] == {0}
        assert p.stages[1] == {1, 2, 3}

    def test_single_scc_single_stage(self):
        p = heuristic_partition(chain_dag(1), [10], threads=2)
        assert len(p) == 1

    def test_respects_thread_limit(self):
        dag = chain_dag(8)
        p = heuristic_partition(dag, [1] * 8, threads=3)
        assert len(p) <= 3

    def test_result_is_valid(self):
        dag = diamond_dag()
        p = heuristic_partition(dag, [4, 3, 2, 1], threads=2)
        p.validate()

    def test_zero_threads_rejected(self):
        with pytest.raises(PartitionError):
            heuristic_partition(chain_dag(2), [1, 1], threads=0)

    @given(
        st.lists(st.floats(min_value=0.5, max_value=50), min_size=2, max_size=10),
        st.integers(min_value=1, max_value=4),
    )
    def test_heuristic_always_valid_on_chains(self, cycles, threads):
        dag = chain_dag(len(cycles))
        p = heuristic_partition(dag, cycles, threads=threads)
        p.validate()
        assert 1 <= len(p) <= threads


class TestEnumeration:
    def test_chain_has_n_minus_one_cuts(self):
        parts = enumerate_two_way_partitions(chain_dag(5))
        assert len(parts) == 4

    def test_diamond_cut_count(self):
        # Down-sets of the diamond excluding {} and all: {0},{0,1},{0,2},{0,1,2}
        parts = enumerate_two_way_partitions(diamond_dag())
        firsts = {frozenset(p.stages[0]) for p in parts}
        assert firsts == {
            frozenset({0}),
            frozenset({0, 1}),
            frozenset({0, 2}),
            frozenset({0, 1, 2}),
        }

    def test_all_enumerated_are_valid(self):
        for p in enumerate_two_way_partitions(diamond_dag()):
            p.validate()

    def test_single_scc_has_no_cuts(self):
        assert enumerate_two_way_partitions(chain_dag(1)) == []

    def test_limit_respected(self):
        dag = DagScc([[i] for i in range(12)], {i: set() for i in range(12)})
        parts = enumerate_two_way_partitions(dag, limit=50)
        assert len(parts) <= 50


class TestHelpers:
    def test_single_stage_partition(self):
        p = single_stage_partition(chain_dag(3))
        assert len(p) == 1
        assert p.stages[0] == {0, 1, 2}

    def test_cut_flow_count(self):
        dag = diamond_dag()
        assert cut_flow_count(dag, [{0}, {1, 2, 3}]) == 2
        assert cut_flow_count(dag, [{0, 1, 2}, {3}]) == 2
        assert cut_flow_count(dag, [{0, 1, 2, 3}]) == 0
