"""Tests for the code splitter -- structural checks against Fig. 2(d)/(e)
plus functional equivalence on the running example."""

import random

import pytest

from repro.analysis.pdg import build_dependence_graph
from repro.core.dswp import dswp
from repro.core.partition import Partition
from repro.core.splitter import split_loop
from repro.interp.interpreter import run_function
from repro.interp.multithread import run_threads
from repro.ir.loops import find_loop_by_header
from repro.ir.types import Opcode
from repro.ir.verifier import verify_function

from tests.conftest import build_list_of_lists, build_list_of_lists_memory


def paper_partition(graph):
    """The exact Fig. 2 partition: {A,B,J},{C} in P1; the rest in P2."""
    dag = graph.dag_scc()
    first = set()
    for sid, members in enumerate(dag.sccs):
        rendered = {m.render() for m in members}
        if any("r1" in text for text in rendered):
            # outer traversal SCC {A,B,J} and the inner-head load {C}
            first.add(sid)
    second = set(range(len(dag))) - first
    return Partition(dag, [first, second])


@pytest.fixture
def split_fig2():
    func, header, regs = build_list_of_lists()
    loop = find_loop_by_header(func, header)
    graph = build_dependence_graph(func, loop)
    partition = paper_partition(graph)
    return func, loop, regs, split_loop(func, loop, graph, partition)


class TestStructure:
    def test_two_threads(self, split_fig2):
        _, _, _, result = split_fig2
        assert len(result.program) == 2

    def test_threads_verify(self, split_fig2):
        _, _, _, result = split_fig2
        for fn in result.program.threads:
            verify_function(fn)

    def test_instruction_sets_partitioned(self, split_fig2):
        func, loop, _, result = split_fig2
        originals = {
            inst.uid
            for inst in loop.instructions()
            if inst.opcode not in (Opcode.JMP, Opcode.NOP)
        }
        copied = set()
        for fn in result.program.threads:
            for inst in fn.instructions():
                if inst.origin is not None and inst.origin.uid in originals:
                    copied.add(inst.origin.uid)
        # Every PDG node appears in some thread (the exit branch is
        # duplicated, so "exactly once" holds for non-branches only).
        assert copied == originals

    def test_flows_match_paper_counts(self, split_fig2):
        """Fig. 2 uses 1 initial flow (r0 in), 1 final flow (r0 out),
        and two loop flows: r2 (data, queue 2) and p1 (the duplicated
        exit branch's condition, queue 1); the inner-loop branch E is
        owned by the consumer, so p2 never crosses."""
        _, _, _, result = split_fig2
        counts = result.flow_plan.counts()
        assert counts["initial"] == 1
        assert counts["final"] == 1
        assert counts["loop"] == 2

    def test_consumer_has_duplicated_exit_branch(self, split_fig2):
        _, _, regs, result = split_fig2
        aux = result.program.threads[1]
        consumes = [
            i for i in aux.instructions() if i.opcode is Opcode.CONSUME
        ]
        branches = [i for i in aux.instructions() if i.opcode is Opcode.BR]
        # One branch consumes the outer predicate, the other is owned.
        assert any(c.dest == regs["p_outer"] for c in consumes)
        assert len(branches) == 2

    def test_producer_produces_before_branch(self, split_fig2):
        _, _, _, result = split_fig2
        main = result.program.threads[0]
        bb2 = main.block("BB2")
        ops = [i.opcode for i in bb2.instructions]
        assert ops.index(Opcode.PRODUCE) < ops.index(Opcode.BR)

    def test_main_keeps_non_loop_code(self, split_fig2):
        _, _, _, result = split_fig2
        main = result.program.threads[0]
        assert main.has_block("entry")
        assert main.has_block("BB7")

    def test_aux_post_block_produces_final_flow(self, split_fig2):
        _, _, _, result = split_fig2
        aux = result.program.threads[1]
        post = aux.block("post")
        assert post.instructions[0].opcode is Opcode.PRODUCE
        assert post.terminator.opcode is Opcode.RET


class TestFunctional:
    def test_pipeline_matches_sequential(self, split_fig2):
        func, _, regs, result = split_fig2
        rng = random.Random(3)
        memory, head, out_addr, total = build_list_of_lists_memory(rng)
        initial = {regs["outer"]: head, regs["out"]: out_addr}
        seq = run_function(func, memory.clone(), initial_regs=initial)
        par = run_threads(result.program, memory.clone(), initial_regs=initial)
        assert par.memory.read(out_addr) == total
        assert seq.memory.snapshot() == par.memory.snapshot()

    @pytest.mark.parametrize("capacity", [1, 4, 32])
    def test_bounded_queues(self, split_fig2, capacity):
        func, _, regs, result = split_fig2
        rng = random.Random(5)
        memory, head, out_addr, total = build_list_of_lists_memory(rng)
        initial = {regs["outer"]: head, regs["out"]: out_addr}
        par = run_threads(
            result.program, memory.clone(), initial_regs=initial,
            queue_capacity=capacity,
        )
        assert par.memory.read(out_addr) == total


class TestThreeWaySplit:
    def test_three_stage_pipeline(self):
        """The Fig. 2 loop admits a 3-thread pipeline too."""
        func, header, regs = build_list_of_lists()
        result = dswp(func, find_loop_by_header(func, header), threads=3,
                      require_profitable=False)
        assert result.applied
        assert len(result.program) == 3
        rng = random.Random(11)
        memory, head, out_addr, total = build_list_of_lists_memory(rng)
        initial = {regs["outer"]: head, regs["out"]: out_addr}
        par = run_threads(result.program, memory.clone(), initial_regs=initial)
        assert par.memory.read(out_addr) == total
