"""``cache gc`` semantics: LRU by atime, corruption-aware, pin-safe.

Contract under test (:mod:`repro.incr.gc`): eviction proceeds
oldest-access-first until the store fits the byte budget; corrupt
entries always go (counted separately); stale tmp droppings are swept
while fresh ones -- possibly a live writer mid-publish -- are left
alone; pinned entries survive any budget; and ``dry_run`` deletes
nothing while reporting everything.
"""

from __future__ import annotations

import os
import time

from repro.incr.gc import TMP_GRACE_SECONDS, collect
from repro.incr.store import ArtifactStore


def _fill(store, count, payload_cells=200):
    """``count`` artifacts with distinct digests and staggered atimes
    (digest ``i`` is the ``i``-th least recently used)."""
    digests = []
    now = time.time()
    for i in range(count):
        digest = f"{i:064d}"
        store.put_artifact(digest, {"cells": list(range(payload_cells))})
        path = store._entry_path("artifact", digest)
        stamp = now - (count - i) * 3600
        os.utime(path, (stamp, stamp))
        digests.append(digest)
    return digests


def test_lru_eviction_to_budget(tmp_path):
    store = ArtifactStore(persist_dir=str(tmp_path))
    digests = _fill(store, 10)
    sizes = {d: os.path.getsize(store._entry_path("artifact", d))
             for d in digests}
    budget = sum(sizes.values()) - 3 * max(sizes.values())

    stats = collect(str(tmp_path), max_bytes=budget)
    assert stats["evicted"] >= 3
    assert stats["bytes_after"] <= budget
    # Oldest-access entries went first; the most recent survived.
    fresh = ArtifactStore(persist_dir=str(tmp_path))
    assert not fresh.has_artifact(digests[0])
    assert fresh.has_artifact(digests[-1])


def test_pinned_entries_survive_any_budget(tmp_path):
    store = ArtifactStore(persist_dir=str(tmp_path))
    digests = _fill(store, 6)
    store.pin("plan-gc-test", [], [digests[0]])  # pin the LRU victim

    stats = collect(str(tmp_path), max_bytes=0)
    assert stats["pinned_kept"] == 1
    fresh = ArtifactStore(persist_dir=str(tmp_path))
    assert fresh.has_artifact(digests[0])
    assert not fresh.has_artifact(digests[-1])

    # Dropping the pin releases the entry to the next pass.
    store.unpin("plan-gc-test")
    stats = collect(str(tmp_path), max_bytes=0)
    assert stats["pinned_kept"] == 0
    assert not ArtifactStore(persist_dir=str(tmp_path)).has_artifact(
        digests[0])


def test_corrupt_entries_always_evicted(tmp_path):
    store = ArtifactStore(persist_dir=str(tmp_path))
    digests = _fill(store, 4)
    with open(store._entry_path("artifact", digests[2]), "wb") as fh:
        fh.write(b"\x80\x04torn")

    # No byte budget at all: validation still evicts the torn entry.
    stats = collect(str(tmp_path))
    assert stats["corrupt_evicted"] == 1
    assert stats["evicted"] == 1
    fresh = ArtifactStore(persist_dir=str(tmp_path))
    assert not fresh.has_artifact(digests[2])
    assert fresh.has_artifact(digests[1])


def test_tmp_droppings_swept_after_grace(tmp_path):
    store = ArtifactStore(persist_dir=str(tmp_path))
    digests = _fill(store, 2)
    shard = os.path.dirname(store._entry_path("artifact", digests[0]))
    stale = os.path.join(shard, "dead.pkl.tmp.12345")
    live = os.path.join(shard, "racing.pkl.tmp.67890")
    for path in (stale, live):
        with open(path, "wb") as fh:
            fh.write(b"partial")
    old = time.time() - TMP_GRACE_SECONDS - 60
    os.utime(stale, (old, old))

    stats = collect(str(tmp_path))
    assert stats["tmp_removed"] == 1
    assert not os.path.exists(stale)
    assert os.path.exists(live)  # inside the grace window: maybe live


def test_dry_run_reports_without_deleting(tmp_path):
    store = ArtifactStore(persist_dir=str(tmp_path))
    digests = _fill(store, 5)
    with open(store._entry_path("artifact", digests[1]), "wb") as fh:
        fh.write(b"\x80\x04torn")

    stats = collect(str(tmp_path), max_bytes=0, dry_run=True)
    assert stats["evicted"] >= 4
    assert stats["corrupt_evicted"] == 1
    # Nothing actually left the filesystem.
    for digest in digests:
        assert os.path.exists(store._entry_path("artifact", digest))


def test_missing_directory_is_a_clean_noop(tmp_path):
    stats = collect(str(tmp_path / "never-created"), max_bytes=100)
    assert stats["scanned"] == 0 and stats["evicted"] == 0
