"""Invalidation semantics of the incremental planner.

One warm store, several edits, and for each the exact set of stages
the planner may reschedule (:mod:`repro.incr.plan`):

* a simulator-layer version bump invalidates **simulate + figure
  only** -- cached traces re-simulate without re-interpreting;
* mutating one workload invalidates **only its subtree** -- sibling
  workloads' whole chains still serve from the store;
* a torn write behind a receipt is a **miss, never decoded** -- the
  planner degrades that one stage to a recompute and counts the
  corruption.

The store is warmed once per module by a real ``run_bench`` sweep (the
same path production warms it through), then each scenario replans
against it without running further compute.
"""

from __future__ import annotations

import shutil

import pytest

from repro.harness.bench import run_bench, sweep_points
from repro.incr import dag, stages
from repro.incr.plan import build_figure_plan
from repro.incr.store import ARTIFACT_KIND, RECEIPT_KIND, ArtifactStore
from repro.workloads import get_workload

FIGURE = "fig9a"
SCALE = 40


@pytest.fixture(scope="module")
def warm_store_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("warm-bench")
    report = run_bench(FIGURE, scale=SCALE, jobs=2, out_dir=str(out),
                       compare=False)
    assert report["degraded_points"] == []
    return str(out / ".bench-cache")


def _plan(store_dir, points=None):
    store = ArtifactStore(persist_dir=store_dir)
    plan = build_figure_plan(
        store, FIGURE, SCALE, points or sweep_points(FIGURE, SCALE))
    plan.release()
    return plan


def _stage_counts(plan, kind):
    row = plan.counts()[kind]
    return row["hit"], row["miss"], row["scheduled"]


def test_warm_plan_schedules_nothing(warm_store_dir):
    plan = _plan(warm_store_dir)
    assert plan.scheduled_total() == 0
    assert plan.compute_scheduled() == 0
    assert plan.pending == []
    assert plan.figure_hit
    for kind in dag.COMPUTE_STAGES:
        hit, miss, scheduled = _stage_counts(plan, kind)
        assert miss == 0 and scheduled == 0 and hit > 0, kind


def test_simulator_version_bump_respins_simulate_and_figure_only(
        warm_store_dir, monkeypatch):
    from repro.machine import batch

    monkeypatch.setattr(batch, "CODEGEN_VERSION", batch.CODEGEN_VERSION + 1)
    plan = _plan(warm_store_dir)
    # The functional prefix is untouched: cached traces serve.
    for kind in (dag.STAGE_INTERPRET, dag.STAGE_TRANSFORM):
        hit, miss, scheduled = _stage_counts(plan, kind)
        assert miss == 0 and scheduled == 0 and hit > 0, kind
    # Every simulate point re-runs, and so does the aggregation.
    hit, miss, scheduled = _stage_counts(plan, dag.STAGE_SIMULATE)
    assert hit == 0 and miss == scheduled == len(plan.pending)
    assert len(plan.pending) == len(sweep_points(FIGURE, SCALE))
    assert not plan.figure_hit


def test_interpret_layer_edit_respins_everything(warm_store_dir,
                                                 monkeypatch):
    monkeypatch.setitem(dag._VERSION_SALTS, dag.STAGE_INTERPRET, "edited")
    plan = _plan(warm_store_dir)
    for kind in dag.COMPUTE_STAGES:
        hit, _, scheduled = _stage_counts(plan, kind)
        assert hit == 0 and scheduled > 0, kind
    assert len(plan.pending) == len(sweep_points(FIGURE, SCALE))


def test_one_workload_mutation_leaves_siblings_warm(warm_store_dir):
    # A mutated workload has a new case fingerprint -- the same
    # invalidation a source edit to that one workload produces.  Model
    # it by re-pointing one workload's sweep points at a different
    # scale; every other workload's chain must still serve.
    points = sweep_points(FIGURE, SCALE)
    mutated = [dict(spec, scale=SCALE + 1)
               if spec["workload"] == "compress" else spec
               for spec in points]
    plan = _plan(warm_store_dir, points=mutated)
    pending_ids = {spec["id"] for spec in plan.pending}
    assert pending_ids == {spec["id"] for spec in points
                           if spec["workload"] == "compress"}
    served_workloads = {pid.split(":")[0] for pid in plan.served}
    assert "compress" not in served_workloads
    assert served_workloads == {spec["workload"] for spec in points
                                if spec["workload"] != "compress"}


def test_torn_receipt_is_a_planner_miss_never_decoded(warm_store_dir,
                                                      tmp_path):
    # Work on a copy: corruption must not leak into the shared module
    # fixture other tests replan against.
    store_dir = str(tmp_path / "torn-store")
    shutil.copytree(warm_store_dir, store_dir)
    points = sweep_points(FIGURE, SCALE)

    probe = _plan(store_dir, points=points)
    victim = next(spec["id"] for spec in points
                  if spec["workload"] == "compress"
                  and spec["kind"] == "dswp")
    skey = probe.simulate_keys[victim]
    store = ArtifactStore(persist_dir=store_dir)
    with open(store._entry_path(RECEIPT_KIND, skey), "wb") as fh:
        fh.write(b"\x80\x04torn-mid-write")

    fresh = ArtifactStore(persist_dir=store_dir)
    before = fresh.stats().get("corrupt_evictions", 0)
    plan = build_figure_plan(fresh, FIGURE, SCALE, points)
    plan.release()
    # The torn bytes were evicted and counted at decode, never
    # interpreted as a receipt...
    assert fresh.stats().get("corrupt_evictions", 0) == before + 1
    # ...the victim's batch group replans (a batch re-simulates
    # together), while every other workload still serves whole...
    assert {spec["workload"] for spec in plan.pending} == {"compress"}
    assert victim in {spec["id"] for spec in plan.pending}
    hit, miss, scheduled = _stage_counts(plan, dag.STAGE_SIMULATE)
    assert miss == 1
    # ...and the functional prefix stays entirely warm.
    for kind in (dag.STAGE_INTERPRET, dag.STAGE_TRANSFORM):
        hit, miss, scheduled = _stage_counts(plan, kind)
        assert miss == 0 and scheduled == 0, kind


def test_torn_artifact_degrades_to_recompute_at_the_stage(warm_store_dir,
                                                          tmp_path):
    # The stage layer is where large artifacts are decoded; a torn one
    # behind a valid receipt must cost a recompute, never a crash or a
    # half-decoded trace.
    store_dir = str(tmp_path / "torn-artifact")
    shutil.copytree(warm_store_dir, store_dir)
    store = ArtifactStore(persist_dir=store_dir)

    case = get_workload("compress").build(scale=SCALE)
    ikey = dag.interpret_key(stages.case_fp(case), True)
    receipt = store.get_receipt(ikey)
    address = receipt["outputs"]["artifact"]
    with open(store._entry_path(ARTIFACT_KIND, address), "wb") as fh:
        fh.write(b"\x80\x04torn")

    fresh = ArtifactStore(persist_dir=store_dir)
    outcome = stages.interpret_stage(fresh, case)
    assert not outcome.hit  # recomputed, not served from torn bytes
    assert outcome.value.trace is not None
    # The recompute healed the store: the same stage now hits again.
    assert stages.interpret_stage(fresh, case).hit
