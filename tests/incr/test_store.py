"""ArtifactStore unit contract: addressing, receipts, pins, corruption.

The store's promises (module doc of :mod:`repro.incr.store`): artifacts
round-trip by content address, receipts are shape-validated on load,
inline payloads ride inside receipts, corruption reads as a counted
miss and is never decoded, and pins protect in-flight plans' entries
from ``cache gc`` until they expire.
"""

from __future__ import annotations

import json
import os
import time

from repro.incr.store import (
    ARTIFACT_KIND, PIN_TTL_SECONDS, RECEIPT_KIND, ArtifactStore,
)


def test_artifact_roundtrip_and_existence(tmp_path):
    store = ArtifactStore(persist_dir=str(tmp_path))
    assert store.get_artifact("d" * 64) is None
    assert not store.has_artifact("d" * 64)
    store.put_artifact("d" * 64, {"trace": [1, 2, 3]})
    assert store.has_artifact("d" * 64)
    # A second process opening the same directory sees the entry.
    other = ArtifactStore(persist_dir=str(tmp_path))
    assert other.get_artifact("d" * 64) == {"trace": [1, 2, 3]}


def test_receipt_shape_validated(tmp_path):
    store = ArtifactStore(persist_dir=str(tmp_path))
    store.put_receipt("stage-key", {"artifact": "a" * 64}, meta={"case": "wc"})
    receipt = store.get_receipt("stage-key")
    assert receipt["outputs"] == {"artifact": "a" * 64}
    assert receipt["meta"] == {"case": "wc"}
    # A foreign payload under the receipt kind must read as a miss,
    # never flow into the planner as a malformed receipt.
    store.objects.put_object(RECEIPT_KIND, "bogus", ["not", "a", "receipt"])
    assert store.get_receipt("bogus") is None
    store.objects.put_object(RECEIPT_KIND, "shapeless", {"outputs": 7})
    assert store.get_receipt("shapeless") is None


def test_inline_receipt_payload(tmp_path):
    store = ArtifactStore(persist_dir=str(tmp_path))
    summary = {"cycles": [100], "ipcs": [1.5], "instructions": 150}
    store.put_receipt("sim-key", {"summary": "s" * 64}, inline=summary)
    receipt = store.get_receipt("sim-key")
    assert receipt["inline"] == summary
    # No separate artifact entry was needed for the inline payload.
    assert not store.has_artifact("s" * 64)


def test_torn_entry_is_counted_miss_never_decoded(tmp_path):
    writer = ArtifactStore(persist_dir=str(tmp_path))
    writer.put_artifact("e" * 64, {"payload": list(range(100))})
    path = writer._entry_path(ARTIFACT_KIND, "e" * 64)
    with open(path, "wb") as fh:
        fh.write(b"\x80\x04torn-mid-write")
    # A fresh store (another process's view) must hit the disk, see
    # the torn bytes, evict and count -- never decode them.
    store = ArtifactStore(persist_dir=str(tmp_path))
    before = store.stats().get("corrupt_evictions", 0)
    assert store.get_artifact("e" * 64) is None
    assert store.stats().get("corrupt_evictions", 0) == before + 1
    # The corrupt file was evicted: the next probe is a clean miss.
    assert not store.has_artifact("e" * 64)


def test_pins_protect_and_expire(tmp_path):
    store = ArtifactStore(persist_dir=str(tmp_path))
    store.put_receipt("rk", {"artifact": "f" * 64})
    store.put_artifact("f" * 64, {"x": 1})
    pin_path = store.pin("plan-test-1", ["rk"], ["f" * 64])
    assert pin_path is not None and os.path.exists(pin_path)

    pinned = ArtifactStore.pinned_paths(str(tmp_path))
    rel_receipt = os.path.relpath(
        store._entry_path(RECEIPT_KIND, "rk"), str(tmp_path))
    rel_artifact = os.path.relpath(
        store._entry_path(ARTIFACT_KIND, "f" * 64), str(tmp_path))
    assert rel_receipt in pinned
    assert rel_artifact in pinned

    # An expired pin protects nothing (a killed driver must not exempt
    # entries forever).
    with open(pin_path, encoding="utf-8") as fh:
        record = json.load(fh)
    record["created"] = time.time() - PIN_TTL_SECONDS - 60
    with open(pin_path, "w", encoding="utf-8") as fh:
        json.dump(record, fh)
    assert ArtifactStore.pinned_paths(str(tmp_path)) == set()

    # A corrupt pin file protects nothing either.
    with open(pin_path, "w", encoding="utf-8") as fh:
        fh.write("{not json")
    assert ArtifactStore.pinned_paths(str(tmp_path)) == set()

    store.unpin("plan-test-1")
    assert not os.path.exists(pin_path)
    store.unpin("plan-test-1")  # idempotent


def test_in_memory_store_has_no_pins(tmp_path):
    store = ArtifactStore(persist_dir=None)
    store.put_artifact("a" * 64, 1)
    assert store.get_artifact("a" * 64) == 1
    assert store.pin("p", ["k"], ["a" * 64]) is None
    store.unpin("p")  # no-op, no crash
