"""Cross-process stability of every key the artifact store addresses by.

Stage artifacts written by one bench worker are read back by other
workers, by later driver processes, and by the compile service -- all
through content-derived keys (:mod:`repro.machine.fingerprint`,
:mod:`repro.incr.dag`).  Any process-local identity leaking into a
digest (hash-seed-dependent iteration order, ``id()``-based repr,
pickle bytes) silently turns every warm run cold.  The regression
here recomputes the full key set in subprocesses under two different
``PYTHONHASHSEED`` values and requires byte equality.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

from repro.machine.fingerprint import content_digest, memory_digest

_PROBE = r"""
import json, sys
from repro.incr import dag
from repro.incr.stages import case_fp, traces_content
from repro.machine.fingerprint import (
    case_fingerprint, content_digest, memory_digest, trace_digest,
)
from repro.harness.runner import run_baseline
from repro.workloads import get_workload

case = get_workload("wc").build(scale=20)
run = run_baseline(case, check=False)
cfp = case_fp(case)
traces = traces_content([run.trace])
machine = {"core": "full", "comm_latency": 5, "queue_size": 32}
skey = dag.simulate_key(traces, machine)
print(json.dumps({
    "case_fp": cfp,
    "memory": memory_digest(case.memory.snapshot()),
    "trace": trace_digest(run.trace),
    "content": content_digest({"a": [1, 2], "b": {"x": 0}}),
    "interpret": dag.interpret_key(cfp, True),
    "transform": dag.transform_key(cfp, "upstream-content", check=True),
    "simulate": skey,
    "figure": dag.figure_key("fig9a", 20, [skey]),
    "pipeline_version": dag.pipeline_version(),
}, sort_keys=True))
"""


def _probe(hashseed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [os.path.join(os.getcwd(), "src"),
                    env.get("PYTHONPATH")] if p)
    out = subprocess.run([sys.executable, "-c", _PROBE], env=env,
                         capture_output=True, text=True, check=True)
    return json.loads(out.stdout)


def test_keys_stable_across_hash_seeds():
    first = _probe("0")
    second = _probe("12345")
    assert first == second
    # And every value really is a hex digest, not a repr fallback.
    for name, value in first.items():
        if name == "pipeline_version":
            continue
        assert isinstance(value, str) and len(value) == 64, name


def test_memory_digest_matches_pure_python_spec():
    # The numpy fast path must produce the exact digest the documented
    # pure-python fallback defines: all addresses in address order as
    # little-endian int64, then their values.
    snapshot = {7: -3, 0: 12, 1024: 2**40, -5: 0}
    h = hashlib.sha256()
    h.update(b"memory:%d;" % len(snapshot))
    items = sorted(snapshot.items())
    for addr, _ in items:
        h.update(addr.to_bytes(8, "little", signed=True))
    for _, value in items:
        h.update(value.to_bytes(8, "little", signed=True))
    assert memory_digest(snapshot) == h.hexdigest()


def test_memory_digest_fallback_on_oversized_cells():
    # A cell outside int64 forces the pure-python path; the digest is
    # still a function of content alone.
    snapshot = {0: 2**70, 1: 5}
    assert memory_digest(snapshot) == memory_digest(dict(snapshot))
    assert memory_digest({}) != memory_digest({0: 0})


def test_content_digest_rejects_non_json_content():
    # A key that silently fell back to repr() could smuggle object
    # addresses into a digest; it must raise instead.
    class Opaque:
        pass

    try:
        content_digest({"x": Opaque()})
    except TypeError:
        pass
    else:
        raise AssertionError("content_digest accepted a non-JSON payload")
