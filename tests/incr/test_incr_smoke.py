"""The ``incr_smoke`` tier: the headline behaviours of the stage graph.

Three real ``run_bench`` sweeps against one store
(``docs/INCREMENTAL.md``):

1. **cold** -- every stage misses and is scheduled;
2. **warm no-op** -- zero stages scheduled, zero pool tasks, at least
   10x faster than cold, and the report byte-identical to the cold
   one modulo timing/telemetry fields;
3. **simulator edit** (codegen version bump, the machine-layer
   invalidation) -- cached traces re-simulate without a single
   interpret or transform re-running, and the points still match the
   cold run bit for bit.

``make incr-smoke`` runs this file; it also rides in tier-1.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.harness.bench import run_bench, sweep_points

FIGURE = "fig9b"
SCALE = 200

#: Report fields that legitimately vary between two identical sweeps:
#: wall-clock timings, pool/plan telemetry, and provenance stamps.
VOLATILE = frozenset({
    "optimized_seconds", "optimized_stage_seconds", "naive_seconds",
    "naive_stage_seconds", "point_seconds", "speedup", "stage_speedups",
    "metrics", "provenance", "cost_model", "batches", "batch_speedup",
    "batched_identical", "incr", "resume", "fabric", "fabric_incidents",
    "num_tasks", "jobs", "cache_stats", "verification",
})


def _stable(report: dict) -> bytes:
    return json.dumps({k: v for k, v in report.items()
                       if k not in VOLATILE},
                      sort_keys=True).encode()


def _run(out_dir):
    t0 = time.perf_counter()
    report = run_bench(FIGURE, scale=SCALE, jobs=2, out_dir=str(out_dir),
                       compare=False)
    return report, time.perf_counter() - t0


@pytest.mark.incr_smoke
def test_cold_warm_and_machine_edit(tmp_path, monkeypatch):
    num_points = len(sweep_points(FIGURE, SCALE))

    cold, cold_seconds = _run(tmp_path)
    assert cold["degraded_points"] == []
    assert cold["incr"]["scheduled_total"] > 0
    assert cold["incr"]["served_points"] == []
    assert cold["num_tasks"] > 0

    # -- warm no-op: prove, don't recompute -----------------------------
    warm, warm_seconds = _run(tmp_path)
    assert warm["incr"]["scheduled_total"] == 0
    assert warm["incr"]["compute_scheduled"] == 0
    assert warm["incr"]["figure_stage"] == "hit"
    assert len(warm["incr"]["served_points"]) == num_points
    # No pool task ran -- the sweep never even forked workers.
    assert warm["num_tasks"] == 0 and warm["jobs"] == 0
    # Bit-identical results, an order of magnitude faster.
    assert _stable(warm) == _stable(cold)
    assert warm_seconds * 10 <= cold_seconds, (
        f"warm {warm_seconds:.2f}s vs cold {cold_seconds:.2f}s")

    # -- simulator edit: re-simulate cached traces ----------------------
    from repro.machine import batch

    monkeypatch.setattr(batch, "CODEGEN_VERSION",
                        batch.CODEGEN_VERSION + 1)
    edited, _ = _run(tmp_path)
    stages = edited["incr"]["stages"]
    # The functional prefix served from the store: nothing re-ran.
    assert stages["interpret"]["scheduled"] == 0
    assert stages["interpret"]["hit"] > 0
    assert stages["transform"]["scheduled"] == 0
    # Every simulate point re-ran, and the aggregation with it.
    assert stages["simulate"]["scheduled"] == num_points
    assert stages["figure"]["scheduled"] == 1
    assert edited["incr"]["served_points"] == []
    # Same machine model, same numbers: the edit was version-only.
    assert _stable(edited) == _stable(cold)


@pytest.mark.incr_smoke
def test_warm_run_passes_the_naive_comparison_gate(tmp_path):
    # With the sampled naive comparison enabled, a fully warm sweep
    # must report its real (plan-cost-relative) speedup -- not 0.00x
    # from an all-zero denominator -- and the naive sample must still
    # functionally match the store-served payloads.
    kwargs = dict(scale=40, jobs=2, out_dir=str(tmp_path),
                  compare=True, skip_naive=True)
    cold = run_bench(FIGURE, **kwargs)
    assert cold["functional_identical"]

    warm = run_bench(FIGURE, **kwargs)
    assert warm["incr"]["scheduled_total"] == 0
    assert warm["functional_identical"]
    assert warm["speedup"] >= 1.0
