"""Bounded perf-smoke tier (``-m perf_smoke``).

Differential guardrails for the performance layer: the predecoded
interpreter and the columnar trace format must stay *functionally
identical* to the preserved reference implementations on the fuzz
generator's seeded loops (irregular control flow, random operand
shapes -- a much nastier population than the curated workloads), and
the event-driven timing model must reproduce the reference timing
model cycle-for-cycle on those traces.

The tier is bounded (fixed seeds, small loop bounds) so it runs inside
the normal test suite; deselect with ``-m 'not perf_smoke'``.
"""

import pytest

from repro.fuzz.generator import generate_case
from repro.interp.interpreter import run_function
from repro.interp.predecode import predecode
from repro.interp.reference import run_function_reference
from repro.interp.trace import ColumnarTrace
from repro.machine.cmp import simulate
from repro.machine.config import HALF_WIDTH_MACHINE, MachineConfig
from repro.machine.reference import simulate_reference

#: Fixed generator seeds: deterministic, structurally diverse loops.
SEEDS = tuple(range(12))

MAX_STEPS = 2_000_000

pytestmark = pytest.mark.perf_smoke


def _runs(seed):
    case = generate_case(seed)
    fast = run_function(
        case.function, case.fresh_memory(), initial_regs=case.initial_regs,
        max_steps=MAX_STEPS, record_trace=True, record_profile=True,
    )
    ref = run_function_reference(
        case.function, case.fresh_memory(), initial_regs=case.initial_regs,
        max_steps=MAX_STEPS, record_trace=True, record_profile=True,
    )
    return case, fast, ref


@pytest.mark.parametrize("seed", SEEDS)
def test_predecoded_interpreter_matches_reference(seed):
    case, fast, ref = _runs(seed)
    assert fast.regs == ref.regs
    assert fast.steps == ref.steps
    assert fast.block_counts == ref.block_counts
    assert fast.memory.snapshot() == ref.memory.snapshot()
    for reg in case.live_outs:
        assert fast.reg(reg) == ref.reg(reg)


@pytest.mark.parametrize("seed", SEEDS)
def test_columnar_trace_matches_reference_trace(seed):
    _, fast, ref = _runs(seed)
    assert isinstance(fast.trace, ColumnarTrace)
    assert len(fast.trace) == len(ref.trace)
    for got, want in zip(fast.trace, ref.trace):
        assert got.inst is want.inst
        assert got.addr == want.addr
        assert got.taken == want.taken
        assert got.block == want.block


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_timing_model_matches_reference_on_fuzz_traces(seed):
    _, fast, ref = _runs(seed)
    for machine in (MachineConfig(), HALF_WIDTH_MACHINE):
        new_sim = simulate([fast.trace], machine)
        old_sim = simulate_reference([ref.trace], machine, burst=1 << 30)
        assert new_sim.cycles == old_sim.cycles
        assert new_sim.ipcs() == old_sim.ipcs()


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_predecode_reuse_is_pure(seed):
    # Reusing one DecodedFunction across runs (the cache's fast path)
    # must not leak state between executions.
    case = generate_case(seed)
    decoded = predecode(case.function)
    first = run_function(
        case.function, case.fresh_memory(), initial_regs=case.initial_regs,
        max_steps=MAX_STEPS, decoded=decoded,
    )
    second = run_function(
        case.function, case.fresh_memory(), initial_regs=case.initial_regs,
        max_steps=MAX_STEPS, decoded=decoded,
    )
    assert first.regs == second.regs
    assert first.steps == second.steps
    assert first.memory.snapshot() == second.memory.snapshot()
