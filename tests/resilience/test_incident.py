"""Forensic incident reports: wait-for graphs, JSON round-trips, and
the reports the interpreters attach to their failure exceptions."""

import json

import pytest

from repro.interp.errors import (
    DeadlockError,
    QueueProtocolError,
    StepLimitExceeded,
)
from repro.interp.interpreter import run_function
from repro.interp.multithread import ThreadProgram, run_threads
from repro.ir.builder import IRBuilder
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg
from repro.resilience import (
    ROLE_CONSUME,
    ROLE_PRODUCE,
    IncidentReport,
    WaitEdge,
    WaitForGraph,
)

TIGHT_BUDGET = 5_000


def _straight_line(name, flows):
    b = IRBuilder(name)
    b.block("entry", entry=True)
    for opcode, queue in flows:
        if opcode is Opcode.PRODUCE:
            b.emit(Instruction(Opcode.PRODUCE, srcs=[gen_reg(0)], queue=queue))
        else:
            b.emit(Instruction(Opcode.CONSUME, dest=gen_reg(1), queue=queue))
    b.ret()
    return b.done()


def _spinner(name):
    """A thread that loops forever: add, jmp back."""
    b = IRBuilder(name)
    b.block("entry", entry=True)
    b.jmp("spin")
    b.block("spin")
    r = gen_reg(0)
    b.add(r, r, imm=1)
    b.jmp("spin")
    return b.done()


class TestWaitForGraph:
    def test_two_thread_circular_wait(self):
        owners = {
            0: {"producers": [0], "consumers": [1]},
            1: {"producers": [1], "consumers": [0]},
        }
        graph = WaitForGraph(
            [WaitEdge(0, ROLE_CONSUME, 1), WaitEdge(1, ROLE_CONSUME, 0)],
            owners,
        )
        assert graph.cycles() == [[0, 1]]
        assert "circular wait" in graph.describe()

    def test_chain_without_cycle(self):
        # Thread 0 waits on thread 1; thread 1 is not blocked (it
        # stalled or exited), so there is no circular wait.
        owners = {0: {"producers": [1], "consumers": [0]}}
        graph = WaitForGraph([WaitEdge(0, ROLE_CONSUME, 0)], owners)
        assert graph.cycles() == []
        assert graph.waits_on() == {0: {1}}

    def test_stall_edges_have_no_queue(self):
        graph = WaitForGraph([WaitEdge(2, "stalled", None, "injected stall")])
        assert graph.waits_on() == {2: set()}
        assert "injected stall" in graph.describe()

    def test_to_dict_is_json_safe(self):
        graph = WaitForGraph(
            [WaitEdge(0, ROLE_PRODUCE, 3)],
            {3: {"producers": [0], "consumers": [1]}},
        )
        data = json.loads(json.dumps(graph.to_dict()))
        assert data["edges"][0] == {
            "thread": 0, "role": "produce", "queue": 3, "detail": "",
        }
        assert data["owners"]["3"]["consumers"] == [1]


class TestIncidentReport:
    def test_round_trips_through_json(self):
        report = IncidentReport(
            kind="deadlock", message="all blocked", domain="interp",
            wait_for=WaitForGraph([WaitEdge(0, ROLE_CONSUME, 0)]),
            occupancies={0: 2}, recent_ops={0: ["consume r1 = [0]"]},
            steps={0: 17}, fault="queue-drop-token",
        )
        data = json.loads(json.dumps(report.to_dict()))
        assert data["kind"] == "deadlock"
        assert data["occupancies"] == {"0": 2}
        assert data["steps"] == {"0": 17}
        assert data["fault"] == "queue-drop-token"

    def test_format_mentions_the_essentials(self):
        report = IncidentReport(
            kind="protocol", message="consume on drained queue",
            wait_for=WaitForGraph([WaitEdge(1, ROLE_CONSUME, 4)]),
            occupancies={4: 0}, fault="core-premature-exit",
        )
        text = report.format()
        assert "protocol" in text
        assert "queue 4" in text
        assert "core-premature-exit" in text

    def test_metrics_snapshot_in_dict_and_str(self):
        report = IncidentReport(
            kind="deadlock", message="all blocked",
            metrics={"interp.consume_waits{queue=0,thread=1}": 12,
                     "sim.cycles": 900},
        )
        data = json.loads(json.dumps(report.to_dict()))
        assert data["metrics"]["sim.cycles"] == 900
        text = str(report)
        assert "telemetry:" in text
        assert "interp.consume_waits{queue=0,thread=1}=12" in text
        assert text == report.format()

    def test_metrics_excerpt_elides_long_snapshots(self):
        metrics = {f"sim.stall_cycles{{core={i}}}": i for i in range(20)}
        text = IncidentReport(kind="x", message="y", metrics=metrics).format()
        assert "(+12 more)" in text

    def test_no_metrics_no_telemetry_line(self):
        text = IncidentReport(kind="x", message="y").format()
        assert "telemetry" not in text


class TestAttachedReports:
    def test_deadlock_report_has_wait_for_cycle_and_recent_ops(self):
        t0 = _straight_line("t0", [(Opcode.CONSUME, 1), (Opcode.PRODUCE, 0)])
        t1 = _straight_line("t1", [(Opcode.CONSUME, 0), (Opcode.PRODUCE, 1)])
        with pytest.raises(DeadlockError) as excinfo:
            run_threads(ThreadProgram([t0, t1]), max_steps=TIGHT_BUDGET,
                        record_trace=True)
        report = excinfo.value.report
        assert report is not None and report.kind == "deadlock"
        assert len(report.wait_for) == 2
        assert report.wait_for.cycles() == [[0, 1]]
        # Both queues are empty at the deadlock: no occupancy entries.
        assert report.occupancies == {}
        assert report.extra["circular"] is True
        # The report is self-contained data: JSON-safe, no live state.
        json.dumps(report.to_dict())

    def test_protocol_error_carries_queue_and_thread(self):
        producer = _straight_line("prod", [(Opcode.PRODUCE, 7)] * 2)
        consumer = _straight_line("cons", [(Opcode.CONSUME, 7)] * 5)
        with pytest.raises(QueueProtocolError) as excinfo:
            run_threads(ThreadProgram([producer, consumer]),
                        max_steps=TIGHT_BUDGET)
        exc = excinfo.value
        assert exc.queue == 7
        assert exc.thread == 1
        assert exc.report is not None and exc.report.kind == "protocol"
        assert exc.report.queue == 7

    def test_step_limit_livelock_report(self):
        """A seeded livelock (spinner thread) must produce a step-limit
        incident with per-thread step counts, not a bare message."""
        with pytest.raises(StepLimitExceeded) as excinfo:
            run_threads(ThreadProgram([_spinner("spin")]), max_steps=200,
                        record_trace=True)
        report = excinfo.value.report
        assert report is not None and report.kind == "step-limit"
        assert sum(report.steps.values()) >= 200
        assert report.recent_ops[0], "expected a last-ops excerpt"


class TestStepLimitExcerpt:
    """Satellite: StepLimitExceeded names the block, steps, registers."""

    def test_message_names_block_steps_and_registers(self):
        fn = _spinner("hot")
        with pytest.raises(StepLimitExceeded) as excinfo:
            run_function(fn, max_steps=100)
        exc = excinfo.value
        assert "hot" in str(exc)
        assert "block spin" in str(exc)
        assert "100" in str(exc)
        assert "regs:" in str(exc)
        assert exc.function == "hot"
        assert exc.block == "spin"
        assert exc.steps == 100
        assert exc.registers, "expected a register excerpt"
