"""Fault-plan machinery plus the error paths it must never break:
capacity validation, token filtering, wildcard resolution."""

import pytest

from repro.interp.multithread import QueueSet, ThreadProgram, run_threads
from repro.ir.builder import IRBuilder
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg
from repro.resilience import CoreFault, FaultPlan, QueueFault
from repro.resilience.faults import CORRUPT_MASK


class TestFaultValidation:
    def test_unknown_queue_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown queue fault kind"):
            QueueFault("melt")

    def test_unknown_core_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown core fault kind"):
            CoreFault("overclock")

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(queue_faults=(QueueFault("drop"),))


class TestActiveFaults:
    def test_drop_window(self):
        plan = FaultPlan(queue_faults=(QueueFault("drop", queue=3, after=1),))
        active = plan.start([3], 2)
        assert active.filter_produce(3, 10) == [10]   # before the window
        assert active.filter_produce(3, 11) == []     # dropped
        assert active.filter_produce(3, 12) == [12]   # window closed
        assert active.fired

    def test_duplicate_and_corrupt(self):
        plan = FaultPlan(queue_faults=(
            QueueFault("duplicate", queue=0, after=0),
            QueueFault("corrupt", queue=1, after=0, count=None),
        ))
        active = plan.start([0, 1], 2)
        assert active.filter_produce(0, 5) == [5, 5]
        assert active.filter_produce(1, 5) == [5 ^ CORRUPT_MASK]
        assert active.filter_produce(1, 6) == [6 ^ CORRUPT_MASK]

    def test_other_queues_unaffected(self):
        plan = FaultPlan(queue_faults=(QueueFault("drop", queue=0, after=0),))
        active = plan.start([0, 9], 2)
        assert active.filter_produce(9, 42) == [42]

    def test_wildcard_queue_resolves_to_lowest_id(self):
        plan = FaultPlan(queue_faults=(QueueFault("capacity", capacity=0),))
        active = plan.start([4, 2, 7], 2)
        assert active.capacity_override(2) == 0
        assert active.capacity_override(4) is None

    def test_wildcard_thread_resolves_to_last(self):
        plan = FaultPlan(core_faults=(CoreFault("stall", after=0),))
        active = plan.start([], 3)
        assert active.thread_stalled(2, 0)
        assert not active.thread_stalled(0, 100)

    def test_exit_respects_after_threshold(self):
        plan = FaultPlan(core_faults=(CoreFault("exit", thread=1, after=5),))
        active = plan.start([], 2)
        assert not active.thread_exits(1, 4)
        assert active.thread_exits(1, 5)


class TestCapacityValidation:
    """Configured capacities must be sane; only *fault-injected*
    misconfigurations may go below 1."""

    @pytest.mark.parametrize("capacity", [0, -1, -32])
    def test_queue_set_rejects_nonpositive_capacity(self, capacity):
        with pytest.raises(ValueError, match="capacity must be >= 1"):
            QueueSet(capacity=capacity)

    @pytest.mark.parametrize("capacity", [0, -1])
    def test_run_threads_rejects_nonpositive_capacity(self, capacity):
        b = IRBuilder("t")
        b.block("entry", entry=True)
        b.emit(Instruction(Opcode.PRODUCE, srcs=[gen_reg(0)], queue=0))
        b.ret()
        with pytest.raises(ValueError, match="capacity must be >= 1"):
            run_threads(ThreadProgram([b.done()]), queue_capacity=capacity)

    def test_override_capacity_zero_is_allowed(self):
        # ...because a 0-capacity queue is exactly the malfunction the
        # capacity fault models.
        queues = QueueSet(capacity=8, capacity_overrides={0: 0})
        assert queues.capacity_for(0) == 0
        assert queues.capacity_for(1) == 8
        assert not queues.can_produce(0)
        assert queues.can_produce(1)
