"""Supervised execution: graceful degradation to the sequential
baseline, with structured incidents and distinct exit codes."""

import json

import pytest

from repro.cli import main
from repro.harness.runner import run_baseline, run_supervised
from repro.resilience import (
    EXIT_CLEAN,
    EXIT_DEGRADED,
    EXIT_FAILED,
    CoreFault,
    FaultPlan,
    QueueFault,
    SupervisedOutcome,
)
from repro.resilience.supervisor import (
    STATUS_CLEAN,
    STATUS_DEGRADED,
    STATUS_FAILED,
)
from repro.workloads import get_workload

SCALE = 40

ZERO_CAP = FaultPlan(queue_faults=(QueueFault("capacity", capacity=0),),
                     name="queue-zero-capacity")


class TestOutcomes:
    def test_clean_run(self):
        outcome = run_supervised(get_workload("listtraverse"), scale=SCALE)
        assert outcome.status == STATUS_CLEAN
        assert outcome.ok and outcome.exit_code == EXIT_CLEAN
        assert outcome.incidents == []
        assert outcome.result.dswp_sim is not None
        assert outcome.result.loop_speedup != 1.0 or True  # just computable

    @pytest.mark.robustness_smoke
    def test_induced_deadlock_degrades_to_baseline(self):
        """The acceptance criterion: an induced deadlock yields the
        baseline's output plus an incident with a non-empty wait-for
        graph."""
        workload = get_workload("listtraverse")
        outcome = run_supervised(workload, scale=SCALE, fault_plan=ZERO_CAP)
        assert outcome.status == STATUS_DEGRADED
        assert outcome.exit_code == EXIT_DEGRADED
        # One incident, with forensics.
        assert len(outcome.incidents) == 1
        incident = outcome.incidents[0]
        assert incident.kind == "deadlock"
        assert len(incident.wait_for) > 0, "wait-for graph must be non-empty"
        assert incident.fault.startswith("queue-zero-capacity")
        json.dumps(incident.to_dict())
        # The degraded result falls back to the baseline timing...
        assert outcome.result.dswp_sim is None
        assert outcome.result.loop_speedup == 1.0
        # ...and the functional answer IS the baseline interpreter's.
        reference = run_baseline(workload.build(scale=SCALE))
        assert outcome.baseline.memory.snapshot() == reference.memory.snapshot()
        assert outcome.baseline.regs == reference.regs

    def test_degraded_incident_carries_metrics_snapshot(self):
        from repro.obs import ObsConfig

        obs = ObsConfig.enabled()
        outcome = run_supervised(get_workload("listtraverse"), scale=SCALE,
                                 fault_plan=ZERO_CAP, obs=obs)
        assert outcome.status == STATUS_DEGRADED
        (incident,) = outcome.incidents
        # The telemetry collected up to the failure rides on the
        # incident: the zero-capacity queue blocks the producer, so its
        # wait counter must be present, and the whole snapshot must
        # survive the JSON round-trip and surface in the rendering.
        assert incident.metrics
        assert any(key.startswith("interp.produce_waits")
                   for key in incident.metrics)
        assert json.loads(json.dumps(incident.to_dict()))["metrics"]
        assert "telemetry:" in str(incident)
        # ... and the tracer marked the incident on the timeline.
        assert any(e["ph"] == "i" and e["name"] == "incident"
                   for e in obs.tracer.events)

    def test_core_stall_degrades(self):
        plan = FaultPlan(core_faults=(CoreFault("stall", after=1),),
                         name="core-stall")
        outcome = run_supervised(get_workload("listtraverse"), scale=SCALE,
                                 fault_plan=plan)
        assert outcome.status == STATUS_DEGRADED
        assert outcome.incidents[0].fault.startswith("core-stall")

    def test_watchdog_budget_degrades(self):
        outcome = run_supervised(get_workload("listtraverse"), scale=SCALE,
                                 cycle_budget=10)
        assert outcome.status == STATUS_DEGRADED
        assert outcome.incidents[0].kind == "watchdog"

    def test_exit_code_mapping(self):
        assert SupervisedOutcome(STATUS_CLEAN).exit_code == EXIT_CLEAN
        assert SupervisedOutcome(STATUS_DEGRADED).exit_code == EXIT_DEGRADED
        assert SupervisedOutcome(STATUS_FAILED).exit_code == EXIT_FAILED
        # Unknown statuses fail closed.
        assert SupervisedOutcome("???").exit_code == EXIT_FAILED


class TestCLI:
    @pytest.mark.robustness_smoke
    def test_supervised_exit_codes(self, capsys):
        argv = ["run", "listtraverse", "--supervise", "--scale", str(SCALE)]
        assert main(argv) == EXIT_CLEAN
        assert main(argv + ["--inject", "queue-zero-capacity"]) == EXIT_DEGRADED
        out = capsys.readouterr().out
        assert "status:          degraded" in out
        assert "wait-for:" in out

    def test_supervised_json_output(self, capsys):
        code = main(["run", "listtraverse", "--supervise", "--json",
                     "--scale", str(SCALE), "--inject", "core-stall"])
        assert code == EXIT_DEGRADED
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "degraded"
        assert payload["exit_code"] == EXIT_DEGRADED
        assert payload["incidents"][0]["fault"].startswith("core-stall")
        assert payload["loop_speedup"] == 1.0

    def test_inject_requires_supervise(self, capsys):
        assert main(["run", "listtraverse", "--inject", "core-stall",
                     "--scale", str(SCALE)]) == 2

    def test_compiler_fault_names_rejected(self, capsys):
        assert main(["run", "listtraverse", "--supervise",
                     "--inject", "drop-produce", "--scale", str(SCALE)]) == 2
        assert "machine-level fault" in capsys.readouterr().err
