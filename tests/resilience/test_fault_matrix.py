"""The machine-level fault matrix: every fault must be *detected* --
a structured incident, a protocol error, or an output divergence --
never a silent wrong result and never a hang.

Detection is checked in both execution domains:

* functional (``run_threads``): through the differential oracle, which
  classifies forensic exceptions and output mismatches alike;
* timing (``cmp.simulate``): deadlock-class faults must raise
  :class:`SimulationDeadlock` with an attached incident, and the
  cycle-budget watchdog must cut off anything that still makes
  progress forever.
"""

import pytest

from repro.analysis.memdep import AliasMode
from repro.fuzz import check_case, generate_case, get_fault
from repro.fuzz.faults import MACHINE_FAULTS
from repro.fuzz.oracle import OracleConfig
from repro.harness.runner import run_baseline, run_dswp
from repro.machine.cmp import (
    CycleBudgetExceeded,
    SimulationDeadlock,
    simulate,
)
from repro.machine.config import MachineConfig
from repro.resilience import CoreFault, FaultPlan, QueueFault
from repro.workloads import get_workload

FAST = OracleConfig(
    thread_counts=(2,),
    alias_modes=(AliasMode.REGIONS,),
    quanta=(1, 7),
    queue_capacities=(2, None),
    random_partitions=1,
)


@pytest.fixture(scope="module")
def pipeline():
    """One real DSWP pipeline (program + per-thread traces)."""
    case = get_workload("listtraverse").build(scale=40)
    baseline = run_baseline(case)
    return run_dswp(case, baseline)


@pytest.mark.robustness_smoke
@pytest.mark.parametrize("fault_name", sorted(MACHINE_FAULTS))
def test_functional_domain_detects_every_machine_fault(fault_name):
    """Each machine fault must surface as a divergence on at least one
    of a handful of seeds -- and the tight oracle budgets mean a hang
    would fail the test as a step-limit divergence miscount, not block
    the suite."""
    fault = get_fault(fault_name)
    caught = 0
    for seed in range(12):
        report = check_case(generate_case(seed), FAST, fault=fault)
        caught += bool(report.divergences)
    assert caught >= 1, f"machine fault {fault_name} never detected"


@pytest.mark.robustness_smoke
def test_timing_domain_detects_zero_capacity(pipeline):
    plan = FaultPlan(queue_faults=(QueueFault("capacity", capacity=0),),
                     name="queue-zero-capacity")
    with pytest.raises(SimulationDeadlock) as excinfo:
        simulate(pipeline.traces, MachineConfig(), fault_plan=plan)
    report = excinfo.value.report
    assert report is not None
    assert report.domain == "machine"
    # The timing incident records the full plan description.
    assert report.fault.startswith("queue-zero-capacity[")


@pytest.mark.robustness_smoke
def test_timing_domain_detects_core_stall(pipeline):
    plan = FaultPlan(core_faults=(CoreFault("stall", after=1),),
                     name="core-stall")
    with pytest.raises(SimulationDeadlock) as excinfo:
        simulate(pipeline.traces, MachineConfig(), fault_plan=plan)
    report = excinfo.value.report
    assert report is not None
    assert "injected stall" in report.message


def test_timing_domain_tolerates_token_faults(pipeline):
    """Drop/duplicate/corrupt change *timing-side bookkeeping* only --
    the functional damage is the interpreter's to detect -- so the
    timing model must either finish or diagnose, never hang."""
    for kind in ("drop", "duplicate", "corrupt"):
        plan = FaultPlan(queue_faults=(QueueFault(kind, after=0),),
                         name=f"queue-{kind}")
        try:
            simulate(pipeline.traces, MachineConfig(), fault_plan=plan,
                     cycle_budget=10_000_000)
        except SimulationDeadlock as exc:
            assert exc.report is not None


@pytest.mark.robustness_smoke
def test_watchdog_fires_on_tiny_budget(pipeline):
    """The watchdog bounds simulated time even when every round makes
    progress (livelock insurance): an absurdly small budget must trip
    it on a perfectly healthy pipeline."""
    with pytest.raises(CycleBudgetExceeded) as excinfo:
        simulate(pipeline.traces, MachineConfig(), cycle_budget=10)
    report = excinfo.value.report
    assert report is not None
    assert report.kind == "watchdog"
    assert report.extra.get("cycle_budget") == 10


def test_generous_budget_does_not_fire(pipeline):
    sim = simulate(pipeline.traces, MachineConfig(), cycle_budget=10_000_000)
    assert sim.cycles > 0
