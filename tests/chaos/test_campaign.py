"""The chaos_smoke acceptance campaign (ISSUE 8's differential gate).

For any chaos schedule in which every task eventually succeeds, the
bench report must be *bit-identical* to the clean run's, apart from
degradation/retry accounting -- the injected faults may change how the
sweep ran, never what it computed.  The campaign runs randomized
seeded schedules (kill/hang/slow/flaky/shm-corrupt/cache-corrupt all
in the band mix) against real sweeps and diffs the functional points;
a second half proves the resume path: a sweep killed mid-flight
(SIGKILL, torn journal tail included) resumes to the same report while
recomputing only the missing points.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.chaos import ChaosPlan
from repro.harness.bench import run_bench, sweep_points

pytestmark = pytest.mark.chaos_smoke

FIGURE = "fig9a"
SCALE = 30


def _functional(report: dict) -> list[dict]:
    """The sweep's functional content: every point, degradation
    provenance stripped (chaos may change *how* a point ran)."""
    return [{k: v for k, v in p.items() if k != "degraded"}
            for p in report["points"]]


def _bench(out_dir, **kwargs) -> dict:
    os.makedirs(out_dir, exist_ok=True)
    return run_bench(FIGURE, scale=SCALE, jobs=2, out_dir=str(out_dir),
                     compare=False, **kwargs)


class TestDifferentialCampaign:
    def test_randomized_chaos_schedules_are_bit_identical_to_clean(
            self, tmp_path):
        clean = _bench(tmp_path / "clean")
        baseline = json.dumps(_functional(clean), sort_keys=True)
        assert not clean["degraded_points"]

        injected_total = 0
        for seed in (1, 2, 3):
            out = tmp_path / f"chaos{seed}"
            plan = ChaosPlan.random(
                seed, cache_dir=str(out / ".bench-cache"))
            report = _bench(out, chaos=plan, task_timeout=1.5)
            got = json.dumps(_functional(report), sort_keys=True)
            assert got == baseline, f"seed {seed} diverged"
            assert report["chaos"]["seed"] == seed
            assert report["batched_identical"] is not False
            injected_total += sum(report["fabric"].values())
            # The report on disk agrees with the returned dict.
            with open(out / f"BENCH_{FIGURE}.json") as fh:
                disk = json.load(fh)
            assert json.dumps(_functional(disk), sort_keys=True) == baseline
            assert disk["chaos"] == report["chaos"]
        # The campaign must actually have exercised the fabric --
        # all-quiet seeds would make this test vacuous.
        assert injected_total > 0

    def test_chaos_against_point_granular_tasks(self, tmp_path):
        # --no-batch: one task per sweep point, 40 chaos targets.
        clean = _bench(tmp_path / "clean", batch=False)
        out = tmp_path / "chaos"
        plan = ChaosPlan.random(5, cache_dir=str(out / ".bench-cache"))
        report = _bench(out, batch=False, chaos=plan, task_timeout=1.5)
        assert _functional(report) == _functional(clean)

    def test_chaos_provenance_lands_in_the_report(self, tmp_path):
        out = tmp_path / "chaos"
        plan = ChaosPlan.random(11, cache_dir=str(out / ".bench-cache"))
        report = _bench(out, chaos=plan, task_timeout=1.5)
        block = report["chaos"]
        assert block["mode"] == "random" and block["seed"] == 11
        assert set(report["fabric"]) == {
            "crashes", "fallbacks", "timeouts", "retries",
            "workers_reaped", "workers_killed"}
        # retried/timed-out accounting is consistent with the fabric.
        if report["fabric"]["retries"] == 0:
            assert report["retried_points"] == []
        if report["fabric"]["timeouts"] == 0:
            assert report["timed_out_tasks"] == []


class TestResume:
    def test_truncated_journal_recomputes_only_missing_points(
            self, tmp_path):
        """Deterministic SIGKILL simulation: keep the first 5 journal
        records plus a torn half-line (exactly what a kill mid-append
        leaves) and resume."""
        out = tmp_path / "sweep"
        clean = _bench(out, batch=False)
        baseline = _functional(clean)
        all_ids = {p["id"] for p in clean["points"]}

        journal = out / f"SWEEP_{FIGURE}.jsonl"
        lines = journal.read_text(encoding="utf-8").splitlines(keepends=True)
        header, records = lines[0], lines[1:]
        kept = records[:5]
        kept_ids = {json.loads(line)["id"] for line in kept}
        journal.write_text(header + "".join(kept) + records[5][:17],
                           encoding="utf-8")

        resumed = run_bench(FIGURE, scale=SCALE, jobs=2,
                            out_dir=str(out), compare=False, batch=False,
                            resume=True)
        assert _functional(resumed) == baseline
        assert set(resumed["resume"]["reused_points"]) == kept_ids
        assert set(resumed["resume"]["recomputed_points"]) == \
            all_ids - kept_ids

    def test_stale_fingerprint_is_invalidated_not_reused(self, tmp_path):
        out = tmp_path / "sweep"
        _bench(out, batch=False)
        # Same point ids, different scale: every journal entry's input
        # fingerprint is stale and must be recomputed.
        resumed = run_bench(FIGURE, scale=SCALE + 2, jobs=2,
                            out_dir=str(out), compare=False, batch=False,
                            resume=True)
        assert resumed["resume"]["reused_points"] == []
        assert len(resumed["resume"]["recomputed_points"]) == \
            len(sweep_points(FIGURE, SCALE + 2))

    def test_sigkill_mid_sweep_resumes_to_the_clean_report(self, tmp_path):
        """The real thing: a bench subprocess SIGKILLed mid-sweep, then
        resumed in-process.  Whatever subset the journal captured, the
        resumed report must equal the clean run's."""
        clean = _bench(tmp_path / "clean", batch=False)
        baseline = _functional(clean)
        all_ids = {p["id"] for p in clean["points"]}

        out = tmp_path / "killed"
        out.mkdir()
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in (env.get("PYTHONPATH"),) if p]
            + [os.path.join(os.path.dirname(__file__), "..", "..", "src")])
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "bench", "--figure", FIGURE,
             "--scale", str(SCALE), "--jobs", "1", "--no-batch",
             "--no-compare", "--out", str(out)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        journal = out / f"SWEEP_{FIGURE}.jsonl"
        deadline = time.monotonic() + 60.0
        try:
            # Kill as soon as a few points have been journaled (if the
            # sweep wins the race and finishes, resume reuses all --
            # the equality assertion below still bites).
            while proc.poll() is None and time.monotonic() < deadline:
                if journal.exists() and sum(
                        1 for line in journal.read_text(
                            encoding="utf-8").splitlines()
                        if '"kind":"point"' in line) >= 3:
                    proc.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.02)
        finally:
            proc.wait(timeout=60)

        resumed = run_bench(FIGURE, scale=SCALE, jobs=1, out_dir=str(out),
                            compare=False, batch=False, resume=True)
        assert _functional(resumed) == baseline
        reused = set(resumed["resume"]["reused_points"])
        recomputed = set(resumed["resume"]["recomputed_points"])
        assert reused | recomputed == all_ids
        assert not reused & recomputed

    def test_resume_is_reentrant(self, tmp_path):
        # Resume of a complete journal recomputes nothing and the
        # journal survives for the *next* resume (append, not truncate).
        out = tmp_path / "sweep"
        clean = _bench(out, batch=False)
        first = run_bench(FIGURE, scale=SCALE, jobs=2, out_dir=str(out),
                          compare=False, batch=False, resume=True)
        assert first["resume"]["recomputed_points"] == []
        second = run_bench(FIGURE, scale=SCALE, jobs=2, out_dir=str(out),
                           compare=False, batch=False, resume=True)
        assert second["resume"]["recomputed_points"] == []
        assert _functional(second) == _functional(clean)

    def test_fresh_run_truncates_a_stale_journal(self, tmp_path):
        out = tmp_path / "sweep"
        _bench(out, batch=False)
        journal = out / f"SWEEP_{FIGURE}.jsonl"
        before = journal.read_text(encoding="utf-8")
        assert before.count('"kind":"point"') == 40
        # A non-resumed sweep starts a new journal: old entries gone.
        _bench(out, batch=False)
        after = journal.read_text(encoding="utf-8")
        assert after.count('"kind":"point"') == 40
        assert after.splitlines()[0] != "" and len(after) <= len(before) * 1.5
