"""ChaosPlan semantics: determinism, banding, dispatch applicability.

The plan is pure bookkeeping -- no processes die here.  What matters
is that the same seed always schedules the same faults (the campaign's
reproducibility rests on it) and that destructive faults are confined
to a task's first dispatch, so every task eventually succeeds.
"""

from __future__ import annotations

import pytest

from repro.chaos import DEFAULT_RATES, RANDOM_KINDS, ChaosAction, ChaosPlan
from repro.parallel import TransientTaskError

pytestmark = pytest.mark.chaos_smoke

IDS = [f"task:{i}" for i in range(400)]


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        first = ChaosPlan.random(42)
        second = ChaosPlan.random(42)
        assert [first.kind_for(tid) for tid in IDS] == \
            [second.kind_for(tid) for tid in IDS]

    def test_different_seeds_differ(self):
        a = [ChaosPlan.random(1).kind_for(tid) for tid in IDS]
        b = [ChaosPlan.random(2).kind_for(tid) for tid in IDS]
        assert a != b

    def test_schedule_is_order_independent(self):
        # The fate of a task is a function of (seed, id) alone -- the
        # plan has no RNG state that query order could advance.
        plan = ChaosPlan.random(7)
        forward = {tid: plan.kind_for(tid) for tid in IDS}
        backward = {tid: plan.kind_for(tid) for tid in reversed(IDS)}
        assert forward == backward

    def test_rates_land_in_the_right_ballpark(self):
        plan = ChaosPlan.random(3)
        kinds = [plan.kind_for(tid) for tid in IDS]
        hit = sum(1 for k in kinds if k is not None)
        expected = sum(DEFAULT_RATES.values()) * len(IDS)
        # sha256 banding over 400 ids: allow generous sampling noise.
        assert 0.5 * expected <= hit <= 1.5 * expected
        assert {k for k in kinds if k is not None} <= set(RANDOM_KINDS)


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kinds"):
            ChaosPlan.random(0, rates={"meteor": 0.5})

    def test_rates_over_one_rejected(self):
        with pytest.raises(ValueError, match="> 1"):
            ChaosPlan.random(0, rates={"kill": 0.9, "hang": 0.9})

    def test_flaky_failures_clamped_below_retry_budget(self):
        # A seeded plan must never schedule more consecutive transient
        # failures than the pool will retry -- otherwise a flaky task
        # degrades and the bit-identity invariant gets noisy.
        plan = ChaosPlan.random(0, flaky_failures=99)
        assert plan.flaky_failures < 3


class TestDispatchApplicability:
    def test_destructive_kinds_fire_only_on_first_dispatch(self):
        for kind in ("kill", "hang", "slow", "shm-corrupt",
                     "cache-corrupt", "kill-after-encode"):
            plan = ChaosPlan.explicit({"t": ChaosAction(kind)})
            assert plan.action("t", 1) is not None
            assert plan.action("t", 2) is None

    def test_flaky_fires_for_its_attempt_budget(self):
        plan = ChaosPlan.explicit({"t": ChaosAction("flaky", attempts=2)})
        assert plan.action("t", 1) is not None
        assert plan.action("t", 2) is not None
        assert plan.action("t", 3) is None

    def test_unlisted_tasks_are_untouched(self):
        plan = ChaosPlan.explicit({"t": ChaosAction("kill")})
        assert plan.action("other", 1) is None

    def test_flaky_raises_transient_error(self):
        with pytest.raises(TransientTaskError, match="chaos"):
            ChaosAction("flaky").apply_before()


class TestDescribe:
    def test_random_plan_provenance(self):
        block = ChaosPlan.random(9, slow_seconds=0.01).describe()
        assert block["mode"] == "random"
        assert block["seed"] == 9
        assert block["slow_seconds"] == 0.01
        assert set(block["rates"]) == set(RANDOM_KINDS)

    def test_explicit_plan_provenance(self):
        block = ChaosPlan.explicit(
            {"a": ChaosAction("kill"), "b": ChaosAction("hang")}).describe()
        assert block == {"mode": "explicit",
                         "tasks": {"a": "kill", "b": "hang"}}
