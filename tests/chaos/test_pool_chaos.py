"""Fabric hardening under injected faults: every chaos kind recovers.

Each test arms one explicit fault against a real :class:`WorkerPool`
and asserts three things: the run completes, the results are the ones
a clean run produces, and the recovery is visible in the pool's
accounting (counters, ``TaskResult`` provenance, incidents).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

import repro.parallel.pool as pool_module
from repro.chaos import ChaosAction, ChaosPlan
from repro.interp.trace import ColumnarTrace, TraceEntry
from repro.ir.instruction import Instruction, Opcode
from repro.ir.types import gen_reg, pred_reg
from repro.obs.metrics import MetricsRegistry
from repro.parallel import (
    PoolTask,
    TransientTaskError,
    WorkerPool,
)

pytestmark = pytest.mark.chaos_smoke

needs_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform")


def _leftover_segments() -> list[str]:
    if not os.path.isdir("/dev/shm"):
        return []
    return [name for name in os.listdir("/dev/shm")
            if name.startswith("repro-")]


def echo(payload):
    return {"pid": os.getpid(), "value": payload["x"]}


def make_trace(events: int = 1500) -> ColumnarTrace:
    r0, r1 = gen_reg(0), gen_reg(1)
    add = Instruction(Opcode.ADD, dest=r0, srcs=[r0, r1])
    load = Instruction(Opcode.LOAD, dest=r1, srcs=[r0], region="arr")
    br = Instruction(Opcode.BR, srcs=[pred_reg(0)], targets=["a", "b"])
    trace = ColumnarTrace()
    for i in range(events):
        trace.append_entry(TraceEntry(add, block="body"))
        trace.append_entry(TraceEntry(load, addr=i * 8, block="body"))
        trace.append_entry(TraceEntry(br, taken=bool(i & 1), block="body"))
    return trace


def big_trace_task(payload):
    return {"index": payload["index"], "trace": make_trace()}


def flaky_in_worker(payload):
    """Raises TransientTaskError from the *task function itself* (no
    chaos plan) until a marker directory holds enough failure stamps."""
    if multiprocessing.parent_process() is None:
        return {"value": payload["x"], "where": "driver"}
    stamp = os.path.join(payload["dir"], f"flake-{payload['x']}")
    count = 0
    if os.path.exists(stamp):
        with open(stamp, encoding="utf-8") as fh:
            count = int(fh.read() or 0)
    if count < payload["failures"]:
        with open(stamp, "w", encoding="utf-8") as fh:
            fh.write(str(count + 1))
        raise TransientTaskError(f"flake {count + 1} of {payload['x']}")
    return {"value": payload["x"], "where": "worker"}


def sleep_in_worker(payload):
    """Hangs in a worker; returns instantly in the driver (so the
    fallback path stays fast when a test exhausts worker attempts)."""
    if multiprocessing.parent_process() is not None:
        time.sleep(payload["seconds"])
    return {"value": payload["x"], "pid": os.getpid()}


def ignore_sigterm_and_sleep(payload):
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    with open(payload["marker"], "w", encoding="utf-8") as fh:
        fh.write("armed\n")
    time.sleep(60)
    return {"x": payload["x"]}


def tasks(n, timeout=None):
    return [PoolTask(f"t{i}", echo, {"x": i}, timeout=timeout)
            for i in range(n)]


class TestKill:
    def test_killed_worker_task_is_retried_clean(self):
        plan = ChaosPlan.explicit({"t1": ChaosAction("kill")})
        with WorkerPool(2, chaos=plan) as pool:
            results = pool.run(tasks(4))
        assert [r.value["value"] for r in results] == [0, 1, 2, 3]
        assert pool.crashes == 1
        assert pool.fallbacks == 0
        by_id = {r.task.id: r for r in results}
        assert by_id["t1"].attempts == 2
        assert not by_id["t1"].degraded
        assert any(i.kind == "worker-crash" for i in pool.incidents)


class TestHangAndDeadlines:
    def test_hung_worker_is_reaped_and_task_rerouted(self):
        plan = ChaosPlan.explicit(
            {"t0": ChaosAction("hang", seconds=30.0)})
        start = time.monotonic()
        with WorkerPool(2, chaos=plan) as pool:
            results = pool.run(tasks(4, timeout=0.5))
        elapsed = time.monotonic() - start
        assert elapsed < 10.0  # nowhere near the 30s sleep
        assert [r.value["value"] for r in results] == [0, 1, 2, 3]
        by_id = {r.task.id: r for r in results}
        assert by_id["t0"].timed_out
        assert by_id["t0"].attempts == 2
        assert not by_id["t0"].degraded
        assert pool.timeouts == 1
        assert pool.workers_reaped == 1
        assert any(i.kind == "worker-hang" for i in pool.incidents)

    def test_repeated_hangs_degrade_to_driver_execution(self):
        # The task sleeps past its deadline in *every* worker attempt;
        # the driver fallback (deadline-free by design) completes it.
        with WorkerPool(2, max_worker_attempts=2) as pool:
            results = pool.run([
                PoolTask("h0", sleep_in_worker, {"x": 0, "seconds": 30.0},
                         timeout=0.3),
                PoolTask("h1", echo, {"x": 1}),
            ])
        by_id = {r.task.id: r for r in results}
        assert by_id["h0"].value["value"] == 0
        assert by_id["h0"].value["pid"] == os.getpid()
        assert by_id["h0"].degraded and by_id["h0"].timed_out
        assert by_id["h1"].value["value"] == 1
        assert pool.timeouts == 2
        assert pool.fallbacks == 1

    def test_slow_but_within_deadline_is_untouched(self):
        plan = ChaosPlan.explicit(
            {"t0": ChaosAction("slow", seconds=0.1)})
        with WorkerPool(2, chaos=plan) as pool:
            results = pool.run(tasks(4, timeout=30.0))
        assert [r.value["value"] for r in results] == [0, 1, 2, 3]
        assert pool.timeouts == 0
        assert pool.crashes == 0
        assert all(not r.timed_out for r in results)

    def test_no_deadline_means_no_watchdog(self):
        with WorkerPool(2) as pool:
            results = pool.run(tasks(4, timeout=None))
        assert pool.timeouts == 0
        assert [r.value["value"] for r in results] == [0, 1, 2, 3]


class TestTransientRetry:
    def test_chaos_flake_is_absorbed_by_backoff_retry(self):
        plan = ChaosPlan.explicit(
            {"t2": ChaosAction("flaky", attempts=2)})
        with WorkerPool(2, chaos=plan, retry_base=0.01) as pool:
            results = pool.run(tasks(4))
        by_id = {r.task.id: r for r in results}
        assert by_id["t2"].value["value"] == 2
        assert by_id["t2"].retries == 2
        assert not by_id["t2"].degraded
        assert pool.retries == 2
        assert pool.crashes == 0  # transient != crash
        assert sum(1 for i in pool.incidents
                   if i.kind == "task-transient") == 2

    def test_task_raised_transient_error_retries_without_chaos(self, tmp_path):
        task = PoolTask("f0", flaky_in_worker,
                        {"x": 5, "dir": str(tmp_path), "failures": 2})
        with WorkerPool(2, retry_base=0.01) as pool:
            results = pool.run([task])
        assert results[0].value == {"value": 5, "where": "worker"}
        assert results[0].retries == 2
        assert not results[0].degraded

    def test_exhausted_retries_fall_back_to_driver(self):
        plan = ChaosPlan.explicit(
            {"t0": ChaosAction("flaky", attempts=99)})
        with WorkerPool(2, chaos=plan, max_task_retries=2,
                        retry_base=0.01) as pool:
            results = pool.run(tasks(2))
        by_id = {r.task.id: r for r in results}
        # Chaos only lives in workers: the driver fallback ran clean.
        assert by_id["t0"].value["value"] == 0
        assert by_id["t0"].value["pid"] == os.getpid()
        assert by_id["t0"].degraded
        assert by_id["t0"].retries == 2
        assert pool.fallbacks == 1

    def test_backoff_delays_are_deterministic(self):
        pool = WorkerPool(1, retry_base=0.05, retry_cap=2.0)
        flight = pool_module._Flight(PoolTask("x", echo, {}), retries=1)
        first = pool._backoff_delay(flight)
        assert first == pool._backoff_delay(flight)
        flight.retries = 4
        later = pool._backoff_delay(flight)
        assert later > first
        assert later <= pool.retry_cap
        pool.close()


class TestShmCorruption:
    @needs_shm
    def test_corrupted_result_segment_retries_and_matches_clean(
            self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "64")
        with WorkerPool(2) as clean_pool:
            expect = [r.value for r in clean_pool.run([
                PoolTask(f"t{i}", big_trace_task, {"index": i})
                for i in range(3)
            ])]
        plan = ChaosPlan.explicit({"t1": ChaosAction("shm-corrupt")})
        with WorkerPool(2, chaos=plan, retry_base=0.01) as pool:
            results = pool.run([
                PoolTask(f"t{i}", big_trace_task, {"index": i})
                for i in range(3)
            ])
            by_id = {r.task.id: r for r in results}
            assert by_id["t1"].retries == 1
            assert not by_id["t1"].degraded
            assert any(i.kind == "result-decode" for i in pool.incidents)
        got = [r.value for r in results]
        assert [g["index"] for g in got] == [e["index"] for e in expect]
        for g, e in zip(got, expect):
            assert g["trace"].column_bytes() == e["trace"].column_bytes()
        assert not _leftover_segments()


class TestShmHygieneUnderAbruptDeath:
    @needs_shm
    def test_kill_mid_transfer_sweeps_every_segment(self, monkeypatch):
        """A worker that dies *after* allocating result segments but
        before the driver ever sees the descriptor: the rerouted task's
        result must be byte-identical and the shutdown sweep must
        reclaim every orphaned ``/dev/shm`` entry."""
        monkeypatch.setenv("REPRO_SHM_THRESHOLD", "64")
        with WorkerPool(2) as clean_pool:
            expect = {r.task.id: r.value for r in clean_pool.run([
                PoolTask(f"t{i}", big_trace_task, {"index": i})
                for i in range(4)
            ])}
        plan = ChaosPlan.explicit({
            "t0": ChaosAction("kill-after-encode"),
            "t2": ChaosAction("kill-after-encode"),
        })
        pool = WorkerPool(2, chaos=plan)
        results = pool.run([
            PoolTask(f"t{i}", big_trace_task, {"index": i})
            for i in range(4)
        ])
        assert pool.crashes == 2
        by_id = {r.task.id: r.value for r in results}
        for tid, value in expect.items():
            assert by_id[tid]["index"] == value["index"]
            assert by_id[tid]["trace"].column_bytes() == \
                value["trace"].column_bytes()
        pool.close()
        assert pool.segments_swept >= 1  # the orphans were found...
        assert not _leftover_segments()  # ...and reclaimed


class TestCacheCorruption:
    def test_cache_corrupt_is_recovered_as_a_miss(self, tmp_path):
        from repro.harness.cache import ExperimentCache

        cache = ExperimentCache(persist_dir=str(tmp_path))
        cache.put_object("thing", "key1", {"payload": 123})
        assert cache.get_object("thing", "key1") == {"payload": 123}

        ChaosAction("cache-corrupt", cache_dir=str(tmp_path)).apply_before()
        fresh = ExperimentCache(persist_dir=str(tmp_path))
        # Corrupt entry -> counted miss, not an error; recompute works.
        assert fresh.get_object("thing", "key1") is None
        assert fresh.stats().get("corrupt_evictions", 0) == 1
        fresh.put_object("thing", "key1", {"payload": 123})
        assert fresh.get_object("thing", "key1") == {"payload": 123}


class TestCloseEscalation:
    def test_close_kills_workers_that_ignore_sigterm(
            self, monkeypatch, tmp_path):
        monkeypatch.setattr(pool_module, "JOIN_TIMEOUT", 0.3)
        registry = MetricsRegistry()
        pool = WorkerPool(2, metrics=registry)
        pool.run(tasks(2))  # fork the workers
        victim = pool._workers[0]
        marker = str(tmp_path / "sigterm-armed")
        victim.inbox.put(
            ("stuck", ignore_sigterm_and_sleep, {"x": 0, "marker": marker}, 1))
        deadline = time.monotonic() + 10.0
        # Wait until the worker has masked SIGTERM before closing.
        while not os.path.exists(marker):
            assert time.monotonic() < deadline, "worker never armed"
            time.sleep(0.02)
        pool.close()
        assert not victim.process.is_alive()
        assert pool.workers_killed >= 1
        assert registry.snapshot()["pool.workers_killed"] >= 1
        assert any(i.kind == "worker-kill" for i in pool.incidents)

    def test_clean_close_kills_nothing(self):
        registry = MetricsRegistry()
        pool = WorkerPool(2, metrics=registry)
        pool.run(tasks(4))
        pool.close()
        assert pool.workers_killed == 0
        assert registry.snapshot().get("pool.workers_killed", 0) == 0


class TestMetricsAccounting:
    def test_counters_record_per_run_deltas_not_totals(self):
        # Two chaotic runs against one registry: the counter must equal
        # the sum of per-run deltas, not double-count earlier runs.
        plan = ChaosPlan.explicit({"t1": ChaosAction("kill")})
        registry = MetricsRegistry()
        with WorkerPool(2, metrics=registry, chaos=plan) as pool:
            pool.run(tasks(3))
            pool.run(tasks(3))  # t1 killed again (fresh run, dispatch 1)
        snapshot = registry.snapshot()
        assert pool.crashes == 2
        assert snapshot["pool.crashes"] == 2

    def test_retry_and_timeout_metrics_are_per_worker(self):
        plan = ChaosPlan.explicit(
            {"t0": ChaosAction("flaky", attempts=1),
             "t1": ChaosAction("hang", seconds=30.0)})
        registry = MetricsRegistry()
        with WorkerPool(2, metrics=registry, chaos=plan,
                        retry_base=0.01) as pool:
            pool.run(tasks(4, timeout=0.5))
        snapshot = registry.snapshot()
        retries = sum(v for k, v in snapshot.items()
                      if k.startswith("pool.retries{"))
        timeouts = sum(v for k, v in snapshot.items()
                       if k.startswith("pool.timeouts{"))
        assert retries == 1
        assert timeouts == 1
        assert snapshot["pool.retries"] == 1
        assert snapshot["pool.timeouts"] == 1
        assert snapshot["pool.workers_reaped"] == 1
