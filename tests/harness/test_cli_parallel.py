"""CLI surface of the execution fabric: ``bench --skip-naive``,
``fuzz --jobs`` and the ``report --bench`` pool-utilization table."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main

pytestmark = pytest.mark.parallel_smoke


def _run(capsys, argv):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestBenchFlags:
    def test_skip_naive_runs_and_reports_sample(self, tmp_path, capsys):
        code, out, _ = _run(capsys, [
            "bench", "--figure", "fig9a", "--scale", "40", "--jobs", "2",
            "--skip-naive", "--out", str(tmp_path),
        ])
        assert code == 0
        assert "sampled" in out or "functional results identical" in out
        with open(tmp_path / "BENCH_fig9a.json") as fh:
            report = json.load(fh)
        assert report["verification"]["mode"] == "sampled"
        assert report["parallel_identical"] is True


class TestReportBench:
    def test_pool_utilization_table(self, tmp_path, capsys):
        code, _, _ = _run(capsys, [
            "bench", "--figure", "fig9a", "--scale", "40", "--jobs", "2",
            "--no-compare", "--out", str(tmp_path),
        ])
        assert code == 0
        path = str(tmp_path / "BENCH_fig9a.json")
        code, out, _ = _run(capsys, ["report", "--bench", path])
        assert code == 0
        assert "worker" in out
        assert "utilization" in out
        assert "steals" in out
        assert "2 worker(s)" in out

    def test_batch_table_follows_the_pool_table(self, tmp_path, capsys):
        code, _, _ = _run(capsys, [
            "bench", "--figure", "fig9b", "--scale", "30", "--jobs", "1",
            "--no-compare", "--out", str(tmp_path),
        ])
        assert code == 0
        path = str(tmp_path / "BENCH_fig9b.json")
        code, out, _ = _run(capsys, ["report", "--bench", path])
        assert code == 0
        assert "lane widths" in out
        assert "vec/scal/oracle" in out
        assert "steady (s)" in out
        assert "simulate speedup" in out
        assert "results identical" in out

    def test_pre_batch_reports_skip_the_batch_table(self, tmp_path,
                                                    capsys):
        code, _, _ = _run(capsys, [
            "bench", "--figure", "fig9a", "--scale", "30", "--jobs", "1",
            "--no-compare", "--no-batch", "--out", str(tmp_path),
        ])
        assert code == 0
        path = str(tmp_path / "BENCH_fig9a.json")
        code, out, _ = _run(capsys, ["report", "--bench", path])
        assert code == 0
        assert "lane widths" not in out

    def test_missing_file_is_a_usage_error(self, tmp_path, capsys):
        code, _, err = _run(capsys, [
            "report", "--bench", str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot load" in err

    def test_report_without_workload_or_bench_fails(self, capsys):
        code, _, err = _run(capsys, ["report"])
        assert code == 2
        assert "WORKLOAD" in err

    def test_report_workload_still_works(self, capsys):
        code, out, _ = _run(capsys, ["report", "wc", "--scale", "30"])
        assert code == 0
        assert "occupancy" in out


class TestFuzzJobs:
    def test_fuzz_jobs_matches_serial_output_files(self, tmp_path, capsys):
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        code, _, _ = _run(capsys, [
            "fuzz", "--seed", "3", "--iterations", "20",
            "--inject", "drop-dep-arc", "--max-failures", "1",
            "--out", serial_dir,
        ])
        assert code == 0  # fault detected -> success for --inject
        code, out, _ = _run(capsys, [
            "fuzz", "--seed", "3", "--iterations", "20",
            "--inject", "drop-dep-arc", "--max-failures", "1",
            "--out", parallel_dir, "--jobs", "2",
        ])
        assert code == 0
        assert "detected" in out
        assert sorted(os.listdir(serial_dir)) == sorted(
            os.listdir(parallel_dir))
