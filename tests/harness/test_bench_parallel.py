"""Bench-on-the-fabric guarantees: bit-identical results regardless of
worker count, and the sampled verification mode's bookkeeping."""

from __future__ import annotations

import json

import pytest

from repro.harness.bench import (
    MIN_SAMPLE_FRACTION,
    SAMPLE_BUDGET,
    run_bench,
    sweep_points,
    verification_sample,
)

pytestmark = pytest.mark.parallel_smoke

SCALE = 40


def _point_map(report):
    return {p["id"]: (p["cycles"], p["ipcs"], p["instructions"])
            for p in report["points"]}


class TestJobsInvariance:
    def test_two_workers_bit_identical_to_one(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial_dir.mkdir()
        parallel_dir.mkdir()
        serial = run_bench("fig9a", scale=SCALE, jobs=1,
                           out_dir=str(serial_dir), compare=False)
        parallel = run_bench("fig9a", scale=SCALE, jobs=2,
                             out_dir=str(parallel_dir), compare=False)
        assert _point_map(serial) == _point_map(parallel)
        assert parallel["jobs"] == 2
        assert serial["jobs"] == 1

    def test_parallel_identical_flag_is_set_by_comparison(self, tmp_path):
        report = run_bench("fig9a", scale=SCALE, jobs=2,
                           out_dir=str(tmp_path), compare=True)
        assert report["parallel_identical"] is True
        assert report["functional_identical"] is True
        # And it round-trips through the on-disk json.
        with open(report["path"]) as fh:
            assert json.load(fh)["parallel_identical"] is True

    def test_no_compare_leaves_parallel_identical_unset(self, tmp_path):
        report = run_bench("fig9a", scale=SCALE, jobs=2,
                           out_dir=str(tmp_path), compare=False)
        assert report["parallel_identical"] is None
        assert report["verification"]["mode"] == "none"


class TestSampledVerification:
    def test_small_scale_sample_is_full_coverage(self):
        points = sweep_points("fig9a", SCALE)
        sample = verification_sample(points, SCALE)
        # SCALE <= SAMPLE_BUDGET -> every point is verified.
        assert [s["id"] for s in sample] == [p["id"] for p in points]

    def test_large_scale_sample_is_bounded_and_deterministic(self):
        points = sweep_points("fig9a", 4000)
        sample = verification_sample(points, 4000)
        expected = max(1, round(len(points) * MIN_SAMPLE_FRACTION))
        assert len(sample) == expected
        assert sample == verification_sample(points, 4000)
        # Sweep order is preserved within the sample.
        order = {p["id"]: i for i, p in enumerate(points)}
        indices = [order[s["id"]] for s in sample]
        assert indices == sorted(indices)

    def test_fraction_tracks_the_budget(self):
        points = sweep_points("fig9a", SAMPLE_BUDGET * 2)
        sample = verification_sample(points, SAMPLE_BUDGET * 2)
        assert len(sample) == max(1, round(len(points) * 0.5))

    def test_skip_naive_records_sampled_mode(self, tmp_path):
        report = run_bench("fig9a", scale=SCALE, jobs=2,
                           out_dir=str(tmp_path), compare=True,
                           skip_naive=True)
        assert report["verification"]["mode"] == "sampled"
        covered = report["verification"]["points"]
        assert covered  # never empty
        assert report["functional_identical"] is True
        with open(report["path"]) as fh:
            on_disk = json.load(fh)
        assert on_disk["verification"]["mode"] == "sampled"
        assert on_disk["verification"]["points"] == covered

    def test_full_mode_is_recorded_too(self, tmp_path):
        report = run_bench("fig9a", scale=SCALE, jobs=1,
                           out_dir=str(tmp_path), compare=True)
        assert report["verification"]["mode"] == "full"
        assert len(report["verification"]["points"]) == report["num_points"]


class TestPoolTelemetryInReport:
    def test_report_metrics_carry_pool_utilization(self, tmp_path):
        report = run_bench("fig9a", scale=SCALE, jobs=2,
                           out_dir=str(tmp_path), compare=False)
        metrics = report["metrics"]
        assert metrics["pool.workers"] == 2
        total_tasks = sum(v for k, v in metrics.items()
                          if k.startswith("pool.tasks{"))
        # Batched dispatch groups points into config-batch tasks, so the
        # pool sees one task per batch, not per point.
        assert total_tasks == report["num_tasks"]
        assert report["num_tasks"] == len(report["batches"])
        assert "pool.utilization{worker=0}" in metrics
        assert "pool.utilization{worker=1}" in metrics

    def test_cost_model_description_lands_in_report(self, tmp_path):
        first = run_bench("fig9a", scale=SCALE, jobs=1,
                          out_dir=str(tmp_path), compare=False)
        assert first["cost_model"] == "cold"
        # The first report's point_seconds become the next run's model.
        second = run_bench("fig9a", scale=SCALE, jobs=1,
                           out_dir=str(tmp_path), compare=False)
        assert "fitted" in second["cost_model"]
