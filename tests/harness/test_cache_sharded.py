"""ShardedExperimentCache: routing, concurrency, persistence, stats."""

from __future__ import annotations

import threading

import pytest

from repro.harness.cache import ShardedExperimentCache

pytestmark = pytest.mark.parallel_smoke


def test_round_trip_and_miss():
    cache = ShardedExperimentCache(shards=4)
    assert cache.get_object("response", "k1") is None
    cache.put_object("response", "k1", {"value": 1})
    assert cache.get_object("response", "k1") == {"value": 1}
    assert cache.get_object("response", "other") is None


def test_shard_routing_is_stable_and_spread():
    a = ShardedExperimentCache(shards=8)
    b = ShardedExperimentCache(shards=8)
    keys = [f"key-{i}" for i in range(64)]
    assert [a.shard_index(k) for k in keys] == \
        [b.shard_index(k) for k in keys]
    assert len({a.shard_index(k) for k in keys}) > 1


def test_disk_layer_partitions_by_shard(tmp_path):
    cache = ShardedExperimentCache(persist_dir=str(tmp_path), shards=4)
    for i in range(16):
        cache.put_object("response", f"key-{i}", {"i": i})
    shard_dirs = sorted(p.name for p in tmp_path.iterdir() if p.is_dir())
    assert shard_dirs and all(d.startswith("shard-") for d in shard_dirs)
    # A fresh bank over the same directory serves every entry back.
    reopened = ShardedExperimentCache(persist_dir=str(tmp_path), shards=4)
    for i in range(16):
        assert reopened.get_object("response", f"key-{i}") == {"i": i}


def test_concurrent_readers_and_writers():
    cache = ShardedExperimentCache(shards=8)
    n_threads, n_keys = 8, 32
    errors = []
    barrier = threading.Barrier(n_threads)

    def worker(seed: int) -> None:
        barrier.wait()
        try:
            for i in range(n_keys):
                key = f"key-{(seed + i) % n_keys}"
                cache.put_object("response", key, {"key": key})
                got = cache.get_object("response", key)
                # A concurrent writer may have replaced it, but always
                # with the same content (the service's keys are content
                # hashes -- identical key means identical value).
                if got is not None and got != {"key": key}:
                    errors.append((key, got))
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(t,))
               for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    for i in range(n_keys):
        assert cache.get_object("response", f"key-{i}") == \
            {"key": f"key-{i}"}


def test_stats_aggregate_across_shards():
    cache = ShardedExperimentCache(shards=4)
    for i in range(8):
        cache.put_object("response", f"key-{i}", i)
    for i in range(8):
        assert cache.get_object("response", f"key-{i}") == i
    assert cache.get_object("response", "missing") is None
    stats = cache.stats()
    assert stats["object.response.puts"] == 8
    assert stats["object.response.hits"] == 8
    assert stats["object.response.misses"] == 1


def test_shard_count_must_be_positive():
    with pytest.raises(ValueError):
        ShardedExperimentCache(shards=0)
