"""Every bench report must carry provenance and cache telemetry."""

import json

from repro.harness.bench import format_report, run_bench
from repro.machine.config import MachineConfig
from repro.obs import machine_config_digest, provenance_from_snapshot


def test_report_carries_provenance_and_cache_stats(tmp_path):
    report = run_bench("fig9a", scale=30, jobs=1, out_dir=str(tmp_path),
                       compare=False)

    provenance = report["provenance"]
    assert provenance["figure"] == "fig9a"
    assert provenance["bench_scale"] == "30"
    assert provenance["machine_config"] == machine_config_digest(
        MachineConfig())
    # git_commit is best-effort (absent outside a checkout) but when
    # present it must look like a hash.
    if "git_commit" in provenance:
        assert len(provenance["git_commit"]) == 40

    # The same attribution is recoverable from the metrics snapshot,
    # which also mirrors the aggregated cache counters.
    assert provenance_from_snapshot(report["metrics"]) == provenance
    assert report["metrics"]["cache.hits"] == report["cache_stats"]["hits"]
    assert report["metrics"]["cache.misses"] == report["cache_stats"]["misses"]
    assert report["cache_stats"]["misses"] > 0

    # ... and all of it survives the round-trip through the JSON file.
    on_disk = json.loads(open(report["path"]).read())
    assert on_disk["provenance"] == provenance
    assert on_disk["cache_stats"] == report["cache_stats"]

    # The summary line is part of the always-printed report text.
    text = format_report(report)
    assert "summary:" in text
    assert f"cache {report['cache_stats']['hits']} hit(s)" in text
