"""Tests for the experiment runner pipeline."""

import pytest

from repro.harness.runner import (
    ExperimentResult,
    run_baseline,
    run_dswp,
    run_experiment,
)
from repro.machine.config import MachineConfig
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def small_case():
    return get_workload("wc").build(scale=80)


class TestRunBaseline:
    def test_returns_trace_and_profile(self, small_case):
        baseline = run_baseline(small_case)
        assert baseline.trace
        assert baseline.profile.header_trips == 81

    def test_checker_enforced(self, small_case):
        baseline = run_baseline(small_case, check=True)
        assert baseline.case is small_case


class TestRunDswp:
    def test_produces_traces_per_thread(self, small_case):
        run = run_dswp(small_case)
        assert run.result.applied
        assert len(run.traces) == len(run.result.program)
        assert all(run.traces)

    def test_reuses_baseline(self, small_case):
        baseline = run_baseline(small_case)
        run = run_dswp(small_case, baseline)
        assert run.result.applied


class TestRunExperiment:
    def test_full_pipeline(self):
        result = run_experiment(get_workload("wc"), scale=80)
        assert isinstance(result, ExperimentResult)
        assert result.base_sim.cycles > 0
        assert result.dswp_sim.cycles > 0
        assert result.loop_speedup > 0

    def test_program_speedup_below_loop_speedup(self):
        result = run_experiment(get_workload("wc"), scale=80)
        if result.loop_speedup > 1:
            assert 1 <= result.program_speedup <= result.loop_speedup

    def test_distinct_machines_for_baseline_and_dswp(self):
        from repro.machine.config import HALF_WIDTH_MACHINE
        result = run_experiment(
            get_workload("wc"),
            machine=MachineConfig(),
            baseline_machine=HALF_WIDTH_MACHINE,
            scale=80,
        )
        assert result.base_sim.cycles > 0
