"""Experiment cache: cached and fresh runs must be indistinguishable,
and keys must track everything that changes functional behaviour."""

from repro.analysis.memdep import AliasModel
from repro.harness.cache import ExperimentCache, case_digest
from repro.harness.runner import run_experiment
from repro.machine.config import HALF_WIDTH_MACHINE, MachineConfig
from repro.workloads import get_workload

SCALE = 120


def _summary(result):
    return {
        "base_cycles": result.base_sim.cycles,
        "dswp_cycles": result.dswp_sim.cycles,
        "base_ipcs": result.base_sim.ipcs(),
        "dswp_ipcs": result.dswp_sim.ipcs(),
        "loop_speedup": result.loop_speedup,
        "program_speedup": result.program_speedup,
    }


class TestCachedVsFresh:
    def test_sweep_results_agree_with_uncached_runs(self):
        cache = ExperimentCache()
        machines = (
            MachineConfig(),
            HALF_WIDTH_MACHINE,
            MachineConfig().with_comm_latency(5),
        )
        for name in ("mcf", "wc"):
            workload = get_workload(name)
            case = workload.build(scale=SCALE)
            for machine in machines:
                cached = cache.run_experiment(workload, case=case, machine=machine)
                fresh = run_experiment(workload, machine=machine, scale=SCALE)
                assert _summary(cached) == _summary(fresh), (name, machine)
        # 2 workloads x 3 machines: functional work ran once per
        # workload, every later point hit.
        assert cache.stats()["baselines"] == 2
        assert cache.stats()["dswp_runs"] == 2
        assert cache.hits > 0

    def test_alias_model_is_part_of_the_key(self):
        cache = ExperimentCache()
        workload = get_workload("mcf")
        case = workload.build(scale=SCALE)
        cache.run_experiment(workload, case=case)
        cache.run_experiment(
            workload, case=case, alias_model=AliasModel.conservative()
        )
        assert cache.stats()["dswp_runs"] == 2

    def test_repeated_points_hit(self):
        cache = ExperimentCache()
        workload = get_workload("wc")
        case = workload.build(scale=SCALE)
        first = cache.run_experiment(workload, case=case)
        misses = cache.misses
        second = cache.run_experiment(workload, case=case)
        assert cache.misses == misses
        assert _summary(first) == _summary(second)


class TestDigest:
    def test_identical_cases_share_a_digest(self):
        a = get_workload("mcf").build(scale=SCALE)
        b = get_workload("mcf").build(scale=SCALE)
        assert a is not b
        assert case_digest(a) == case_digest(b)

    def test_scale_changes_the_digest(self):
        a = get_workload("mcf").build(scale=SCALE)
        b = get_workload("mcf").build(scale=SCALE + 1)
        assert case_digest(a) != case_digest(b)

    def test_memory_contents_change_the_digest(self):
        a = get_workload("wc").build(scale=SCALE)
        b = get_workload("wc").build(scale=SCALE)
        b.memory.write(0x9999, 123)
        assert case_digest(a) != case_digest(b)

    def test_initial_regs_change_the_digest(self):
        a = get_workload("wc").build(scale=SCALE)
        b = get_workload("wc").build(scale=SCALE)
        reg = next(iter(b.initial_regs))
        b.initial_regs[reg] += 1
        assert case_digest(a) != case_digest(b)
