"""Experiment cache: cached and fresh runs must be indistinguishable,
and keys must track everything that changes functional behaviour."""

import glob
import os

import pytest

from repro.analysis.memdep import AliasModel
from repro.harness.cache import ExperimentCache, case_digest
from repro.harness.runner import run_experiment
from repro.machine.config import HALF_WIDTH_MACHINE, MachineConfig
from repro.workloads import get_workload

SCALE = 120


def _summary(result):
    return {
        "base_cycles": result.base_sim.cycles,
        "dswp_cycles": result.dswp_sim.cycles,
        "base_ipcs": result.base_sim.ipcs(),
        "dswp_ipcs": result.dswp_sim.ipcs(),
        "loop_speedup": result.loop_speedup,
        "program_speedup": result.program_speedup,
    }


class TestCachedVsFresh:
    def test_sweep_results_agree_with_uncached_runs(self):
        cache = ExperimentCache()
        machines = (
            MachineConfig(),
            HALF_WIDTH_MACHINE,
            MachineConfig().with_comm_latency(5),
        )
        for name in ("mcf", "wc"):
            workload = get_workload(name)
            case = workload.build(scale=SCALE)
            for machine in machines:
                cached = cache.run_experiment(workload, case=case, machine=machine)
                fresh = run_experiment(workload, machine=machine, scale=SCALE)
                assert _summary(cached) == _summary(fresh), (name, machine)
        # 2 workloads x 3 machines: functional work ran once per
        # workload, every later point hit.
        assert cache.stats()["baselines"] == 2
        assert cache.stats()["dswp_runs"] == 2
        assert cache.hits > 0

    def test_alias_model_is_part_of_the_key(self):
        cache = ExperimentCache()
        workload = get_workload("mcf")
        case = workload.build(scale=SCALE)
        cache.run_experiment(workload, case=case)
        cache.run_experiment(
            workload, case=case, alias_model=AliasModel.conservative()
        )
        assert cache.stats()["dswp_runs"] == 2

    def test_repeated_points_hit(self):
        cache = ExperimentCache()
        workload = get_workload("wc")
        case = workload.build(scale=SCALE)
        first = cache.run_experiment(workload, case=case)
        misses = cache.misses
        second = cache.run_experiment(workload, case=case)
        assert cache.misses == misses
        assert _summary(first) == _summary(second)


class TestDigest:
    def test_identical_cases_share_a_digest(self):
        a = get_workload("mcf").build(scale=SCALE)
        b = get_workload("mcf").build(scale=SCALE)
        assert a is not b
        assert case_digest(a) == case_digest(b)

    def test_scale_changes_the_digest(self):
        a = get_workload("mcf").build(scale=SCALE)
        b = get_workload("mcf").build(scale=SCALE + 1)
        assert case_digest(a) != case_digest(b)

    def test_memory_contents_change_the_digest(self):
        a = get_workload("wc").build(scale=SCALE)
        b = get_workload("wc").build(scale=SCALE)
        b.memory.write(0x9999, 123)
        assert case_digest(a) != case_digest(b)

    def test_initial_regs_change_the_digest(self):
        a = get_workload("wc").build(scale=SCALE)
        b = get_workload("wc").build(scale=SCALE)
        reg = next(iter(b.initial_regs))
        b.initial_regs[reg] += 1
        assert case_digest(a) != case_digest(b)


class TestPersistence:
    """Disk layer: entries survive across cache instances, and corrupt
    entries are misses (logged, evicted, counted) -- never errors."""

    def _fill(self, directory, log=None):
        cache = ExperimentCache(persist_dir=directory, log=log)
        case = get_workload("wc").build(scale=40)
        cache.baseline(case)
        cache.dswp(case)
        return cache

    def test_entries_survive_across_instances(self, tmp_path):
        d = str(tmp_path)
        first = self._fill(d)
        assert first.stats()["misses"] == 2
        fresh = ExperimentCache(persist_dir=d)
        case = get_workload("wc").build(scale=40)
        run = fresh.baseline(case)
        fresh.dswp(case)
        assert fresh.stats() == {**fresh.stats(), "hits": 2, "misses": 0}
        # The fallback state round-trips too.
        assert run.regs and run.memory is not None

    @pytest.mark.robustness_smoke
    @pytest.mark.parametrize("corruption", ["truncate", "garbage", "empty"])
    def test_corrupt_entries_are_misses(self, tmp_path, corruption):
        d = str(tmp_path)
        self._fill(d)
        for path in glob.glob(os.path.join(d, "*.pkl")):
            if corruption == "truncate":
                with open(path, "r+b") as fh:
                    fh.truncate(6)
            elif corruption == "garbage":
                with open(path, "wb") as fh:
                    fh.write(b"\x00not a pickle")
            else:
                open(path, "wb").close()
        logs = []
        cache = self._fill(d, log=logs.append)
        stats = cache.stats()
        assert stats["corrupt_evictions"] == 2
        assert stats["misses"] == 2, "corrupt entries must re-run"
        assert len(logs) == 2 and all("evicting corrupt" in m for m in logs)
        # Evicted entries were re-stored in loadable form.
        again = self._fill(d)
        assert again.stats()["corrupt_evictions"] == 0
        assert again.stats()["hits"] == 2

    def test_wrong_shape_payload_is_evicted(self, tmp_path):
        d = str(tmp_path)
        self._fill(d)
        import pickle

        for path in glob.glob(os.path.join(d, "baseline-*.pkl")):
            with open(path, "wb") as fh:
                pickle.dump(["unexpected", "shape"], fh)
        cache = self._fill(d)
        assert cache.stats()["corrupt_evictions"] == 1

    def test_without_persist_dir_nothing_is_written(self, tmp_path):
        cache = ExperimentCache()
        case = get_workload("wc").build(scale=40)
        cache.baseline(case)
        assert glob.glob(os.path.join(str(tmp_path), "*")) == []
        assert cache.stats()["corrupt_evictions"] == 0


class TestObjectLayerStats:
    """Per-kind object-layer counters: get/put hits, misses and bytes
    land in ``stats()`` as flat ints a sweep driver can difference."""

    def test_get_put_counts_per_kind(self, tmp_path):
        cache = ExperimentCache(persist_dir=str(tmp_path))
        assert cache.get_object("widget", ("k",)) is None
        cache.put_object("widget", ("k",), {"payload": list(range(50))})
        assert cache.get_object("widget", ("k",)) == {
            "payload": list(range(50))}
        stats = cache.stats()
        assert stats["object.widget.misses"] == 1
        assert stats["object.widget.hits"] == 1
        assert stats["object.widget.puts"] == 1
        assert stats["object.widget.put_bytes"] > 0
        # A second cache over the same dir hits the disk layer.
        other = ExperimentCache(persist_dir=str(tmp_path))
        assert other.get_object("widget", ("k",)) is not None
        assert other.stats()["object.widget.hits"] == 1

    def test_kinds_are_tracked_separately_and_stay_ints(self, tmp_path):
        cache = ExperimentCache(persist_dir=str(tmp_path))
        cache.get_object("a", 1)
        cache.put_object("a", 1, "x")
        cache.put_object("b", 2, "y")
        stats = cache.stats()
        assert stats["object.a.misses"] == 1
        assert stats["object.b.puts"] == 1
        assert "object.b.misses" not in stats
        assert all(isinstance(v, int) for v in stats.values())

    def test_in_memory_only_counts_no_bytes(self):
        cache = ExperimentCache()
        cache.put_object("widget", "k", "value")
        assert cache.get_object("widget", "k") == "value"
        stats = cache.stats()
        assert stats["object.widget.puts"] == 1
        assert "object.widget.put_bytes" not in stats

    def test_object_stats_survive_into_bench_cache_deltas(self, tmp_path):
        """The bench worker differences two snapshots; new keys must
        appear cleanly (before.get(k, 0) semantics)."""
        cache = ExperimentCache(persist_dir=str(tmp_path))
        before = cache.stats()
        cache.get_object("batch-ann", ("digest",))
        after = cache.stats()
        delta = {k: after[k] - before.get(k, 0) for k in after}
        assert delta["object.batch-ann.misses"] == 1
