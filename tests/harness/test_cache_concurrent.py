"""Disk-cache safety under concurrent writers.

Bench workers share one ``persist_dir``; several processes can decide
to compute and store the same entry at the same time.  The contract:
no reader ever crashes or sees a half-written entry (a mid-write file
reads as a miss at worst), and the last atomic rename wins with a
valid payload.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.harness.cache import ExperimentCache, case_digest
from repro.workloads import get_workload

pytestmark = pytest.mark.parallel_smoke


def _hammer(persist_dir: str, worker: int, rounds: int, out_queue) -> None:
    """Worker body: repeatedly load-or-compute the same entries."""
    try:
        case = get_workload("wc").build(scale=30)
        for _ in range(rounds):
            cache = ExperimentCache(persist_dir=persist_dir)
            baseline = cache.baseline(case)
            dswp = cache.dswp(case, baseline)
            out_queue.put((worker, "ok",
                           (len(baseline.trace),
                            [len(t) for t in dswp.traces],
                            cache.corrupt_evictions)))
    except BaseException as exc:  # noqa: BLE001 - reported to the driver
        out_queue.put((worker, "err", repr(exc)))


class TestConcurrentWriters:
    def test_two_processes_hammer_one_cache_dir(self, tmp_path):
        persist = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        rounds = 6
        procs = [ctx.Process(target=_hammer,
                             args=(persist, w, rounds, queue))
                 for w in range(2)]
        for p in procs:
            p.start()
        outcomes = [queue.get(timeout=120) for _ in range(2 * rounds)]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        errors = [o for o in outcomes if o[1] == "err"]
        assert not errors, errors
        # Every load-or-compute converged on the same functional answer.
        answers = {(trace_len, tuple(lens))
                   for trace_len, lens, _ in (o[2] for o in outcomes)}
        assert len(answers) == 1
        # No tmp droppings left behind by the atomic-rename protocol.
        leftovers = [name for name in os.listdir(persist) if ".tmp." in name]
        assert not leftovers

    def test_reader_treats_vanishing_entry_as_plain_miss(self, tmp_path):
        persist = str(tmp_path / "cache")
        case = get_workload("wc").build(scale=30)
        writer = ExperimentCache(persist_dir=persist)
        writer.baseline(case)
        key = f"{case_digest(case)}:True"
        path = writer._entry_path("baseline", key)
        assert os.path.exists(path)
        os.remove(path)
        reader = ExperimentCache(persist_dir=persist)
        run = reader.baseline(case)
        assert len(run.trace) > 0
        # Vanished-before-open is a miss, never a corrupt eviction.
        assert reader.corrupt_evictions == 0
        assert reader.misses == 1

    def test_truncated_entry_is_evicted_and_recomputed(self, tmp_path):
        persist = str(tmp_path / "cache")
        case = get_workload("wc").build(scale=30)
        writer = ExperimentCache(persist_dir=persist)
        reference = writer.baseline(case)
        key = f"{case_digest(case)}:True"
        path = writer._entry_path("baseline", key)
        blob = pickle.dumps({"kind": "baseline", "data": {}})
        with open(path, "wb") as fh:
            fh.write(blob[:max(1, len(blob) // 2)])  # mid-write shape
        reader = ExperimentCache(persist_dir=persist)
        run = reader.baseline(case)
        assert len(run.trace) == len(reference.trace)
        assert reader.corrupt_evictions == 1

    def test_tmp_names_are_unique_per_store(self, tmp_path, monkeypatch):
        seen = []
        real_replace = os.replace

        def spy(src, dst):
            seen.append(src)
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        cache = ExperimentCache(persist_dir=str(tmp_path / "cache"))
        case = get_workload("wc").build(scale=30)
        baseline = cache.baseline(case)
        cache.dswp(case, baseline)
        assert len(seen) >= 2
        assert len(set(seen)) == len(seen)
