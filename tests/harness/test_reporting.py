"""Tests for report formatting helpers."""

import math

from hypothesis import given, strategies as st

from repro.harness.reporting import format_table, geomean, percent


class TestFormatTable:
    def test_columns_aligned(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        header, rule, row1, row2 = lines
        assert header.index("value") == row1.index("1")

    def test_floats_formatted(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert text.splitlines()[0].strip() == "a"


class TestGeomean:
    def test_known_value(self):
        assert abs(geomean([1.0, 4.0]) - 2.0) < 1e-9

    def test_empty_is_zero(self):
        assert geomean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert abs(geomean([2.0, 0.0, -1.0]) - 2.0) < 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1,
                    max_size=20))
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9


class TestPercent:
    def test_gain(self):
        assert percent(1.144) == "+14.4%"

    def test_loss(self):
        assert percent(0.9) == "-10.0%"
