"""Tests for report formatting helpers."""

import math

from hypothesis import given, strategies as st

from repro.harness.reporting import format_table, geomean, percent


class TestFormatTable:
    def test_columns_aligned(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        header, rule, row1, row2 = lines
        assert header.index("value") == row1.index("1")

    def test_floats_formatted(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert text.splitlines()[0].strip() == "a"


class TestGeomean:
    def test_known_value(self):
        assert abs(geomean([1.0, 4.0]) - 2.0) < 1e-9

    def test_empty_is_zero(self):
        assert geomean([]) == 0.0

    def test_ignores_nonpositive(self):
        assert abs(geomean([2.0, 0.0, -1.0]) - 2.0) < 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=10), min_size=1,
                    max_size=20))
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9


class TestPercent:
    def test_gain(self):
        assert percent(1.144) == "+14.4%"

    def test_loss(self):
        assert percent(0.9) == "-10.0%"

    def test_unity_is_plus_zero(self):
        assert percent(1.0) == "+0.0%"


class TestFormatTableShape:
    def test_multirow_alignment_and_rule_width(self):
        text = format_table(["workload", "cycles"],
                            [["lt", 8409], ["treeadd", 123456]])
        header, rule, *rows = text.splitlines()
        assert all(len(line) <= len(rule) for line in rows)
        assert set(rule) == {"-", " "}

    def test_mixed_types_render(self):
        text = format_table(["a", "b", "c"], [[1, 2.5, "x"]])
        assert "2.500" in text and "x" in text


class TestBenchSummaryLine:
    def _report(self, **overrides):
        report = {
            "num_points": 7,
            "cache_stats": {"hits": 12, "misses": 3, "corrupt_evictions": 0},
            "degraded_points": [],
        }
        report.update(overrides)
        return report

    def test_mentions_points_cache_and_degradations(self):
        from repro.harness.bench import summary_line

        line = summary_line(self._report())
        assert "7 points" in line
        assert "12 hit(s)" in line
        assert "3 miss(es)" in line
        assert "0 degraded point(s)" in line
        assert "corrupt" not in line

    def test_surfaces_corruption_and_degradations(self):
        from repro.harness.bench import summary_line

        line = summary_line(self._report(
            cache_stats={"hits": 0, "misses": 5, "corrupt_evictions": 2},
            degraded_points=["lt:dswp-full"],
        ))
        assert "2 corrupt eviction(s)" in line
        assert "1 degraded point(s)" in line

    def test_tolerates_missing_stats(self):
        from repro.harness.bench import summary_line

        line = summary_line({"num_points": 0})
        assert "0 points" in line
