"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("compress", "mcf", "wc", "gzip-match"):
            assert name in out


class TestRun:
    def test_runs_experiment(self, capsys):
        assert main(["run", "wc", "--scale", "80"]) == 0
        out = capsys.readouterr().out
        assert "loop speedup" in out
        assert "pipeline stages: 2" in out

    def test_machine_knobs(self, capsys):
        assert main(["run", "wc", "--scale", "80", "--half-width",
                     "--comm-latency", "5", "--queue-size", "8"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_unknown_workload_fails(self, capsys):
        assert main(["run", "nope"]) == 2

    def test_trace_and_metrics_exports(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "run.trace.json"
        metrics = tmp_path / "run.metrics.csv"
        assert main(["run", "wc", "--scale", "80",
                     "--trace", str(trace), "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert str(trace) in out and str(metrics) in out
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) > 0
        # Pipeline tracks + wall-clock harness spans in one file.
        assert any(e["ph"] == "B" for e in payload["traceEvents"])
        assert any(e["ph"] == "X" for e in payload["traceEvents"])
        text = metrics.read_text()
        assert text.startswith("metric,type,field,value")
        assert "sim.cycles" in text
        assert "provenance.machine_config" in text

    def test_metrics_json_when_not_csv(self, capsys, tmp_path):
        import json

        metrics = tmp_path / "m.json"
        assert main(["run", "wc", "--scale", "80",
                     "--metrics", str(metrics)]) == 0
        snap = json.loads(metrics.read_text())
        assert snap["sim.cycles"] > 0

    def test_supervised_trace_with_degraded_run(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        trace = tmp_path / "degraded.trace.json"
        # queue-zero-capacity deadlocks the pipeline -> degraded (3);
        # the trace still validates with baseline + harness tracks.
        assert main(["run", "listtraverse", "--scale", "40", "--supervise",
                     "--inject", "queue-zero-capacity",
                     "--trace", str(trace)]) == 3
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload) > 0
        assert any(e["ph"] == "i" and e["name"] == "incident"
                   for e in payload["traceEvents"])


class TestReport:
    def test_report_tables(self, capsys):
        assert main(["report", "wc", "--scale", "80"]) == 0
        out = capsys.readouterr().out
        assert "issue util" in out
        assert "produced" in out
        assert "occupancy bucket (Fig. 8)" in out
        assert "loop speedup" in out

    def test_report_unknown_workload(self, capsys):
        assert main(["report", "nope"]) == 2


class TestShow:
    def test_shows_pipeline(self, capsys):
        assert main(["show", "listoflists"]) == 0
        out = capsys.readouterr().out
        assert "# original function" in out
        assert "DAG_SCC" in out
        assert "produce" in out and "consume" in out

    def test_declined_loop_reports_reason(self, capsys):
        assert main(["show", "gzip"]) == 1
        assert "declined" in capsys.readouterr().out


class TestSweep:
    def test_sweep_table(self, capsys):
        assert main(["sweep", "wc", "--scale", "80"]) == 0
        out = capsys.readouterr().out
        assert "comm latency" in out
        assert "20" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


class TestDot:
    def test_dag_dot(self, capsys):
        assert main(["dot", "listoflists"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "scc0" in out

    def test_cfg_dot(self, capsys):
        assert main(["dot", "listoflists", "--graph", "cfg"]) == 0
        assert '"BB2"' in capsys.readouterr().out

    def test_pdg_dot(self, capsys):
        assert main(["dot", "listoflists", "--graph", "pdg"]) == 0
        assert "color=blue" in capsys.readouterr().out


class TestSelect:
    def test_ranks_loops(self, capsys):
        assert main(["select", "listoflists", "--scale", "100"]) == 0
        out = capsys.readouterr().out
        assert "selected" in out
        assert "BB2" in out and "BB4" in out

    def test_threshold_can_reject_everything(self, capsys):
        assert main(["select", "wc", "--scale", "4",
                     "--min-trips", "100"]) == 1
        assert "below 100" in capsys.readouterr().out


class TestJsonOutput:
    def test_run_json(self, capsys):
        import json
        assert main(["run", "wc", "--scale", "60", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["workload"] == "wc"
        assert payload[0]["dswp"]["applied"] is True
        assert payload[0]["loop_speedup"] > 0
        buckets = payload[0]["pipeline"]["occupancy_buckets"]
        assert abs(sum(buckets.values()) - 1.0) < 1e-6


class TestFuzz:
    def test_clean_campaign(self, capsys):
        assert main(["fuzz", "--seed", "2", "--iterations", "10"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "10 cases" in out

    def test_injected_fault_is_caught_and_written(self, tmp_path, capsys):
        out_dir = tmp_path / "repros"
        assert main(["fuzz", "--seed", "1", "--iterations", "10",
                     "--inject", "drop-produce", "--out", str(out_dir),
                     "--max-failures", "1"]) == 0
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        assert "oracle is sensitive" in out
        reproducers = list(out_dir.glob("repro_seed*.ir"))
        assert len(reproducers) == 1

    def test_replay_reproducer(self, tmp_path, capsys):
        out_dir = tmp_path / "repros"
        main(["fuzz", "--seed", "1", "--iterations", "10",
              "--inject", "drop-produce", "--out", str(out_dir),
              "--max-failures", "1"])
        capsys.readouterr()
        path = next(out_dir.glob("repro_seed*.ir"))
        assert main(["fuzz", "--replay", str(path)]) == 1
        assert "DIVERGENCE" in capsys.readouterr().out

    def test_unknown_fault_rejected(self, capsys):
        assert main(["fuzz", "--inject", "no-such-fault"]) == 2
        assert "unknown fault" in capsys.readouterr().err

    def test_missing_reproducer_rejected(self, capsys):
        assert main(["fuzz", "--replay", "/nonexistent.ir"]) == 2
        assert "cannot load reproducer" in capsys.readouterr().err
