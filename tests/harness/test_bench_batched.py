"""Bench-level guarantees of the batched lane (``-m batch_smoke``).

Three guardrails ride on top of the machine-level differential
campaign (``tests/machine/test_batched_differential.py``):

* a **golden regression**: a small frozen Fig. 9a sweep is checked in
  (``data/golden_fig9a_scale60.json``) and the batched path must
  reproduce it byte-identically -- any timing-model or batching change
  that shifts a single cycle fails loudly here;
* the **refusal rule**: ``run_bench`` must raise -- and record nothing
  -- when the batched lane diverges from the per-config oracle;
* the report's **batch records**: sizes, retirement counts and the
  ``batch_speedup`` ratio land in ``BENCH_*.json`` and the metrics
  snapshot, and ``--no-batch`` restores the one-task-per-point shape
  with identical sweep numbers.
"""

from __future__ import annotations

import itertools
import json
import os

import pytest

from repro.harness.bench import (
    batch_groups,
    run_bench,
    sweep_points,
)
from repro.harness.cache import ExperimentCache
from repro.machine.batch import BatchedSimulator
from repro.machine.cmp import simulate
from repro.machine.config import (
    FULL_WIDTH_CORE,
    HALF_WIDTH_CORE,
    MachineConfig,
)
from repro.workloads import get_workload

pytestmark = pytest.mark.batch_smoke

GOLDEN_SCALE = 60
GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_fig9a_scale60.json")


def _machine(spec: dict) -> MachineConfig:
    core = HALF_WIDTH_CORE if spec["core"] == "half" else FULL_WIDTH_CORE
    return MachineConfig(core=core,
                         comm_latency=spec.get("comm_latency", 1))


def _group_traces(group: list[dict], cache: ExperimentCache):
    spec0 = group[0]
    case = get_workload(spec0["workload"]).build(scale=spec0["scale"])
    baseline = cache.baseline(case)
    if spec0["kind"] == "base":
        return [baseline.trace]
    return cache.dswp(case, baseline).traces


def _summary(sim) -> dict:
    return {
        "cycles": sim.cycles,
        "ipcs": sim.ipcs(),
        "instructions": [c.instructions_executed for c in sim.cores],
    }


def sweep_document(scale: int, batched: bool) -> dict:
    """The frozen-sweep document, via either timing lane.

    The oracle lane generated the checked-in golden; the batched lane
    must reproduce it byte-for-byte.
    """
    cache = ExperimentCache()
    bsim = BatchedSimulator()
    out = []
    for group in batch_groups(sweep_points("fig9a", scale)):
        traces = _group_traces(group, cache)
        machines = [_machine(spec["machine"]) for spec in group]
        if batched:
            outcomes = bsim.simulate_batch(traces, machines)
            assert all(o.error is None for o in outcomes)
            sims = [o.result for o in outcomes]
        else:
            sims = [simulate(traces, machine) for machine in machines]
        out.extend({"id": spec["id"], **_summary(sim)}
                   for spec, sim in zip(group, sims))
    return {"figure": "fig9a", "scale": scale, "points": out}


def render(document: dict) -> bytes:
    return (json.dumps(document, indent=2, sort_keys=True) + "\n").encode()


class TestGoldenSweep:
    def test_batched_reproduces_frozen_sweep_byte_identically(self):
        with open(GOLDEN_PATH, "rb") as fh:
            frozen = fh.read()
        assert render(sweep_document(GOLDEN_SCALE, batched=True)) == frozen

    def test_oracle_still_agrees_with_frozen_sweep(self):
        """Localises a golden failure: if this one fails too, the
        timing model moved; if only the batched test fails, the
        batching layer broke."""
        with open(GOLDEN_PATH, "rb") as fh:
            frozen = fh.read()
        assert render(sweep_document(GOLDEN_SCALE, batched=False)) == frozen


class TestBenchRefusal:
    def test_divergence_refuses_to_record_a_report(self, tmp_path,
                                                   monkeypatch):
        import repro.harness.bench as bench
        counter = itertools.count()
        # Every fingerprint unique -> every comparison "diverges".
        monkeypatch.setattr(bench, "_batch_fingerprint",
                            lambda sim: f"fp{next(counter)}")
        with pytest.raises(RuntimeError, match="refusing to record"):
            run_bench("fig9a", scale=30, jobs=1, out_dir=str(tmp_path),
                      compare=False)
        assert not (tmp_path / "BENCH_fig9a.json").exists()

    def test_cli_surfaces_divergence_as_failure(self, tmp_path,
                                                monkeypatch, capsys):
        import repro.harness.bench as bench
        from repro.cli import main
        counter = itertools.count()
        monkeypatch.setattr(bench, "_batch_fingerprint",
                            lambda sim: f"fp{next(counter)}")
        code = main(["bench", "--figure", "fig9a", "--scale", "30",
                     "--jobs", "1", "--no-compare", "--out",
                     str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "refusing to record" in captured.err
        assert not (tmp_path / "BENCH_fig9a.json").exists()


class TestBatchReport:
    def test_batch_records_and_metrics_land_in_the_report(self, tmp_path):
        report = run_bench("fig9a", scale=30, jobs=1,
                           out_dir=str(tmp_path), compare=False)
        assert report["batched_identical"] is True
        batches = report["batches"]
        assert report["num_tasks"] == len(batches)
        assert sum(info["size"] for info in batches) == report["num_points"]
        covered = [pid for info in batches for pid in info["points"]]
        assert sorted(covered) == sorted(p["id"] for p in report["points"])
        for info in batches:
            assert info["identical"] is True
            assert info["seconds"] >= 0.0
            assert info["unbatched_seconds"] >= 0.0
            assert info["campaign_seconds"] >= info["cold_seconds"] >= 0.0
            assert sum(lane["width"] for lane in info["lanes"]) \
                == info["size"]
            assert set(info["phase_seconds"]) == {
                "annotate", "schedule", "compile",
                "replay_vector", "replay_scalar"}
        assert any(key.startswith("batch.size")
                   for key in report["metrics"])
        # Round-trips through the on-disk json.
        with open(report["path"]) as fh:
            on_disk = json.load(fh)
        assert on_disk["batched_identical"] is True
        assert on_disk["batch_speedup"] == report["batch_speedup"]

    def test_qsweep_runs_batched_on_the_vector_lane(self, tmp_path):
        """The queue-size sweep's lane groups (two comm points per
        depth, same width class) must ride the vector engine with the
        bit-identity gate intact."""
        report = run_bench("qsweep", scale=30, jobs=1,
                           out_dir=str(tmp_path), compare=False)
        assert report["batched_identical"] is True
        assert report["batch_speedup"] is not None
        dswp_batches = [info for info in report["batches"]
                        if info["size"] > 1]
        assert dswp_batches
        for info in dswp_batches:
            # Three queue depths -> three geometry lane groups of two.
            assert [lane["width"] for lane in info["lanes"]] == [2, 2, 2]
            assert all(lane["vector"] == 2 for lane in info["lanes"])
        ids = {p["id"] for p in report["points"]}
        assert any(":dswp-full-q4-comm1" in pid for pid in ids)
        assert any(":dswp-full-q64-comm5" in pid for pid in ids)

    def test_fig9b_rides_the_vector_lane(self, tmp_path):
        report = run_bench("fig9b", scale=30, jobs=1,
                           out_dir=str(tmp_path), compare=False)
        assert report["batched_identical"] is True
        for info in report["batches"]:
            if info["size"] > 1:
                assert sum(lane["vector"] for lane in info["lanes"]) \
                    == info["size"]

    def test_no_batch_restores_per_point_tasks_with_same_numbers(
            self, tmp_path):
        batched_dir = tmp_path / "batched"
        plain_dir = tmp_path / "plain"
        batched_dir.mkdir()
        plain_dir.mkdir()
        batched = run_bench("fig9a", scale=30, jobs=1,
                            out_dir=str(batched_dir), compare=False)
        plain = run_bench("fig9a", scale=30, jobs=1,
                          out_dir=str(plain_dir), compare=False,
                          batch=False)
        assert plain["batches"] is None
        assert plain["batched_identical"] is None
        assert plain["num_tasks"] == plain["num_points"]
        key = lambda report: {p["id"]: (p["cycles"], p["ipcs"])
                              for p in report["points"]}
        assert key(batched) == key(plain)
