"""SweepJournal integrity: atomic appends, torn tails, fingerprints.

The resume path is only as trustworthy as the journal under it.  These
tests attack the file directly -- truncated tails, garbage lines,
shadowed records, concurrent multi-process writers -- and pin the
fingerprint semantics that keep a stale entry from being reused.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.harness.journal import (JOURNAL_VERSION, SweepJournal,
                                   point_fingerprint)

pytestmark = pytest.mark.chaos_smoke


def _spec(i: int, scale: int = 30) -> dict:
    return {"id": f"p{i}", "figure": "fig9a", "scale": scale, "index": i}


def _point(i: int) -> dict:
    return {"id": f"p{i}", "cycles": 1000 + i, "ipc": 1.5}


class TestRoundTrip:
    def test_records_survive_a_reload(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal.start(path, "fig9a", 30)
        for i in range(4):
            journal.record_point(_spec(i), _point(i), seconds=0.25 * i,
                                 degraded=(i == 3), retries=i, timed_out=False)
        loaded = SweepJournal.load(path)
        assert loaded.header == {"kind": "header", "figure": "fig9a",
                                 "scale": 30, "version": JOURNAL_VERSION}
        assert set(loaded.entries) == {f"p{i}" for i in range(4)}
        entry = loaded.entries["p2"]
        assert entry["point"] == _point(2)
        assert entry["seconds"] == 0.5
        assert entry["retries"] == 2
        assert loaded.entries["p3"]["degraded"] is True

    def test_missing_file_loads_empty(self, tmp_path):
        loaded = SweepJournal.load(str(tmp_path / "nope.jsonl"))
        assert loaded.header is None and loaded.entries == {}

    def test_last_record_wins(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal.start(path, "fig9a", 30)
        journal.record_point(_spec(0), {"id": "p0", "cycles": 1}, 0.1)
        journal.record_point(_spec(0), {"id": "p0", "cycles": 2}, 0.2)
        loaded = SweepJournal.load(path)
        assert loaded.entries["p0"]["point"]["cycles"] == 2

    def test_fresh_start_truncates_and_append_start_keeps(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal.start(path, "fig9a", 30)
        journal.record_point(_spec(0), _point(0), 0.1)
        SweepJournal.start(path, "fig9a", 30, fresh=False)
        assert SweepJournal.load(path).entries  # survived the append-open
        SweepJournal.start(path, "fig9a", 30, fresh=True)
        assert SweepJournal.load(path).entries == {}


class TestCorruptionTolerance:
    def test_torn_tail_is_dropped_not_fatal(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal.start(path, "fig9a", 30)
        for i in range(3):
            journal.record_point(_spec(i), _point(i), 0.1)
        whole = open(path, "rb").read()
        # A SIGKILL mid-append leaves a partial final line.
        with open(path, "wb") as fh:
            fh.write(whole[:-25])
        loaded = SweepJournal.load(path)
        assert set(loaded.entries) == {"p0", "p1"}

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal.start(path, "fig9a", 30)
        journal.record_point(_spec(0), _point(0), 0.1)
        with open(path, "ab") as fh:
            fh.write(b"\x00\xffnot json at all\n")
            fh.write(b'{"kind": "point", "id": 42}\n')   # malformed schema
            fh.write(b'["a", "list"]\n')
        journal = SweepJournal(path)
        journal.record_point(_spec(1), _point(1), 0.1)   # append after junk
        loaded = SweepJournal.load(path)
        assert set(loaded.entries) == {"p0", "p1"}
        assert loaded.header is not None


class TestFingerprints:
    def test_fingerprint_is_canonical_over_key_order(self):
        a = {"id": "p0", "scale": 30, "figure": "fig9a"}
        b = {"figure": "fig9a", "id": "p0", "scale": 30}
        assert point_fingerprint(a) == point_fingerprint(b)

    def test_changed_input_changes_fingerprint(self):
        assert point_fingerprint(_spec(0, scale=30)) != \
            point_fingerprint(_spec(0, scale=32))

    def test_reusable_excludes_stale_entries(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal.start(path, "fig9a", 30)
        journal.record_point(_spec(0, scale=30), _point(0), 0.1)
        journal.record_point(_spec(1, scale=30), _point(1), 0.1)
        loaded = SweepJournal.load(path)
        # p0 re-requested at the recorded scale; p1 at a new scale.
        reuse = loaded.reusable([_spec(0, scale=30), _spec(1, scale=32)])
        assert set(reuse) == {"p0"}

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        path = str(tmp_path / "sweep.jsonl")
        journal = SweepJournal.start(path, "fig9a", 30)
        journal.record_point(_spec(0), _point(0), 0.1)
        import repro.harness.journal as journal_module
        monkeypatch.setattr(journal_module, "JOURNAL_VERSION",
                            JOURNAL_VERSION + 1)
        loaded = SweepJournal.load(path)
        assert loaded.reusable([_spec(0)]) == {}


def _hammer(path: str, writer: int, count: int) -> None:
    journal = SweepJournal(path)
    for i in range(count):
        spec = {"id": f"w{writer}:{i}", "writer": writer, "index": i}
        journal.record_point(spec, {"id": spec["id"], "cycles": i}, 0.0)


class TestConcurrentWriters:
    def test_interleaved_appends_never_tear(self, tmp_path):
        """POSIX O_APPEND atomicity in anger: three processes hammer
        one journal; every record must parse and none may be lost."""
        path = str(tmp_path / "sweep.jsonl")
        SweepJournal.start(path, "fig9a", 30)
        count = 150
        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=_hammer, args=(path, w, count))
                 for w in range(3)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        with open(path, "rb") as fh:
            lines = fh.read().splitlines()
        # Every line is whole valid JSON -- no intra-line interleaving.
        records = [json.loads(line) for line in lines]
        assert len(records) == 3 * count + 1  # + header
        loaded = SweepJournal.load(path)
        assert len(loaded.entries) == 3 * count
        assert all(loaded.entries[f"w{w}:{i}"]["point"]["cycles"] == i
                   for w in range(3) for i in range(count))
