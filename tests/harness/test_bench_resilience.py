"""Bench runner under worker crashes: the sweep must always complete.

The crash hook (``REPRO_BENCH_CRASH_WORKLOAD`` /
``REPRO_BENCH_CRASH_ONCE_DIR``, see ``_induced_crash``) kills worker
processes with ``os._exit`` -- the same observable behaviour as an
OOM-killed or segfaulting worker.  The contract under test:

* a worker that crashes once is retried and the sweep stays clean;
* a worker that always crashes falls back to in-process execution,
  only *its* points are marked degraded, and their results are
  identical to a healthy run's;
* ``python -m repro bench --supervise`` maps degradation to exit 3.
"""

import json
import os

import pytest

from repro.harness.bench import run_bench, sweep_points

SCALE = 40


def _run(tmp_path, cache_dir=None, **env):
    saved = {k: os.environ.get(k) for k in env}
    os.environ.update({k: v for k, v in env.items() if v is not None})
    try:
        return run_bench("fig9a", scale=SCALE, jobs=2, out_dir=str(tmp_path),
                         compare=False, cache_dir=cache_dir)
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@pytest.mark.robustness_smoke
def test_always_crashing_group_degrades_but_completes(tmp_path):
    healthy = _run(tmp_path)
    assert healthy["degraded_points"] == []

    # A fresh store for the crash run: against the healthy run's warm
    # store the incremental planner would serve the whole sweep without
    # ever spawning the (crashing) worker -- which is the feature, but
    # not what this test exercises.
    report = _run(tmp_path, cache_dir=str(tmp_path / "crash-cache"),
                  REPRO_BENCH_CRASH_WORKLOAD="compress")
    # The sweep completed with every point present...
    assert len(report["points"]) == len(sweep_points("fig9a", SCALE))
    # ...only the crashing workload's points are degraded...
    assert report["degraded_points"] == [
        "compress:base-full", "compress:base-half",
        "compress:dswp-full", "compress:dswp-half",
    ]
    for point in report["points"]:
        assert point.get("degraded", False) == point["id"].startswith("compress:")
    # ...and the in-process fallback computed the same numbers.
    by_id = {p["id"]: p for p in healthy["points"]}
    for point in report["points"]:
        ref = by_id[point["id"]]
        assert (point["cycles"], point["instructions"]) == \
            (ref["cycles"], ref["instructions"]), point["id"]
    # The degradation is recorded in the BENCH_*.json on disk too.
    on_disk = json.load(open(report["path"], encoding="utf-8"))
    assert on_disk["degraded_points"] == report["degraded_points"]


def test_crash_once_is_absorbed_by_the_retry(tmp_path):
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    report = _run(tmp_path, REPRO_BENCH_CRASH_WORKLOAD="compress",
                  REPRO_BENCH_CRASH_ONCE_DIR=str(marker_dir))
    # The worker did crash (the marker proves the hook fired)...
    assert (marker_dir / "crashed-compress").exists()
    # ...but the isolated retry succeeded, so nothing degraded.
    assert report["degraded_points"] == []
    assert not any(p.get("degraded") for p in report["points"])


def test_serial_mode_is_unaffected_by_the_hook(tmp_path):
    os.environ["REPRO_BENCH_CRASH_WORKLOAD"] = "compress"
    try:
        report = run_bench("fig9a", scale=SCALE, jobs=1,
                           out_dir=str(tmp_path), compare=False)
    finally:
        del os.environ["REPRO_BENCH_CRASH_WORKLOAD"]
    # jobs=1 never forks: the guard keeps the driver process alive.
    assert report["degraded_points"] == []


def test_cli_supervise_maps_degradation_to_exit_3(tmp_path, capsys):
    from repro.cli import main

    os.environ["REPRO_BENCH_CRASH_WORKLOAD"] = "compress"
    try:
        code = main(["bench", "--figure", "fig9a", "--scale", str(SCALE),
                     "--jobs", "2", "--out", str(tmp_path), "--no-compare",
                     "--supervise"])
    finally:
        del os.environ["REPRO_BENCH_CRASH_WORKLOAD"]
    assert code == 3
    assert "DEGRADED" in capsys.readouterr().out
    # Without --supervise the legacy 0/1 convention is preserved.
    code = main(["bench", "--figure", "fig9a", "--scale", str(SCALE),
                 "--jobs", "2", "--out", str(tmp_path), "--no-compare"])
    assert code == 0
