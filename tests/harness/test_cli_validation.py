"""Regression tests: CLI argument validation dies at the parser.

``--jobs 0`` used to mean "cpu count" implicitly and negative values
leaked into ``max(1, jobs)`` clamps; now every count/duration knob
rejects zero and negatives with an argparse usage error (exit 2) and a
message naming the offending value.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser


def _parse(argv):
    return build_parser().parse_args(argv)


@pytest.mark.parametrize("argv", [
    ["bench", "--jobs", "0"],
    ["bench", "--jobs", "-2"],
    ["bench", "--jobs", "two"],
    ["bench", "--task-timeout", "0"],
    ["bench", "--task-timeout", "-1.5"],
    ["fuzz", "--jobs", "0"],
    ["fuzz", "--jobs", "-1"],
    ["serve", "--port", "0"],
    ["serve", "--port", "-80"],
    ["serve", "--port", "65536"],
    ["serve", "--jobs", "0"],
    ["serve", "--max-inflight", "0"],
    ["serve", "--max-inflight", "-5"],
    ["serve", "--quota-burst", "0"],
    ["serve", "--batch-window", "0"],
    ["serve", "--task-timeout", "0"],
    ["submit", "wc", "--port", "0"],
    ["submit", "wc", "--scale", "0"],
    ["submit", "wc", "--timeout", "-1"],
])
def test_zero_and_negative_knobs_are_usage_errors(argv, capsys):
    with pytest.raises(SystemExit) as info:
        _parse(argv)
    assert info.value.code == 2
    err = capsys.readouterr().err
    assert ("positive" in err or "port must be" in err
            or "is not an integer" in err)


def test_valid_values_still_parse():
    args = _parse(["bench", "--jobs", "4", "--task-timeout", "2.5"])
    assert args.jobs == 4
    assert args.task_timeout == 2.5
    args = _parse(["serve", "--port", "8080", "--jobs", "3",
                   "--max-inflight", "16"])
    assert (args.port, args.jobs, args.max_inflight) == (8080, 3, 16)
    args = _parse(["submit", "wc", "--scale", "100"])
    assert args.scale == 100


def test_bench_jobs_default_still_means_cpu_count():
    # The default moved from 0 (sentinel) to None; cmd_bench's
    # ``args.jobs or os.cpu_count()`` treats both the same way, so the
    # behaviour "omitted --jobs = all cores" must survive.
    assert _parse(["bench"]).jobs is None


def test_error_message_names_the_value(capsys):
    with pytest.raises(SystemExit):
        _parse(["serve", "--max-inflight", "-5"])
    assert "-5" in capsys.readouterr().err
