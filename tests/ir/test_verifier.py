"""Tests for the IR verifier."""

import pytest

from repro.ir.basicblock import make_jump
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg, pred_reg
from repro.ir.verifier import VerificationError, verify_function, verify_reachable


def valid_function():
    f = Function("ok")
    a = f.add_block("a", entry=True)
    a.append(make_jump("b"))
    b = f.add_block("b")
    b.append(Instruction(Opcode.RET))
    return f


def test_valid_function_passes():
    verify_function(valid_function())
    verify_reachable(valid_function())


def test_empty_block_rejected():
    f = valid_function()
    f.add_block("empty")
    with pytest.raises(VerificationError, match="empty"):
        verify_function(f)


def test_missing_terminator_rejected():
    f = Function("f")
    a = f.add_block("a", entry=True)
    a.append(Instruction(Opcode.NOP))
    with pytest.raises(VerificationError, match="terminator"):
        verify_function(f)


def test_mid_block_terminator_rejected():
    f = Function("f")
    a = f.add_block("a", entry=True)
    a.instructions.append(Instruction(Opcode.RET))
    a.instructions.append(Instruction(Opcode.RET))
    with pytest.raises(VerificationError, match="middle"):
        verify_function(f)


def test_dangling_branch_target_rejected():
    f = Function("f")
    a = f.add_block("a", entry=True)
    a.append(make_jump("nowhere"))
    with pytest.raises(VerificationError, match="unknown block"):
        verify_function(f)


def test_flow_without_queue_rejected():
    f = valid_function()
    f.block("a").insert_before_terminator(
        Instruction(Opcode.PRODUCE, srcs=[gen_reg(0)])
    )
    with pytest.raises(VerificationError, match="queue"):
        verify_function(f)


def test_unreachable_block_rejected_by_strict_verify():
    f = valid_function()
    c = f.add_block("island")
    c.append(Instruction(Opcode.RET))
    verify_function(f)  # structurally fine
    with pytest.raises(VerificationError, match="unreachable"):
        verify_reachable(f)


def test_missing_entry_rejected():
    f = Function("f")
    with pytest.raises(VerificationError, match="entry"):
        verify_function(f)
