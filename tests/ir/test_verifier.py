"""Tests for the IR verifier."""

import pytest

from repro.ir.basicblock import make_jump
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg, pred_reg
from repro.ir.verifier import (
    MAX_QUEUE_ID,
    VerificationError,
    verify_function,
    verify_reachable,
)


def valid_function():
    f = Function("ok")
    a = f.add_block("a", entry=True)
    a.append(make_jump("b"))
    b = f.add_block("b")
    b.append(Instruction(Opcode.RET))
    return f


def test_valid_function_passes():
    verify_function(valid_function())
    verify_reachable(valid_function())


def test_empty_block_rejected():
    f = valid_function()
    f.add_block("empty")
    with pytest.raises(VerificationError, match="empty"):
        verify_function(f)


def test_missing_terminator_rejected():
    f = Function("f")
    a = f.add_block("a", entry=True)
    a.append(Instruction(Opcode.NOP))
    with pytest.raises(VerificationError, match="terminator"):
        verify_function(f)


def test_mid_block_terminator_rejected():
    f = Function("f")
    a = f.add_block("a", entry=True)
    a.instructions.append(Instruction(Opcode.RET))
    a.instructions.append(Instruction(Opcode.RET))
    with pytest.raises(VerificationError, match="middle"):
        verify_function(f)


def test_dangling_branch_target_rejected():
    f = Function("f")
    a = f.add_block("a", entry=True)
    a.append(make_jump("nowhere"))
    with pytest.raises(VerificationError, match="unknown block"):
        verify_function(f)


def test_flow_without_queue_rejected():
    f = valid_function()
    f.block("a").insert_before_terminator(
        Instruction(Opcode.PRODUCE, srcs=[gen_reg(0)])
    )
    with pytest.raises(VerificationError, match="queue"):
        verify_function(f)


def test_unreachable_block_rejected_by_strict_verify():
    f = valid_function()
    c = f.add_block("island")
    c.append(Instruction(Opcode.RET))
    verify_function(f)  # structurally fine
    with pytest.raises(VerificationError, match="unreachable"):
        verify_reachable(f)


def test_missing_entry_rejected():
    f = Function("f")
    with pytest.raises(VerificationError, match="entry"):
        verify_function(f)


# ----------------------------------------------------------------------
# Queue-id range (the 256-entry synchronization array)
# ----------------------------------------------------------------------

def _with_flow(opcode, queue):
    f = valid_function()
    kwargs = {"queue": queue}
    if opcode is Opcode.PRODUCE:
        kwargs["srcs"] = [gen_reg(0)]
    else:
        kwargs["dest"] = gen_reg(0)
    f.block("a").insert_before_terminator(Instruction(opcode, **kwargs))
    return f


def test_queue_ids_at_bounds_accepted():
    verify_function(_with_flow(Opcode.PRODUCE, 0))
    verify_function(_with_flow(Opcode.CONSUME, MAX_QUEUE_ID - 1))


@pytest.mark.parametrize("opcode", [Opcode.PRODUCE, Opcode.CONSUME])
@pytest.mark.parametrize("queue", [-1, MAX_QUEUE_ID, MAX_QUEUE_ID + 41])
def test_out_of_range_queue_ids_rejected(opcode, queue):
    with pytest.raises(VerificationError, match="synchronization array"):
        verify_function(_with_flow(opcode, queue))


# ----------------------------------------------------------------------
# Duplicate / inconsistent block labels
# ----------------------------------------------------------------------

def test_duplicate_block_label_rejected():
    f = valid_function()
    # Simulate a buggy pass corrupting the layout order: the same block
    # now appears twice in ``blocks()``.
    f._order.append("a")
    with pytest.raises(VerificationError, match="duplicate block label"):
        verify_function(f)


def test_renamed_block_label_mismatch_rejected():
    f = valid_function()
    # A pass renaming a block without re-registering it leaves the
    # function map keyed by the stale label.
    f.block("b").label = "renamed"
    with pytest.raises(VerificationError, match="does not match"):
        verify_function(f)
