"""Tests for Instruction construction, classification, and rendering."""

import pytest

from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg, pred_reg


def test_uids_are_unique_and_increasing():
    a = Instruction(Opcode.NOP)
    b = Instruction(Opcode.NOP)
    assert b.uid > a.uid


class TestShapeChecks:
    def test_br_requires_two_targets(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BR, srcs=[pred_reg(0)], targets=["one"])

    def test_br_requires_predicate_source(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BR, srcs=[gen_reg(0)], targets=["a", "b"])

    def test_jmp_requires_one_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.JMP, targets=["a", "b"])

    def test_non_branch_rejects_targets(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, dest=gen_reg(0), srcs=[gen_reg(1)],
                        targets=["a"])

    def test_compare_must_define_predicate(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.CMP_EQ, dest=gen_reg(0), srcs=[gen_reg(1)], imm=0)


class TestClassification:
    def test_branch_flags(self):
        br = Instruction(Opcode.BR, srcs=[pred_reg(0)], targets=["a", "b"])
        assert br.is_terminator and br.is_branch and not br.is_memory

    def test_load_flags(self):
        ld = Instruction(Opcode.LOAD, dest=gen_reg(0), srcs=[gen_reg(1)], imm=4)
        assert ld.is_memory and ld.is_load and ld.uses_m_pipe
        assert not ld.is_store

    def test_produce_is_flow_and_m_pipe(self):
        pr = Instruction(Opcode.PRODUCE, srcs=[gen_reg(0)], queue=3)
        assert pr.is_flow and pr.uses_m_pipe and not pr.is_terminator

    def test_alu_not_m_pipe(self):
        add = Instruction(Opcode.ADD, dest=gen_reg(0), srcs=[gen_reg(1)], imm=1)
        assert not add.uses_m_pipe and not add.is_flow


class TestOperands:
    def test_defined_and_used(self):
        add = Instruction(Opcode.ADD, dest=gen_reg(0),
                          srcs=[gen_reg(1), gen_reg(2)])
        assert add.defined_registers() == [gen_reg(0)]
        assert add.used_registers() == [gen_reg(1), gen_reg(2)]

    def test_store_defines_nothing(self):
        st = Instruction(Opcode.STORE, srcs=[gen_reg(0), gen_reg(1)], imm=0)
        assert st.defined_registers() == []
        assert set(st.used_registers()) == {gen_reg(0), gen_reg(1)}

    def test_root_follows_origin_chain(self):
        a = Instruction(Opcode.NOP)
        b = Instruction(Opcode.NOP, origin=a)
        c = Instruction(Opcode.NOP, origin=b)
        assert c.root() is a
        assert a.root() is a


class TestRender:
    def test_load_render(self):
        ld = Instruction(Opcode.LOAD, dest=gen_reg(2), srcs=[gen_reg(1)],
                         imm=8, region="list")
        assert ld.render() == "load r2 = [r1 + 8] !list"

    def test_store_render(self):
        st = Instruction(Opcode.STORE, srcs=[gen_reg(0), gen_reg(1)], imm=4)
        assert st.render() == "store [r1 + 4] = r0"

    def test_branch_render(self):
        br = Instruction(Opcode.BR, srcs=[pred_reg(0)], targets=["yes", "no"])
        assert br.render() == "br p0, yes, no"

    def test_produce_consume_render(self):
        pr = Instruction(Opcode.PRODUCE, srcs=[gen_reg(5)], queue=2)
        cs = Instruction(Opcode.CONSUME, dest=gen_reg(5), queue=2)
        assert pr.render() == "produce [2] = r5"
        assert cs.render() == "consume r5 = [2]"

    def test_token_flow_render(self):
        pr = Instruction(Opcode.PRODUCE, queue=1)
        cs = Instruction(Opcode.CONSUME, queue=1)
        assert "token" in pr.render()
        assert "token" in cs.render()

    def test_mov_immediate_render(self):
        mv = Instruction(Opcode.MOV, dest=gen_reg(0), imm=42)
        assert mv.render() == "mov r0 = 42"

    def test_binary_with_imm_render(self):
        add = Instruction(Opcode.ADD, dest=gen_reg(0), srcs=[gen_reg(1)], imm=7)
        assert add.render() == "add r0 = r1, 7"
