"""Tests for natural-loop discovery."""

from repro.ir.builder import IRBuilder
from repro.ir.loops import find_loop_by_header, find_loops, loop_nest_depth

import pytest


def nested_loops():
    """outer(header=oh) contains inner(header=ih)."""
    b = IRBuilder("nested")
    p1, p2 = b.pred(), b.pred()
    b.block("entry", entry=True)
    b.jmp("oh")
    b.block("oh")
    b.br(p1, "exit", "ih")
    b.block("ih")
    b.br(p2, "olatch", "ibody")
    b.block("ibody")
    b.jmp("ih")
    b.block("olatch")
    b.jmp("oh")
    b.block("exit")
    b.ret()
    return b.done()


class TestDiscovery:
    def test_finds_both_loops(self):
        loops = find_loops(nested_loops())
        headers = {l.header for l in loops}
        assert headers == {"oh", "ih"}

    def test_outermost_first(self):
        loops = find_loops(nested_loops())
        assert loops[0].header == "oh"
        assert len(loops[0].body) > len(loops[1].body)

    def test_bodies(self):
        f = nested_loops()
        outer = find_loop_by_header(f, "oh")
        inner = find_loop_by_header(f, "ih")
        assert outer.body == {"oh", "ih", "ibody", "olatch"}
        assert inner.body == {"ih", "ibody"}

    def test_no_loops(self):
        b = IRBuilder("flat")
        b.block("entry", entry=True)
        b.ret()
        assert find_loops(b.done()) == []

    def test_missing_header_raises(self):
        with pytest.raises(KeyError):
            find_loop_by_header(nested_loops(), "nope")


class TestLoopQueries:
    def test_latches(self):
        f = nested_loops()
        assert find_loop_by_header(f, "oh").latches() == ["olatch"]
        assert find_loop_by_header(f, "ih").latches() == ["ibody"]

    def test_exit_edges_and_targets(self):
        f = nested_loops()
        outer = find_loop_by_header(f, "oh")
        assert outer.exit_edges() == [("oh", "exit")]
        assert outer.exit_targets() == ["exit"]
        inner = find_loop_by_header(f, "ih")
        assert inner.exit_edges() == [("ih", "olatch")]

    def test_preheader(self):
        f = nested_loops()
        assert find_loop_by_header(f, "oh").preheader() == "entry"
        # inner's only outside predecessor is oh
        assert find_loop_by_header(f, "ih").preheader() == "oh"

    def test_nest_depth(self):
        f = nested_loops()
        assert loop_nest_depth(f, find_loop_by_header(f, "oh")) == 1
        assert loop_nest_depth(f, find_loop_by_header(f, "ih")) == 2

    def test_instructions_and_contains(self):
        f = nested_loops()
        outer = find_loop_by_header(f, "oh")
        insts = outer.instructions()
        assert len(insts) == 4  # br, br, jmp, jmp
        assert all(outer.contains(i) for i in insts)
        assert outer.contains_block("ibody")
        assert not outer.contains_block("exit")

    def test_multiple_latches_merge_into_one_loop(self):
        b = IRBuilder("multilatch")
        p1, p2 = b.pred(), b.pred()
        b.block("entry", entry=True)
        b.jmp("h")
        b.block("h")
        b.br(p1, "exit", "mid")
        b.block("mid")
        b.br(p2, "latch1", "latch2")
        b.block("latch1")
        b.jmp("h")
        b.block("latch2")
        b.jmp("h")
        b.block("exit")
        b.ret()
        loops = find_loops(b.done())
        assert len(loops) == 1
        assert loops[0].body == {"h", "mid", "latch1", "latch2"}
        assert set(loops[0].latches()) == {"latch1", "latch2"}
