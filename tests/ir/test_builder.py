"""Tests for the IRBuilder fluent API."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.types import Opcode, RegClass


class TestEmission:
    def test_arithmetic_methods_from_opcodes(self):
        b = IRBuilder("f")
        r0, r1 = b.reg(), b.reg()
        b.block("entry", entry=True)
        inst = b.add(r0, r1, imm=3)
        assert inst.opcode is Opcode.ADD
        assert inst.imm == 3
        inst = b.cmp_lt(b.pred(), r0, r1)
        assert inst.opcode is Opcode.CMP_LT

    def test_keyword_opcodes_take_trailing_underscore(self):
        b = IRBuilder("f")
        r0, r1 = b.reg(), b.reg()
        b.block("entry", entry=True)
        assert b.and_(r0, r1, imm=1).opcode is Opcode.AND
        assert b.or_(r0, r1, imm=1).opcode is Opcode.OR

    def test_unknown_attribute_raises(self):
        b = IRBuilder("f")
        with pytest.raises(AttributeError):
            b.frobnicate

    def test_non_binary_opcode_not_exposed(self):
        b = IRBuilder("f")
        with pytest.raises(AttributeError):
            b.load_  # load has a dedicated method, not the generic path

    def test_emit_without_block_raises(self):
        b = IRBuilder("f")
        with pytest.raises(ValueError):
            b.mov(b.reg(), imm=0)

    def test_mov_register_and_immediate(self):
        b = IRBuilder("f")
        r0, r1 = b.reg(), b.reg()
        b.block("entry", entry=True)
        assert b.mov(r0, imm=5).imm == 5
        assert b.mov(r0, r1).srcs == [r1]

    def test_memory_helpers(self):
        b = IRBuilder("f")
        r0, r1 = b.reg(), b.reg()
        b.block("entry", entry=True)
        ld = b.load(r0, r1, offset=4, region="heap")
        st = b.store(r0, r1, offset=8, region="heap")
        assert ld.region == "heap" and ld.imm == 4
        assert st.srcs == [r0, r1] and st.imm == 8

    def test_call_carries_metadata(self):
        b = IRBuilder("f")
        b.block("entry", entry=True)
        call = b.call("helper", dest=b.reg(), srcs=[b.reg()], cycles=99)
        assert call.attrs["callee"] == "helper"
        assert call.attrs["call_cycles"] == 99


class TestRegisters:
    def test_reg_and_pred_fresh(self):
        b = IRBuilder("f")
        assert b.reg() is not b.reg()
        assert b.pred().rclass is RegClass.PRED

    def test_emitted_registers_are_noted(self):
        b = IRBuilder("f")
        b.block("entry", entry=True)
        from repro.ir.types import gen_reg
        b.mov(gen_reg(40), imm=1)
        assert b.reg().index > 40


class TestDone:
    def test_done_rejects_unterminated_block(self):
        b = IRBuilder("f")
        b.block("entry", entry=True)
        b.mov(b.reg(), imm=0)
        with pytest.raises(ValueError):
            b.done()

    def test_done_returns_function(self):
        b = IRBuilder("f")
        b.block("entry", entry=True)
        b.ret()
        f = b.done()
        assert f.name == "f"
        assert f.entry_label == "entry"

    def test_at_switches_insertion_point(self):
        b = IRBuilder("f")
        b.block("a", entry=True)
        b.jmp("b")
        b.block("b")
        b.ret()
        b.at("a")  # already terminated; appending should fail
        with pytest.raises(ValueError):
            b.nop()
