"""Tests for the textual IR parser and printer round-trip."""

import pytest

from repro.ir.parser import IRParseError, parse_function
from repro.ir.printer import render_function
from repro.ir.types import Opcode, gen_reg, pred_reg

EXAMPLE = """\
func sum entry=entry
entry:
    mov r0 = 0
    jmp header
header:
    cmp.eq p0 = r1, 0
    br p0, exit, body
body:
    load r2 = [r1 + 8] !list
    add r0 = r0, r2
    load r1 = [r1 + 0] !list
    jmp header
exit:
    store [r3 + 0] = r0 !out
    ret
"""


class TestParsing:
    def test_parses_example(self):
        f = parse_function(EXAMPLE)
        assert f.name == "sum"
        assert f.entry_label == "entry"
        assert [b.label for b in f.blocks()] == ["entry", "header", "body", "exit"]

    def test_roundtrip_is_fixed_point(self):
        f = parse_function(EXAMPLE)
        text = render_function(f)
        assert render_function(parse_function(text)) == text

    def test_load_region_preserved(self):
        f = parse_function(EXAMPLE)
        load = f.block("body").instructions[0]
        assert load.opcode is Opcode.LOAD
        assert load.region == "list"
        assert load.imm == 8

    def test_comments_and_blank_lines_ignored(self):
        text = "func f entry=a\n# comment\n\na:\n    ret  # trailing\n"
        f = parse_function(text)
        assert f.block("a").terminator.opcode is Opcode.RET

    def test_produce_consume_forms(self):
        text = (
            "func f entry=a\na:\n"
            "    produce [3] = r1\n"
            "    produce [4]\n"
            "    consume r2 = [3]\n"
            "    consume [4]\n"
            "    ret\n"
        )
        f = parse_function(text)
        insts = f.block("a").instructions
        assert insts[0].queue == 3 and insts[0].srcs == [gen_reg(1)]
        assert insts[1].queue == 4 and insts[1].srcs == []
        assert insts[2].dest == gen_reg(2)
        assert insts[3].dest is None

    def test_call_form(self):
        text = "func f entry=a\na:\n    r1 = call helper(r2, r3)\n    ret\n"
        f = parse_function(text)
        call = f.block("a").instructions[0]
        assert call.opcode is Opcode.CALL
        assert call.attrs["callee"] == "helper"
        assert call.srcs == [gen_reg(2), gen_reg(3)]

    def test_negative_offsets(self):
        text = "func f entry=a\na:\n    load r1 = [r2 + -4]\n    ret\n"
        f = parse_function(text)
        assert f.block("a").instructions[0].imm == -4

    def test_mov_register_source(self):
        text = "func f entry=a\na:\n    mov r1 = r2\n    ret\n"
        f = parse_function(text)
        assert f.block("a").instructions[0].srcs == [gen_reg(2)]


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "a:\n    ret\n",  # no header
            "func f entry=a\n    ret\n",  # instruction before label
            "func f entry=missing\na:\n    ret\n",  # bad entry
            "func f entry=a\na:\n    bogus r1 = r2\n",  # unknown opcode
            "func f entry=a\na:\n    br p0, only_one\n",  # malformed br
            "func f entry=a\nfunc g entry=a\na:\n    ret\n",  # two headers
            "func f entry=a\na:\n    add r1 = r2, r3, r4\n",  # arity
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(IRParseError):
            parse_function(text)

    def test_error_carries_line_number(self):
        try:
            parse_function("func f entry=a\na:\n    bogus r1 = r2\n    ret\n")
        except IRParseError as exc:
            assert exc.line_no == 3
        else:
            pytest.fail("expected IRParseError")
