"""Property tests: the CHK dominator algorithm vs brute force."""

from hypothesis import given, strategies as st

from repro.ir.dominance import (
    VIRTUAL_EXIT,
    _compute_idom,
    _reverse_postorder,
    postdominator_tree_of_graph,
)


@st.composite
def rooted_digraph(draw):
    """A random digraph over n nodes where node 0 is the root and every
    node has an edge path from it (we simply add a spine)."""
    n = draw(st.integers(min_value=1, max_value=8))
    extra = draw(
        st.sets(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=n * 2,
        )
    )
    succs = {i: set() for i in range(n)}
    for i in range(n - 1):  # spine guarantees reachability
        spine_target = draw(st.integers(i + 1, n - 1))
        succs[i].add(spine_target)
        succs[i].add(i + 1)
    for a, b in extra:
        succs[a].add(b)
    return {str(k): sorted(str(x) for x in v) for k, v in succs.items()}


def brute_force_dominators(succs, root):
    """Dominators by definition: remove a node; what becomes unreachable?"""
    nodes = set(succs)

    def reachable(removed):
        seen = set()
        if root == removed:
            return seen
        stack = [root]
        seen.add(root)
        while stack:
            node = stack.pop()
            for nxt in succs.get(node, ()):
                if nxt != removed and nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return seen

    base = reachable(None)
    dom = {}
    for candidate in nodes:
        blocked = base - reachable(candidate)
        for node in blocked:
            dom.setdefault(node, set()).add(candidate)
    for node in base:
        dom.setdefault(node, set()).add(node)
    return dom, base


class TestDominatorProperties:
    @given(rooted_digraph())
    def test_idom_is_a_dominator(self, succs):
        root = "0"
        nodes = _reverse_postorder(root, succs)
        idom = _compute_idom(
            nodes,
            _preds(succs),
            root,
        )
        dom, base = brute_force_dominators(succs, root)
        for node in nodes:
            if node == root:
                assert idom[node] is None
                continue
            parent = idom.get(node)
            assert parent in dom[node], (
                f"idom({node})={parent} does not dominate it"
            )

    @given(rooted_digraph())
    def test_dominator_chain_equals_dominator_set(self, succs):
        root = "0"
        nodes = _reverse_postorder(root, succs)
        idom = _compute_idom(nodes, _preds(succs), root)
        dom, base = brute_force_dominators(succs, root)
        for node in nodes:
            chain = set()
            cursor = node
            while cursor is not None:
                chain.add(cursor)
                cursor = idom.get(cursor)
            assert chain == dom[node]


def _preds(succs):
    preds = {k: [] for k in succs}
    for node, outs in succs.items():
        for out in outs:
            preds.setdefault(out, []).append(node)
    return preds


class TestPostdominatorProperties:
    @given(rooted_digraph())
    def test_postdom_tree_rooted_at_virtual_exit(self, succs):
        pdt = postdominator_tree_of_graph(succs, [])
        # Every node reachable in the reverse graph hangs off the root.
        for node in pdt.idom:
            chain = list(pdt.walk_up(node))
            assert chain[-1] == VIRTUAL_EXIT

    @given(rooted_digraph())
    def test_exit_blocks_postdominated_only_by_exit(self, succs):
        sinks = [n for n, outs in succs.items() if not outs]
        pdt = postdominator_tree_of_graph(succs, [])
        for sink in sinks:
            assert pdt.idom.get(sink) == VIRTUAL_EXIT
