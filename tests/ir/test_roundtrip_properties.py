"""Property tests: ``parse_function`` is a left inverse of
``render_function``.

Three layers:

* fuzz-generated whole functions (loops, diamonds, regions, affine
  attrs, token flows) survive a print -> parse -> print cycle as a
  fixed point, with every instruction field preserved;
* hypothesis-driven single instructions with random attr dictionaries
  round-trip exactly;
* targeted regressions for the syntax corners that used to break:
  dataless produce/consume (the old printer emitted an unparseable
  ``<token>`` placeholder) and attr values that look like integers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzz.generator import generate_case
from repro.ir.instruction import Instruction
from repro.ir.parser import parse_function
from repro.ir.printer import (
    DEFAULT_CALL_CYCLES,
    render_function,
    render_instruction,
)
from repro.ir.types import Opcode, gen_reg
from repro.ir.verifier import verify_function


def _instruction_fields(inst: Instruction) -> tuple:
    return (
        inst.opcode,
        inst.dest,
        tuple(inst.srcs),
        inst.imm,
        inst.queue,
        inst.region,
        tuple(inst.targets),
        dict(inst.attrs),
    )


def _wrap(body: str) -> str:
    return f"func f entry=a\na:\n    {body}\n    ret\n"


def _roundtrip_instruction(inst: Instruction) -> Instruction:
    func = parse_function(_wrap(render_instruction(inst)))
    return func.block("a").instructions[0]


# ----------------------------------------------------------------------
# Whole generated functions
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", range(30))
def test_generated_function_roundtrip(seed):
    original = generate_case(seed).function
    text = render_function(original)
    reparsed = parse_function(text)
    verify_function(reparsed)
    # Fixed point of the textual form...
    assert render_function(reparsed) == text
    # ...and structural equality, field by field.
    assert reparsed.name == original.name
    assert reparsed.entry_label == original.entry_label
    assert ([b.label for b in reparsed.blocks()]
            == [b.label for b in original.blocks()])
    for block in original.blocks():
        got = reparsed.block(block.label).instructions
        want = block.instructions
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert _instruction_fields(g) == _instruction_fields(w)


# ----------------------------------------------------------------------
# Random attrs on single instructions
# ----------------------------------------------------------------------

_ATTR_KEYS = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True)


def _plain_string(value: str) -> bool:
    """Printable attr strings that do not re-parse as integers."""
    try:
        int(value, 0)
    except ValueError:
        return True
    return False


_ATTR_VALUES = st.one_of(
    st.just(True),
    st.integers(min_value=-(2 ** 31), max_value=2 ** 31),
    st.from_regex(r"[A-Za-z_][A-Za-z0-9_.:]{0,8}", fullmatch=True)
    .filter(_plain_string),
)


@settings(max_examples=150, deadline=None)
@given(attrs=st.dictionaries(_ATTR_KEYS, _ATTR_VALUES, max_size=4))
def test_attrs_roundtrip_on_load(attrs):
    inst = Instruction(Opcode.LOAD, dest=gen_reg(0), srcs=[gen_reg(1)],
                       imm=4, region="A", attrs=dict(attrs))
    got = _roundtrip_instruction(inst)
    assert got.attrs == attrs
    assert got.region == "A"
    assert got.imm == 4


@settings(max_examples=60, deadline=None)
@given(value=st.integers(min_value=-(2 ** 31), max_value=2 ** 31))
def test_integer_attr_values_roundtrip(value):
    inst = Instruction(Opcode.NOP, attrs={"k": value})
    assert _roundtrip_instruction(inst).attrs == {"k": value}


# ----------------------------------------------------------------------
# Targeted corners
# ----------------------------------------------------------------------

def test_dataless_produce_roundtrips():
    inst = Instruction(Opcode.PRODUCE, queue=7)
    assert render_instruction(inst) == "produce [7]"
    got = _roundtrip_instruction(inst)
    assert got.opcode is Opcode.PRODUCE
    assert got.queue == 7
    assert not got.srcs


def test_dataless_consume_roundtrips():
    inst = Instruction(Opcode.CONSUME, queue=9)
    assert render_instruction(inst) == "consume [9]"
    got = _roundtrip_instruction(inst)
    assert got.opcode is Opcode.CONSUME
    assert got.queue == 9
    assert got.dest is None


def test_affine_attrs_roundtrip():
    inst = Instruction(Opcode.LOAD, dest=gen_reg(2), srcs=[gen_reg(3)],
                       imm=0, region="A",
                       attrs={"affine": True, "affine_base": "A"})
    got = _roundtrip_instruction(inst)
    assert got.attrs == {"affine": True, "affine_base": "A"}


def test_false_and_none_attrs_are_dropped():
    inst = Instruction(Opcode.NOP, attrs={"a": False, "b": None, "c": True})
    assert render_instruction(inst) == "nop @c"


def test_default_call_cycles_omitted_nondefault_kept():
    call = Instruction(Opcode.CALL, dest=gen_reg(0), srcs=[gen_reg(1)],
                       attrs={"callee": "hash", "call_cycles": DEFAULT_CALL_CYCLES})
    assert "@call_cycles" not in render_instruction(call)
    call.attrs["call_cycles"] = 7
    got = _roundtrip_instruction(call)
    assert got.attrs["call_cycles"] == 7
    assert got.attrs["callee"] == "hash"


def test_unprintable_attr_values_skipped():
    inst = Instruction(Opcode.NOP, attrs={"blob": [1, 2], "s": "has space"})
    assert render_instruction(inst) == "nop"
