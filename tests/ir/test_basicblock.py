"""Tests for basic blocks: structure, mutation, and successor edges."""

import pytest

from repro.ir.basicblock import BasicBlock, make_jump
from repro.ir.builder import IRBuilder
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, gen_reg, pred_reg


def _add(i):
    return Instruction(Opcode.ADD, dest=gen_reg(i), srcs=[gen_reg(i)], imm=1)


class TestStructure:
    def test_terminator_detection(self):
        bb = BasicBlock("a")
        assert bb.terminator is None
        bb.append(_add(0))
        assert bb.terminator is None
        bb.append(make_jump("b"))
        assert bb.terminator is not None
        assert bb.body == bb.instructions[:-1]

    def test_append_after_terminator_fails(self):
        bb = BasicBlock("a")
        bb.append(make_jump("b"))
        with pytest.raises(ValueError):
            bb.append(_add(0))

    def test_successor_labels(self):
        bb = BasicBlock("a")
        bb.append(Instruction(Opcode.BR, srcs=[pred_reg(0)], targets=["x", "y"]))
        assert bb.successor_labels() == ["x", "y"]

    def test_len_and_iter(self):
        bb = BasicBlock("a")
        bb.append(_add(0))
        bb.append(make_jump("b"))
        assert len(bb) == 2
        assert [i.opcode for i in bb] == [Opcode.ADD, Opcode.JMP]


class TestMutation:
    def test_insert_before_terminator(self):
        bb = BasicBlock("a")
        bb.append(make_jump("b"))
        inserted = bb.insert_before_terminator(_add(0))
        assert bb.instructions[0] is inserted

    def test_insert_before_terminator_without_terminator_appends(self):
        bb = BasicBlock("a")
        inserted = bb.insert_before_terminator(_add(0))
        assert bb.instructions == [inserted]

    def test_insert_after_and_before_anchor(self):
        bb = BasicBlock("a")
        first = bb.append(_add(0))
        bb.append(make_jump("b"))
        after = bb.insert_after(first, _add(1))
        before = bb.insert_before(first, _add(2))
        assert bb.instructions[:3] == [before, first, after]

    def test_retarget(self):
        bb = BasicBlock("a")
        bb.append(Instruction(Opcode.BR, srcs=[pred_reg(0)], targets=["x", "y"]))
        bb.retarget("x", "z")
        assert bb.successor_labels() == ["z", "y"]

    def test_retarget_without_terminator_is_noop(self):
        bb = BasicBlock("a")
        bb.retarget("x", "z")  # must not raise


class TestFunctionEdges:
    def test_successors_and_predecessors(self):
        b = IRBuilder("f")
        b.block("a", entry=True)
        b.jmp("b")
        b.block("b")
        b.ret()
        f = b.done()
        a, bb = f.block("a"), f.block("b")
        assert a.successors() == [bb]
        assert bb.predecessors() == [a]
        assert bb.successors() == []

    def test_detached_block_has_no_edges(self):
        bb = BasicBlock("solo")
        bb.append(make_jump("nowhere"))
        assert bb.successors() == []
        assert bb.predecessors() == []

    def test_render_contains_label_and_instructions(self):
        bb = BasicBlock("blk")
        bb.append(make_jump("next"))
        out = bb.render()
        assert out.startswith("blk:")
        assert "jmp next" in out
