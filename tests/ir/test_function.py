"""Tests for Function: block management, traversal, register allocation."""

import pytest

from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.types import Opcode, RegClass, gen_reg


def diamond():
    b = IRBuilder("diamond")
    p = b.pred()
    b.block("entry", entry=True)
    b.br(p, "left", "right")
    b.block("left")
    b.jmp("join")
    b.block("right")
    b.jmp("join")
    b.block("join")
    b.ret()
    return b.done()


class TestBlocks:
    def test_duplicate_label_rejected(self):
        f = Function("f")
        f.add_block("a")
        with pytest.raises(ValueError):
            f.add_block("a")

    def test_entry_defaults_to_first_block(self):
        f = Function("f")
        f.add_block("first")
        f.add_block("second")
        assert f.entry_label == "first"

    def test_explicit_entry_overrides(self):
        f = Function("f")
        f.add_block("a")
        f.add_block("real", entry=True)
        assert f.entry_label == "real"

    def test_blocks_in_layout_order(self):
        f = diamond()
        assert [b.label for b in f.blocks()] == ["entry", "left", "right", "join"]

    def test_remove_block(self):
        f = diamond()
        f.remove_block("left")
        assert not f.has_block("left")
        assert [b.label for b in f.blocks()] == ["entry", "right", "join"]

    def test_exit_blocks(self):
        f = diamond()
        assert [b.label for b in f.exit_blocks()] == ["join"]

    def test_predecessors(self):
        f = diamond()
        preds = {b.label for b in f.predecessors(f.block("join"))}
        assert preds == {"left", "right"}


class TestInstructions:
    def test_instruction_count_and_iteration(self):
        f = diamond()
        assert f.instruction_count() == 4
        assert len(list(f.instructions())) == 4

    def test_block_of(self):
        f = diamond()
        term = f.block("left").terminator
        assert f.block_of(term).label == "left"

    def test_block_of_missing_raises(self):
        f = diamond()
        other = diamond()
        foreign = other.block("left").terminator
        with pytest.raises(KeyError):
            f.block_of(foreign)


class TestRegisters:
    def test_new_reg_skips_noted(self):
        f = Function("f")
        f.note_register(gen_reg(5))
        fresh = f.new_reg(RegClass.GEN)
        assert fresh.index == 6

    def test_new_reg_sequences(self):
        f = Function("f")
        assert f.new_reg().index == 0
        assert f.new_reg().index == 1

    def test_sync_register_counter(self):
        f = diamond()
        f.sync_register_counter()
        fresh = f.new_reg(RegClass.PRED)
        used = {
            r.index
            for inst in f.instructions()
            for r in inst.used_registers()
            if r.is_predicate
        }
        assert fresh.index not in used


class TestTraversal:
    def test_reverse_postorder_starts_at_entry(self):
        f = diamond()
        order = [b.label for b in f.reverse_postorder()]
        assert order[0] == "entry"
        assert order.index("join") > order.index("left")
        assert order.index("join") > order.index("right")

    def test_reverse_postorder_covers_all_blocks(self):
        f = diamond()
        assert len(f.reverse_postorder()) == 4

    def test_render_mentions_every_block(self):
        f = diamond()
        text = f.render()
        for label in ("entry", "left", "right", "join"):
            assert f"{label}:" in text
