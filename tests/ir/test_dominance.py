"""Tests for dominator and post-dominator trees."""

from repro.ir.builder import IRBuilder
from repro.ir.dominance import (
    VIRTUAL_EXIT,
    dominator_tree,
    postdominator_tree,
    postdominator_tree_of_graph,
)


def diamond():
    b = IRBuilder("diamond")
    p = b.pred()
    b.block("entry", entry=True)
    b.br(p, "left", "right")
    b.block("left")
    b.jmp("join")
    b.block("right")
    b.jmp("join")
    b.block("join")
    b.ret()
    return b.done()


def looped():
    b = IRBuilder("looped")
    p = b.pred()
    b.block("entry", entry=True)
    b.jmp("header")
    b.block("header")
    b.br(p, "exit", "body")
    b.block("body")
    b.jmp("header")
    b.block("exit")
    b.ret()
    return b.done()


class TestDominators:
    def test_diamond_idoms(self):
        dom = dominator_tree(diamond())
        assert dom.idom["left"] == "entry"
        assert dom.idom["right"] == "entry"
        assert dom.idom["join"] == "entry"
        assert dom.idom["entry"] is None

    def test_dominates_is_reflexive(self):
        dom = dominator_tree(diamond())
        assert dom.dominates("left", "left")

    def test_entry_dominates_everything(self):
        dom = dominator_tree(diamond())
        for label in ("left", "right", "join"):
            assert dom.dominates("entry", label)

    def test_branch_arm_does_not_dominate_join(self):
        dom = dominator_tree(diamond())
        assert not dom.dominates("left", "join")
        assert not dom.strictly_dominates("join", "join")

    def test_loop_header_dominates_body(self):
        dom = dominator_tree(looped())
        assert dom.dominates("header", "body")
        assert dom.dominates("header", "exit")

    def test_walk_up_reaches_root(self):
        dom = dominator_tree(diamond())
        assert list(dom.walk_up("join")) == ["join", "entry"]

    def test_children(self):
        dom = dominator_tree(diamond())
        assert set(dom.children()["entry"]) == {"left", "right", "join"}


class TestPostdominators:
    def test_diamond_postdoms(self):
        pdt = postdominator_tree(diamond())
        assert pdt.idom["left"] == "join"
        assert pdt.idom["right"] == "join"
        assert pdt.idom["entry"] == "join"
        assert pdt.idom["join"] == VIRTUAL_EXIT

    def test_loop_body_postdominated_by_header(self):
        pdt = postdominator_tree(looped())
        assert pdt.idom["body"] == "header"
        assert pdt.idom["header"] == "exit"

    def test_graph_variant_with_explicit_exits(self):
        succs = {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []}
        pdt = postdominator_tree_of_graph(succs, ["d"])
        assert pdt.idom["a"] == "d"
        assert pdt.idom["b"] == "d"

    def test_dead_end_nodes_become_exits(self):
        succs = {"a": ["b"], "b": []}
        pdt = postdominator_tree_of_graph(succs, [])
        assert pdt.idom["a"] == "b"
        assert pdt.idom["b"] == VIRTUAL_EXIT

    def test_multi_exit_graph(self):
        succs = {"a": ["b", "c"], "b": [], "c": []}
        pdt = postdominator_tree_of_graph(succs, ["b", "c"])
        # Nothing (real) postdominates a: its ipdom is the virtual exit.
        assert pdt.idom["a"] == VIRTUAL_EXIT
