"""Tests for registers, opcodes, and their classification sets."""

import pytest

from repro.ir.types import (
    BINARY_OPS,
    COMPARE_OPS,
    MEMORY_OPS,
    M_PIPE_OPS,
    PREDICATE_DEFS,
    TERMINATORS,
    Opcode,
    RegClass,
    Register,
    gen_reg,
    parse_register,
    pred_reg,
)


class TestRegister:
    def test_interning_gives_identity(self):
        assert gen_reg(3) is gen_reg(3)
        assert pred_reg(0) is pred_reg(0)

    def test_distinct_classes_distinct_registers(self):
        assert gen_reg(1) is not pred_reg(1)

    def test_repr(self):
        assert repr(gen_reg(12)) == "r12"
        assert repr(pred_reg(4)) == "p4"

    def test_ordering_is_deterministic(self):
        regs = [gen_reg(5), pred_reg(1), gen_reg(0)]
        assert sorted(regs) == [pred_reg(1), gen_reg(0), gen_reg(5)]

    def test_is_predicate(self):
        assert pred_reg(2).is_predicate
        assert not gen_reg(2).is_predicate

    def test_constructor_equals_helpers(self):
        assert Register(RegClass.GEN, 7) is gen_reg(7)
        assert Register(RegClass.PRED, 7) is pred_reg(7)


class TestParseRegister:
    def test_parse_general(self):
        assert parse_register("r42") is gen_reg(42)

    def test_parse_predicate(self):
        assert parse_register(" p3 ") is pred_reg(3)

    @pytest.mark.parametrize("bad", ["x3", "r", "p-1", "3r", "", "rr2"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_register(bad)


class TestOpcodeSets:
    def test_terminators(self):
        assert TERMINATORS == {Opcode.BR, Opcode.JMP, Opcode.RET}

    def test_memory_ops_subset_of_m_pipe(self):
        assert MEMORY_OPS < M_PIPE_OPS

    def test_produce_consume_use_m_pipe(self):
        assert Opcode.PRODUCE in M_PIPE_OPS
        assert Opcode.CONSUME in M_PIPE_OPS

    def test_compare_ops_define_predicates(self):
        assert COMPARE_OPS == PREDICATE_DEFS

    def test_binary_and_compare_disjoint(self):
        assert not BINARY_OPS & COMPARE_OPS

    def test_every_opcode_has_unique_mnemonic(self):
        names = [op.value for op in Opcode]
        assert len(names) == len(set(names))
