"""Corpus tests: every ``.ir`` file under ``corpus/`` must parse,
verify, round-trip through the printer, execute, and survive DSWP (and
whole-program DSWP) with identical results.

The corpus programs are self-contained: they initialise their own
registers and write results to fixed addresses, so no per-program
configuration is needed here -- comparing full memory snapshots covers
every output.
"""

from pathlib import Path

import pytest

from repro.core.dswp import dswp
from repro.core.program import dswp_program
from repro.core.unroll import unroll_loop
from repro.interp.interpreter import run_function
from repro.interp.memory import Memory
from repro.interp.multithread import run_threads
from repro.ir.loops import find_loops
from repro.ir.parser import parse_function
from repro.ir.printer import render_function
from repro.ir.verifier import verify_reachable

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.ir"))
assert CORPUS, "corpus directory is empty"


def load(path: Path):
    return parse_function(path.read_text())


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
class TestCorpus:
    def test_parses_and_verifies(self, path):
        func = load(path)
        verify_reachable(func)

    def test_printer_roundtrip(self, path):
        func = load(path)
        text = render_function(func)
        assert render_function(parse_function(text)) == text

    def test_executes(self, path):
        func = load(path)
        result = run_function(func, Memory(), max_steps=2_000_000)
        # Every corpus program writes at least one output cell.
        assert result.memory.snapshot()

    def test_dswp_on_every_loop(self, path):
        func = load(path)
        seq = run_function(func, Memory(), max_steps=2_000_000)
        for loop in find_loops(func):
            result = dswp(func, loop, require_profitable=False)
            if not result.applied:
                continue
            par = run_threads(result.program, Memory(),
                              max_steps=4_000_000)
            assert seq.memory.snapshot() == par.memory.snapshot(), loop

    def test_whole_program_dswp(self, path):
        func = load(path)
        seq = run_function(func, Memory(), max_steps=2_000_000)
        result = dswp_program(func)
        par = run_threads(result.program, Memory(), max_steps=4_000_000)
        assert seq.memory.snapshot() == par.memory.snapshot()

    def test_unroll_every_loop(self, path):
        func = load(path)
        seq = run_function(func, Memory(), max_steps=2_000_000)
        for loop in find_loops(func):
            if len(loop.body) == len(
                    {b for l in find_loops(func) for b in l.body}):
                pass
            unrolled = unroll_loop(func, loop, factor=3)
            verify_reachable(unrolled)
            unr = run_function(unrolled, Memory(), max_steps=4_000_000)
            assert seq.memory.snapshot() == unr.memory.snapshot(), loop
            break  # outermost loop is enough per program


def test_corpus_has_expected_variety():
    names = {p.stem for p in CORPUS}
    assert {"counted_sum", "nested_product", "multi_exit",
            "store_then_load", "two_loops"} <= names
    assert len(CORPUS) >= 10


def test_reentered_inner_loop_needs_master_queue():
    """Plain dswp declines a nested loop; dswp_program's §3 runtime
    re-dispatches the auxiliary thread once per outer iteration."""
    path = next(p for p in CORPUS if p.stem == "nested_product")
    func = load(path)
    inner = next(l for l in find_loops(func) if l.header == "ih")
    declined = dswp(func, inner, require_profitable=False)
    assert not declined.applied
    assert "master-queue" in declined.reason

    seq = run_function(func, Memory(), max_steps=2_000_000)
    result = dswp_program(func, ["ih"])
    assert result.applied_loops
    par = run_threads(result.program, Memory(), max_steps=4_000_000)
    assert seq.memory.snapshot() == par.memory.snapshot()
