"""Ablation: callee-latency estimates in the partitioning heuristic.

Section 3 notes a limitation of the paper's implementation: "function
call latencies currently do not include an estimate of the cycles taken
to execute the callee, what can lead to poor partitioning decisions for
loops with function calls."

This bench constructs a loop whose body calls an expensive helper and
runs the TPP heuristic twice: with the paper's cost model
(`static_latency`, callee ignored -- the call looks like 1 cycle) and
with callee estimates (`static_latency_with_calls`).  The two models
choose *different* cuts for the same loop -- the greedy largest-first
heuristic drags an expensive call into the first stage once it can see
its weight -- and an exhaustive 2-way search bounds both, which is
precisely why the paper pairs the heuristic with the manually-directed
search of Fig. 6(a).
"""

from __future__ import annotations

from repro.core.dswp import dswp
from repro.harness.reporting import format_table
from repro.interp.interpreter import run_function
from repro.interp.multithread import run_threads
from repro.ir.builder import IRBuilder
from repro.ir.types import gen_reg
from repro.machine.cmp import simulate
from repro.machine.config import static_latency, static_latency_with_calls

CALL_CYCLES = 40
N = 600


def build_call_loop():
    """for i < n: t = in[i]; u = f(t); out[i] = u ^ mix(t)."""
    b = IRBuilder("callloop")
    r_i, r_n, r_in, r_out = (b.reg() for _ in range(4))
    r_t, r_u, r_m, r_addr, r_oaddr = (b.reg() for _ in range(5))
    p = b.pred()
    b.block("entry", entry=True)
    b.mov(r_i, imm=0)
    b.jmp("header")
    b.block("header")
    b.cmp_ge(p, r_i, r_n)
    b.br(p, "exit", "body")
    b.block("body")
    b.add(r_addr, r_in, r_i)
    b.load(r_t, r_addr, offset=0, region="in",
           attrs={"affine": True, "affine_base": "in"})
    call = b.call("slow_helper", dest=r_u, srcs=[r_t], cycles=CALL_CYCLES)
    call.attrs["pure"] = True  # the helper only reads its argument
    b.mul(r_m, r_t, imm=3)
    b.xor(r_m, r_m, imm=0x55)
    b.add(r_m, r_m, r_t)
    b.xor(r_u, r_u, r_m)
    b.add(r_oaddr, r_out, r_i)
    b.store(r_u, r_oaddr, offset=0, region="out",
            attrs={"affine": True, "affine_base": "out"})
    b.add(r_i, r_i, imm=1)
    b.jmp("header")
    b.block("exit")
    b.ret()
    func = b.done()
    return func, {"i": r_i, "n": r_n, "in": r_in, "out": r_out}


def helper(mem, args):
    x = args[0]
    for _ in range(4):
        x = (x * 2654435761 + 1) & 0xFFFFFFFF
    return x


def test_callee_latency_estimate_ablation(benchmark, full_machine):
    def run():
        from repro.interp.memory import Memory

        func, regs = build_call_loop()
        memory = Memory()
        in_base = memory.store_array([(i * 31 + 7) % 4096 for i in range(N)])
        out_base = memory.alloc(N)
        initial = {regs["i"]: 0, regs["n"]: N, regs["in"]: in_base,
                   regs["out"]: out_base}
        handlers = {"slow_helper": helper}

        baseline = run_function(func, memory.clone(), initial_regs=initial,
                                record_trace=True, call_handlers=handlers)
        base_cycles = simulate([baseline.trace], full_machine).cycles

        def measure(partition=None, model=static_latency):
            result = dswp(func, latency_of=model, partition=partition,
                          require_profitable=False)
            mt = run_threads(result.program, memory.clone(),
                             initial_regs=initial, record_trace=True,
                             call_handlers=handlers)
            assert mt.memory.snapshot() == baseline.memory.snapshot()
            cycles = simulate(mt.traces(), full_machine).cycles
            return result, base_cycles / cycles

        rows = []
        partitions = {}
        for label, model in (("callee ignored (paper)", static_latency),
                             ("callee estimated", static_latency_with_calls)):
            result, speedup = measure(model=model)
            partitions[label] = result.partition
            call_stage = result.partition.assignment()[
                next(i for i in result.graph.nodes if i.is_call)
            ]
            rows.append([label, call_stage,
                         str(sorted(result.partition.stages[0])), speedup])
        # Exhaustive search as the reference bound.
        from repro.core.partition import enumerate_two_way_partitions
        probe = dswp(func, require_profitable=False)
        best = 0.0
        for cut in enumerate_two_way_partitions(probe.dag, limit=64):
            _, speedup = measure(partition=cut)
            best = max(best, speedup)
        rows.append(["best 2-way cut (search)", "-", "-", best])
        differ = partitions["callee ignored (paper)"].stages != partitions[
            "callee estimated"].stages
        return rows, differ

    rows, partitions_differ = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation: callee latency in the TPP cost model (§3 limitation)")
    print(format_table(
        ["cost model", "call's stage", "stage-0 SCCs", "speedup"],
        rows,
    ))
    blind, informed, best = rows
    # Shapes: the callee estimate changes the chosen cut (the §3
    # limitation is real), and the exhaustive search bounds both static
    # models -- the gap is the Fig. 6(a) automatic-vs-manual gap.
    assert partitions_differ
    assert best[3] >= max(blind[3], informed[3]) * 0.999
    assert best[3] > 1.0
