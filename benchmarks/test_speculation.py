"""Section 5.4: speculative loop-termination on gzip-shaped loops.

The paper identifies gzip's deflate_fast as unfit for DSWP (one huge
SCC through the loop-termination computation) and proposes moving
termination detection to the consumer with speculation support as "a
simple and likely profitable fix".  This bench evaluates our bounded
software implementation of that fix:

* on the plain gzip walk the fix applies where DSWP declined;
* on the deflate_fast-shaped ``gzip-match`` loop (hash walk + match
  probe + emission, all serialised by the exit conditions) plain DSWP
  is stuck with an 80%+ SCC while speculation overlaps the two miss
  streams;
* the speculation window sweep shows the credit pipeline needs a few
  iterations of slack, then saturates.
"""

from __future__ import annotations

from repro.core.dswp import dswp
from repro.core.speculation import speculative_dswp
from repro.harness.reporting import format_table
from repro.harness.runner import run_baseline
from repro.interp.multithread import run_threads
from repro.machine.cmp import simulate
from repro.workloads import GzipMatchWorkload, GzipWorkload

WINDOWS = (1, 2, 4, 8, 16)


def _spec_cycles(case, machine, window):
    result = speculative_dswp(case.function, case.loop, window=window)
    memory = case.fresh_memory()
    mt = run_threads(result.program, memory, initial_regs=case.initial_regs,
                     record_trace=True, max_steps=50_000_000)
    case.checker(memory, mt.main_regs)
    return simulate(mt.traces(), machine).cycles


def test_speculative_termination(benchmark, full_machine):
    def run():
        rows = []
        applicability = {}
        for workload in (GzipWorkload(), GzipMatchWorkload()):
            case = workload.build(scale=800)
            baseline = run_baseline(case)
            base = simulate([baseline.trace], full_machine).cycles
            plain = dswp(case.function, case.loop, require_profitable=False)
            if plain.applied:
                memory = case.fresh_memory()
                mt = run_threads(plain.program, memory,
                                 initial_regs=case.initial_regs,
                                 record_trace=True, max_steps=50_000_000)
                plain_speedup = base / simulate(mt.traces(),
                                                full_machine).cycles
                largest = max(len(s) for s in plain.dag.sccs)
                plain_note = (f"{plain_speedup:.3f}x (largest SCC "
                              f"{largest}/{len(plain.graph.nodes)})")
            else:
                plain_speedup = None
                plain_note = f"declined: {plain.reason}"
            applicability[workload.name] = (plain.applied, plain_speedup)
            for window in WINDOWS:
                speedup = base / _spec_cycles(case, full_machine, window)
                rows.append([workload.name, plain_note, window, speedup])
        return rows, applicability

    rows, applicability = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Section 5.4: speculative loop-termination (credit window sweep)")
    print(format_table(
        ["loop", "plain DSWP", "window", "speculative speedup"], rows
    ))
    # Shapes: plain DSWP declines the pure walk; speculation applies to
    # both; on the deflate_fast shape the speculative pipeline clearly
    # beats both the baseline and plain DSWP once the window gives the
    # producer a little slack.
    assert applicability["gzip"][0] is False
    match_rows = [r for r in rows if r[0] == "gzip-match" and r[2] >= 4]
    assert all(r[3] > 1.3 for r in match_rows)
    plain_match = applicability["gzip-match"][1]
    assert plain_match is not None and max(r[3] for r in match_rows) > plain_match
    # The window sweep saturates: 16 is no worse than 4 by much.
    by_window = {r[2]: r[3] for r in rows if r[0] == "gzip-match"}
    assert by_window[16] >= by_window[4] * 0.95
