"""Workload characterization: the dynamic profile of each loop.

Not a paper table per se, but the evidence that the synthetic suite
exercises the behaviours Table 1's loops were chosen for: dynamic
instruction mix (loads/stores/branches), branch-mispredict rates,
L1 miss rates, and the recurrence fraction (share of dynamic
instructions inside the largest SCC -- the quantity that decides how
much of the loop is pinned to one pipeline stage).
"""

from __future__ import annotations

from repro.harness.reporting import format_table
from repro.machine.cmp import simulate
from repro.workloads import TABLE1_WORKLOADS


def test_workload_characterization(benchmark, suite, full_machine):
    def run():
        rows = []
        for workload in TABLE1_WORKLOADS:
            name = workload.name
            baseline = suite.baseline(name)
            trace = baseline.trace
            loads = sum(1 for e in trace if e.inst.is_load)
            stores = sum(1 for e in trace if e.inst.is_store)
            branches = sum(1 for e in trace if e.inst.is_branch)
            total = len(trace)
            sim = simulate([trace], full_machine)
            cache_stats = sim.cores[0].caches.stats()
            predictor = sim.cores[0].predictor
            probe = suite.dswp(name).result
            scc_sizes = {i: len(m) for i, m in enumerate(probe.dag.sccs)}
            weights = {
                i: sum(
                    baseline.profile.instruction_weight(
                        suite.case(name).function, inst
                    )
                    for inst in members
                )
                for i, members in enumerate(probe.dag.sccs)
            }
            total_weight = sum(weights.values()) or 1.0
            recurrence_frac = max(weights.values()) / total_weight
            rows.append([
                name,
                total,
                loads / total,
                stores / total,
                branches / total,
                cache_stats["l1_miss_rate"],
                predictor.mispredict_rate,
                recurrence_frac,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Workload characterization (single-threaded runs)")
    print(format_table(
        ["loop", "dyn instrs", "load%", "store%", "branch%",
         "L1 miss", "mispredict", "largest-SCC share"],
        rows,
    ))
    # Shapes: realistic mixes (every loop has loads and branches), a
    # spread of memory behaviours (some cache-hostile, some friendly),
    # and a spread of recurrence weights (the DOALL loops near zero,
    # the recurrence-bound loops much higher).
    for row in rows:
        assert 0.0 < row[2] < 0.6      # load fraction
        assert 0.0 < row[4] < 0.5      # branch fraction
    miss_rates = [r[5] for r in rows]
    assert max(miss_rates) > 0.15 and min(miss_rates) < 0.10
    shares = [r[7] for r in rows]
    assert max(shares) > 0.4 and min(shares) < 0.3
