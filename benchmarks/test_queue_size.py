"""Section 4.4 (text): sensitivity to synchronization-array queue size.

The paper varies the 32-element queues to 8 and 128 elements and finds
DSWP "fairly insensitive": mean slowdown 2% at size 8, mean speedup 1%
at size 128, worst cases -6%/+7%.
"""

from __future__ import annotations

from repro.harness.reporting import format_table, geomean
from repro.machine.config import MachineConfig
from repro.workloads import TABLE1_WORKLOADS

SIZES = (8, 32, 128)


def test_queue_size_sensitivity(benchmark, suite, full_machine):
    def run():
        rows = []
        for workload in TABLE1_WORKLOADS:
            name = workload.name
            base = suite.base_cycles(name, full_machine)
            speedups = [
                base / suite.dswp_sim(
                    name, MachineConfig().with_queue_size(size)
                ).cycles
                for size in SIZES
            ]
            rows.append([name] + speedups)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    means = [geomean([r[i] for r in rows]) for i in range(1, len(SIZES) + 1)]
    rows.append(["GeoMean"] + means)
    print()
    print("Queue-size sensitivity (Section 4.4): speedup at 8/32/128 entries")
    print(format_table(["loop"] + [f"{s} entries" for s in SIZES], rows))
    ref = means[1]  # 32 entries is the paper's default
    # Shapes: small queues cost a little, big queues gain a little; the
    # whole range stays within a few percent of the default.
    assert abs(means[0] - ref) / ref < 0.08
    assert abs(means[2] - ref) / ref < 0.08
    assert means[2] >= means[0] * 0.98
