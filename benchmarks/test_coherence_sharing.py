"""Section 4.2: offline false-sharing analysis of the DSWP'd loops.

The paper's simulator omits the coherence protocol; to validate the
results it replays both cores' memory traces in an invalidation-based
model and checks for false sharing.  Of its nine applications only
three (181.mcf, 256.bzip2, jpegenc) exhibited any, with negligible
miss-rate impact except bzip2's write to the global ``bslive`` --
which the authors fixed by promoting the global to a register.

This bench reports the same analysis for our suite, plus the
pre-fix/post-fix bzip2 pair.
"""

from __future__ import annotations

from repro.harness.reporting import format_table
from repro.harness.runner import run_dswp
from repro.machine.sharing import analyze_sharing
from repro.workloads import Bzip2Workload, TABLE1_WORKLOADS


def test_false_sharing_analysis(benchmark, suite):
    def run():
        rows = []
        ordered_true_sharing = True
        for workload in TABLE1_WORKLOADS:
            run_w = suite.dswp(workload.name)
            report = analyze_sharing(run_w.traces)
            # True-sharing events may only arise where the affine alias
            # model split a same-address load->store pair forward across
            # the pipeline: the *downstream* core writes lines the
            # upstream core read, an ordered (safe) communication.
            ordered_true_sharing &= all(
                e.writer_core > e.victim_core
                for e in report.true_sharing_events
            )
            rows.append([
                workload.name,
                len(report.false_sharing_events),
                len(report.true_sharing_events),
                max(report.miss_rate_delta(c) for c in (0, 1)),
            ])
        # The §4.2 bzip2 case: global write-through vs register-promoted.
        bad = run_dswp(Bzip2Workload(global_bslive=True).build(scale=800))
        bad_report = analyze_sharing(bad.traces)
        rows.append([
            "bzip2-globals",
            len(bad_report.false_sharing_events),
            len(bad_report.true_sharing_events),
            max(bad_report.miss_rate_delta(c) for c in (0, 1)),
        ])
        return rows, ordered_true_sharing

    rows, ordered_true_sharing = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Section 4.2: offline invalidation-based sharing analysis")
    print(format_table(
        ["loop", "false-sharing events", "true-sharing events",
         "max miss-rate delta (pp)"],
        rows,
    ))
    by_name = {r[0]: r for r in rows}
    # Shapes: unordered true sharing never occurs (may-aliasing pairs
    # share an SCC; any same-word traffic flows strictly down the
    # pipeline); the register-promoted bzip2 is clean while the
    # global-variable variant falsely shares heavily (§4.2's fix).
    assert ordered_true_sharing
    assert by_name["bzip2-globals"][1] > 0
    assert by_name["bzip2-globals"][3] > by_name["bzip2"][3]
    assert by_name["bzip2"][1] == 0
    # Most of the suite shows little or no sharing impact, like the paper.
    quiet = sum(1 for r in rows[:-1] if r[3] < 3.0)
    assert quiet >= 7
