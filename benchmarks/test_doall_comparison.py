"""Section 4.1's footnote, measured: DSWP vs DOALL on the DOALL loops.

"Note that three of the selected loops are actually DOALL ...  Although
DSWP can be applied to these loops, parallelizing them as independent
threads is likely more efficient because it avoids all overhead of
inter-thread communication during loop execution."

This bench runs both transforms on the three loops the paper names
(plus any other suite loop the DOALL prover accepts) and confirms the
claim; the recurrence-bound loops, where only DSWP applies, are listed
for contrast.
"""

from __future__ import annotations

from repro.core.doall import DoallError, doall
from repro.harness.reporting import format_table
from repro.interp.multithread import run_threads
from repro.machine.cmp import simulate
from repro.workloads import TABLE1_WORKLOADS

PAPER_DOALL = {"compress", "art", "jpegenc"}


def test_doall_vs_dswp(benchmark, suite, full_machine):
    def run():
        rows = []
        for workload in TABLE1_WORKLOADS:
            name = workload.name
            case = suite.case(name)
            base = suite.base_cycles(name, full_machine)
            dswp_speedup = base / suite.dswp_sim(name, full_machine).cycles
            try:
                result = doall(case.function, case.loop)
            except DoallError as exc:
                rows.append([name, dswp_speedup, "not DOALL", str(exc)[:46]])
                continue
            memory = case.fresh_memory()
            mt = run_threads(result.program, memory,
                             initial_regs=case.initial_regs,
                             record_trace=True, max_steps=50_000_000)
            case.checker(memory, mt.main_regs)
            doall_speedup = base / simulate(mt.traces(), full_machine).cycles
            rows.append([name, dswp_speedup, doall_speedup, ""])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Section 4.1: DSWP vs DOALL on the independent-iteration loops")
    print(format_table(
        ["loop", "DSWP speedup", "DOALL speedup", "note"], rows
    ))
    by_name = {r[0]: r for r in rows}
    # Shapes: the three loops the paper marks DOALL are provable and
    # DOALL beats DSWP on them (no loop communication); the
    # recurrence-bound loops are not provable.
    for name in PAPER_DOALL:
        row = by_name[name]
        assert isinstance(row[2], float), f"{name} should be DOALL"
        assert row[2] > row[1], f"{name}: DOALL should beat DSWP"
    for name in ("mcf", "ammp", "bzip2", "adpcmdec", "wc"):
        assert by_name[name][2] == "not DOALL"
