"""Fig. 8: cumulative cycle distribution at synchronization-array
occupancy levels, per benchmark.

Paper buckets: Full (producer stalled), Balanced (both active),
Empty (both active), Empty (consumer stalled).  Shape: with the
heuristic partitions most cycles are spent with both threads active,
and the stalled fractions vary per benchmark -- that feedback is what
the paper says compiler designers should use to tune the heuristic.
"""

from __future__ import annotations

from repro.harness.reporting import format_table
from repro.workloads import TABLE1_WORKLOADS


def test_fig8_occupancy_distribution(benchmark, suite, full_machine):
    def run():
        rows = []
        for workload in TABLE1_WORKLOADS:
            sim = suite.dswp_sim(workload.name, full_machine)
            buckets = sim.occupancy().buckets()
            rows.append([
                workload.name,
                buckets["full_producer_stalled"],
                buckets["balanced_both_active"],
                buckets["empty_both_active"],
                buckets["empty_consumer_stalled"],
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    averages = [sum(r[i] for r in rows) / len(rows) for i in range(1, 5)]
    rows.append(["Average"] + averages)
    print()
    print("Fig. 8: cycle distribution over SA occupancy buckets")
    print(format_table(
        ["loop", "full/prod-stall", "balanced/active", "empty/active",
         "empty/cons-stall"],
        rows,
    ))
    for row in rows:
        assert abs(sum(row[1:]) - 1.0) < 1e-6
    # Shapes from the figure: the suite mixes producer-limited,
    # balanced, and consumer-limited loops; on average a substantial
    # fraction of cycles has both threads active with data buffered
    # (the decoupling the paper highlights).
    assert averages[1] > 0.3
    assert any(r[1] > 0.3 for r in rows[:-1])   # producer-stalled loops
    assert any(r[4] > 0.3 for r in rows[:-1])   # consumer-stalled loops
    assert any(r[2] > 0.5 for r in rows[:-1])   # well-balanced loops
