"""Fig. 7: the importance of balancing, on the mcf loop's DAG_SCC.

The paper sweeps 2-way cuts of 181.mcf's DAG_SCC and shows per-cut
speedup together with synchronization-array occupancy: balanced cuts
give good speedups with the SA neither full nor empty, while the
unbalanced cut (too much work in the producer) leaves the SA empty,
the consumer stalled, and the speedup gone.  The heuristic's pick is
one of the good cuts.
"""

from __future__ import annotations

from repro.core.partition import enumerate_two_way_partitions
from repro.harness.reporting import format_table
from repro.machine.cmp import simulate

MAX_CUTS = 10


def test_fig7_mcf_partition_sweep(benchmark, suite, full_machine):
    def run():
        base = suite.base_cycles("mcf", full_machine)
        auto = suite.dswp("mcf")
        cuts = enumerate_two_way_partitions(auto.result.dag)
        if len(cuts) > MAX_CUTS:
            step = len(cuts) / MAX_CUTS
            cuts = [cuts[int(i * step)] for i in range(MAX_CUTS)]
        rows = []
        for cut in cuts:
            run_c = suite.dswp_with_partition("mcf", cut)
            sim = simulate(run_c.traces, full_machine)
            occ = sim.occupancy()
            buckets = occ.buckets()
            insts_first = sum(
                len(auto.result.dag.sccs[sid]) for sid in cut.stages[0]
            )
            rows.append([
                f"{sorted(cut.stages[0])}",
                insts_first,
                base / sim.cycles,
                buckets["full_producer_stalled"],
                buckets["balanced_both_active"],
                buckets["empty_both_active"],
                buckets["empty_consumer_stalled"],
            ])
        auto_speedup = base / suite.dswp_sim("mcf", full_machine).cycles
        return rows, auto_speedup

    rows, auto_speedup = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Fig. 7: mcf DAG_SCC 2-way cut sweep (speedup + SA occupancy)")
    print(format_table(
        ["first stage SCCs", "insts", "speedup",
         "full/prod-stall", "balanced", "empty/active", "empty/cons-stall"],
        rows,
    ))
    print(f"heuristic pick speedup: {auto_speedup:.3f}x")
    speedups = [r[2] for r in rows]
    # Shapes: the sweep spans good and bad cuts; the heuristic's pick is
    # competitive with the best cut found.
    assert max(speedups) > 1.0
    assert min(speedups) < max(speedups)
    assert auto_speedup >= 0.95 * max(speedups) or auto_speedup > 1.05
    # The worst cut starves one side: its balanced fraction is lower
    # than the best cut's.
    best = max(rows, key=lambda r: r[2])
    worst = min(rows, key=lambda r: r[2])
    assert worst[4] <= best[4] + 1e-9
