"""Table 1: statistics for the selected loops in the benchmark suite.

Paper columns: Benchmark, Loop Nest, #BBs, Func. Calls, #Instr., #SCCs,
#Flows (Init. / Loop / Final), Ex.%.  The paper reports 3-36 SCCs and
single-digit flow counts per loop; three loops (129.compress, 179.art,
jpegenc) are DOALL.
"""

from __future__ import annotations

from repro.harness.reporting import format_table
from repro.ir.loops import loop_nest_depth
from repro.workloads import TABLE1_WORKLOADS

from benchmarks.conftest import BENCH_SCALE


def collect_row(suite, workload):
    case = suite.case(workload.name)
    run = suite.dswp(workload.name)
    result = run.result
    loop = case.loop
    counts = result.flow_counts()
    return [
        workload.name,
        workload.paper_benchmark,
        loop_nest_depth(case.function, loop),
        len(loop.blocks()),
        sum(1 for i in loop.instructions() if i.is_call),
        len(result.graph.nodes),
        result.num_sccs,
        counts["initial"],
        counts["loop"],
        counts["final"],
        f"{workload.exec_fraction * 100:.0f}%",
    ]


def test_table1_loop_statistics(benchmark, suite):
    rows = benchmark.pedantic(
        lambda: [collect_row(suite, w) for w in TABLE1_WORKLOADS],
        rounds=1, iterations=1,
    )
    print()
    print("Table 1: statistics for the selected loops "
          f"(scale={BENCH_SCALE})")
    print(format_table(
        ["loop", "models", "nest", "BBs", "calls", "instr", "SCCs",
         "init", "loop", "final", "Ex.%"],
        rows,
    ))
    # Shape assertions from the paper: every selected loop has a
    # partitionable (multi-SCC) graph and at least one loop flow.
    for row in rows:
        sccs, loop_flows = row[6], row[8]
        assert sccs > 1
        assert loop_flows >= 1
