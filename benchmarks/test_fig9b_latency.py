"""Fig. 9(b): sensitivity to inter-core communication latency.

The paper re-runs DSWP with produce-side pipeline latencies of 1, 5 and
10 cycles (consume stays 1 cycle) and finds DSWP "not very sensitive to
the communication latency" -- the decoupling buffers absorb it.
"""

from __future__ import annotations

from repro.harness.reporting import format_table, geomean
from repro.machine.config import MachineConfig
from repro.workloads import TABLE1_WORKLOADS

LATENCIES = (1, 5, 10)


def test_fig9b_communication_latency(benchmark, suite, full_machine):
    def run():
        rows = []
        for workload in TABLE1_WORKLOADS:
            name = workload.name
            base = suite.base_cycles(name, full_machine)
            speedups = [
                base / suite.dswp_sim(
                    name, MachineConfig().with_comm_latency(lat)
                ).cycles
                for lat in LATENCIES
            ]
            rows.append([name] + speedups)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    means = [geomean([r[i] for r in rows]) for i in range(1, len(LATENCIES) + 1)]
    rows.append(["GeoMean"] + means)
    print()
    print("Fig. 9(b): DSWP speedup at communication latency 1/5/10 cycles")
    print(format_table(
        ["loop"] + [f"{lat}-cycle" for lat in LATENCIES], rows
    ))
    # Shape: insensitivity -- the geomean moves by well under 5% across
    # a 10x latency range.
    assert means[0] > 1.0
    assert abs(means[-1] - means[0]) / means[0] < 0.05
