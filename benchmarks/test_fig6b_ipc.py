"""Fig. 6(b): baseline IPC versus DSWP per-core IPC.

Paper shape: the baseline averages IPC 1.6 on real Itanium 2 hardware
models; under DSWP the producer core runs at higher IPC than the
consumer core (0.88 vs 0.24 in the paper), and per-core IPC drops
below the baseline because each core executes a loop slice (DSWP
trades ILP for TLP).  IPC excludes the produce/consume instructions,
as in the paper.
"""

from __future__ import annotations

from repro.harness.reporting import format_table
from repro.workloads import TABLE1_WORKLOADS


def test_fig6b_ipc(benchmark, suite, full_machine):
    from repro.machine.cmp import simulate

    def run():
        rows = []
        for workload in TABLE1_WORKLOADS:
            name = workload.name
            base = simulate([suite.baseline(name).trace], full_machine)
            dswp = suite.dswp_sim(name, full_machine)
            ipcs = dswp.ipcs()
            rows.append([name, base.ipc(0), ipcs[0], ipcs[1]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base_avg = sum(r[1] for r in rows) / len(rows)
    prod_avg = sum(r[2] for r in rows) / len(rows)
    cons_avg = sum(r[3] for r in rows) / len(rows)
    rows.append(["Average", base_avg, prod_avg, cons_avg])
    print()
    print("Fig. 6(b): baseline IPC and DSWP per-core IPC "
          "(produce/consume excluded)")
    print(format_table(["loop", "baseline", "producer core",
                        "consumer core"], rows))
    # Shape: each DSWP core executes a slice, so per-core IPC is below
    # the single-thread baseline on average.
    assert prod_avg < base_avg
    assert cons_avg < base_avg
    assert base_avg > 0
