"""Ablation: how well does the static profitability estimate (Fig. 3
line 5-6, Section 2.2.2) predict the measured speedup?

The TPP step prices each candidate partition with profile weights and
static latencies before committing.  This bench collects (estimated,
measured) speedup pairs across every 2-way cut of several loops and
reports the rank correlation: the estimate only has to *order* cuts
correctly for the heuristic to pick well, which is the property the
paper relies on ("as experiments in Section 4 show, [load balance]
generally performs well here").
"""

from __future__ import annotations

from repro.core.estimate import estimate_partition
from repro.core.partition import enumerate_two_way_partitions
from repro.core.splitter import LoopSplitter
from repro.harness.reporting import format_table
from repro.machine.cmp import simulate
from repro.machine.config import static_latency

LOOPS = ("mcf", "wc", "adpcmdec", "epicdec")
MAX_CUTS = 10


def rank_correlation(pairs: list[tuple[float, float]]) -> float:
    """Spearman rank correlation of (estimate, measurement) pairs."""
    n = len(pairs)
    if n < 2:
        return 1.0

    def ranks(values):
        order = sorted(range(n), key=lambda i: values[i])
        out = [0.0] * n
        for rank, idx in enumerate(order):
            out[idx] = float(rank)
        return out

    est = ranks([p[0] for p in pairs])
    mea = ranks([p[1] for p in pairs])
    d2 = sum((a - b) ** 2 for a, b in zip(est, mea))
    return 1 - 6 * d2 / (n * (n * n - 1))


def test_static_estimate_vs_measured(benchmark, suite, full_machine):
    def run():
        rows = []
        for name in LOOPS:
            baseline = suite.baseline(name)
            base_cycles = simulate([baseline.trace], full_machine).cycles
            probe = suite.dswp(name)
            graph, dag = probe.result.graph, probe.result.dag
            loop = suite.case(name).loop
            cuts = enumerate_two_way_partitions(dag)
            if len(cuts) > MAX_CUTS:
                step = len(cuts) / MAX_CUTS
                cuts = [cuts[int(i * step)] for i in range(MAX_CUTS)]
            pairs = []
            for cut in cuts:
                run_c = suite.dswp_with_partition(name, cut)
                measured = base_cycles / simulate(
                    run_c.traces, full_machine
                ).cycles
                splitter = LoopSplitter(
                    suite.case(name).function, loop, graph, cut
                )
                splitter._plan_flows()
                estimate = estimate_partition(
                    cut, dag, graph, baseline.profile, static_latency,
                    splitter.plan,
                )
                pairs.append((estimate.speedup, measured))
            corr = rank_correlation(pairs)
            best_est = max(pairs, key=lambda p: p[0])
            best_mea = max(pairs, key=lambda p: p[1])
            rows.append([name, len(pairs), corr,
                         best_est[1], best_mea[1]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Ablation: static partition estimate vs measured speedup")
    print(format_table(
        ["loop", "cuts", "rank corr",
         "measured @ est-best cut", "measured @ true-best cut"],
        rows,
    ))
    # Shapes: the static estimate ranks cuts usefully (positive
    # correlation on most loops), and picking by the estimate loses
    # only a bounded fraction of the best cut's speedup.
    positive = sum(1 for r in rows if r[2] > 0)
    assert positive >= len(rows) - 1
    for row in rows:
        assert row[3] >= row[4] * 0.8
