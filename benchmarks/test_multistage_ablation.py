"""Ablation: pipeline depth (2 vs 3 stages).

The paper targets a dual-core CMP ("only two threads are created by
the algorithm") but the algorithm itself (Definition 1) supports any
``t``.  This ablation runs the heuristic with a 3-thread budget on the
loops whose DAG_SCC admits a 3-way cut, on a 3-core machine, and
compares against the 2-stage pipeline: deeper pipelines only pay off
when the extra stage removes work from the bottleneck stage, so most
loops should sit near their 2-stage speedup (the pipeline is limited by
its slowest stage either way).
"""

from __future__ import annotations

from repro.harness.reporting import format_table, geomean
from repro.harness.runner import run_dswp
from repro.machine.cmp import simulate
from repro.machine.config import MachineConfig
from repro.workloads import TABLE1_WORKLOADS

THREE_CORES = MachineConfig(num_cores=3)


def test_pipeline_depth_ablation(benchmark, suite, full_machine):
    def run():
        rows = []
        for workload in TABLE1_WORKLOADS:
            name = workload.name
            base = suite.base_cycles(name, full_machine)
            two = base / suite.dswp_sim(name, full_machine).cycles
            deep = run_dswp(suite.case(name), suite.baseline(name), threads=3)
            stages = len(deep.result.partition)
            three = base / simulate(deep.traces, THREE_CORES).cycles
            rows.append([name, two, stages, three])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    two_gm = geomean([r[1] for r in rows])
    three_gm = geomean([r[3] for r in rows])
    rows.append(["GeoMean", two_gm, "-", three_gm])
    print()
    print("Ablation: 2-stage vs 3-stage pipelines (3-stage on 3 cores)")
    print(format_table(
        ["loop", "2-stage speedup", "stages@3", "3-stage speedup"], rows
    ))
    # Shapes: the 3-thread budget never breaks correctness or collapses
    # performance; on average it lands in the same range as 2 stages
    # (the bottleneck stage rules either way).
    assert three_gm > 1.0
    assert three_gm > two_gm * 0.85
