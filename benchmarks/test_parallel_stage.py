"""Extension: parallel-stage DSWP on the consumer-bound loops.

The 2-stage pipeline is capped by its slowest stage.  Fig. 8 identifies
loops whose *producer* stalls on full queues -- i.e. the consumer stage
is the bottleneck.  Where that stage carries no recurrence (or only
reductions), it can be replicated; this is the idea the follow-on
PS-DSWP work develops, built here from this repo's own pieces (the
general unroller deals iterations round-robin onto per-replica queue
sets; inductions are rematerialised per replica; reduction partials are
folded on exit).

Reported per loop: 2-stage DSWP on 2 cores, and 1-producer +
2-replica-consumers on 3 cores.
"""

from __future__ import annotations

from repro.core.parallel_stage import ParallelStageError, parallel_stage_dswp
from repro.harness.reporting import format_table
from repro.interp.multithread import run_threads
from repro.machine.cmp import simulate
from repro.machine.config import MachineConfig
from repro.workloads import TABLE1_WORKLOADS

THREE_CORES = MachineConfig(num_cores=3)


def test_parallel_stage_extension(benchmark, suite, full_machine):
    def run():
        rows = []
        for workload in TABLE1_WORKLOADS:
            name = workload.name
            case = suite.case(name)
            base = suite.base_cycles(name, full_machine)
            two_stage = base / suite.dswp_sim(name, full_machine).cycles
            prod_stall = suite.dswp_sim(name, full_machine).occupancy(
            ).buckets()["full_producer_stalled"]
            try:
                result = parallel_stage_dswp(case.function, case.loop,
                                             replicas=2)
            except ParallelStageError as exc:
                rows.append([name, prod_stall, two_stage,
                             "n/a", str(exc)[:40]])
                continue
            memory = case.fresh_memory()
            mt = run_threads(result.program, memory,
                             initial_regs=case.initial_regs,
                             record_trace=True, max_steps=80_000_000)
            case.checker(memory, mt.main_regs)
            ps = base / simulate(mt.traces(), THREE_CORES).cycles
            rows.append([name, prod_stall, two_stage, ps, ""])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Extension: parallel-stage DSWP (1 producer + 2 consumer "
          "replicas, 3 cores)")
    print(format_table(
        ["loop", "prod-stall frac", "2-stage speedup",
         "parallel-stage speedup", "declined because"],
        rows,
    ))
    applied = [r for r in rows if isinstance(r[3], float)]
    # Shapes: the replicable loops are the DOALL-ish ones; replication
    # pays off dramatically on the loops whose producer stalls on full
    # queues (consumer-bound: compress and equake roughly double), can
    # stay flat where the win is eaten elsewhere (epicdec's divide is
    # branch-limited either way), and never loses badly.
    assert len(applied) >= 4
    consumer_bound = [r for r in applied if r[1] > 0.3]
    assert len(consumer_bound) >= 2
    ratios = [r[3] / r[2] for r in consumer_bound]
    assert max(ratios) > 1.5, "replication should relieve the bottleneck"
    assert sum(1 for x in ratios if x > 1.3) >= 2
    for row in applied:
        assert row[3] > row[2] * 0.8
