"""Fig. 9(a): performance compatibility across issue widths.

Per benchmark, relative to the full-width single-threaded baseline:
half-width single-threaded, half-width DSWP, and full-width DSWP.

Paper shape: half-width single-threaded is a slowdown (~0.93x
geomean); DSWP on half-width cores recovers it to parity or better;
and the *relative* gain of DSWP is larger on the narrower core because
DSWP trades ILP for TLP.
"""

from __future__ import annotations

from repro.harness.reporting import format_table, geomean
from repro.machine.cmp import simulate
from repro.machine.config import FULL_WIDTH_MACHINE, HALF_WIDTH_MACHINE
from repro.workloads import TABLE1_WORKLOADS


def test_fig9a_issue_width_compatibility(benchmark, suite):
    def run():
        rows = []
        for workload in TABLE1_WORKLOADS:
            name = workload.name
            base_full = suite.base_cycles(name, FULL_WIDTH_MACHINE)
            base_half = suite.base_cycles(name, HALF_WIDTH_MACHINE)
            dswp_full = suite.dswp_sim(name, FULL_WIDTH_MACHINE).cycles
            dswp_half = suite.dswp_sim(name, HALF_WIDTH_MACHINE).cycles
            rows.append([
                name,
                base_full / base_half,
                base_full / dswp_half,
                base_full / dswp_full,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    means = [geomean([r[i] for r in rows]) for i in range(1, 4)]
    rows.append(["GeoMean"] + means)
    print()
    print("Fig. 9(a): speedups vs full-width single-threaded baseline")
    print(format_table(
        ["loop", "half-width base", "half-width DSWP", "full-width DSWP"],
        rows,
    ))
    half_base, half_dswp, full_dswp = means
    # Shapes: narrowing the core slows the single-threaded code; DSWP
    # on half-width cores recovers (performance compatibility); and
    # DSWP's relative gain is larger on the narrower core.
    assert half_base < 1.0
    assert half_dswp > half_base
    # Relative DSWP gain on the narrow core is at least comparable to
    # the full-width gain (the paper sees it larger; our latency-bound
    # synthetic loops compress the width effect -- see EXPERIMENTS.md).
    assert half_dswp / half_base > full_dswp * 0.95
