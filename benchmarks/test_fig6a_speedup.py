"""Fig. 6(a): DSWP speedup over single-threaded execution, for the
fully automatic heuristic partition and the best manually directed
partition found by exhaustive 2-way search.

Paper shape: speedups on most loops; geomean +14.4% automatic and
+19.4% best-manual on the loops; the heuristic matches the best found
partition on many benchmarks.
"""

from __future__ import annotations

from repro.core.partition import enumerate_two_way_partitions
from repro.harness.reporting import format_table, geomean, percent
from repro.machine.cmp import simulate
from repro.workloads import TABLE1_WORKLOADS

#: Cap on manually-explored cuts per loop (evenly spaced through the
#: enumeration), mirroring the paper's bounded iterative search.
MAX_CUTS = 12


def best_manual_speedup(suite, name, machine, base_cycles):
    run = suite.dswp(name)
    cuts = enumerate_two_way_partitions(run.result.dag)
    if len(cuts) > MAX_CUTS:
        step = len(cuts) / MAX_CUTS
        cuts = [cuts[int(i * step)] for i in range(MAX_CUTS)]
    best = 0.0
    for cut in cuts:
        manual = suite.dswp_with_partition(name, cut)
        cycles = simulate(manual.traces, machine).cycles
        best = max(best, base_cycles / cycles)
    return best


def test_fig6a_speedup(benchmark, suite, full_machine):
    def run():
        rows = []
        for workload in TABLE1_WORKLOADS:
            name = workload.name
            base = suite.base_cycles(name, full_machine)
            auto = base / suite.dswp_sim(name, full_machine).cycles
            manual = max(
                best_manual_speedup(suite, name, full_machine, base), auto
            )
            rows.append([name, auto, manual, percent(auto), percent(manual)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    autos = [r[1] for r in rows]
    manuals = [r[2] for r in rows]
    rows.append(["GeoMean", geomean(autos), geomean(manuals),
                 percent(geomean(autos)), percent(geomean(manuals))])
    print()
    print("Fig. 6(a): loop speedup over single-threaded baseline")
    print(format_table(
        ["loop", "automatic", "best manual", "auto %", "manual %"], rows
    ))
    # Paper shapes: best-manual dominates automatic; both means positive.
    assert geomean(manuals) >= geomean(autos)
    assert geomean(autos) > 1.0
    # Most loops speed up under the automatic heuristic.
    assert sum(1 for s in autos if s > 1.0) >= 7
