"""Section 5.1 (second half): unrolling as a DSWP enabler on epicdec.

After fixing the memory analysis, the paper applies aggressive (8x)
unrolling and recompiles: the unrolled DSWP version gains another 40%
over the new (also unrolled) baseline, because the extra per-iteration
work gives the partitioner more material to balance and the pipeline
trades ILP for TLP more profitably.

This bench sweeps the unroll factor on epicdec and reports baseline
cycles, SCC count, and DSWP speedup (each DSWP version is compared to
the *equally unrolled* baseline, as in the paper).
"""

from __future__ import annotations

from repro.core.dswp import dswp
from repro.core.unroll import unrolled_loop
from repro.harness.reporting import format_table
from repro.harness.runner import run_baseline, run_dswp
from repro.machine.cmp import simulate
from repro.workloads import EpicWorkload
from repro.workloads.base import WorkloadCase

FACTORS = (1, 2, 4, 8)
SCALE = 800


def unrolled_case(factor: int) -> WorkloadCase:
    case = EpicWorkload().build(scale=SCALE)
    if factor == 1:
        return case
    func, loop = unrolled_loop(case.function, case.loop.header, factor)
    return WorkloadCase(
        f"epicdec-u{factor}", func, loop.header, case.memory,
        case.initial_regs, case.checker,
    )


def test_unrolling_ablation(benchmark, full_machine):
    def run():
        rows = []
        for factor in FACTORS:
            case = unrolled_case(factor)
            baseline = run_baseline(case)
            transformed = run_dswp(case, baseline)
            base_cycles = simulate([baseline.trace], full_machine).cycles
            dswp_cycles = simulate(transformed.traces, full_machine).cycles
            rows.append([
                factor,
                transformed.result.num_sccs,
                base_cycles,
                base_cycles / dswp_cycles,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Section 5.1: epicdec unrolling sweep (DSWP vs equally "
          "unrolled baseline)")
    print(format_table(
        ["unroll factor", "SCCs", "baseline cycles", "DSWP speedup"], rows
    ))
    by_factor = {r[0]: r for r in rows}
    # Shapes: unrolling multiplies the SCC count; DSWP keeps applying
    # and its speedup at 8x is at least as good as at 1x (the paper saw
    # a 40% gain over the unrolled base).
    assert by_factor[8][1] > by_factor[1][1]
    assert all(r[3] > 1.0 for r in rows)
    assert by_factor[8][3] >= by_factor[1][3] * 0.95
