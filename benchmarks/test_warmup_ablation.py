"""Ablation: cold-start vs the paper's warm-structure methodology.

The paper restricts detailed simulation to the loops and fast-forwards
through the rest of the program "while keeping the caches and branch
predictors warm".  Our default measurements start cold, which inflates
absolute cycle counts.  This bench re-runs the Fig. 6(a) speedups with
warmed caches/predictors and shows the *relative* results are robust
to the methodology choice -- the justification for comparing our cold
numbers against the paper's warm ones throughout EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.harness.reporting import format_table, geomean
from repro.machine.cmp import simulate
from repro.workloads import TABLE1_WORKLOADS


def test_warmup_methodology_ablation(benchmark, suite, full_machine):
    def run():
        rows = []
        for workload in TABLE1_WORKLOADS:
            name = workload.name
            base_trace = [suite.baseline(name).trace]
            dswp_traces = suite.dswp(name).traces
            cold = (simulate(base_trace, full_machine).cycles
                    / simulate(dswp_traces, full_machine).cycles)
            warm_base = simulate(base_trace, full_machine, warm=True)
            warm_dswp = simulate(dswp_traces, full_machine, warm=True)
            cold_base_cycles = simulate(base_trace, full_machine).cycles
            rows.append([
                name,
                cold,
                warm_base.cycles / warm_dswp.cycles,
                cold_base_cycles / warm_base.cycles,
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    cold_gm = geomean([r[1] for r in rows])
    warm_gm = geomean([r[2] for r in rows])
    rows.append(["GeoMean", cold_gm, warm_gm, "-"])
    print()
    print("Ablation: cold-start vs warmed caches/predictors "
          "(the paper's fast-forward methodology)")
    print(format_table(
        ["loop", "cold speedup", "warm speedup", "base cold/warm cycles"],
        rows,
    ))
    # Shapes: warming shortens absolute runs (ratio > 1 for loops with
    # reused data) but the DSWP speedup conclusion survives either way.
    assert warm_gm > 1.0
    assert abs(warm_gm - cold_gm) / cold_gm < 0.25
