"""Fig. 1 (motivation): DOACROSS vs DSWP on the linked-list traversal.

DOACROSS routes the pointer-chasing recurrence core-to-core every
iteration, so its critical path is ``Iters x (Latency + Comm Latency)``;
DSWP keeps the recurrence on one core: ``Iters x Latency``.  Sweeping
the communication latency must therefore hurt DOACROSS while leaving
DSWP nearly flat.
"""

from __future__ import annotations

from repro.core.doacross import doacross
from repro.harness.reporting import format_table
from repro.interp.multithread import run_threads
from repro.machine.cmp import simulate
from repro.machine.config import MachineConfig

LATENCIES = (1, 5, 10, 20)
NAME = "listtraverse"


def test_fig1_doacross_vs_dswp(benchmark, suite):
    def run():
        case = suite.case(NAME)
        baseline = suite.baseline(NAME)
        da = doacross(case.function, case.loop, assume_no_carried_memory=True)
        memory = case.fresh_memory()
        mt = run_threads(da.program, memory, initial_regs=case.initial_regs,
                         record_trace=True, max_steps=50_000_000)
        case.checker(memory, {})
        da_traces = mt.traces()
        rows = []
        for lat in LATENCIES:
            machine = MachineConfig().with_comm_latency(lat)
            base = simulate([baseline.trace], machine).cycles
            dswp_c = simulate(suite.dswp(NAME).traces, machine).cycles
            da_c = simulate(da_traces, machine).cycles
            rows.append([lat, base / dswp_c, base / da_c])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("Fig. 1: list-traversal loop, DSWP vs DOACROSS under "
          "communication latency")
    print(format_table(
        ["comm latency", "DSWP speedup", "DOACROSS speedup"], rows
    ))
    dswp_speedups = [r[1] for r in rows]
    doacross_speedups = [r[2] for r in rows]
    # Shapes from the figure: DSWP beats DOACROSS at every latency;
    # DSWP is (nearly) latency-insensitive; DOACROSS degrades
    # monotonically as latency grows.
    for d, a in zip(dswp_speedups, doacross_speedups):
        assert d > a
    assert (max(dswp_speedups) - min(dswp_speedups)) / dswp_speedups[0] < 0.05
    assert doacross_speedups[-1] < doacross_speedups[0]
