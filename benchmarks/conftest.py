"""Shared infrastructure for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index) and prints the same rows
or series the paper reports.  Expensive artefacts -- workload builds,
functional runs, traces -- are cached per session so the figure benches
share them.
"""

from __future__ import annotations

import pytest

from repro.analysis.memdep import AliasModel
from repro.core.partition import Partition
from repro.harness.runner import BaselineRun, DSWPRun, run_baseline, run_dswp
from repro.machine.cmp import simulate
from repro.machine.config import MachineConfig
from repro.workloads import get_workload
from repro.workloads.base import WorkloadCase

#: Problem size used across benches: big enough for stable shapes,
#: small enough that the full harness runs in minutes.
BENCH_SCALE = 800


class BenchSuite:
    """Lazily computed, session-cached experiment artefacts."""

    def __init__(self) -> None:
        self._cases: dict[str, WorkloadCase] = {}
        self._baselines: dict[str, BaselineRun] = {}
        self._dswp: dict[str, DSWPRun] = {}

    def case(self, name: str, scale: int = BENCH_SCALE) -> WorkloadCase:
        key = f"{name}@{scale}"
        if key not in self._cases:
            self._cases[key] = get_workload(name).build(scale=scale)
        return self._cases[key]

    def baseline(self, name: str, scale: int = BENCH_SCALE) -> BaselineRun:
        key = f"{name}@{scale}"
        if key not in self._baselines:
            self._baselines[key] = run_baseline(self.case(name, scale))
        return self._baselines[key]

    def dswp(self, name: str, scale: int = BENCH_SCALE) -> DSWPRun:
        key = f"{name}@{scale}"
        if key not in self._dswp:
            self._dswp[key] = run_dswp(
                self.case(name, scale), self.baseline(name, scale)
            )
        return self._dswp[key]

    def dswp_with_partition(self, name: str, partition: Partition,
                            scale: int = BENCH_SCALE) -> DSWPRun:
        return run_dswp(self.case(name, scale), self.baseline(name, scale),
                        partition=partition)

    def dswp_with_alias(self, name: str, alias: AliasModel,
                        scale: int = BENCH_SCALE) -> DSWPRun:
        return run_dswp(self.case(name, scale), self.baseline(name, scale),
                        alias_model=alias)

    # ------------------------------------------------------------------
    def base_cycles(self, name: str, machine: MachineConfig,
                    scale: int = BENCH_SCALE) -> int:
        return simulate([self.baseline(name, scale).trace], machine).cycles

    def dswp_sim(self, name: str, machine: MachineConfig,
                 scale: int = BENCH_SCALE):
        return simulate(self.dswp(name, scale).traces, machine)


@pytest.fixture(scope="session")
def suite() -> BenchSuite:
    return BenchSuite()


@pytest.fixture(scope="session")
def full_machine() -> MachineConfig:
    return MachineConfig()
