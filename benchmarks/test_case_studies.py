"""Section 5 case studies: how analysis precision and enabling
transformations change DSWP's applicability.

* 5.1 epicdec -- conservative memory analysis collapses the loads and
  stores into one SCC (the paper saw only 4 SCCs); the accurate
  (region+affine) analysis multiplies the SCC count and improves the
  cut.
* 5.2 adpcmdec -- spurious dependences (modelled by conservative
  aliasing) shrink the SCC count and concentrate instructions in one
  giant SCC; removing them raises the count (paper: 4 -> 38, largest
  SCC 94% -> 10% of instructions) and yields the reported speedup.
* 5.3 179.art -- accumulator expansion splits the summing recurrence,
  raising the SCC count and the speedup of both DSWP and the baseline.
* 5.4 164.gzip -- the loop-termination computation is one giant SCC;
  DSWP is not applicable.
"""

from __future__ import annotations

import pytest

from repro.analysis.memdep import AliasMode, AliasModel
from repro.core.dswp import dswp
from repro.harness.reporting import format_table
from repro.harness.runner import run_baseline, run_dswp
from repro.machine.cmp import simulate
from repro.workloads import ArtWorkload, GzipWorkload


def loop_speedup(suite, machine, name, alias=None):
    base = suite.base_cycles(name, machine)
    if alias is None:
        sim = suite.dswp_sim(name, machine)
    else:
        run = suite.dswp_with_alias(name, alias)
        sim = simulate(run.traces, machine)
    return base / sim.cycles


class TestEpicdec:
    def test_memory_analysis_precision(self, benchmark, suite, full_machine):
        def run():
            conservative = suite.dswp_with_alias(
                "epicdec", AliasModel(AliasMode.CONSERVATIVE)
            )
            accurate = suite.dswp("epicdec")
            base = suite.base_cycles("epicdec", full_machine)
            return {
                "cons_sccs": conservative.result.num_sccs,
                "acc_sccs": accurate.result.num_sccs,
                "cons_speedup": base / simulate(
                    conservative.traces, full_machine).cycles,
                "acc_speedup": base / simulate(
                    accurate.traces, full_machine).cycles,
            }

        stats = benchmark.pedantic(run, rounds=1, iterations=1)
        print()
        print("Case study 5.1 (epicdec): memory-analysis precision")
        print(format_table(
            ["analysis", "SCCs", "loop speedup"],
            [["conservative", stats["cons_sccs"], stats["cons_speedup"]],
             ["region+affine", stats["acc_sccs"], stats["acc_speedup"]]],
        ))
        # Paper shape: conservative analysis leaves few SCCs (all memory
        # ops in one); accurate analysis multiplies them and DSWP still
        # applies in both.
        assert stats["cons_sccs"] < stats["acc_sccs"]
        assert stats["acc_speedup"] >= stats["cons_speedup"] * 0.95


class TestAdpcmdec:
    def test_spurious_dependences(self, benchmark, suite, full_machine):
        def run():
            case = suite.case("adpcmdec")
            spurious = dswp(case.function, case.loop,
                            alias_model=AliasModel(AliasMode.CONSERVATIVE),
                            require_profitable=False)
            clean = suite.dswp("adpcmdec").result
            largest_spurious = max(len(s) for s in spurious.dag.sccs)
            largest_clean = max(len(s) for s in clean.dag.sccs)
            return (spurious.num_sccs, largest_spurious / len(spurious.graph.nodes),
                    clean.num_sccs, largest_clean / len(clean.graph.nodes))

        spur_n, spur_frac, clean_n, clean_frac = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        print()
        print("Case study 5.2 (adpcmdec): spurious dependences")
        print(format_table(
            ["dependence info", "SCCs", "largest SCC (frac of instrs)"],
            [["spurious (conservative)", spur_n, spur_frac],
             ["precise", clean_n, clean_frac]],
        ))
        # Paper shape: removing spurious dependences raises the SCC
        # count and shrinks the largest SCC's share of instructions.
        assert clean_n > spur_n
        assert clean_frac < spur_frac


class TestArt:
    def test_accumulator_expansion(self, benchmark, full_machine):
        def run():
            rows = []
            for workload in (ArtWorkload(), ArtWorkload(expanded=True)):
                case = workload.build(scale=800)
                baseline = run_baseline(case)
                transformed = run_dswp(case, baseline)
                base_c = simulate([baseline.trace], full_machine).cycles
                dswp_c = simulate(transformed.traces, full_machine).cycles
                rows.append([workload.name, transformed.result.num_sccs,
                             base_c, base_c / dswp_c])
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print()
        print("Case study 5.3 (179.art): accumulator expansion")
        print(format_table(
            ["variant", "SCCs", "baseline cycles", "DSWP speedup"], rows
        ))
        plain, expanded = rows
        # Paper shape: expansion raises the SCC count and helps the
        # baseline too (better scheduling of independent accumulators).
        assert expanded[1] > plain[1]
        assert expanded[2] <= plain[2] * 1.05


class TestGzip:
    def test_single_scc_declines(self, benchmark):
        def run():
            case = GzipWorkload().build(scale=512)
            return dswp(case.function, case.loop, require_profitable=False)

        result = benchmark.pedantic(run, rounds=1, iterations=1)
        print()
        print("Case study 5.4 (164.gzip): serialised termination condition")
        print(f"  SCCs: {result.num_sccs}; applied: {result.applied}; "
              f"reason: {result.reason}")
        assert not result.applied
        assert result.num_sccs == 1
