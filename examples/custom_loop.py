#!/usr/bin/env python3
"""Bring your own loop: build IR with the builder (or parse it from
text), run DSWP on it, and inspect every stage of the pipeline
construction -- the dependence graph, the SCCs, the partition, and the
transformed threads.

Run:  python examples/custom_loop.py
"""

from repro.analysis import build_dependence_graph
from repro.core import dswp
from repro.interp import Memory, run_function, run_threads
from repro.ir import parse_function, render_function, find_loops, parse_register

SOURCE = """\
func histogram entry=entry
entry:
    mov r4 = 0
    jmp header
header:
    cmp.ge p0 = r0, r1
    br p0, exit, body
body:
    add r5 = r2, r0
    load r6 = [r5 + 0] !input
    and r6 = r6, 15
    add r7 = r3, r6
    load r8 = [r7 + 0] !bins
    add r8 = r8, 1
    store [r7 + 0] = r8 !bins
    add r4 = r4, 1
    add r0 = r0, 1
    jmp header
exit:
    store [r3 + 100] = r4 !bins
    ret
"""


def main() -> None:
    func = parse_function(SOURCE)
    loop = find_loops(func)[0]
    print(f"parsed {func.name}; loop header = {loop.header}\n")

    # Inspect the dependence graph the way the DSWP pass sees it.
    graph = build_dependence_graph(func, loop)
    dag = graph.dag_scc()
    print(f"{len(graph.nodes)} PDG nodes, {len(graph.arcs)} arcs, "
          f"{len(dag)} SCCs:")
    for sid, members in enumerate(dag.sccs):
        print(f"  SCC {sid}: {[m.render() for m in members]}")
    print()

    result = dswp(func, loop, require_profitable=False)
    print(f"partition: {result.partition}")
    print(f"flows: {result.flow_counts()}\n")
    for thread in result.program.threads:
        print(render_function(thread))

    # Execute both versions on the same input and compare.
    n = 64
    r0, r1, r2, r3 = (parse_register(f"r{i}") for i in range(4))
    memory = Memory()
    data = [(i * 7 + 3) % 251 for i in range(n)]
    in_base = memory.store_array(data)
    bins_base = memory.alloc(128)
    initial = {r0: 0, r1: n, r2: in_base, r3: bins_base}

    seq = run_function(func, memory.clone(), initial_regs=initial)
    par = run_threads(result.program, memory.clone(), initial_regs=initial)
    assert seq.memory.snapshot() == par.memory.snapshot()
    histogram = par.memory.load_array(bins_base, 16)
    print(f"histogram (both versions agree): {histogram}")
    print(f"count: {par.memory.read(bins_base + 100)}")


if __name__ == "__main__":
    main()
