#!/usr/bin/env python3
"""Run the whole Table-1 suite end to end and print a Fig. 6-style summary.

For every workload: build, profile, DSWP, check correctness, simulate
baseline and pipeline, and report loop/program speedups and per-core
IPC.

Run:  python examples/benchmark_suite.py [scale]
"""

import sys

from repro.harness import format_table, geomean, percent, run_experiment
from repro.workloads import TABLE1_WORKLOADS


def main(scale: int = 800) -> None:
    rows = []
    for workload in TABLE1_WORKLOADS:
        result = run_experiment(workload, scale=scale)
        ipcs = result.dswp_sim.ipcs()
        rows.append([
            workload.name,
            result.dswp_result.num_sccs,
            result.base_sim.cycles,
            result.dswp_sim.cycles,
            result.loop_speedup,
            result.program_speedup,
            f"{ipcs[0]:.2f}/{ipcs[1]:.2f}",
        ])
        print(f"  {workload.name}: checked OK, "
              f"{percent(result.loop_speedup)} on the loop")
    loop_gm = geomean([r[4] for r in rows])
    prog_gm = geomean([r[5] for r in rows])
    print()
    print(format_table(
        ["loop", "SCCs", "base cycles", "DSWP cycles", "loop speedup",
         "program speedup", "IPC p/c"],
        rows,
    ))
    print(f"\ngeomean loop speedup:    {loop_gm:.3f}x ({percent(loop_gm)})")
    print(f"geomean program speedup: {prog_gm:.3f}x ({percent(prog_gm)})")
    print("(paper: +14.4% loops automatic, +6.6% whole program)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 800)
