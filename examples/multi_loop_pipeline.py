#!/usr/bin/env python3
"""Whole-program DSWP: two loops sharing one auxiliary thread (§3).

The paper's runtime creates the auxiliary thread once; the main thread
announces each optimised loop on a *master queue* before entering it
and sends a terminate signal at program exit.  This example builds a
program with two pipelineable loops (an image-scaling pass followed by
a checksum pass), transforms both with `dswp_program`, and shows the
master-queue protocol in the generated auxiliary thread.

Run:  python examples/multi_loop_pipeline.py
"""

from repro.core import dswp_program
from repro.interp import Memory, run_function, run_threads
from repro.ir import IRBuilder, render_function
from repro.machine import FULL_WIDTH_MACHINE, simulate, speedup


def build_program(n):
    b = IRBuilder("two_pass_filter")
    r_i, r_n, r_img, r_v, r_addr = (b.reg() for _ in range(5))
    r_j, r_acc, r_out, r_t = (b.reg() for _ in range(4))
    p1, p2 = b.pred(), b.pred()
    affine = {"affine": True, "affine_base": "img"}

    b.block("entry", entry=True)
    b.mov(r_i, imm=0)
    b.jmp("scale_loop")
    b.block("scale_loop")                 # pass 1: img[i] = img[i]*5+3
    b.cmp_ge(p1, r_i, r_n)
    b.br(p1, "between", "scale_body")
    b.block("scale_body")
    b.add(r_addr, r_img, r_i)
    b.load(r_v, r_addr, offset=0, region="img", attrs=dict(affine))
    b.mul(r_v, r_v, imm=5)
    b.add(r_v, r_v, imm=3)
    b.and_(r_v, r_v, imm=0xFFFF)
    b.store(r_v, r_addr, offset=0, region="img", attrs=dict(affine))
    b.add(r_i, r_i, imm=1)
    b.jmp("scale_loop")
    b.block("between")
    b.mov(r_j, imm=0)
    b.mov(r_acc, imm=0)
    b.jmp("sum_loop")
    b.block("sum_loop")                   # pass 2: checksum
    b.cmp_ge(p2, r_j, r_n)
    b.br(p2, "exit", "sum_body")
    b.block("sum_body")
    b.add(r_addr, r_img, r_j)
    b.load(r_v, r_addr, offset=0, region="img", attrs=dict(affine))
    b.shl(r_t, r_acc, imm=1)
    b.xor(r_acc, r_t, r_v)
    b.and_(r_acc, r_acc, imm=0xFFFFFF)
    b.add(r_j, r_j, imm=1)
    b.jmp("sum_loop")
    b.block("exit")
    b.store(r_acc, r_out, offset=0, region="checksum")
    b.ret()
    func = b.done()
    return func, {"n": r_n, "img": r_img, "out": r_out}


def main(n: int = 2000) -> None:
    func, regs = build_program(n)
    memory = Memory()
    img = memory.store_array([(i * 17 + 9) % 4096 for i in range(n)])
    out = memory.alloc(1)
    initial = {regs["n"]: n, regs["img"]: img, regs["out"]: out}

    result = dswp_program(func, ["scale_loop", "sum_loop"])
    print(f"transformed {len(result.applied_loops)} loops; "
          f"master queues: {result.master_queues}\n")
    aux = result.program.threads[1]
    print("auxiliary thread (dispatch loop + per-loop sections):\n")
    print(render_function(aux))

    seq = run_function(func, memory.clone(), initial_regs=initial,
                       record_trace=True)
    par = run_threads(result.program, memory.clone(), initial_regs=initial,
                      record_trace=True)
    assert seq.memory.snapshot() == par.memory.snapshot()
    print(f"\nchecksum (both versions): {par.memory.read(out):#x}")

    base_sim = simulate([seq.trace], FULL_WIDTH_MACHINE)
    dswp_sim = simulate(par.traces(), FULL_WIDTH_MACHINE)
    print(f"whole program: {base_sim.cycles} -> {dswp_sim.cycles} cycles "
          f"({speedup(base_sim, dswp_sim):.3f}x) with one auxiliary thread "
          f"serving both loops")


if __name__ == "__main__":
    import sys
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
