#!/usr/bin/env python3
"""Section 5.4 in action: speculating past the loop-termination SCC.

gzip's deflate_fast-style loops defeat DSWP -- the termination
condition's computation serialises the whole iteration into one SCC.
This example shows the paper's proposed fix working: the producer core
runs the (side-effect-free) hash recurrence ahead of termination
detection, bounded by a credit window, while the consumer core probes
the match table, detects termination, and emits the output.

Run:  python examples/speculative_gzip.py
"""

from repro.core import dswp, speculative_dswp
from repro.harness import format_table, run_baseline
from repro.interp import run_threads
from repro.ir import render_function
from repro.machine import FULL_WIDTH_MACHINE, simulate
from repro.workloads import GzipMatchWorkload


def main(scale: int = 1000) -> None:
    case = GzipMatchWorkload().build(scale=scale)
    baseline = run_baseline(case)
    base = simulate([baseline.trace], FULL_WIDTH_MACHINE).cycles

    plain = dswp(case.function, case.loop, require_profitable=False)
    largest = max(len(s) for s in plain.dag.sccs)
    print(f"plain DSWP: {plain.num_sccs} SCCs, but the largest holds "
          f"{largest}/{len(plain.graph.nodes)} instructions "
          f"(the termination recurrence)")
    mt = run_threads(plain.program, case.fresh_memory(),
                     initial_regs=case.initial_regs, record_trace=True)
    plain_cycles = simulate(mt.traces(), FULL_WIDTH_MACHINE).cycles
    print(f"plain DSWP speedup: {base / plain_cycles:.3f}x "
          "(nothing to balance)\n")

    result = speculative_dswp(case.function, case.loop, window=8)
    print(f"speculated branches: "
          f"{[b.render() for b in result.speculated_branches]}")
    print("speculative producer thread:\n")
    print(render_function(result.program.threads[1]))

    rows = []
    for window in (1, 2, 4, 8, 16):
        spec = speculative_dswp(case.function, case.loop, window=window)
        memory = case.fresh_memory()
        mt = run_threads(spec.program, memory,
                         initial_regs=case.initial_regs, record_trace=True)
        case.checker(memory, mt.main_regs)
        cycles = simulate(mt.traces(), FULL_WIDTH_MACHINE).cycles
        rows.append([window, cycles, base / cycles])
    print(format_table(
        ["credit window", "cycles", "speedup over baseline"], rows
    ))
    print("\nbounded speculation turns the un-pipelineable loop into a "
          "real pipeline (all outputs verified against the sequential "
          "run).")


if __name__ == "__main__":
    import sys
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1000)
