#!/usr/bin/env python3
"""Quickstart: DSWP a linked-list traversal and measure the speedup.

Builds the paper's Fig. 1 motivating loop, runs the DSWP pass, checks
that the two-thread pipeline computes the same answer as the original
loop, and compares cycles on the dual-core CMP model.

Run:  python examples/quickstart.py
"""

from repro.core import dswp
from repro.harness import percent, run_baseline
from repro.interp import run_threads
from repro.ir import render_function
from repro.machine import FULL_WIDTH_MACHINE, simulate, speedup
from repro.workloads import get_workload


def main(scale: int = 1000) -> None:
    # 1. A workload: IR function + input memory + correctness oracle.
    workload = get_workload("listtraverse")
    case = workload.build(scale=scale)
    print(f"Loop under optimisation ({workload.paper_benchmark}):\n")
    print(render_function(case.function))

    # 2. Run the original single-threaded loop (also profiles it).
    baseline = run_baseline(case)

    # 3. Apply DSWP: dependence graph -> SCCs -> partition -> split.
    result = dswp(case.function, case.loop, profile=baseline.profile,
                  require_profitable=False)
    print(f"DSWP: {result.num_sccs} SCCs, "
          f"{len(result.partition)} pipeline stages, "
          f"flows = {result.flow_counts()}\n")
    for thread in result.program.threads:
        print(render_function(thread))

    # 4. Execute the thread pipeline; the oracle must still hold.
    memory = case.fresh_memory()
    mt = run_threads(result.program, memory, initial_regs=case.initial_regs,
                     record_trace=True)
    case.checker(memory, mt.main_regs)
    print("functional check: transformed pipeline matches the original\n")

    # 5. Compare timing on the dual-core Itanium-2-like CMP model.
    base_sim = simulate([baseline.trace], FULL_WIDTH_MACHINE)
    dswp_sim = simulate(mt.traces(), FULL_WIDTH_MACHINE)
    gain = speedup(base_sim, dswp_sim)
    print(f"baseline: {base_sim.cycles} cycles  "
          f"(IPC {base_sim.ipc(0):.2f})")
    print(f"DSWP:     {dswp_sim.cycles} cycles  "
          f"(per-core IPC {[f'{v:.2f}' for v in dswp_sim.ipcs()]})")
    print(f"loop speedup: {gain:.3f}x ({percent(gain)})")


if __name__ == "__main__":
    import sys
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1000)
