#!/usr/bin/env python3
"""Fig. 7 in action: explore every 2-way cut of a loop's DAG_SCC.

Reproduces the paper's balancing study on the mcf-style loop: for each
valid pipeline cut, print the cut, its loop speedup, and how the
synchronization array spent its cycles (producer stalled on full
queues, both threads active, or consumer stalled on empty queues).

Run:  python examples/partition_explorer.py [workload]
"""

import sys

from repro.core import enumerate_two_way_partitions
from repro.harness import format_table, run_baseline, run_dswp
from repro.machine import FULL_WIDTH_MACHINE, simulate
from repro.workloads import get_workload


def main(name: str = "mcf", scale: int = 800) -> None:
    case = get_workload(name).build(scale=scale)
    baseline = run_baseline(case)
    base_cycles = simulate([baseline.trace], FULL_WIDTH_MACHINE).cycles

    auto = run_dswp(case, baseline)
    dag = auto.result.dag
    print(f"{name}: DAG_SCC has {len(dag)} SCCs "
          f"(sizes {[len(s) for s in dag.sccs]})\n")

    rows = []
    for cut in enumerate_two_way_partitions(dag, limit=32):
        run = run_dswp(case, baseline, partition=cut)
        sim = simulate(run.traces, FULL_WIDTH_MACHINE)
        buckets = sim.occupancy().buckets()
        first_insts = sum(len(dag.sccs[s]) for s in cut.stages[0])
        rows.append([
            str(sorted(cut.stages[0])),
            first_insts,
            base_cycles / sim.cycles,
            buckets["full_producer_stalled"],
            buckets["balanced_both_active"] + buckets["empty_both_active"],
            buckets["empty_consumer_stalled"],
        ])
    print(format_table(
        ["stage-0 SCCs", "insts", "speedup", "prod stalled",
         "both active", "cons stalled"],
        rows,
    ))
    auto_sim = simulate(auto.traces, FULL_WIDTH_MACHINE)
    best = max(r[2] for r in rows)
    print(f"\nheuristic pick: {sorted(auto.result.partition.stages[0])} -> "
          f"{base_cycles / auto_sim.cycles:.3f}x (best cut found: {best:.3f}x)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mcf",
         int(sys.argv[2]) if len(sys.argv) > 2 else 800)
