#!/usr/bin/env python3
"""Fig. 1 in action: DOACROSS vs DSWP under communication latency.

Transforms the same pointer-chasing loop both ways and sweeps the
inter-core communication latency.  DOACROSS forwards the loop-carried
pointer core-to-core every iteration, so its critical path is
``Iters x (Latency + Comm)``; DSWP keeps the recurrence on one core.

Run:  python examples/doacross_vs_dswp.py
"""

from repro.core import doacross, dswp
from repro.harness import format_table, run_baseline
from repro.interp import run_threads
from repro.machine import MachineConfig, simulate
from repro.workloads import get_workload

LATENCIES = (1, 2, 5, 10, 20)


def main(scale: int = 1000) -> None:
    case = get_workload("listtraverse").build(scale=scale)
    baseline = run_baseline(case)

    dswp_result = dswp(case.function, case.loop, profile=baseline.profile,
                       require_profitable=False)
    dswp_mem = case.fresh_memory()
    dswp_mt = run_threads(dswp_result.program, dswp_mem,
                          initial_regs=case.initial_regs, record_trace=True)
    case.checker(dswp_mem, dswp_mt.main_regs)

    da_result = doacross(case.function, case.loop)
    da_mem = case.fresh_memory()
    da_mt = run_threads(da_result.program, da_mem,
                        initial_regs=case.initial_regs, record_trace=True)
    case.checker(da_mem, da_mt.main_regs)
    print(f"DOACROSS forwards {len(da_result.carried)} loop-carried "
          f"register(s) per iteration: {da_result.carried}\n")

    rows = []
    for latency in LATENCIES:
        machine = MachineConfig().with_comm_latency(latency)
        base = simulate([baseline.trace], machine).cycles
        dswp_cycles = simulate(dswp_mt.traces(), machine).cycles
        da_cycles = simulate(da_mt.traces(), machine).cycles
        rows.append([latency, base / dswp_cycles, base / da_cycles])
    print(format_table(
        ["comm latency (cycles)", "DSWP speedup", "DOACROSS speedup"], rows
    ))
    print("\nDSWP stays flat; DOACROSS pays the latency every iteration.")


if __name__ == "__main__":
    import sys
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1000)
