#!/usr/bin/env python3
"""One loop, four parallelization strategies.

Runs the compress-style DOALL loop through everything this library can
throw at it -- DOACROSS-style thinking doesn't apply (no single carried
chain to bounce), so the contenders are:

* 2-stage DSWP (the paper's transform, 2 cores);
* 3-stage DSWP (deeper pipeline, 3 cores);
* parallel-stage DSWP (1 producer + 2 consumer replicas, 3 cores);
* DOALL (independent interleaved iterations, 2 and 3 cores).

Every variant is executed functionally and checked against the
workload's oracle before it is timed.

Run:  python examples/scaling_out.py [workload] [scale]
"""

import sys

from repro.core import doall, dswp, parallel_stage_dswp
from repro.harness import format_table, run_baseline
from repro.interp import run_threads
from repro.machine import MachineConfig, simulate
from repro.workloads import get_workload


def measure(case, program, cores):
    memory = case.fresh_memory()
    mt = run_threads(program, memory, initial_regs=case.initial_regs,
                     record_trace=True, max_steps=80_000_000)
    case.checker(memory, mt.main_regs)
    machine = MachineConfig(num_cores=max(cores, len(program)))
    return simulate(mt.traces(), machine).cycles


def main(name: str = "compress", scale: int = 800) -> None:
    case = get_workload(name).build(scale=scale)
    baseline = run_baseline(case)
    base = simulate([baseline.trace], MachineConfig()).cycles
    rows = [["single-threaded", 1, base, 1.0]]

    two = dswp(case.function, case.loop, profile=baseline.profile,
               require_profitable=False)
    rows.append(["DSWP (2 stages)", 2, c := measure(case, two.program, 2),
                 base / c])

    three = dswp(case.function, case.loop, threads=3,
                 profile=baseline.profile, require_profitable=False)
    if three.applied and len(three.program) == 3:
        rows.append(["DSWP (3 stages)", 3,
                     c := measure(case, three.program, 3), base / c])

    ps = parallel_stage_dswp(case.function, case.loop, replicas=2,
                             profile=baseline.profile)
    rows.append(["parallel-stage DSWP (1+2)", 3,
                 c := measure(case, ps.program, 3), base / c])

    for threads in (2, 3):
        da = doall(case.function, case.loop, threads=threads)
        rows.append([f"DOALL ({threads} threads)", threads,
                     c := measure(case, da.program, threads), base / c])

    print(f"{name} (scale {scale}): all variants verified against the "
          "oracle\n")
    print(format_table(["strategy", "cores", "cycles", "speedup"], rows))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "compress",
         int(sys.argv[2]) if len(sys.argv) > 2 else 800)
