PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test fuzz-smoke perf-smoke robustness-smoke obs-smoke parallel-smoke batch-smoke chaos-smoke serve-smoke incr-smoke fuzz fuzz-sensitivity bench bench-sweeps

# The default tier-1 run includes every smoke tier below (they all live
# under tests/), parallel-smoke among them.
test:
	$(PYTHON) -m pytest -x -q

# CI umbrella: tier-1 plus a focused re-run of the perf-critical smoke
# tiers.  The focused tiers repeat a subset of tier-1 on purpose -- a
# marker-filter regression (a tier silently collecting zero tests)
# shows up here as an empty run, not as green CI.  batch-smoke carries
# the vectorized-replay differential campaign and its overhead guard;
# chaos-smoke injects faults into the pool and proves bit-identity.
check: test perf-smoke batch-smoke parallel-smoke chaos-smoke serve-smoke incr-smoke

fuzz-smoke:
	$(PYTHON) -m pytest -q -m fuzz_smoke

# Differential guardrails for the performance layer: predecoded
# interpreter, columnar traces and event-driven timing model vs the
# preserved reference implementations (docs/PERFORMANCE.md).
perf-smoke:
	$(PYTHON) -m pytest -q -m perf_smoke

# Supervised-execution guardrails: machine-level fault matrix,
# deadlock forensics, graceful degradation (docs/ROBUSTNESS.md).
robustness-smoke:
	$(PYTHON) -m pytest -q -m robustness_smoke

# Observability guardrails: Chrome-trace schema round-trip, disabled
# observers change nothing (docs/OBSERVABILITY.md).
obs-smoke:
	$(PYTHON) -m pytest -q -m obs_smoke

# Execution-fabric guardrails: worker-pool parity and crash recovery,
# shared-memory transport round-trip and leak checks, scheduler and
# cost-model properties (docs/PERFORMANCE.md).
parallel-smoke:
	$(PYTHON) -m pytest -q -m parallel_smoke

# Batched-simulation guardrails: BatchedSimulator vs the per-config
# oracle on fuzz loops and randomized config batches, frozen-sweep
# golden regression, bench refusal on divergence (docs/PERFORMANCE.md).
batch-smoke:
	$(PYTHON) -m pytest -q -m batch_smoke

# Chaos-engineering guardrails: seeded fault injection into the worker
# pool (kill/hang/flake/corrupt), the differential bit-identity
# campaign, journal/resume integrity (docs/CHAOS.md).
chaos-smoke:
	$(PYTHON) -m pytest -q -m chaos_smoke

# Service-daemon guardrails: a real `repro serve` subprocess serving a
# mixed campaign -- request coalescing, bit-identity against in-process
# runs, per-tenant quota refusals, graceful SIGTERM drain
# (docs/SERVICE.md).
serve-smoke:
	$(PYTHON) -m pytest -q -m serve_smoke

# Incremental-DAG guardrails: cold/warm/machine-edit sweeps against
# one artifact store -- a warm re-run schedules zero stages and stays
# bit-identical, a simulator edit re-simulates cached traces without
# re-interpreting (docs/INCREMENTAL.md).
incr-smoke:
	$(PYTHON) -m pytest -q -m incr_smoke

# Longer differential campaign (not part of CI); override knobs like
#   make fuzz FUZZ_SEED=7 FUZZ_ITERATIONS=2000
FUZZ_SEED ?= 0
FUZZ_ITERATIONS ?= 500
FUZZ_OUT ?= fuzz-reproducers

fuzz:
	$(PYTHON) -m repro fuzz --seed $(FUZZ_SEED) \
		--iterations $(FUZZ_ITERATIONS) --out $(FUZZ_OUT)

# Prove the oracle catches every injectable splitter bug.
fuzz-sensitivity:
	@set -e; for fault in drop-dep-arc drop-produce drop-consume \
		cross-queues drop-initial-flow; do \
		$(PYTHON) -m repro fuzz --seed 1 --iterations 25 \
			--inject $$fault --max-failures 1; \
	done

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Parallel Fig. 9 sweeps with the naive-vs-optimized wall-clock and
# functional-identity report (BENCH_<figure>.json).
BENCH_SCALE ?= 800
BENCH_OUT ?= .

bench-sweeps:
	$(PYTHON) -m repro bench --scale $(BENCH_SCALE) --out $(BENCH_OUT)
