PYTHON ?= python
export PYTHONPATH := src

.PHONY: test fuzz-smoke fuzz fuzz-sensitivity bench

test:
	$(PYTHON) -m pytest -x -q

fuzz-smoke:
	$(PYTHON) -m pytest -q -m fuzz_smoke

# Longer differential campaign (not part of CI); override knobs like
#   make fuzz FUZZ_SEED=7 FUZZ_ITERATIONS=2000
FUZZ_SEED ?= 0
FUZZ_ITERATIONS ?= 500
FUZZ_OUT ?= fuzz-reproducers

fuzz:
	$(PYTHON) -m repro fuzz --seed $(FUZZ_SEED) \
		--iterations $(FUZZ_ITERATIONS) --out $(FUZZ_OUT)

# Prove the oracle catches every injectable splitter bug.
fuzz-sensitivity:
	@set -e; for fault in drop-dep-arc drop-produce drop-consume \
		cross-queues drop-initial-flow; do \
		$(PYTHON) -m repro fuzz --seed 1 --iterations 25 \
			--inject $$fault --max-failures 1; \
	done

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s
