"""Chaos engineering for the execution fabric (see docs/CHAOS.md).

Seeded, deterministic fault injection against the worker pool: kill or
hang a worker mid-task, slow a task, fail it transiently, corrupt a
shared-memory result segment or a disk-cache entry -- and prove the
fabric's recovery paths keep results bit-identical.
"""

from repro.chaos.plan import (
    ChaosAction,
    ChaosPlan,
    DEFAULT_RATES,
    RANDOM_KINDS,
)

__all__ = [
    "ChaosAction",
    "ChaosPlan",
    "DEFAULT_RATES",
    "RANDOM_KINDS",
]
