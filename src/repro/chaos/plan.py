"""Deterministic fault injection for the parallel execution fabric.

A :class:`ChaosPlan` decides, per *(task id, dispatch index)*, whether
a worker should sabotage itself before or after running the task.  The
pool stays chaos-agnostic: workers simply ask the plan for an action
and apply it (see ``_worker_main`` in :mod:`repro.parallel.pool`), and
every decision is a pure function of the plan's seed and the task id
-- no RNG state, no wall clock -- so a chaos schedule replays
identically across runs, workers and platforms.

Fault matrix (``docs/CHAOS.md`` has the prose version):

=================== ==================================== =================
kind                worker behaviour                     recovery path
=================== ==================================== =================
``kill``            ``os._exit`` before running the task crash retry
``kill-after-encode`` ``os._exit`` after encoding the    crash retry +
                    result (segments allocated, never    shutdown sweep
                    reported)
``hang``            sleep ``hang_seconds`` before the    deadline reap
                    task
``slow``            sleep ``slow_seconds`` before the    none needed
                    task (within deadline)
``flaky``           raise :class:`TransientTaskError`    backoff retry
                    on the first ``flaky_failures``
                    dispatches
``shm-corrupt``     scribble over the result's shared-   decode-failure
                    memory segments after encoding       backoff retry
``cache-corrupt``   scribble over one on-disk            corrupt-is-a-miss
                    ``ExperimentCache`` entry            eviction
=================== ==================================== =================

Destructive kinds fire only on a task's *first* dispatch (``flaky`` on
the first ``flaky_failures`` dispatches, which the plan clamps below
the pool's retry budget), so every task eventually succeeds and the
differential invariant -- chaos run bit-identical to the clean run
modulo degradation accounting -- is well defined.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.parallel.pool import TransientTaskError
from repro.parallel.shm import corrupt_segment, wire_segment_names

#: Band order for seeded plans: stable across runs by construction.
RANDOM_KINDS = ("kill", "hang", "slow", "flaky", "shm-corrupt",
                "cache-corrupt")

#: Default per-kind probability bands for :meth:`ChaosPlan.random`.
DEFAULT_RATES = {
    "kill": 0.08,
    "hang": 0.08,
    "slow": 0.10,
    "flaky": 0.10,
    "shm-corrupt": 0.08,
    "cache-corrupt": 0.06,
}

#: Transient retries the pool allows by default; seeded plans keep
#: ``flaky_failures`` strictly below this so flaky tasks always recover
#: without the driver fallback.
POOL_RETRY_BUDGET = 3


def _fraction(seed: int, task_id: str) -> float:
    """Deterministic uniform-ish fraction in [0, 1) for a task."""
    digest = hashlib.sha256(f"{seed}:{task_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


@dataclass
class ChaosAction:
    """One fault a worker applies to one task attempt.

    ``apply_before`` runs ahead of the task function, ``apply_after``
    on the encoded wire value; both execute *inside the worker
    process*, so the driver only ever observes the fault's symptoms.
    """

    kind: str
    #: Sleep length for ``hang`` / ``slow``.
    seconds: float = 0.0
    #: How many dispatches ``flaky`` poisons (1 for every other kind).
    attempts: int = 1
    #: Disk-cache directory targeted by ``cache-corrupt``.
    cache_dir: Optional[str] = None

    def applies(self, dispatch: int) -> bool:
        limit = self.attempts if self.kind == "flaky" else 1
        return dispatch <= limit

    def apply_before(self) -> None:
        if self.kind == "kill":
            os._exit(137)
        elif self.kind in ("hang", "slow"):
            time.sleep(self.seconds)
        elif self.kind == "flaky":
            raise TransientTaskError(
                f"chaos: injected transient failure ({self.kind})")
        elif self.kind == "cache-corrupt":
            self._corrupt_cache_entry()

    def apply_after(self, wire) -> None:
        if self.kind == "shm-corrupt":
            for name in wire_segment_names(wire):
                corrupt_segment(name)
        elif self.kind == "kill-after-encode":
            os._exit(137)

    def _corrupt_cache_entry(self) -> None:
        """Scribble over one on-disk cache entry (chosen by the same
        hash that selected this action, for reproducibility given the
        same directory contents).  The cache's corrupt-is-a-miss policy
        evicts it and recomputes -- results must not change."""
        if not self.cache_dir:
            return
        try:
            entries = sorted(name for name in os.listdir(self.cache_dir)
                             if name.endswith(".pkl"))
        except OSError:
            return
        if not entries:
            return
        digest = hashlib.sha256(self.cache_dir.encode()).digest()
        victim = entries[int.from_bytes(digest[:4], "big") % len(entries)]
        try:
            with open(os.path.join(self.cache_dir, victim), "wb") as fh:
                fh.write(b"\xffchaos-garbage\xff")
        except OSError:
            pass


class ChaosPlan:
    """Maps *(task id, dispatch index)* to a :class:`ChaosAction`.

    Build one with :meth:`random` (seeded probability bands over every
    task) or :meth:`explicit` (exact per-task actions, for tests).
    Plans cross the fork boundary with the worker; they hold no open
    resources and no mutable state.
    """

    def __init__(self, actions: Optional[dict[str, ChaosAction]] = None,
                 seed: Optional[int] = None,
                 rates: Optional[dict[str, float]] = None,
                 hang_seconds: float = 30.0, slow_seconds: float = 0.05,
                 flaky_failures: int = 2,
                 cache_dir: Optional[str] = None) -> None:
        self._explicit = actions
        self.seed = seed
        self.rates = dict(rates) if rates is not None else None
        self.hang_seconds = hang_seconds
        self.slow_seconds = slow_seconds
        self.flaky_failures = flaky_failures
        self.cache_dir = cache_dir

    # ------------------------------------------------------------------
    @classmethod
    def random(cls, seed: int, rates: Optional[dict[str, float]] = None,
               hang_seconds: float = 30.0, slow_seconds: float = 0.05,
               flaky_failures: int = 2,
               cache_dir: Optional[str] = None) -> "ChaosPlan":
        """A seeded plan hitting roughly ``sum(rates.values())`` of all
        tasks, each with exactly one fault kind.

        Every task's fate is ``sha256(f"{seed}:{task_id}")`` banded
        against cumulative ``rates`` in :data:`RANDOM_KINDS` order --
        deterministic, order-independent, and independent of which
        worker runs the task.  ``flaky_failures`` is clamped below the
        pool's default retry budget so flaky tasks always recover
        in-worker.
        """
        resolved = dict(DEFAULT_RATES)
        if rates is not None:
            unknown = set(rates) - set(RANDOM_KINDS)
            if unknown:
                raise ValueError(f"unknown chaos kinds: {sorted(unknown)}")
            resolved.update(rates)
        total = sum(resolved.values())
        if total > 1.0:
            raise ValueError(f"chaos rates sum to {total:.3f} > 1")
        return cls(seed=seed, rates=resolved, hang_seconds=hang_seconds,
                   slow_seconds=slow_seconds,
                   flaky_failures=min(flaky_failures,
                                      POOL_RETRY_BUDGET - 1),
                   cache_dir=cache_dir)

    @classmethod
    def explicit(cls, actions: dict[str, ChaosAction]) -> "ChaosPlan":
        """A plan applying exactly ``actions`` (test construction)."""
        return cls(actions=dict(actions))

    # ------------------------------------------------------------------
    def _derive(self, task_id: str) -> Optional[ChaosAction]:
        fraction = _fraction(self.seed, task_id)
        cumulative = 0.0
        for kind in RANDOM_KINDS:
            cumulative += self.rates.get(kind, 0.0)
            if fraction < cumulative:
                if kind == "hang":
                    return ChaosAction(kind, seconds=self.hang_seconds)
                if kind == "slow":
                    return ChaosAction(kind, seconds=self.slow_seconds)
                if kind == "flaky":
                    return ChaosAction(kind, attempts=self.flaky_failures)
                if kind == "cache-corrupt":
                    return ChaosAction(kind, cache_dir=self.cache_dir)
                return ChaosAction(kind)
        return None

    def action(self, task_id: str,
               dispatch: int) -> Optional[ChaosAction]:
        """The fault to apply on this dispatch of ``task_id``, if any.

        ``dispatch`` counts from 1 across *all* sends of the task (the
        pool increments it for crash retries, reap retries and backoff
        redispatches alike), so destructive faults never recur and
        every task eventually runs clean.
        """
        if self._explicit is not None:
            action = self._explicit.get(task_id)
        elif self.seed is not None and self.rates is not None:
            action = self._derive(task_id)
        else:
            action = None
        if action is None or not action.applies(dispatch):
            return None
        return action

    def kind_for(self, task_id: str) -> Optional[str]:
        """The fault kind scheduled for ``task_id`` (diagnostics)."""
        action = self.action(task_id, 1)
        return action.kind if action is not None else None

    def describe(self) -> dict:
        """Provenance block for BENCH_*.json."""
        if self._explicit is not None:
            return {"mode": "explicit",
                    "tasks": {tid: a.kind
                              for tid, a in sorted(self._explicit.items())}}
        return {"mode": "random", "seed": self.seed, "rates": self.rates,
                "hang_seconds": self.hang_seconds,
                "slow_seconds": self.slow_seconds,
                "flaky_failures": self.flaky_failures}
