"""Textual rendering of IR functions (the inverse of :mod:`repro.ir.parser`)."""

from __future__ import annotations

from repro.ir.function import Function


def render_function(func: Function) -> str:
    """Render ``func`` in the textual IR syntax accepted by the parser."""
    lines = [f"func {func.name} entry={func.entry_label}"]
    for block in func.blocks():
        lines.append(f"{block.label}:")
        lines.extend(f"    {inst.render()}" for inst in block)
    return "\n".join(lines) + "\n"
