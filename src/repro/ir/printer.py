"""Textual rendering of IR functions (the inverse of :mod:`repro.ir.parser`).

Instruction annotations (``attrs``) that affect semantics -- the affine
addressing markers consumed by the alias analysis, ``pure`` on calls,
non-default ``call_cycles`` -- are rendered as trailing ``@key`` /
``@key=value`` tokens so functions round-trip through the parser
without losing analysis precision.  Attrs whose values are not plain
bools/ints/identifier-like strings are skipped (they are internal
bookkeeping, not part of the textual syntax).
"""

from __future__ import annotations

import re

from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode

#: Default ``call_cycles`` assumed by the parser; omitted when printing.
DEFAULT_CALL_CYCLES = 50

#: Attr values must look like identifiers/numbers to be printable.
_PRINTABLE_VALUE = re.compile(r"^[\w.:+-]+$")


def _render_attrs(inst: Instruction) -> str:
    """Render the round-trippable attrs of ``inst`` as ``@`` tokens."""
    parts: list[str] = []
    for key in sorted(inst.attrs):
        if key == "callee":
            continue  # encoded in the call syntax itself
        value = inst.attrs[key]
        if key == "call_cycles" and value == DEFAULT_CALL_CYCLES:
            continue
        if value is True:
            parts.append(f"@{key}")
        elif value is False or value is None:
            continue
        elif isinstance(value, int):
            parts.append(f"@{key}={value}")
        elif isinstance(value, str) and _PRINTABLE_VALUE.match(value):
            parts.append(f"@{key}={value}")
        # Anything else (lists, objects, ...) is internal-only.
    return (" " + " ".join(parts)) if parts else ""


def render_instruction(inst: Instruction) -> str:
    """Render one instruction in parseable syntax (attrs included)."""
    op = inst.opcode
    if op is Opcode.PRODUCE and not inst.srcs:
        # ``Instruction.render`` shows a ``<token>`` placeholder for
        # human readers; the parseable form is just ``produce [q]``.
        text = f"produce [{inst.queue}]"
    elif op is Opcode.CONSUME and inst.dest is None:
        text = f"consume [{inst.queue}]"
    else:
        text = inst.render()
    return text + _render_attrs(inst)


def render_function(func: Function) -> str:
    """Render ``func`` in the textual IR syntax accepted by the parser."""
    lines = [f"func {func.name} entry={func.entry_label}"]
    for block in func.blocks():
        lines.append(f"{block.label}:")
        lines.extend(f"    {render_instruction(inst)}" for inst in block)
    return "\n".join(lines) + "\n"
