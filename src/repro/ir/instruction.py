"""The :class:`Instruction` class: a single IR operation.

An instruction has an opcode, at most one destination register, a list
of source registers, and optional immediates.  Memory instructions
carry an address expression ``base_register + offset`` plus a symbolic
*region* tag used by the memory dependence analysis (see
:mod:`repro.analysis.memdep`).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.ir.types import (
    MEMORY_OPS,
    M_PIPE_OPS,
    PREDICATE_DEFS,
    TERMINATORS,
    Opcode,
    Register,
)

_instruction_ids = itertools.count()


class Instruction:
    """One IR operation.

    Attributes:
        uid: Globally unique id; stable identity across transformations.
        opcode: The :class:`~repro.ir.types.Opcode`.
        dest: Destination register, or ``None``.
        srcs: Source registers, in operand order.
        imm: Immediate operand (``None`` when absent).  For memory ops
            this is the address *offset*; for ``MOV`` it may be the
            constant moved; for ``PRODUCE``/``CONSUME`` the queue id
            lives in :attr:`queue` instead.
        targets: Branch target labels -- ``[taken, fall]`` for ``BR``,
            ``[target]`` for ``JMP``, empty otherwise.
        region: Symbolic memory region tag ("heap", "arr:result", ...)
            for memory ops; ``None`` means "may alias anything".
        queue: Queue id for ``PRODUCE``/``CONSUME``.
        origin: For instructions created by a transformation, the
            original instruction this one was copied from (or ``None``).
        attrs: Free-form annotation dict (e.g. ``no_alias`` markers that
            emulate accurate memory analysis, ``call_cycles`` estimates).
    """

    __slots__ = (
        "uid",
        "opcode",
        "dest",
        "srcs",
        "imm",
        "targets",
        "region",
        "queue",
        "origin",
        "attrs",
    )

    def __init__(
        self,
        opcode: Opcode,
        dest: Optional[Register] = None,
        srcs: Optional[list[Register]] = None,
        imm: Optional[int] = None,
        targets: Optional[list[str]] = None,
        region: Optional[str] = None,
        queue: Optional[int] = None,
        origin: Optional["Instruction"] = None,
        attrs: Optional[dict] = None,
    ) -> None:
        self.uid = next(_instruction_ids)
        self.opcode = opcode
        self.dest = dest
        self.srcs = list(srcs) if srcs else []
        self.imm = imm
        self.targets = list(targets) if targets else []
        self.region = region
        self.queue = queue
        self.origin = origin
        self.attrs = dict(attrs) if attrs else {}
        self._check_shape()

    def _check_shape(self) -> None:
        if self.opcode is Opcode.BR:
            if len(self.targets) != 2 or len(self.srcs) != 1:
                raise ValueError("BR needs one predicate source and two targets")
            if not self.srcs[0].is_predicate:
                raise ValueError("BR source must be a predicate register")
        elif self.opcode is Opcode.JMP:
            if len(self.targets) != 1:
                raise ValueError("JMP needs exactly one target")
        elif self.targets:
            raise ValueError(f"{self.opcode} cannot carry branch targets")
        if self.opcode in PREDICATE_DEFS and self.dest is not None:
            if not self.dest.is_predicate:
                raise ValueError(f"{self.opcode} must define a predicate register")

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS

    @property
    def is_branch(self) -> bool:
        return self.opcode is Opcode.BR

    @property
    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPS

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.STORE

    @property
    def is_call(self) -> bool:
        return self.opcode is Opcode.CALL

    @property
    def uses_m_pipe(self) -> bool:
        return self.opcode in M_PIPE_OPS

    @property
    def is_flow(self) -> bool:
        """True for the PRODUCE/CONSUME instructions inserted by DSWP."""
        return self.opcode in (Opcode.PRODUCE, Opcode.CONSUME)

    # ------------------------------------------------------------------
    # Operand access
    # ------------------------------------------------------------------
    def defined_registers(self) -> list[Register]:
        """Registers written by this instruction."""
        return [self.dest] if self.dest is not None else []

    def used_registers(self) -> list[Register]:
        """Registers read by this instruction."""
        return list(self.srcs)

    def root(self) -> "Instruction":
        """Follow :attr:`origin` links to the original instruction."""
        inst = self
        while inst.origin is not None:
            inst = inst.origin
        return inst

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return f"<I{self.uid} {self.render()}>"

    def render(self) -> str:
        """Human-readable assembly-like rendering."""
        op = self.opcode
        if op is Opcode.LOAD:
            tag = f" !{self.region}" if self.region else ""
            return f"load {self.dest} = [{self.srcs[0]} + {self.imm or 0}]{tag}"
        if op is Opcode.STORE:
            tag = f" !{self.region}" if self.region else ""
            return f"store [{self.srcs[1]} + {self.imm or 0}] = {self.srcs[0]}{tag}"
        if op is Opcode.BR:
            return f"br {self.srcs[0]}, {self.targets[0]}, {self.targets[1]}"
        if op is Opcode.JMP:
            return f"jmp {self.targets[0]}"
        if op is Opcode.RET:
            return "ret"
        if op is Opcode.PRODUCE:
            return f"produce [{self.queue}] = {self.srcs[0] if self.srcs else '<token>'}"
        if op is Opcode.CONSUME:
            return f"consume {self.dest if self.dest else '<token>'} = [{self.queue}]"
        if op is Opcode.MOV:
            src = self.srcs[0] if self.srcs else self.imm
            return f"mov {self.dest} = {src}"
        if op is Opcode.CALL:
            args = ", ".join(map(str, self.srcs))
            name = self.attrs.get("callee", "?")
            pre = f"{self.dest} = " if self.dest else ""
            return f"{pre}call {name}({args})"
        if op is Opcode.NOP:
            return "nop"
        operands = list(map(str, self.srcs))
        if self.imm is not None:
            operands.append(str(self.imm))
        return f"{op.value} {self.dest} = {', '.join(operands)}"
