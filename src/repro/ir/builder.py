"""A fluent builder for constructing IR functions in workloads and tests.

Example::

    b = IRBuilder("list_sum")
    entry = b.block("entry", entry=True)
    ...
    b.at("entry")
    b.mov(r0, imm=HEAD)
    b.jmp("header")
"""

from __future__ import annotations

from typing import Optional, Union

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.types import BINARY_OPS, COMPARE_OPS, Opcode, RegClass, Register

Immediate = Union[int, None]


class IRBuilder:
    """Builds a :class:`Function` block by block."""

    def __init__(self, name: str) -> None:
        self.function = Function(name)
        self._current: Optional[BasicBlock] = None

    # ------------------------------------------------------------------
    # Blocks and registers
    # ------------------------------------------------------------------
    def block(self, label: str, entry: bool = False) -> BasicBlock:
        """Create a block and make it current."""
        blk = self.function.add_block(label, entry=entry)
        self._current = blk
        return blk

    def at(self, label: str) -> BasicBlock:
        """Switch the insertion point to an existing block."""
        self._current = self.function.block(label)
        return self._current

    def reg(self) -> Register:
        return self.function.new_reg(RegClass.GEN)

    def pred(self) -> Register:
        return self.function.new_reg(RegClass.PRED)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, inst: Instruction) -> Instruction:
        if self._current is None:
            raise ValueError("no current block; call .block() or .at() first")
        for reg in inst.defined_registers() + inst.used_registers():
            self.function.note_register(reg)
        return self._current.append(inst)

    def _binary(
        self, opcode: Opcode, dest: Register, a: Register, b: Optional[Register], imm: Immediate
    ) -> Instruction:
        srcs = [a] if b is None else [a, b]
        return self.emit(Instruction(opcode, dest=dest, srcs=srcs, imm=imm))

    def __getattr__(self, name: str):
        """Expose one emission method per arithmetic/compare opcode.

        ``b.add(dest, a, b)`` / ``b.add(dest, a, imm=4)`` and likewise
        for every opcode in BINARY_OPS and COMPARE_OPS (dots become
        underscores: ``b.cmp_eq``).
        """
        # ``and``/``or`` are keywords, so accept a trailing underscore
        # (``b.and_``); interior underscores map to dots (``b.cmp_eq``).
        key = name.removesuffix("_").replace("_", ".")
        try:
            opcode = Opcode(key)
        except ValueError:
            raise AttributeError(name) from None
        if opcode not in BINARY_OPS and opcode not in COMPARE_OPS:
            raise AttributeError(name)

        def emit_op(dest: Register, a: Register, b: Optional[Register] = None, imm: Immediate = None):
            return self._binary(opcode, dest, a, b, imm)

        return emit_op

    def mov(self, dest: Register, src: Optional[Register] = None, imm: Immediate = None) -> Instruction:
        srcs = [src] if src is not None else []
        return self.emit(Instruction(Opcode.MOV, dest=dest, srcs=srcs, imm=imm))

    def load(self, dest: Register, base: Register, offset: int = 0, region: Optional[str] = None,
             attrs: Optional[dict] = None) -> Instruction:
        return self.emit(
            Instruction(Opcode.LOAD, dest=dest, srcs=[base], imm=offset, region=region, attrs=attrs)
        )

    def store(self, value: Register, base: Register, offset: int = 0, region: Optional[str] = None,
              attrs: Optional[dict] = None) -> Instruction:
        return self.emit(
            Instruction(Opcode.STORE, srcs=[value, base], imm=offset, region=region, attrs=attrs)
        )

    def br(self, pred: Register, taken: str, fall: str) -> Instruction:
        return self.emit(Instruction(Opcode.BR, srcs=[pred], targets=[taken, fall]))

    def jmp(self, target: str) -> Instruction:
        return self.emit(Instruction(Opcode.JMP, targets=[target]))

    def ret(self) -> Instruction:
        return self.emit(Instruction(Opcode.RET))

    def call(self, callee: str, dest: Optional[Register] = None,
             srcs: Optional[list[Register]] = None, cycles: int = 50) -> Instruction:
        return self.emit(
            Instruction(
                Opcode.CALL,
                dest=dest,
                srcs=srcs or [],
                attrs={"callee": callee, "call_cycles": cycles},
            )
        )

    def nop(self) -> Instruction:
        return self.emit(Instruction(Opcode.NOP))

    def done(self) -> Function:
        """Finish: verify all blocks are terminated and return the function."""
        for block in self.function.blocks():
            if block.terminator is None:
                raise ValueError(f"block {block.label} lacks a terminator")
        self.function.sync_register_counter()
        return self.function
