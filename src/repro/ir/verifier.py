"""Structural well-formedness checks for IR functions.

The verifier is run by tests after every transformation and catches the
classes of breakage the DSWP splitter could introduce: dangling branch
targets, unterminated blocks, terminators in the middle of a block, and
queue instructions without a queue id.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.types import Opcode


class VerificationError(ValueError):
    """Raised when an IR function is structurally malformed."""


#: Size of the synchronization array: valid queue ids are ``[0, 256)``,
#: matching the default ``queue_limit`` of the DSWP splitter.
MAX_QUEUE_ID = 256


def verify_function(func: Function) -> None:
    """Raise :class:`VerificationError` on the first problem found."""
    if func.entry_label is None or not func.has_block(func.entry_label):
        raise VerificationError(f"{func.name}: missing entry block")
    seen_labels: set[str] = set()
    for block in func.blocks():
        if block.label in seen_labels:
            raise VerificationError(
                f"{func.name}: duplicate block label {block.label!r}"
            )
        seen_labels.add(block.label)
        if not func.has_block(block.label) or func.block(block.label) is not block:
            raise VerificationError(
                f"{func.name}: block label {block.label!r} does not match "
                "its registration in the function"
            )
    labels = {b.label for b in func.blocks()}
    for block in func.blocks():
        if not block.instructions:
            raise VerificationError(f"{func.name}/{block.label}: empty block")
        term = block.instructions[-1]
        if not term.is_terminator:
            raise VerificationError(
                f"{func.name}/{block.label}: last instruction is not a terminator"
            )
        for inst in block.instructions[:-1]:
            if inst.is_terminator:
                raise VerificationError(
                    f"{func.name}/{block.label}: terminator {inst.render()} "
                    "in the middle of a block"
                )
        for target in term.targets:
            if target not in labels:
                raise VerificationError(
                    f"{func.name}/{block.label}: branch to unknown block {target!r}"
                )
        for inst in block.instructions:
            if inst.opcode in (Opcode.PRODUCE, Opcode.CONSUME):
                if inst.queue is None:
                    raise VerificationError(
                        f"{func.name}/{block.label}: {inst.render()} lacks a queue id"
                    )
                if not 0 <= inst.queue < MAX_QUEUE_ID:
                    raise VerificationError(
                        f"{func.name}/{block.label}: {inst.render()} queue id "
                        f"{inst.queue} outside the synchronization array "
                        f"[0, {MAX_QUEUE_ID})"
                    )
            if inst.opcode is Opcode.LOAD and (inst.dest is None or len(inst.srcs) != 1):
                raise VerificationError(
                    f"{func.name}/{block.label}: malformed load {inst.render()}"
                )
            if inst.opcode is Opcode.STORE and len(inst.srcs) != 2:
                raise VerificationError(
                    f"{func.name}/{block.label}: malformed store {inst.render()}"
                )


def verify_reachable(func: Function) -> None:
    """Additionally require every block to be reachable from the entry."""
    verify_function(func)
    seen = {func.entry_label}
    stack = [func.entry]
    while stack:
        block = stack.pop()
        for succ in block.successors():
            if succ.label not in seen:
                seen.add(succ.label)
                stack.append(succ)
    unreachable = {b.label for b in func.blocks()} - seen
    if unreachable:
        raise VerificationError(
            f"{func.name}: unreachable blocks {sorted(unreachable)}"
        )
