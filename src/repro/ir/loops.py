"""Natural-loop discovery on the CFG.

A natural loop is identified by a back edge ``latch -> header`` where
the header dominates the latch; its body is every block that can reach
the latch without passing through the header.  DSWP operates on one
loop at a time (the paper selects "the most important visible loop" per
benchmark), so :class:`Loop` also records the bits the transformation
needs: preheader, exit edges, and live-in/live-out boundary blocks.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.basicblock import BasicBlock
from repro.ir.dominance import dominator_tree
from repro.ir.function import Function
from repro.ir.instruction import Instruction


class Loop:
    """A natural loop inside a function."""

    def __init__(self, function: Function, header: str, body: set[str]) -> None:
        self.function = function
        self.header = header
        self.body = set(body)  # block labels, including the header

    # ------------------------------------------------------------------
    def blocks(self) -> list[BasicBlock]:
        """Loop blocks in function layout order."""
        return [b for b in self.function.blocks() if b.label in self.body]

    def instructions(self) -> list[Instruction]:
        out: list[Instruction] = []
        for block in self.blocks():
            out.extend(block.instructions)
        return out

    def contains_block(self, label: str) -> bool:
        return label in self.body

    def contains(self, inst: Instruction) -> bool:
        return any(inst in b.instructions for b in self.blocks())

    # ------------------------------------------------------------------
    def latches(self) -> list[str]:
        """Labels of blocks with a back edge to the header."""
        return [
            b.label
            for b in self.blocks()
            if self.header in b.successor_labels()
        ]

    def exit_edges(self) -> list[tuple[str, str]]:
        """(from-inside, to-outside) CFG edges leaving the loop."""
        edges = []
        for block in self.blocks():
            for succ in block.successor_labels():
                if succ not in self.body:
                    edges.append((block.label, succ))
        return edges

    def exit_targets(self) -> list[str]:
        """Labels outside the loop targeted by exit edges (deduplicated)."""
        seen: list[str] = []
        for _, target in self.exit_edges():
            if target not in seen:
                seen.append(target)
        return seen

    def preheader(self) -> Optional[str]:
        """The unique outside predecessor of the header, if there is one."""
        outside = [
            b.label
            for b in self.function.blocks()
            if self.header in b.successor_labels() and b.label not in self.body
        ]
        if len(outside) == 1:
            return outside[0]
        return None

    def __repr__(self) -> str:
        return f"<Loop header={self.header} blocks={sorted(self.body)}>"


def find_loops(func: Function) -> list[Loop]:
    """All natural loops of ``func``, outermost-first by body size.

    Loops sharing a header are merged (their bodies are unioned), which
    matches the usual natural-loop convention.
    """
    dom = dominator_tree(func)
    bodies: dict[str, set[str]] = {}
    preds: dict[str, list[str]] = {b.label: [] for b in func.blocks()}
    for block in func.blocks():
        for succ in block.successor_labels():
            preds[succ].append(block.label)

    for block in func.blocks():
        for succ in block.successor_labels():
            if dom.dominates(succ, block.label):
                # back edge block -> succ; succ is the header
                body = bodies.setdefault(succ, {succ})
                stack = [block.label]
                while stack:
                    node = stack.pop()
                    if node in body:
                        continue
                    body.add(node)
                    stack.extend(preds.get(node, []))
    loops = [Loop(func, header, body) for header, body in bodies.items()]
    loops.sort(key=lambda lp: (-len(lp.body), lp.header))
    return loops


def loop_nest_depth(func: Function, loop: Loop) -> int:
    """1-based nesting depth of ``loop`` (1 = outermost)."""
    depth = 1
    for other in find_loops(func):
        if other.header != loop.header and loop.body < other.body:
            depth += 1
    return depth


def find_loop_by_header(func: Function, header: str) -> Loop:
    """The loop whose header block is ``header`` (raises if absent)."""
    for loop in find_loops(func):
        if loop.header == header:
            return loop
    raise KeyError(f"no loop with header {header!r} in {func.name}")
