"""Basic blocks: labelled straight-line instruction sequences.

Every block ends in exactly one terminator (``br``/``jmp``/``ret``);
there is no implicit fallthrough.  Successor edges are derived from the
terminator's target labels, so rewriting control flow is a matter of
editing those labels.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.ir.instruction import Instruction
from repro.ir.types import Opcode


class BasicBlock:
    """A labelled basic block belonging to a :class:`~repro.ir.function.Function`."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.instructions: list[Instruction] = []
        self.function = None  # set by Function.add_block

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def terminator(self) -> Optional[Instruction]:
        """The block's terminator, or ``None`` while under construction."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def body(self) -> list[Instruction]:
        """All instructions except the terminator."""
        term = self.terminator
        if term is None:
            return list(self.instructions)
        return self.instructions[:-1]

    def successor_labels(self) -> list[str]:
        term = self.terminator
        if term is None:
            return []
        return list(term.targets)

    def successors(self) -> list["BasicBlock"]:
        if self.function is None:
            return []
        return [self.function.block(lbl) for lbl in self.successor_labels()]

    def predecessors(self) -> list["BasicBlock"]:
        if self.function is None:
            return []
        return self.function.predecessors(self)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, inst: Instruction) -> Instruction:
        """Append an instruction; terminators must come last."""
        if self.terminator is not None:
            raise ValueError(f"block {self.label} is already terminated")
        self.instructions.append(inst)
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        """Insert ``inst`` just before the terminator (or append)."""
        term = self.terminator
        if term is None:
            self.instructions.append(inst)
        else:
            self.instructions.insert(len(self.instructions) - 1, inst)
        return inst

    def insert_after(self, anchor: Instruction, inst: Instruction) -> Instruction:
        """Insert ``inst`` immediately after ``anchor``."""
        idx = self.instructions.index(anchor)
        self.instructions.insert(idx + 1, inst)
        return inst

    def insert_before(self, anchor: Instruction, inst: Instruction) -> Instruction:
        """Insert ``inst`` immediately before ``anchor``."""
        idx = self.instructions.index(anchor)
        self.instructions.insert(idx, inst)
        return inst

    def retarget(self, old_label: str, new_label: str) -> None:
        """Rewrite branch targets equal to ``old_label`` to ``new_label``."""
        term = self.terminator
        if term is None:
            return
        term.targets = [new_label if t == old_label else t for t in term.targets]

    # ------------------------------------------------------------------
    # Iteration / rendering
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BB {self.label} ({len(self.instructions)} insts)>"

    def render(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {inst.render()}" for inst in self.instructions)
        return "\n".join(lines)


def make_jump(target: str) -> Instruction:
    """Convenience: build an unconditional jump."""
    return Instruction(Opcode.JMP, targets=[target])
