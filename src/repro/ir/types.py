"""Core IR type definitions: opcodes, operand kinds, and latency classes.

The IR is a low-level register machine in the spirit of the IA-64
assembly code that the paper's IMPACT back-end operates on:

* an unbounded set of virtual *general registers* (``r0``, ``r1``, ...),
* an unbounded set of *predicate registers* (``p0``, ``p1``, ...) that
  hold booleans and steer conditional branches,
* word-addressed memory accessed through explicit ``LOAD``/``STORE``,
* explicit block terminators (``BR``/``JMP``/``RET``) -- there is no
  implicit fallthrough, which keeps the DSWP code-splitting step purely
  structural.

``PRODUCE``/``CONSUME`` are the inter-core queue instructions added by
the DSWP transformation (Section 2.1 of the paper).
"""

from __future__ import annotations

import enum


class Opcode(enum.Enum):
    """All instruction opcodes understood by the IR."""

    # Arithmetic / logic (register-register or register-immediate).
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MOV = "mov"  # register copy or immediate load
    # Floating-point flavoured ops (modelled on integers, but carrying
    # FP latencies so the timing model sees realistic dependence height).
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    # Comparisons produce predicate registers.
    CMP_EQ = "cmp.eq"
    CMP_NE = "cmp.ne"
    CMP_LT = "cmp.lt"
    CMP_LE = "cmp.le"
    CMP_GT = "cmp.gt"
    CMP_GE = "cmp.ge"
    # Memory.
    LOAD = "load"
    STORE = "store"
    # Control flow (block terminators).
    BR = "br"  # conditional: br p, taken, fall
    JMP = "jmp"  # unconditional
    RET = "ret"
    # Calls (kept opaque; used only for Table-1 "func. calls" column).
    CALL = "call"
    # DSWP queue instructions.
    PRODUCE = "produce"
    CONSUME = "consume"
    # No-op (placeholder produced by some transformations).
    NOP = "nop"


#: Opcodes that terminate a basic block.
TERMINATORS = frozenset({Opcode.BR, Opcode.JMP, Opcode.RET})

#: Opcodes that write a predicate register instead of a general register.
PREDICATE_DEFS = frozenset(
    {
        Opcode.CMP_EQ,
        Opcode.CMP_NE,
        Opcode.CMP_LT,
        Opcode.CMP_LE,
        Opcode.CMP_GT,
        Opcode.CMP_GE,
    }
)

#: Opcodes that access memory (they contend for the M-ports of the core,
#: as do PRODUCE/CONSUME per Section 4.2 of the paper).
MEMORY_OPS = frozenset({Opcode.LOAD, Opcode.STORE})

#: Opcodes issued on the M pipeline of the modelled Itanium 2 core.
M_PIPE_OPS = frozenset({Opcode.LOAD, Opcode.STORE, Opcode.PRODUCE, Opcode.CONSUME})

#: Two-source arithmetic opcodes (used by the builder and the parser).
BINARY_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
    }
)

#: Comparison opcodes.
COMPARE_OPS = PREDICATE_DEFS


class RegClass(enum.Enum):
    """Register classes: general-purpose and predicate."""

    GEN = "r"
    PRED = "p"


class Register:
    """A virtual register, identified by class and index.

    Registers are interned so identity comparison works, and they sort
    deterministically (by class then index) which keeps every analysis
    and transformation in the library reproducible run to run.
    """

    __slots__ = ("rclass", "index")
    _pool: dict[tuple[RegClass, int], "Register"] = {}

    def __new__(cls, rclass: RegClass, index: int) -> "Register":
        key = (rclass, index)
        reg = cls._pool.get(key)
        if reg is None:
            reg = super().__new__(cls)
            reg.rclass = rclass
            reg.index = index
            cls._pool[key] = reg
        return reg

    def __repr__(self) -> str:
        return f"{self.rclass.value}{self.index}"

    def __lt__(self, other: "Register") -> bool:
        return (self.rclass.value, self.index) < (other.rclass.value, other.index)

    def __reduce__(self):
        return (Register, (self.rclass, self.index))

    @property
    def is_predicate(self) -> bool:
        return self.rclass is RegClass.PRED


def gen_reg(index: int) -> Register:
    """Return the general register ``r<index>``."""
    return Register(RegClass.GEN, index)


def pred_reg(index: int) -> Register:
    """Return the predicate register ``p<index>``."""
    return Register(RegClass.PRED, index)


def parse_register(text: str) -> Register:
    """Parse ``"r12"`` or ``"p3"`` into a :class:`Register`."""
    text = text.strip()
    if len(text) < 2 or text[0] not in ("r", "p") or not text[1:].isdigit():
        raise ValueError(f"not a register: {text!r}")
    rclass = RegClass.GEN if text[0] == "r" else RegClass.PRED
    return Register(rclass, int(text[1:]))
