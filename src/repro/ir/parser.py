"""Parser for the textual IR syntax produced by :mod:`repro.ir.printer`.

The syntax is assembly-like, one instruction per line::

    func sum entry=entry
    entry:
        mov r0 = 0
        jmp header
    header:
        cmp.eq p0 = r1, 0
        br p0, exit, body
    body:
        load r2 = [r1 + 8] !list
        add r0 = r0, r2
        load r1 = [r1 + 0] !list
        jmp header
    exit:
        ret

Supported forms:

* ``<op> rd = ra, rb`` and ``<op> rd = ra, <imm>`` for arithmetic,
* ``mov rd = ra`` / ``mov rd = <imm>``,
* ``load rd = [ra + off] !region`` (region optional),
* ``store [ra + off] = rv !region``,
* ``br p, taken, fall`` / ``jmp target`` / ``ret``,
* ``produce [q] = ra`` / ``produce [q]`` (token),
* ``consume rd = [q]`` / ``consume [q]`` (token),
* ``rd = call name(r1, r2)`` / ``call name()``.

This exists so tests and examples can state IR fixtures compactly and
so transformed code can be round-tripped through text for golden tests.
"""

from __future__ import annotations

import re

from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.types import BINARY_OPS, COMPARE_OPS, Opcode, parse_register


class IRParseError(ValueError):
    """Raised on malformed textual IR."""

    def __init__(self, line_no: int, line: str, message: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no


_FUNC_RE = re.compile(r"^func\s+(\w+)\s+entry=(\w+)$")
_LABEL_RE = re.compile(r"^(\w+):$")
_LOAD_RE = re.compile(
    r"^load\s+(\S+)\s*=\s*\[\s*(\S+?)\s*\+\s*(-?\d+)\s*\](?:\s*!(\S+))?$"
)
_STORE_RE = re.compile(
    r"^store\s+\[\s*(\S+?)\s*\+\s*(-?\d+)\s*\]\s*=\s*(\S+?)(?:\s*!(\S+))?$"
)
_PRODUCE_RE = re.compile(r"^produce\s+\[\s*(\d+)\s*\](?:\s*=\s*(\S+))?$")
_ATTR_RE = re.compile(r"\s+@([A-Za-z_][\w.]*)(?:=([\w.:+-]+))?$")
_CONSUME_RE = re.compile(r"^consume\s+(?:(\S+)\s*=\s*)?\[\s*(\d+)\s*\]$")
_CALL_RE = re.compile(r"^(?:(\S+)\s*=\s*)?call\s+(\w+)\s*\(([^)]*)\)$")
_ASSIGN_RE = re.compile(r"^([\w.]+)\s+(\S+)\s*=\s*(.+)$")


def _split_attrs(line: str) -> tuple[str, dict]:
    """Strip trailing ``@key`` / ``@key=value`` tokens off ``line``.

    This is the inverse of the printer's attr rendering: bare keys mean
    ``True``, integer-looking values parse as ints, everything else
    stays a string.
    """
    attrs: dict = {}
    while True:
        m = _ATTR_RE.search(line)
        if not m:
            return line, attrs
        key, value = m.groups()
        if value is None:
            attrs[key] = True
        else:
            try:
                attrs[key] = int(value, 0)
            except ValueError:
                attrs[key] = value
        line = line[: m.start()]


def _parse_operand(text: str):
    """Return ('reg', Register) or ('imm', int)."""
    text = text.strip()
    try:
        return "reg", parse_register(text)
    except ValueError:
        pass
    try:
        return "imm", int(text, 0)
    except ValueError as exc:
        raise ValueError(f"bad operand {text!r}") from exc


def parse_function(text: str) -> Function:
    """Parse a single function from ``text``."""
    func: Function | None = None
    current = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = _FUNC_RE.match(line)
        if m:
            if func is not None:
                raise IRParseError(line_no, raw, "multiple func headers")
            func = Function(m.group(1))
            func.entry_label = None
            entry_label = m.group(2)
            continue
        if func is None:
            raise IRParseError(line_no, raw, "instruction before func header")
        m = _LABEL_RE.match(line)
        if m:
            current = func.add_block(m.group(1), entry=m.group(1) == entry_label)
            continue
        if current is None:
            raise IRParseError(line_no, raw, "instruction before first label")
        try:
            line, attrs = _split_attrs(line)
            inst = _parse_instruction(line)
            if attrs:
                inst.attrs.update(attrs)
            current.append(inst)
        except ValueError as exc:
            raise IRParseError(line_no, raw, str(exc)) from exc
    if func is None:
        raise IRParseError(0, "", "no func header found")
    if not func.has_block(entry_label):
        raise IRParseError(0, "", f"entry block {entry_label!r} not defined")
    func.entry_label = entry_label
    func.sync_register_counter()
    return func


def _parse_instruction(line: str) -> Instruction:
    if line == "ret":
        return Instruction(Opcode.RET)
    if line == "nop":
        return Instruction(Opcode.NOP)
    if line.startswith("jmp "):
        return Instruction(Opcode.JMP, targets=[line[4:].strip()])
    if line.startswith("br "):
        parts = [p.strip() for p in line[3:].split(",")]
        if len(parts) != 3:
            raise ValueError("br needs 'br p, taken, fall'")
        return Instruction(Opcode.BR, srcs=[parse_register(parts[0])], targets=parts[1:])

    m = _LOAD_RE.match(line)
    if m:
        dest, base, off, region = m.groups()
        return Instruction(
            Opcode.LOAD,
            dest=parse_register(dest),
            srcs=[parse_register(base)],
            imm=int(off),
            region=region,
        )
    m = _STORE_RE.match(line)
    if m:
        base, off, value, region = m.groups()
        return Instruction(
            Opcode.STORE,
            srcs=[parse_register(value), parse_register(base)],
            imm=int(off),
            region=region,
        )
    m = _PRODUCE_RE.match(line)
    if m:
        queue, src = m.groups()
        srcs = [parse_register(src)] if src else []
        return Instruction(Opcode.PRODUCE, srcs=srcs, queue=int(queue))
    m = _CONSUME_RE.match(line)
    if m:
        dest, queue = m.groups()
        return Instruction(
            Opcode.CONSUME,
            dest=parse_register(dest) if dest else None,
            queue=int(queue),
        )
    m = _CALL_RE.match(line)
    if m:
        dest, callee, args = m.groups()
        srcs = [parse_register(a) for a in args.split(",") if a.strip()]
        return Instruction(
            Opcode.CALL,
            dest=parse_register(dest) if dest else None,
            srcs=srcs,
            attrs={"callee": callee, "call_cycles": 50},
        )
    m = _ASSIGN_RE.match(line)
    if m:
        opname, dest, rhs = m.groups()
        try:
            opcode = Opcode(opname)
        except ValueError as exc:
            raise ValueError(f"unknown opcode {opname!r}") from exc
        operands = [_parse_operand(p) for p in rhs.split(",")]
        if opcode is Opcode.MOV:
            if len(operands) != 1:
                raise ValueError("mov takes one operand")
            kind, value = operands[0]
            if kind == "reg":
                return Instruction(Opcode.MOV, dest=parse_register(dest), srcs=[value])
            return Instruction(Opcode.MOV, dest=parse_register(dest), imm=value)
        if opcode in BINARY_OPS or opcode in COMPARE_OPS:
            srcs = [v for k, v in operands if k == "reg"]
            imms = [v for k, v in operands if k == "imm"]
            if len(imms) > 1 or not srcs or len(operands) != 2:
                raise ValueError(f"{opname} takes two operands (at most one immediate)")
            return Instruction(
                opcode,
                dest=parse_register(dest),
                srcs=srcs,
                imm=imms[0] if imms else None,
            )
        raise ValueError(f"opcode {opname!r} not valid in assignment form")
    raise ValueError("unrecognised instruction")
