"""Compiler IR substrate: registers, instructions, blocks, functions, CFG analyses."""

from repro.ir.basicblock import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.dominance import DominatorTree, dominator_tree, postdominator_tree
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.loops import Loop, find_loop_by_header, find_loops
from repro.ir.parser import IRParseError, parse_function
from repro.ir.printer import render_function
from repro.ir.types import Opcode, RegClass, Register, gen_reg, parse_register, pred_reg
from repro.ir.verifier import VerificationError, verify_function, verify_reachable

__all__ = [
    "BasicBlock",
    "DominatorTree",
    "Function",
    "IRBuilder",
    "IRParseError",
    "Instruction",
    "Loop",
    "Opcode",
    "RegClass",
    "Register",
    "VerificationError",
    "dominator_tree",
    "find_loop_by_header",
    "find_loops",
    "gen_reg",
    "parse_function",
    "parse_register",
    "postdominator_tree",
    "pred_reg",
    "render_function",
    "verify_function",
    "verify_reachable",
]
