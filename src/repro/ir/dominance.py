"""Dominator and post-dominator trees (Cooper-Harvey-Kennedy algorithm).

Post-dominance is computed on the reverse CFG with a virtual exit node
that every ``ret`` block (and every otherwise-sinkless block) feeds
into, so the tree is well-defined even for CFGs with multiple exits.
The DSWP splitter relies on post-dominators to retarget branches whose
original targets have no counterpart in a given thread ("closest
relevant post-dominator", Section 2.2.3 step 4).
"""

from __future__ import annotations

from typing import Optional

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function

#: Label of the virtual exit node used by the post-dominator tree.
VIRTUAL_EXIT = "<exit>"


class DominatorTree:
    """Immediate-dominator mapping over block labels."""

    def __init__(self, idom: dict[str, Optional[str]], root: str) -> None:
        self.idom = idom
        self.root = root

    def dominates(self, a: str, b: str) -> bool:
        """True iff ``a`` dominates ``b`` (reflexively)."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            node = self.idom.get(node)
        return False

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def walk_up(self, label: str):
        """Yield ``label`` and then each ancestor up to the root."""
        node: Optional[str] = label
        while node is not None:
            yield node
            node = self.idom.get(node)

    def children(self) -> dict[str, list[str]]:
        out: dict[str, list[str]] = {label: [] for label in self.idom}
        out.setdefault(self.root, [])
        for node, parent in self.idom.items():
            if parent is not None:
                out.setdefault(parent, []).append(node)
        return out


def _compute_idom(
    nodes: list[str],
    preds: dict[str, list[str]],
    root: str,
) -> dict[str, Optional[str]]:
    """Cooper-Harvey-Kennedy iterative dominator algorithm.

    ``nodes`` must be in reverse postorder from ``root``.
    """
    index = {label: i for i, label in enumerate(nodes)}
    idom: dict[str, Optional[str]] = {root: root}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in nodes:
            if node == root:
                continue
            candidates = [p for p in preds.get(node, []) if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    result: dict[str, Optional[str]] = {}
    for node in nodes:
        if node == root:
            result[node] = None
        elif node in idom:
            result[node] = idom[node]
    return result


def _reverse_postorder(root: str, succs: dict[str, list[str]]) -> list[str]:
    seen = {root}
    order: list[str] = []
    stack: list[tuple[str, iter]] = [(root, iter(succs.get(root, [])))]
    while stack:
        node, it = stack[-1]
        advanced = False
        for nxt in it:
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, iter(succs.get(nxt, []))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    return order


def dominator_tree(func: Function) -> DominatorTree:
    """Dominator tree of ``func`` rooted at the entry block."""
    succs = {b.label: b.successor_labels() for b in func.blocks()}
    preds: dict[str, list[str]] = {b.label: [] for b in func.blocks()}
    for label, outs in succs.items():
        for out in outs:
            preds[out].append(label)
    nodes = _reverse_postorder(func.entry_label, succs)
    idom = _compute_idom(nodes, preds, func.entry_label)
    return DominatorTree(idom, func.entry_label)


def cfg_edges(func: Function) -> tuple[dict[str, list[str]], dict[str, list[str]]]:
    """Return (successors, predecessors) label maps for ``func``."""
    succs = {b.label: b.successor_labels() for b in func.blocks()}
    preds: dict[str, list[str]] = {b.label: [] for b in func.blocks()}
    for label, outs in succs.items():
        for out in outs:
            preds.setdefault(out, []).append(label)
    return succs, preds


def postdominator_tree(func: Function) -> DominatorTree:
    """Post-dominator tree of ``func`` rooted at a virtual exit node."""
    succs, _ = cfg_edges(func)
    return postdominator_tree_of_graph(succs, [b.label for b in func.exit_blocks()])


def postdominator_tree_of_graph(
    succs: dict[str, list[str]], exit_labels: list[str]
) -> DominatorTree:
    """Post-dominator tree for an arbitrary label graph.

    Every label in ``exit_labels`` gets an edge to the virtual exit; so
    does any label with no successors (dead ends) to keep the reverse
    graph rooted.
    """
    rsuccs: dict[str, list[str]] = {VIRTUAL_EXIT: []}
    all_nodes = set(succs)
    for outs in succs.values():
        all_nodes.update(outs)
    exits = set(exit_labels)
    for node in all_nodes:
        if not succs.get(node):
            exits.add(node)
    for node in all_nodes:
        rsuccs.setdefault(node, [])
    for node, outs in succs.items():
        for out in outs:
            rsuccs[out].append(node)
    for node in sorted(exits):
        rsuccs[VIRTUAL_EXIT].append(node)
    nodes = _reverse_postorder(VIRTUAL_EXIT, rsuccs)
    preds: dict[str, list[str]] = {n: [] for n in rsuccs}
    for node, outs in rsuccs.items():
        for out in outs:
            preds[out].append(node)
    idom = _compute_idom(nodes, preds, VIRTUAL_EXIT)
    return DominatorTree(idom, VIRTUAL_EXIT)
