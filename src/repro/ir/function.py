"""Functions: ordered collections of basic blocks forming a CFG.

The block order is the layout order (used for deterministic iteration
and for the printer); control flow is fully explicit via terminators.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.ir.basicblock import BasicBlock
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode, RegClass, Register


class Function:
    """A single function: entry block, blocks, and register bookkeeping."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._blocks: dict[str, BasicBlock] = {}
        self._order: list[str] = []
        self.entry_label: Optional[str] = None
        self._next_reg = {RegClass.GEN: 0, RegClass.PRED: 0}

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------
    def add_block(self, label: str, entry: bool = False) -> BasicBlock:
        if label in self._blocks:
            raise ValueError(f"duplicate block label {label!r}")
        block = BasicBlock(label)
        block.function = self
        self._blocks[label] = block
        self._order.append(label)
        if entry or self.entry_label is None:
            if entry:
                self.entry_label = label
            elif self.entry_label is None:
                self.entry_label = label
        return block

    def block(self, label: str) -> BasicBlock:
        return self._blocks[label]

    def has_block(self, label: str) -> bool:
        return label in self._blocks

    @property
    def entry(self) -> BasicBlock:
        if self.entry_label is None:
            raise ValueError(f"function {self.name} has no entry block")
        return self._blocks[self.entry_label]

    def blocks(self) -> list[BasicBlock]:
        """Blocks in layout order."""
        return [self._blocks[lbl] for lbl in self._order]

    def remove_block(self, label: str) -> None:
        del self._blocks[label]
        self._order.remove(label)

    def predecessors(self, block: BasicBlock) -> list[BasicBlock]:
        return [b for b in self.blocks() if block.label in b.successor_labels()]

    def exit_blocks(self) -> list[BasicBlock]:
        """Blocks ending in ``ret``."""
        return [b for b in self.blocks() if b.terminator and b.terminator.opcode is Opcode.RET]

    # ------------------------------------------------------------------
    # Instructions
    # ------------------------------------------------------------------
    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks():
            yield from block

    def block_of(self, inst: Instruction) -> BasicBlock:
        for block in self.blocks():
            if inst in block.instructions:
                return block
        raise KeyError(f"instruction {inst!r} not found in {self.name}")

    def instruction_count(self) -> int:
        return sum(len(b) for b in self.blocks())

    # ------------------------------------------------------------------
    # Registers
    # ------------------------------------------------------------------
    def new_reg(self, rclass: RegClass = RegClass.GEN) -> Register:
        """Allocate a fresh virtual register not used anywhere yet."""
        idx = self._next_reg[rclass]
        self._next_reg[rclass] = idx + 1
        return Register(rclass, idx)

    def note_register(self, reg: Register) -> None:
        """Record an externally-created register so ``new_reg`` skips it."""
        if reg.index >= self._next_reg[reg.rclass]:
            self._next_reg[reg.rclass] = reg.index + 1

    def sync_register_counter(self) -> None:
        """Scan all instructions and bump the fresh-register counters."""
        for inst in self.instructions():
            for reg in inst.defined_registers() + inst.used_registers():
                self.note_register(reg)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        header = f"func {self.name} (entry {self.entry_label}):"
        return "\n".join([header] + [b.render() for b in self.blocks()])

    def __repr__(self) -> str:
        return f"<Function {self.name}: {len(self._order)} blocks>"

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def reverse_postorder(self) -> list[BasicBlock]:
        """Blocks in reverse postorder from the entry (unreachable last)."""
        seen: set[str] = set()
        order: list[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            stack = [(block, iter(block.successors()))]
            seen.add(block.label)
            while stack:
                node, succs = stack[-1]
                advanced = False
                for succ in succs:
                    if succ.label not in seen:
                        seen.add(succ.label)
                        stack.append((succ, iter(succ.successors())))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        for block in self.blocks():
            if block.label not in seen:
                visit(block)
        order.reverse()
        return order
