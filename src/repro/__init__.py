"""repro: Decoupled Software Pipelining (Ottoni et al., MICRO 2005).

A from-scratch reproduction of "Automatic Thread Extraction with
Decoupled Software Pipelining": a compiler IR, the analyses and the
DSWP transformation itself, a DOACROSS baseline, a dual-core CMP
timing model with a synchronization array, and the workloads and
benchmark harness that regenerate every table and figure of the
paper's evaluation.

Quickstart::

    from repro.harness import run_experiment
    from repro.workloads import get_workload

    result = run_experiment(get_workload("mcf"))
    print(f"loop speedup {result.loop_speedup:.2f}x")
"""

from repro.core.doacross import doacross
from repro.core.dswp import DSWPResult, dswp
from repro.harness.runner import run_experiment

__version__ = "1.0.0"

__all__ = ["DSWPResult", "doacross", "dswp", "run_experiment", "__version__"]
