"""Memory dependence analysis (may-alias model).

The paper uses IMPACT's "accurate but conservative" memory analysis and
shows (Section 5.1, epicdec) how much SCC structure depends on its
precision.  We reproduce that with a region-based model in three
precision levels:

* ``CONSERVATIVE`` -- every pair of memory operations may alias (what
  earlier optimisation passes left the epicdec loop with).
* ``REGIONS`` -- operations carry symbolic region tags (``"arr:result"``,
  ``"list"``, ...); distinct tags never alias, same or missing tags may.
* ``REGIONS`` + *affine* annotations -- ops marked
  ``attrs["affine"] = True`` address ``base + f(iteration)`` with an
  injective ``f``; two affine ops in the same region with the same
  address expression alias only within an iteration (no loop-carried
  dependence), and with provably different offsets never alias.  This
  emulates the assembly-level analysis of [10] that rescues epicdec.

CALL instructions are treated as reading and writing all of memory
unless marked ``attrs["pure"] = True``.
"""

from __future__ import annotations

import enum

from repro.ir.instruction import Instruction


class AliasMode(enum.Enum):
    CONSERVATIVE = "conservative"
    REGIONS = "regions"


class AliasModel:
    """Answers may-alias and loop-carried-conflict queries."""

    def __init__(self, mode: AliasMode = AliasMode.REGIONS) -> None:
        self.mode = mode

    @classmethod
    def conservative(cls) -> "AliasModel":
        """Every memory pair may alias (pre-[10] analysis precision)."""
        return cls(AliasMode.CONSERVATIVE)

    @classmethod
    def regions(cls) -> "AliasModel":
        """Region-accurate model with affine refinement (the default)."""
        return cls(AliasMode.REGIONS)

    # ------------------------------------------------------------------
    def _touches_memory(self, inst: Instruction) -> bool:
        if inst.is_memory:
            return True
        return inst.is_call and not inst.attrs.get("pure", False)

    def may_alias(self, a: Instruction, b: Instruction) -> bool:
        """May ``a`` and ``b`` touch the same address (any iterations)?"""
        if not (self._touches_memory(a) and self._touches_memory(b)):
            return False
        if a.is_call or b.is_call:
            return True
        if self.mode is AliasMode.CONSERVATIVE:
            return True
        if a.region is None or b.region is None:
            return True
        if a.region != b.region:
            return False
        if self._affine_pair(a, b) and (a.imm or 0) != (b.imm or 0):
            # Same affine base expression, provably different offsets.
            if a.attrs.get("affine_base") == b.attrs.get("affine_base"):
                return False
        return True

    def conflicts_same_iteration(self, a: Instruction, b: Instruction) -> bool:
        """May ``a`` and ``b`` conflict within one loop iteration?"""
        return self.may_alias(a, b)

    def conflicts_cross_iteration(self, a: Instruction, b: Instruction) -> bool:
        """May ``a`` (iteration i) conflict with ``b`` (iteration j>i)?"""
        if not self.may_alias(a, b):
            return False
        if self.mode is AliasMode.CONSERVATIVE:
            return True
        if self._affine_pair(a, b) and a.attrs.get("affine_base") == b.attrs.get(
            "affine_base"
        ):
            # Injective per-iteration addressing: different iterations
            # touch different addresses.
            return False
        return True

    @staticmethod
    def _affine_pair(a: Instruction, b: Instruction) -> bool:
        return bool(a.attrs.get("affine")) and bool(b.attrs.get("affine"))


def needs_ordering(a: Instruction, b: Instruction) -> bool:
    """Do ``a`` then ``b`` need an ordering dependence if they alias?

    Load/load pairs never do; any pair involving a store or an impure
    call does.
    """
    def writes(inst: Instruction) -> bool:
        return inst.is_store or (inst.is_call and not inst.attrs.get("pure", False))

    return writes(a) or writes(b)
