"""The loop dependence graph (PDG) that drives DSWP (Fig. 3 line 1).

Nodes are the loop's instructions (branches included; pure control-flow
glue -- ``jmp``/``nop`` -- is excluded because the splitter regenerates
terminators per thread).  Arcs carry a kind, an optional register, and
a loop-carried flag:

* ``DATA`` -- register true (flow) dependences, intra-iteration and
  loop-carried.  Anti- and output-dependences on registers are ignored
  (different threads use different register files, Section 2.2.1) with
  the single exception below.
* ``CONTROL`` -- the DSWP control-dependence relation: standard control
  dependence *plus* loop-iteration control dependences (Fig. 4) *plus*
  conditional control dependences (Fig. 5a: when a dependence source is
  controlled by a branch the sink is not, the sink must also hear about
  the branch).
* ``MEMORY`` -- ordering constraints between may-aliasing memory
  operations (and impure calls), intra- and cross-iteration.
* ``OUTPUT`` -- the Fig. 5(b) rule: multiple in-loop definitions of the
  same loop live-out register are tied into one SCC so exactly one
  thread owns the final value.

The graph also records the loop boundary: which uses read loop live-in
values and which definitions produce each live-out register, feeding
the initial/final flow insertion of Section 2.2.4.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.analysis.controldep import loop_iteration_control_deps_detailed
from repro.analysis.liveness import compute_liveness, loop_live_ins, loop_live_outs
from repro.analysis.memdep import AliasModel, needs_ordering
from repro.analysis.scc import DagScc, condense
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.loops import Loop
from repro.ir.types import Opcode, Register

#: Pseudo definition site meaning "defined before the loop".
EXTERNAL = "<external>"


class DepKind(enum.Enum):
    DATA = "data"
    CONTROL = "control"
    MEMORY = "memory"
    OUTPUT = "output"


class DepArc:
    """One dependence arc ``src -> dst`` (src must execute before dst)."""

    __slots__ = ("src", "dst", "kind", "register", "loop_carried", "conditional")

    def __init__(
        self,
        src: Instruction,
        dst: Instruction,
        kind: DepKind,
        register: Optional[Register] = None,
        loop_carried: bool = False,
        conditional: bool = False,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.register = register
        self.loop_carried = loop_carried
        self.conditional = conditional

    def __repr__(self) -> str:
        tag = "+LC" if self.loop_carried else ""
        reg = f" {self.register}" if self.register else ""
        return (
            f"<{self.kind.value}{tag}{reg}: "
            f"{self.src.render()} -> {self.dst.render()}>"
        )


class DependenceGraph:
    """The complete loop dependence graph."""

    def __init__(self, function: Function, loop: Loop) -> None:
        self.function = function
        self.loop = loop
        self.nodes: list[Instruction] = []
        self.arcs: list[DepArc] = []
        #: (register, consumer instruction) pairs reading live-in values.
        self.live_in_uses: list[tuple[Register, Instruction]] = []
        #: live-out register -> definitions reaching the loop exits.
        self.live_out_defs: dict[Register, list[Instruction]] = {}
        self._succ_cache: Optional[dict[Instruction, set[Instruction]]] = None

    # ------------------------------------------------------------------
    def add_arc(self, arc: DepArc) -> None:
        self.arcs.append(arc)
        self._succ_cache = None

    def remove_arc(self, arc: DepArc) -> None:
        """Drop one dependence arc (fault-injection / what-if hook)."""
        self.arcs.remove(arc)
        self._succ_cache = None

    def successors(self) -> dict[Instruction, set[Instruction]]:
        if self._succ_cache is None:
            succ: dict[Instruction, set[Instruction]] = {n: set() for n in self.nodes}
            for arc in self.arcs:
                succ[arc.src].add(arc.dst)
            self._succ_cache = succ
        return self._succ_cache

    def arcs_between(self, src: Instruction, dst: Instruction) -> list[DepArc]:
        return [a for a in self.arcs if a.src is src and a.dst is dst]

    def arcs_from(self, src: Instruction) -> list[DepArc]:
        return [a for a in self.arcs if a.src is src]

    def arcs_to(self, dst: Instruction) -> list[DepArc]:
        return [a for a in self.arcs if a.dst is dst]

    def dag_scc(self) -> DagScc:
        """Condense into the DAG_SCC (Fig. 3 lines 2-4)."""
        return condense(self.nodes, self.successors())

    def control_arcs(self) -> list[DepArc]:
        return [a for a in self.arcs if a.kind is DepKind.CONTROL]


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------

def build_dependence_graph(
    function: Function,
    loop: Loop,
    alias_model: Optional[AliasModel] = None,
) -> DependenceGraph:
    """Build the full dependence graph for ``loop`` (Fig. 3 line 1)."""
    alias_model = alias_model or AliasModel()
    graph = DependenceGraph(function, loop)
    graph.nodes = [
        inst
        for inst in loop.instructions()
        if inst.opcode not in (Opcode.JMP, Opcode.NOP)
    ]
    _add_register_data_deps(graph)
    _add_control_deps(graph)
    _add_memory_deps(graph, alias_model)
    _add_conditional_control_deps(graph)
    _add_live_out_output_deps(graph)
    return graph


# ----------------------------------------------------------------------
# Register data dependences (reaching definitions inside the loop)
# ----------------------------------------------------------------------

def _loop_block_preds(loop: Loop, include_back_edges: bool) -> dict[str, list[str]]:
    preds: dict[str, list[str]] = {b.label: [] for b in loop.blocks()}
    for block in loop.blocks():
        for succ in block.successor_labels():
            if succ not in loop.body:
                continue
            if succ == loop.header and not include_back_edges:
                continue
            preds[succ].append(block.label)
    return preds


def _reaching_defs(
    loop: Loop, include_back_edges: bool
) -> dict[str, dict[Register, set]]:
    """Per-block IN sets: register -> set of defining instructions
    (or the EXTERNAL marker).  The header's IN always contains EXTERNAL
    for every register, standing for pre-loop definitions.
    """
    blocks = loop.blocks()
    preds = _loop_block_preds(loop, include_back_edges)

    gen: dict[str, dict[Register, Instruction]] = {}
    kill: dict[str, set[Register]] = {}
    for block in blocks:
        last_def: dict[Register, Instruction] = {}
        for inst in block:
            for reg in inst.defined_registers():
                last_def[reg] = inst
        gen[block.label] = last_def
        kill[block.label] = set(last_def)

    ins: dict[str, dict[Register, set]] = {b.label: {} for b in blocks}
    outs: dict[str, dict[Register, set]] = {b.label: {} for b in blocks}

    def transfer(label: str, in_map: dict[Register, set]) -> dict[Register, set]:
        out: dict[Register, set] = {
            reg: set(sites) for reg, sites in in_map.items() if reg not in kill[label]
        }
        for reg, inst in gen[label].items():
            out[reg] = {inst}
        return out

    changed = True
    while changed:
        changed = False
        for block in blocks:
            label = block.label
            new_in: dict[Register, set] = {}
            for pred in preds[label]:
                for reg, sites in outs[pred].items():
                    new_in.setdefault(reg, set()).update(sites)
            if label == loop.header:
                # The pre-loop definition also reaches the header for
                # every register (entry edge from outside the loop).
                # Registers never redefined in the loop are handled by
                # the EXTERNAL default at use sites.
                for reg in new_in:
                    new_in[reg].add(EXTERNAL)
            if new_in != ins[label]:
                ins[label] = new_in
                outs[label] = transfer(label, new_in)
                changed = True
            else:
                new_out = transfer(label, new_in)
                if new_out != outs[label]:
                    outs[label] = new_out
                    changed = True
    return {"in": ins, "out": outs}  # type: ignore[return-value]


def _add_register_data_deps(graph: DependenceGraph) -> None:
    loop = graph.loop
    acyclic = _reaching_defs(loop, include_back_edges=False)
    full = _reaching_defs(loop, include_back_edges=True)

    node_set = set(graph.nodes)
    seen_live_in: set[tuple[Register, int]] = set()

    for block in loop.blocks():
        reach_acyclic = {r: set(s) for r, s in acyclic["in"][block.label].items()}
        reach_full = {r: set(s) for r, s in full["in"][block.label].items()}
        for inst in block:
            for reg in inst.used_registers():
                intra_defs = reach_acyclic.get(reg, {EXTERNAL})
                all_defs = reach_full.get(reg, {EXTERNAL})
                for def_site in all_defs:
                    if def_site is EXTERNAL:
                        key = (reg, inst.uid)
                        if key not in seen_live_in:
                            seen_live_in.add(key)
                            graph.live_in_uses.append((reg, inst))
                        continue
                    if def_site not in node_set or inst not in node_set:
                        continue
                    carried = def_site not in intra_defs
                    graph.add_arc(
                        DepArc(def_site, inst, DepKind.DATA, register=reg,
                               loop_carried=carried)
                    )
            # Update local reaching state past this instruction.
            for reg in inst.defined_registers():
                reach_acyclic[reg] = {inst}
                reach_full[reg] = {inst}

    # Live-out definitions: defs reaching the loop's exit edges.
    liveness = compute_liveness(graph.function)
    live_outs = loop_live_outs(graph.function, loop, liveness)
    out_full = full["out"]
    for reg in sorted(live_outs):
        defs: list[Instruction] = []
        for src_label, target in loop.exit_edges():
            if reg not in liveness.live_in[target]:
                continue
            for def_site in out_full[src_label].get(reg, set()):
                if def_site is not EXTERNAL and def_site not in defs:
                    defs.append(def_site)
        if defs:
            graph.live_out_defs[reg] = defs


# ----------------------------------------------------------------------
# Control dependences
# ----------------------------------------------------------------------

def _add_control_deps(graph: DependenceGraph) -> None:
    loop = graph.loop
    deps = loop_iteration_control_deps_detailed(loop)
    node_set = set(graph.nodes)
    for dep_label, controllers in deps.items():
        dep_block = graph.function.block(dep_label)
        for ctrl_label, carried in sorted(controllers.items()):
            branch = graph.function.block(ctrl_label).terminator
            if branch is None or not branch.is_branch or branch not in node_set:
                continue
            for inst in dep_block:
                if inst in node_set and inst is not branch:
                    graph.add_arc(
                        DepArc(branch, inst, DepKind.CONTROL, loop_carried=carried)
                    )


def _add_conditional_control_deps(graph: DependenceGraph) -> None:
    """Fig. 5(a): if D -> U is a data/memory dependence and D is control
    dependent on branch B but U is not, U must also depend on B so the
    consuming thread knows *when* the dependence occurs.
    """
    controllers: dict[Instruction, set[Instruction]] = {}
    for arc in graph.control_arcs():
        controllers.setdefault(arc.dst, set()).add(arc.src)
    new_arcs: list[DepArc] = []
    for arc in list(graph.arcs):
        if arc.kind not in (DepKind.DATA, DepKind.MEMORY):
            continue
        src_ctrl = controllers.get(arc.src, set())
        dst_ctrl = controllers.get(arc.dst, set())
        for branch in src_ctrl - dst_ctrl:
            if branch is arc.dst:
                continue
            new_arcs.append(
                DepArc(branch, arc.dst, DepKind.CONTROL, conditional=True,
                       loop_carried=arc.loop_carried)
            )
            dst_ctrl = dst_ctrl | {branch}
            controllers[arc.dst] = dst_ctrl
    for arc in new_arcs:
        graph.add_arc(arc)


# ----------------------------------------------------------------------
# Memory dependences
# ----------------------------------------------------------------------

def _acyclic_block_reachability(loop: Loop) -> dict[str, set[str]]:
    """label -> labels reachable without following a back edge."""
    succs: dict[str, list[str]] = {}
    for block in loop.blocks():
        succs[block.label] = [
            s for s in block.successor_labels()
            if s in loop.body and s != loop.header
        ]
    reach: dict[str, set[str]] = {}

    def visit(label: str) -> set[str]:
        if label in reach:
            return reach[label]
        reach[label] = set()  # cycle guard (graph is acyclic anyway)
        out: set[str] = set()
        for succ in succs[label]:
            out.add(succ)
            out |= visit(succ)
        reach[label] = out
        return out

    for block in loop.blocks():
        visit(block.label)
    return reach


def _add_memory_deps(graph: DependenceGraph, alias_model: AliasModel) -> None:
    loop = graph.loop
    mem_ops: list[tuple[Instruction, str, int]] = []
    for block in loop.blocks():
        for pos, inst in enumerate(block):
            if inst.is_memory or (inst.is_call and not inst.attrs.get("pure", False)):
                mem_ops.append((inst, block.label, pos))

    reach = _acyclic_block_reachability(loop)
    for i, (u, u_block, u_pos) in enumerate(mem_ops):
        for j, (v, v_block, v_pos) in enumerate(mem_ops):
            if i == j or not needs_ordering(u, v):
                continue
            # Intra-iteration arc u -> v when v can execute after u in
            # the same iteration.
            intra = (
                (u_block == v_block and u_pos < v_pos)
                or (u_block != v_block and v_block in reach[u_block])
            )
            if intra and alias_model.conflicts_same_iteration(u, v):
                graph.add_arc(DepArc(u, v, DepKind.MEMORY))
            # Cross-iteration arc u (iter i) -> v (iter i+k).
            if alias_model.conflicts_cross_iteration(u, v):
                graph.add_arc(DepArc(u, v, DepKind.MEMORY, loop_carried=True))


# ----------------------------------------------------------------------
# Live-out output dependences (Fig. 5b)
# ----------------------------------------------------------------------

def _add_live_out_output_deps(graph: DependenceGraph) -> None:
    for reg, defs in graph.live_out_defs.items():
        if len(defs) < 2:
            continue
        for a in defs:
            for b in defs:
                if a is not b:
                    graph.add_arc(
                        DepArc(a, b, DepKind.OUTPUT, register=reg, loop_carried=True)
                    )
