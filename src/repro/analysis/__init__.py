"""Program analyses: liveness, control/memory dependence, PDG, SCCs, profiling."""

from repro.analysis.controldep import (
    control_dependences_of_graph,
    loop_iteration_control_deps,
    loop_iteration_control_deps_detailed,
    standard_loop_control_deps,
)
from repro.analysis.export import cfg_to_dot, dag_scc_to_dot, pdg_to_dot
from repro.analysis.liveness import (
    LivenessInfo,
    compute_liveness,
    loop_live_ins,
    loop_live_outs,
)
from repro.analysis.memdep import AliasMode, AliasModel, needs_ordering
from repro.analysis.pdg import (
    EXTERNAL,
    DepArc,
    DependenceGraph,
    DepKind,
    build_dependence_graph,
)
from repro.analysis.profiling import LoopProfile, profile_loop
from repro.analysis.selection import LoopCandidate, SelectionReport, select_loops
from repro.analysis.scc import DagScc, condense, strongly_connected_components

__all__ = [
    "AliasMode",
    "AliasModel",
    "DagScc",
    "DepArc",
    "DepKind",
    "DependenceGraph",
    "EXTERNAL",
    "LivenessInfo",
    "LoopCandidate",
    "LoopProfile",
    "SelectionReport",
    "build_dependence_graph",
    "cfg_to_dot",
    "compute_liveness",
    "condense",
    "control_dependences_of_graph",
    "dag_scc_to_dot",
    "loop_iteration_control_deps",
    "loop_iteration_control_deps_detailed",
    "loop_live_ins",
    "loop_live_outs",
    "needs_ordering",
    "pdg_to_dot",
    "profile_loop",
    "select_loops",
    "standard_loop_control_deps",
    "strongly_connected_components",
]
