"""Graphviz (dot) export of the DSWP data structures.

Renders the three graphs a compiler engineer wants to look at while
debugging a partition -- the CFG, the loop dependence graph (with the
paper's solid-intra / dashed-carried convention from Fig. 2(b)), and
the DAG_SCC with an optional stage colouring (Fig. 2(c) / Fig. 7) --
as plain ``.dot`` text, with no Graphviz dependency at build time.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.pdg import DependenceGraph, DepKind
from repro.analysis.scc import DagScc
from repro.core.partition import Partition
from repro.ir.function import Function

_KIND_COLORS = {
    DepKind.DATA: "black",
    DepKind.CONTROL: "blue",
    DepKind.MEMORY: "red",
    DepKind.OUTPUT: "purple",
}

#: Fill colours cycled over pipeline stages.
_STAGE_FILLS = ["lightblue", "lightyellow", "lightpink", "lightgreen",
                "lavender", "mistyrose"]


def _quote(text: str) -> str:
    return '"' + text.replace("\\", "\\\\").replace('"', '\\"') + '"'


def cfg_to_dot(function: Function) -> str:
    """The function's control-flow graph."""
    lines = [f"digraph {_quote(function.name)} {{",
             "  node [shape=box, fontname=monospace];"]
    for block in function.blocks():
        body = "\\l".join(inst.render() for inst in block) + "\\l"
        label = f"{block.label}:\\l{body}"
        shape = ' style="bold"' if block.label == function.entry_label else ""
        lines.append(f"  {_quote(block.label)} [label={_quote(label)}{shape}];")
    for block in function.blocks():
        for succ in block.successor_labels():
            lines.append(f"  {_quote(block.label)} -> {_quote(succ)};")
    lines.append("}")
    return "\n".join(lines)


def pdg_to_dot(graph: DependenceGraph) -> str:
    """The loop dependence graph, Fig. 2(b)-style.

    Intra-iteration arcs are solid, loop-carried arcs dashed; arc
    colour encodes the dependence kind; data arcs are labelled with
    their register.
    """
    lines = [f"digraph {_quote(graph.function.name + '_pdg')} {{",
             "  node [shape=ellipse, fontname=monospace];"]
    ids = {inst.uid: f"n{inst.uid}" for inst in graph.nodes}
    for inst in graph.nodes:
        lines.append(f"  {ids[inst.uid]} [label={_quote(inst.render())}];")
    for arc in graph.arcs:
        attrs = [f"color={_KIND_COLORS[arc.kind]}"]
        if arc.loop_carried:
            attrs.append("style=dashed")
        if arc.register is not None:
            attrs.append(f"label={_quote(str(arc.register))}")
        if arc.conditional:
            attrs.append("arrowhead=empty")
        lines.append(
            f"  {ids[arc.src.uid]} -> {ids[arc.dst.uid]} "
            f"[{', '.join(attrs)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def dag_scc_to_dot(dag: DagScc, partition: Optional[Partition] = None) -> str:
    """The condensed SCC DAG, Fig. 2(c)-style.

    With a ``partition``, each SCC node is filled with its pipeline
    stage's colour (the Fig. 7 presentation).
    """
    stage_of = partition.stage_of_scc() if partition is not None else {}
    lines = ["digraph dag_scc {",
             "  node [shape=box, fontname=monospace];"]
    for sid, members in enumerate(dag.sccs):
        label = f"SCC {sid} ({len(members)} insts)\\l" + "\\l".join(
            m.render() for m in members
        ) + "\\l"
        attrs = [f"label={_quote(label)}"]
        if sid in stage_of:
            fill = _STAGE_FILLS[stage_of[sid] % len(_STAGE_FILLS)]
            attrs.append(f'style=filled, fillcolor="{fill}"')
        lines.append(f"  scc{sid} [{', '.join(attrs)}];")
    for src, dsts in sorted(dag.edges.items()):
        for dst in sorted(dsts):
            lines.append(f"  scc{src} -> scc{dst};")
    lines.append("}")
    return "\n".join(lines)
