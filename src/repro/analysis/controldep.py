"""Control-dependence computation, including the DSWP extensions.

Three layers (Sections 2.2.1 and 2.3 of the paper):

1. **Standard control dependence** (Ferrante-Ottenstein-Warren): block
   ``X`` is control dependent on branch block ``B`` iff ``B`` has a
   successor ``s`` such that ``X`` post-dominates ``s`` but ``X`` does
   not strictly post-dominate ``B``.

2. **Loop-iteration control dependence** (Fig. 4): queues are reused
   every iteration, so thread control flow must match iteration by
   iteration.  We *conceptually peel* the first loop iteration: build a
   graph with two copies of every loop block, route back edges of both
   copies to the second copy's header, compute standard control
   dependence on the peeled graph, and coalesce copy pairs.  This adds
   dependences such as "the latch branch controls whether the header
   executes again" that standard control dependence misses.

3. Both are computed over the *loop subgraph* (loop blocks plus a
   virtual exit reached by every exit edge), which is the region DSWP
   transforms.
"""

from __future__ import annotations

from repro.ir.dominance import VIRTUAL_EXIT, postdominator_tree_of_graph
from repro.ir.loops import Loop


def control_dependences_of_graph(
    succs: dict[str, list[str]], exit_labels: list[str]
) -> dict[str, set[str]]:
    """Standard control dependence on a label graph.

    Returns ``{dependent_block: {controlling_block, ...}}``.  Only
    blocks with more than one successor can control anything.
    """
    pdt = postdominator_tree_of_graph(succs, exit_labels)
    deps: dict[str, set[str]] = {label: set() for label in succs}
    for b, outs in succs.items():
        if len(set(outs)) < 2:
            continue
        for s in outs:
            # Walk the postdominator tree from s up to (but excluding)
            # ipostdom(b); every node on the way is control dep on b.
            stop = pdt.idom.get(b)
            node = s
            while node is not None and node != stop and node != VIRTUAL_EXIT:
                deps.setdefault(node, set()).add(b)
                node = pdt.idom.get(node)
    return deps


def loop_subgraph(loop: Loop) -> tuple[dict[str, list[str]], list[str]]:
    """CFG restricted to the loop; exit edges retarget a virtual label.

    Returns (successor map, exit labels).  The virtual label ``<out>``
    stands for all code after the loop.
    """
    out_label = "<out>"
    succs: dict[str, list[str]] = {}
    has_exit = False
    for block in loop.blocks():
        targets = []
        for succ in block.successor_labels():
            if succ in loop.body:
                targets.append(succ)
            else:
                targets.append(out_label)
                has_exit = True
        succs[block.label] = targets
    if has_exit:
        succs[out_label] = []
    return succs, [out_label] if has_exit else []


def standard_loop_control_deps(loop: Loop) -> dict[str, set[str]]:
    """Standard (forward, acyclic) control dependences within the loop.

    Matches the "standard control dependence graph" of Fig. 4(b): back
    edges are removed before the FOW computation, so a latch branch that
    only decides whether the *next* iteration runs controls nothing --
    that is exactly the gap the loop-iteration extension fills.
    """
    succs, exits = loop_subgraph(loop)
    forward = {
        label: [t for t in targets if t != loop.header]
        for label, targets in succs.items()
    }
    deps = control_dependences_of_graph(forward, exits or ["<out>"])
    deps.pop("<out>", None)
    return deps


def _peeled(label: str, copy: int) -> str:
    return f"{label}@{copy}"


def _peeled_graph(loop: Loop, copies: int) -> dict[str, list[str]]:
    """``copies`` copies of the loop region; back edges of copy *i* go
    to copy *i+1*'s header (the last copy loops to itself); all exit
    edges share one virtual ``<out>`` node."""
    succs, _ = loop_subgraph(loop)
    out_label = "<out>"
    peeled: dict[str, list[str]] = {out_label: []}
    last = copies - 1
    for copy in range(copies):
        for label, targets in succs.items():
            if label == out_label:
                continue
            new_targets = []
            for target in targets:
                if target == out_label:
                    new_targets.append(out_label)
                elif target == loop.header:
                    new_targets.append(_peeled(loop.header, min(copy + 1, last)))
                else:
                    new_targets.append(_peeled(target, copy))
            peeled[_peeled(label, copy)] = new_targets
    return peeled


def loop_iteration_control_deps_detailed(
    loop: Loop,
) -> dict[str, dict[str, bool]]:
    """Control dependences with per-arc carried flags.

    Returns ``{dependent_block: {controlling_block: carried}}`` where
    ``carried`` is True when the dependence crosses the iteration
    boundary (the controlling branch of iteration *i* decides execution
    in iteration *i+1*) and never occurs within one iteration.

    Uses a three-copy peel and reads the arcs whose *controller* is the
    middle copy: that copy sees both a preceding and a following
    iteration, so controller@1 -> dependent@1 is unambiguously
    intra-iteration and controller@1 -> dependent@2 unambiguously
    carried (the last copy's self-loop would conflate the two).
    """
    peeled = _peeled_graph(loop, copies=3)
    out_label = "<out>"
    deps_peeled = control_dependences_of_graph(peeled, [out_label])
    succs, _ = loop_subgraph(loop)
    result: dict[str, dict[str, bool]] = {
        label: {} for label in succs if label != out_label
    }
    for dep_label, controllers in deps_peeled.items():
        if dep_label == out_label:
            continue
        base_dep, _, dep_copy = dep_label.rpartition("@")
        for controller in controllers:
            if controller == out_label:
                continue
            base_ctrl, _, ctrl_copy = controller.rpartition("@")
            if ctrl_copy != "1":
                continue
            carried = dep_copy != "1"
            prev = result[base_dep].get(base_ctrl)
            # Intra-iteration (carried=False) wins if both exist.
            if prev is None or (prev and not carried):
                result[base_dep][base_ctrl] = carried
    return result


def loop_iteration_control_deps(loop: Loop) -> dict[str, set[str]]:
    """The DSWP control-dependence relation (Fig. 4): standard control
    dependences plus loop-iteration control dependences, coalesced over
    the peeled copies."""
    detailed = loop_iteration_control_deps_detailed(loop)
    return {label: set(ctrl) for label, ctrl in detailed.items()}
