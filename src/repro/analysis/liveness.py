"""Block-level liveness analysis plus loop live-in/live-out queries.

DSWP needs liveness at the loop boundary (Section 2.2.4): loop live-ins
become *initial flows* to auxiliary threads, loop live-outs become
*final flows* back to the main thread.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.loops import Loop
from repro.ir.types import Register


class LivenessInfo:
    """Live-in / live-out register sets per basic block."""

    def __init__(
        self,
        live_in: dict[str, frozenset[Register]],
        live_out: dict[str, frozenset[Register]],
    ) -> None:
        self.live_in = live_in
        self.live_out = live_out


def block_use_def(block) -> tuple[set[Register], set[Register]]:
    """(upward-exposed uses, definitions) of a block."""
    uses: set[Register] = set()
    defs: set[Register] = set()
    for inst in block:
        for reg in inst.used_registers():
            if reg not in defs:
                uses.add(reg)
        defs.update(inst.defined_registers())
    return uses, defs


def compute_liveness(func: Function) -> LivenessInfo:
    """Iterative backward liveness over the whole function."""
    use: dict[str, set[Register]] = {}
    defs: dict[str, set[Register]] = {}
    for block in func.blocks():
        use[block.label], defs[block.label] = block_use_def(block)

    live_in: dict[str, set[Register]] = {b.label: set() for b in func.blocks()}
    live_out: dict[str, set[Register]] = {b.label: set() for b in func.blocks()}
    changed = True
    while changed:
        changed = False
        for block in reversed(func.reverse_postorder()):
            label = block.label
            out: set[Register] = set()
            for succ in block.successor_labels():
                out |= live_in[succ]
            new_in = use[label] | (out - defs[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return LivenessInfo(
        {k: frozenset(v) for k, v in live_in.items()},
        {k: frozenset(v) for k, v in live_out.items()},
    )


def loop_live_ins(func: Function, loop: Loop, liveness: LivenessInfo) -> set[Register]:
    """Registers whose pre-loop value may be read inside the loop.

    These are the registers live into the loop header that are actually
    used by some loop instruction.
    """
    used_in_loop: set[Register] = set()
    for inst in loop.instructions():
        used_in_loop.update(inst.used_registers())
    return set(liveness.live_in[loop.header]) & used_in_loop


def loop_live_outs(func: Function, loop: Loop, liveness: LivenessInfo) -> set[Register]:
    """Registers defined in the loop and live on some exit edge."""
    defined_in_loop: set[Register] = set()
    for inst in loop.instructions():
        defined_in_loop.update(inst.defined_registers())
    live_at_exits: set[Register] = set()
    for _, target in loop.exit_edges():
        live_at_exits |= liveness.live_in[target]
    return defined_in_loop & live_at_exits
