"""Strongly connected components and the DAG_SCC condensation.

Step 2 of the DSWP algorithm (Fig. 3 lines 2-4): find the SCCs of the
loop dependence graph -- each SCC is a loop recurrence that must stay
within one thread -- and coalesce them into a DAG whose topological
structure admits a pipeline partitioning.
"""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

Node = TypeVar("Node", bound=Hashable)


def strongly_connected_components(
    nodes: Iterable[Node], successors: dict[Node, set[Node]]
) -> list[list[Node]]:
    """Tarjan's algorithm, iterative.  Returns SCCs in reverse
    topological order (every SCC appears before its predecessors'...
    successors -- i.e. callees first), each as a list of nodes.
    """
    index: dict[Node, int] = {}
    lowlink: dict[Node, int] = {}
    on_stack: set[Node] = set()
    stack: list[Node] = []
    sccs: list[list[Node]] = []
    counter = [0]

    def ordered(node: Node):
        # Successor sets of rich nodes (e.g. Instructions) iterate in
        # hash (memory-address) order; sort so SCC numbering -- and
        # everything downstream that tie-breaks on it -- is stable
        # across runs.
        return iter(sorted(
            successors.get(node, ()),
            key=lambda n: getattr(n, "uid", n),
        ))

    def strongconnect(root: Node) -> None:
        work: list[tuple[Node, iter]] = [(root, ordered(root))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, ordered(succ)))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if not advanced:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    sccs.append(scc)

    for node in nodes:
        if node not in index:
            strongconnect(node)
    return sccs


class DagScc:
    """The condensation of a dependence graph into its SCC DAG."""

    def __init__(
        self,
        sccs: list[list[Node]],
        edges: dict[int, set[int]],
    ) -> None:
        #: SCC id -> member nodes (ids are 0..n-1 in topological order).
        self.sccs = sccs
        #: SCC id -> successor SCC ids.
        self.edges = edges

    def __len__(self) -> int:
        return len(self.sccs)

    def scc_of(self) -> dict[Node, int]:
        out: dict[Node, int] = {}
        for sid, members in enumerate(self.sccs):
            for node in members:
                out[node] = sid
        return out

    def predecessors(self) -> dict[int, set[int]]:
        preds: dict[int, set[int]] = {sid: set() for sid in range(len(self.sccs))}
        for src, dsts in self.edges.items():
            for dst in dsts:
                preds[dst].add(src)
        return preds

    def topological_order(self) -> list[int]:
        """SCC ids in a topological order (ids are already topological,
        but this re-checks and is used as the canonical ordering)."""
        preds = self.predecessors()
        remaining = {sid: len(ps) for sid, ps in preds.items()}
        ready = sorted(sid for sid, n in remaining.items() if n == 0)
        order: list[int] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in sorted(self.edges.get(node, ())):
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    ready.append(succ)
            ready.sort()
        if len(order) != len(self.sccs):
            raise ValueError("DAG_SCC contains a cycle (condensation bug)")
        return order


def condense(
    nodes: Iterable[Node], successors: dict[Node, set[Node]]
) -> DagScc:
    """Build the DAG_SCC for a dependence graph."""
    nodes = list(nodes)
    raw_sccs = strongly_connected_components(nodes, successors)
    # Tarjan emits SCCs in reverse topological order; flip so that SCC 0
    # has no predecessors (pipeline stage order).
    raw_sccs.reverse()
    scc_of: dict[Node, int] = {}
    for sid, members in enumerate(raw_sccs):
        for node in members:
            scc_of[node] = sid
    edges: dict[int, set[int]] = {sid: set() for sid in range(len(raw_sccs))}
    for node in nodes:
        for succ in successors.get(node, ()):
            a, b = scc_of[node], scc_of[succ]
            if a != b:
                edges[a].add(b)
    return DagScc(raw_sccs, edges)
