"""Execution profiling by direct interpretation.

Stands in for the IMPACT profiling tools: runs the program once on a
training input and records per-block execution counts, from which the
partitioner derives per-instruction weights (average executions per
loop iteration) and the loop trip statistics reported in Table 1.
"""

from __future__ import annotations

from typing import Optional

from repro.interp.interpreter import CallHandler, run_function
from repro.interp.memory import Memory
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.loops import Loop
from repro.ir.types import Register


class LoopProfile:
    """Profile information about one loop."""

    def __init__(
        self,
        block_counts: dict[str, int],
        header_trips: int,
        loop: Loop,
    ) -> None:
        self.block_counts = dict(block_counts)
        #: Number of times the loop header executed.
        self.header_trips = max(header_trips, 1)
        self.loop = loop

    def block_weight(self, label: str) -> float:
        """Average executions of ``label`` per loop iteration."""
        return self.block_counts.get(label, 0) / self.header_trips

    def instruction_weight(self, function: Function, inst: Instruction) -> float:
        for block in self.loop.blocks():
            if inst in block.instructions:
                return self.block_weight(block.label)
        return 0.0

    @staticmethod
    def uniform(loop: Loop) -> "LoopProfile":
        """A flat profile (weight 1 everywhere) for unprofiled code."""
        counts = {b.label: 1 for b in loop.blocks()}
        return LoopProfile(counts, 1, loop)


def profile_loop(
    function: Function,
    loop: Loop,
    memory: Memory,
    initial_regs: Optional[dict[Register, int]] = None,
    max_steps: int = 10_000_000,
    call_handlers: Optional[dict[str, CallHandler]] = None,
) -> LoopProfile:
    """Run ``function`` on a *copy* of ``memory`` and profile ``loop``."""
    result = run_function(
        function,
        memory.clone(),
        initial_regs=initial_regs,
        max_steps=max_steps,
        record_profile=True,
        call_handlers=call_handlers,
    )
    counts = result.block_counts or {}
    return LoopProfile(counts, counts.get(loop.header, 0), loop)
