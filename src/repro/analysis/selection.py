"""Candidate-loop selection (the §4 methodology).

The paper applies DSWP "to the most important visible loop that
executes at least [10] iterations on average each time it is entered",
and discards applications where "even after aggressive inlining, no
long running loops were visible to the compiler".  This module
implements that selection: given a function and a profile, rank every
natural loop by the fraction of dynamic instructions it covers,
filtered by the average-trip-count threshold, and report why rejected
loops were rejected -- the information a compiler driver needs to pick
the DSWP target (and the numbers behind Table 1's Ex.% column).
"""

from __future__ import annotations

from typing import Optional

from repro.interp.interpreter import CallHandler, run_function
from repro.interp.memory import Memory
from repro.ir.function import Function
from repro.ir.loops import Loop, find_loops, loop_nest_depth
from repro.ir.types import Register


class LoopCandidate:
    """One ranked loop."""

    def __init__(
        self,
        loop: Loop,
        nest_depth: int,
        entries: int,
        header_trips: int,
        dynamic_instructions: int,
        coverage: float,
    ) -> None:
        self.loop = loop
        self.nest_depth = nest_depth
        #: How many times the loop was entered from outside.
        self.entries = entries
        #: Total header executions across all entries.
        self.header_trips = header_trips
        #: Dynamic instructions executed inside the loop body.
        self.dynamic_instructions = dynamic_instructions
        #: Fraction of the whole run's dynamic instructions.
        self.coverage = coverage

    @property
    def average_trip_count(self) -> float:
        if self.entries == 0:
            return 0.0
        return self.header_trips / self.entries

    def __repr__(self) -> str:
        return (
            f"<LoopCandidate {self.loop.header}: {self.coverage:.0%} "
            f"coverage, {self.average_trip_count:.1f} trips/entry>"
        )


class SelectionReport:
    """All loops of a function, ranked, with the chosen candidate."""

    def __init__(self, candidates: list[LoopCandidate],
                 min_trip_count: float) -> None:
        self.candidates = candidates
        self.min_trip_count = min_trip_count

    @property
    def eligible(self) -> list[LoopCandidate]:
        return [
            c for c in self.candidates
            if c.average_trip_count >= self.min_trip_count
        ]

    @property
    def selected(self) -> Optional[LoopCandidate]:
        """The paper's pick: the highest-coverage eligible loop."""
        eligible = self.eligible
        if not eligible:
            return None
        return max(eligible, key=lambda c: c.coverage)

    def rejection_reason(self, candidate: LoopCandidate) -> Optional[str]:
        if candidate.average_trip_count < self.min_trip_count:
            return (
                f"average trip count {candidate.average_trip_count:.1f} "
                f"below {self.min_trip_count:.0f}"
            )
        return None


def select_loops(
    function: Function,
    memory: Memory,
    initial_regs: Optional[dict[Register, int]] = None,
    min_trip_count: float = 10.0,
    max_steps: int = 10_000_000,
    call_handlers: Optional[dict[str, CallHandler]] = None,
) -> SelectionReport:
    """Profile ``function`` once and rank its loops for DSWP.

    ``min_trip_count`` is the paper's "at least 10 iterations on
    average each time it is entered" threshold.
    """
    result = run_function(
        function, memory.clone(), initial_regs=initial_regs,
        max_steps=max_steps, record_profile=True,
        call_handlers=call_handlers,
    )
    counts = result.block_counts or {}
    total_dynamic = sum(
        counts.get(block.label, 0) * len(block.instructions)
        for block in function.blocks()
    )
    candidates = []
    for loop in find_loops(function):
        header_trips = counts.get(loop.header, 0)
        # Entries: prefer the preheader's execution count when it
        # unconditionally enters the loop; otherwise approximate as
        # header trips minus latch executions (exact when every latch
        # ends in an unconditional back edge).
        entries = None
        preheader = loop.preheader()
        if preheader is not None:
            term = function.block(preheader).terminator
            if term is not None and term.targets == [loop.header]:
                entries = counts.get(preheader, 0)
        if entries is None:
            back_edge_trips = sum(
                counts.get(latch, 0) for latch in loop.latches()
            )
            entries = max(header_trips - back_edge_trips, 0)
        dynamic = sum(
            counts.get(block.label, 0) * len(block.instructions)
            for block in loop.blocks()
        )
        coverage = dynamic / total_dynamic if total_dynamic else 0.0
        candidates.append(
            LoopCandidate(
                loop,
                loop_nest_depth(function, loop),
                entries,
                header_trips,
                dynamic,
                coverage,
            )
        )
    candidates.sort(key=lambda c: -c.coverage)
    return SelectionReport(candidates, min_trip_count)
