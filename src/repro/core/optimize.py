"""Post-split flow optimisations (the last paragraph of Section 2.2.4).

    "Redundant flow elimination can be used to avoid communicating a
    value more than once inside the loop.  In addition, code motion can
    be performed to move initial (final) flow instructions as early
    (late) as possible to enhance parallelism by overlapping the fill
    (spill) portion of the DSWP'ed loop with other work."

Redundant flow elimination happens during planning
(:class:`repro.core.flows.FlowPlan` keys flows by source/register/
thread).  This module supplies the two code-motion passes:

* :func:`hoist_initial_flows` moves each initial-flow ``produce`` in
  the main thread as early as its operand allows -- right after the
  last definition of the produced register in its block (or to the
  block top) -- so the auxiliary thread starts filling while the main
  thread still executes pre-loop work;
* :func:`sink_final_flows` moves each final-flow ``consume`` in the
  main thread's exit staging down to just before the first use of the
  consumed register (or the block terminator), so post-loop work that
  does not need the value overlaps with the auxiliary thread's spill.

Both passes are purely intra-block (placement across blocks would need
the produce/consume to stay on every path exactly once); they are
no-ops on blocks that offer no slack.
"""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.types import Opcode


def _last_def_index(block: BasicBlock, register, before: int) -> int:
    """Index just after the last def of ``register`` before ``before``
    (0 when the register is not defined in the block prefix)."""
    last = 0
    for idx in range(before):
        if register in block.instructions[idx].defined_registers():
            last = idx + 1
    return last


def hoist_initial_flows(function: Function, queues: set[int]) -> int:
    """Hoist initial-flow produces as early as possible.  Returns the
    number of instructions moved."""
    moved = 0
    for block in function.blocks():
        produces = [
            (idx, inst)
            for idx, inst in enumerate(block.instructions)
            if inst.opcode is Opcode.PRODUCE and inst.queue in queues
        ]
        # Process top-down so earlier hoists do not disturb later ones.
        for idx, inst in produces:
            current = block.instructions.index(inst)
            target = _last_def_index(block, inst.srcs[0], current) if inst.srcs else 0
            if target < current:
                block.instructions.pop(current)
                block.instructions.insert(target, inst)
                moved += 1
    return moved


def sink_final_flows(function: Function, queues: set[int]) -> int:
    """Sink final-flow consumes as late as their first use allows.
    Returns the number of instructions moved."""
    moved = 0
    for block in function.blocks():
        consumes = [
            inst
            for inst in block.instructions
            if inst.opcode is Opcode.CONSUME and inst.queue in queues
        ]
        # Process bottom-up so later sinks do not disturb earlier ones.
        for inst in reversed(consumes):
            current = block.instructions.index(inst)
            limit = len(block.instructions)
            term = block.terminator
            if term is not None:
                limit -= 1
            target = limit
            for idx in range(current + 1, limit):
                probe = block.instructions[idx]
                if inst.dest is not None and (
                    inst.dest in probe.used_registers()
                    or inst.dest in probe.defined_registers()
                ):
                    target = idx
                    break
            else:
                # Also respect a terminator that reads the register.
                if (term is not None and inst.dest is not None
                        and inst.dest in term.used_registers()):
                    target = limit
            if target > current + 1:
                block.instructions.pop(current)
                block.instructions.insert(target - 1, inst)
                moved += 1
    return moved


def optimize_flows(function: Function, initial_queues: set[int],
                   final_queues: set[int]) -> dict[str, int]:
    """Run both motions; returns how many instructions each moved."""
    return {
        "hoisted": hoist_initial_flows(function, initial_queues),
        "sunk": sink_final_flows(function, final_queues),
    }
