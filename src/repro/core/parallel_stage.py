"""Parallel-stage DSWP: replicate a recurrence-free consumer stage.

The paper's pipelines assign each stage to one core, so throughput is
capped by the slowest stage.  When the bottleneck stage carries *no*
recurrence (its SCCs are singletons, or recognised reductions), its
iterations are mutually independent and the stage can be replicated --
the insight behind the follow-on parallel-stage DSWP (PS-DSWP) work,
and visible in this paper's own data: the Fig. 8 loops that stall the
producer on full queues are exactly the ones whose consumer stage is
the bottleneck.

Construction (for a 2-stage pipeline and ``replicas = k``):

1. run the standard DSWP split;
2. **unroll the main (producer) thread's transformed loop by k** using
   the general unroller: copy *j* executes iterations ≡ j (mod k);
3. remap every loop-flow produce in copy *j* onto replica *j*'s queue
   set -- the producer now deals values round-robin;
4. clone the auxiliary thread *k* times with matching queue sets; each
   replica sees every k-th iteration, which is exactly the stream of
   control predicates it is sent;
5. wind-down: the main thread's exit staging sends one exit-valued
   predicate on every replica's header-branch queue (replicas that
   already exited leave a harmless leftover), then folds the replicas'
   reduction partials together; replicas beyond the first are seeded
   with the reduction identity instead of the live-in value.

Safety conditions (checked, :class:`ParallelStageError` otherwise):
the consumer stage's recurrences are all recognised reductions; its
memory operations cannot conflict across iterations (affine model) and
it contains no impure calls; its live-outs are reductions; the loop
header ends in an exit branch owned by the producer (so an idle
replica always waits at its header-predicate consume, never at a data
consume).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.memdep import AliasModel, needs_ordering
from repro.analysis.pdg import DepKind
from repro.core.doall import Reduction, _recognise_reduction
from repro.core.dswp import dswp
from repro.core.flows import FlowKind, QueueAllocator
from repro.core.unroll import unroll_loop
from repro.interp.multithread import ThreadProgram
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.loops import Loop, find_loop_by_header, find_loops
from repro.ir.types import Opcode, RegClass


class ParallelStageError(RuntimeError):
    """The consumer stage cannot be replicated."""


class ParallelStageResult:
    def __init__(self, program: ThreadProgram, replicas: int,
                 reductions: list[Reduction]) -> None:
        self.program = program
        self.replicas = replicas
        self.reductions = reductions


def parallel_stage_dswp(
    function: Function,
    loop: Optional[Loop] = None,
    replicas: int = 2,
    alias_model: Optional[AliasModel] = None,
    profile=None,
    partition=None,
    queue_limit: int = 256,
) -> ParallelStageResult:
    """Build a 1-producer / k-replica-consumer pipeline for ``loop``."""
    if replicas < 2:
        raise ParallelStageError("need at least two replicas")
    if loop is None:
        loops = find_loops(function)
        if not loops:
            raise ParallelStageError(f"{function.name} contains no loops")
        loop = loops[0]
    base = dswp(function, loop, threads=2, alias_model=alias_model,
                profile=profile, partition=partition,
                require_profitable=False, queue_limit=queue_limit)
    if not base.applied:
        raise ParallelStageError(f"DSWP itself declined: {base.reason}")
    if len(base.partition) != 2:
        raise ParallelStageError("expected a 2-stage pipeline to replicate")
    split = base._split
    plan = split.flow_plan
    assignment = split.assignment
    graph = base.graph

    # ------------------------------------------------------------------
    # Safety checks on the consumer stage.
    # ------------------------------------------------------------------
    stage1 = [inst for inst, t in assignment.items() if t == 1]
    stage1_ids = {i.uid for i in stage1}
    reductions: list[Reduction] = []
    for scc in base.dag.sccs:
        if not any(m.uid in stage1_ids for m in scc):
            continue
        recurrent = len(scc) > 1 or any(
            a.src is scc[0] and a.dst is scc[0] for a in graph.arcs
        )
        if not recurrent:
            continue
        red = _recognise_reduction(scc)
        if red is None:
            raise ParallelStageError(
                f"consumer-stage recurrence is not a reduction: "
                f"{[i.render() for i in scc]}"
            )
        reductions.append(red)
    for inst in stage1:
        if inst.is_call and not inst.attrs.get("pure", False):
            raise ParallelStageError("impure call in the consumer stage")
    mem1 = [i for i in stage1 if i.is_memory]
    for a in mem1:
        for b in mem1:
            if a is b:
                continue
            model = alias_model or AliasModel()
            if needs_ordering(a, b) and model.conflicts_cross_iteration(a, b):
                raise ParallelStageError(
                    "consumer-stage iterations conflict through memory: "
                    f"{a.render()} vs {b.render()}"
                )
    reduction_regs = {r.register for r in reductions}
    illegal = {f.register for f in plan.final_flows} - reduction_regs
    if illegal:
        raise ParallelStageError(
            f"consumer live-outs {sorted(illegal)} are not reductions"
        )
    # Round-robin distribution sends adjacent iterations to different
    # replicas, so a value carried from iteration i-1 into the consumer
    # stage would arrive on the wrong replica's queue: every dependence
    # into the replicated stage must be intra-iteration -- with one
    # repairable exception.  A carried *counted-induction* value
    # (``add i, i, step``) can be *localised*: each replica recomputes
    # its own copy (seed ``i + j*step``, stride ``k*step``) instead of
    # consuming the stream, the way PS-DSWP rematerialises inductions.
    localised: dict[int, "object"] = {}  # flow queue -> induction info
    for arc in graph.arcs:
        if not (arc.loop_carried
                and assignment.get(arc.src) == 0
                and assignment.get(arc.dst) == 1):
            continue
        src = arc.src
        if (arc.kind is DepKind.DATA
                and src.opcode is Opcode.ADD
                and src.imm is not None and src.imm > 0
                and src.dest is not None and src.srcs == [src.dest]):
            flow = next(
                (f for f in plan.loop_flows
                 if f.kind is FlowKind.DATA and f.source is src
                 and f.register == arc.register), None,
            )
            init = next(
                (f for f in plan.initial_flows
                 if f.register == arc.register), None,
            )
            if flow is not None and init is not None:
                localised[flow.queue] = (src.dest, src.imm)
                continue
        raise ParallelStageError(
            f"loop-carried dependence into the consumer stage: {arc!r}"
        )
    header_term = function.block(loop.header).terminator
    if header_term is None or not header_term.is_branch or not any(
        t not in loop.body for t in header_term.targets
    ):
        raise ParallelStageError("loop header must end in an exit branch")
    if assignment.get(header_term) != 0:
        raise ParallelStageError("the header exit branch must stay with "
                                 "the producer")
    header_flow = next(
        (f for f in plan.loop_flows
         if f.kind is FlowKind.CONTROL and f.source is header_term), None,
    )
    if header_flow is None:
        raise ParallelStageError("consumer does not duplicate the header "
                                 "branch (nothing to replicate against)")
    exit_value = 1 if header_term.targets[0] not in loop.body else 0
    # An idle replica must always be parked at its header-predicate
    # consume: the aux thread's header block has to start with it.
    aux_header = split.program.threads[1].block(loop.header)
    first = aux_header.instructions[0]
    if not (first.opcode is Opcode.CONSUME
            and first.queue == header_flow.queue):
        raise ParallelStageError(
            "auxiliary thread consumes data before the header predicate; "
            "an idle replica could starve mid-iteration at wind-down"
        )

    # ------------------------------------------------------------------
    # Queue maps: copy 0 keeps the original ids.
    # ------------------------------------------------------------------
    alloc = QueueAllocator(queue_limit)
    alloc._next = max(
        [f.queue for f in plan.loop_flows]
        + [f.queue for f in plan.initial_flows]
        + [f.queue for f in plan.final_flows]
        + [-1]
    ) + 1
    loop_queues = sorted({f.queue for f in plan.loop_flows})
    init_queues = sorted({f.queue for f in plan.initial_flows})
    final_queues = sorted({f.queue for f in plan.final_flows})
    qmap: list[dict[int, int]] = [dict()]  # copy 0: identity
    for q in loop_queues + init_queues + final_queues:
        qmap[0][q] = q
    for j in range(1, replicas):
        qmap.append({q: alloc.allocate()
                     for q in loop_queues + init_queues + final_queues})

    main = _build_main(split, loop, replicas, qmap, header_flow,
                       exit_value, reductions, plan, localised)
    aux_template = split.program.threads[1]
    auxes = [_clone_aux(aux_template, qmap[j], j, localised, replicas)
             for j in range(replicas)]
    program = ThreadProgram([main] + auxes,
                            name=f"{function.name}@ps-dswp")
    return ParallelStageResult(program, replicas, reductions)


def _build_main(split, loop, replicas, qmap, header_flow, exit_value,
                reductions, plan, localised) -> Function:
    main0 = split.program.threads[0]
    main_loop = find_loop_by_header(main0, loop.header)
    unrolled = unroll_loop(main0, main_loop, replicas)
    unrolled.sync_register_counter()
    tmp = unrolled.new_reg(RegClass.GEN)

    new_loop = find_loop_by_header(unrolled, loop.header)

    def copy_index(label: str) -> int:
        if "@u" in label:
            return int(label.rsplit("@u", 1)[1])
        return 0

    # 3. Remap loop-flow produces per unroll copy; localised-induction
    # streams are not consumed by anyone, so drop their produces.
    for block in new_loop.blocks():
        j = copy_index(block.label)
        for inst in list(block.instructions):
            if inst.opcode is Opcode.PRODUCE and inst.queue in qmap[0]:
                if inst.queue in localised:
                    block.instructions.remove(inst)
                else:
                    inst.queue = qmap[j].get(inst.queue, inst.queue)

    # 5a. Preheader: replicate initial flows; reductions seed identity.
    pre = unrolled.block(loop.preheader())
    reduction_regs = {r.register for r in reductions}
    zero_emitted = False
    extra: list[Instruction] = []
    for inst in list(pre.instructions):
        if inst.opcode is Opcode.PRODUCE and inst.queue in qmap[0]:
            for j in range(1, replicas):
                reg = inst.srcs[0] if inst.srcs else None
                if reg in reduction_regs:
                    if not zero_emitted:
                        pre.insert_before(
                            inst, Instruction(Opcode.MOV, dest=tmp, imm=0)
                        )
                        zero_emitted = True
                    dup = Instruction(Opcode.PRODUCE, srcs=[tmp],
                                      queue=qmap[j][inst.queue])
                else:
                    dup = Instruction(Opcode.PRODUCE, srcs=list(inst.srcs),
                                      queue=qmap[j][inst.queue])
                pre.insert_after(inst, dup)

    # 5b. Exit staging: wind-down predicates + partial combining.  When
    # the original split needed no final flows there are no staging
    # blocks, so create one per outside target first.
    if not any(b.label.startswith("dswp_exit_") for b in unrolled.blocks()):
        staging: dict[str, str] = {}
        for label in sorted(new_loop.body):
            term = unrolled.block(label).terminator
            if term is None:
                continue
            for idx, target in enumerate(list(term.targets)):
                if target in new_loop.body or target.startswith("dswp_exit_"):
                    continue
                stage_label = staging.get(target)
                if stage_label is None:
                    stage_label = f"dswp_exit_ps{len(staging)}"
                    staging[target] = stage_label
                    stage = unrolled.add_block(stage_label)
                    stage.append(Instruction(Opcode.JMP, targets=[target]))
                term.targets[idx] = stage_label

    for block in unrolled.blocks():
        if not (block.label.startswith("dswp_exit_")):
            continue
        # Send the exit-valued predicate to every replica's header
        # queue; replicas that already saw their own exit leave a
        # harmless leftover entry.
        block.instructions.insert(0, Instruction(
            Opcode.MOV, dest=tmp, imm=exit_value
        ))
        pos = 1
        for j in range(replicas):
            block.instructions.insert(pos, Instruction(
                Opcode.PRODUCE, srcs=[tmp],
                queue=qmap[j][header_flow.queue],
            ))
            pos += 1
        # Rewrite the final-flow consumes: fold in every replica.
        rewritten: list[Instruction] = []
        for inst in block.instructions:
            if (inst.opcode is Opcode.CONSUME
                    and inst.queue in qmap[0]
                    and inst.queue in {f.queue for f in plan.final_flows}):
                red = next(r for r in reductions
                           if r.register == inst.dest)
                rewritten.append(Instruction(
                    Opcode.CONSUME, dest=inst.dest, queue=qmap[0][inst.queue]
                ))
                for j in range(1, replicas):
                    rewritten.append(Instruction(
                        Opcode.CONSUME, dest=tmp,
                        queue=qmap[j][inst.queue],
                    ))
                    rewritten.append(Instruction(
                        red.opcode, dest=inst.dest,
                        srcs=[inst.dest, tmp],
                    ))
                    if red.mask is not None:
                        rewritten.append(Instruction(
                            Opcode.AND, dest=inst.dest,
                            srcs=[inst.dest], imm=red.mask.imm,
                        ))
            else:
                rewritten.append(inst)
        block.instructions[:] = rewritten
    unrolled.sync_register_counter()
    return unrolled


def _clone_aux(template: Function, queue_map: dict[int, int],
               replica: int, localised: dict, replicas: int) -> Function:
    func = Function(f"{template.name}#r{replica}")
    for block in template.blocks():
        copy = func.add_block(block.label,
                              entry=block.label == template.entry_label)
        for inst in block:
            if inst.opcode is Opcode.CONSUME and inst.queue in localised:
                # Localised induction: recompute instead of consuming.
                reg, step = localised[inst.queue]
                copy.append(Instruction(
                    Opcode.ADD, dest=reg, srcs=[reg],
                    imm=step * replicas, origin=inst,
                ))
                continue
            cloned = Instruction(
                inst.opcode,
                dest=inst.dest,
                srcs=list(inst.srcs),
                imm=inst.imm,
                targets=list(inst.targets),
                region=inst.region,
                queue=queue_map.get(inst.queue, inst.queue)
                if inst.queue is not None else None,
                origin=inst,
                attrs=dict(inst.attrs),
            )
            copy.append(cloned)
    func.entry_label = template.entry_label
    # Seed the localised inductions with this replica's offset, after
    # the entry block's initial-flow consumes delivered the base value.
    if localised and replica > 0:
        entry = func.block(func.entry_label)
        for reg, step in localised.values():
            entry.insert_before_terminator(Instruction(
                Opcode.ADD, dest=reg, srcs=[reg], imm=step * replica,
            ))
    func.sync_register_counter()
    return func
