"""DOACROSS baseline: alternate loop iterations across two cores.

Section 2 motivates DSWP by contrasting it with DOACROSS parallelism
(Fig. 1): DOACROSS assigns whole iterations to cores round-robin and
forwards every loop-carried value core-to-core each iteration, which
puts the communication latency on the loop's critical path --
``Iters * (Latency + Comm Latency)`` versus DSWP's ``Iters * Latency``.

This implementation targets the class of loops the figure uses (and
which classic DOACROSS compilers handle): a single-path loop body whose
only conditional branch is the loop-exit test.  Loop-carried register
values are produced to the partner core immediately after their
definition (maximising overlap), followed by a continue/stop flag
decided at the exit branch; each core's next iteration first consumes
the flag, then the carried values.

Restrictions (checked, raising :class:`DoacrossError`):

* exactly one conditional branch in the loop (the exit test);
* each loop-carried register has a single definition site;
* loop live-outs are a subset of the carried registers;
* loop-carried memory dependences must be discharged by the alias
  model (or explicitly waived with ``assume_no_carried_memory`` --
  the Fig. 1 pointer-chasing loop needs this, as the paper's
  conceptual DOACROSS does).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.liveness import compute_liveness, loop_live_ins, loop_live_outs
from repro.analysis.memdep import AliasModel
from repro.analysis.pdg import DepKind, build_dependence_graph
from repro.core.flows import QueueAllocator
from repro.interp.multithread import ThreadProgram
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.loops import Loop, find_loops
from repro.ir.types import Opcode, RegClass, Register


class DoacrossError(RuntimeError):
    """The loop does not fit the supported DOACROSS shape."""


class DoacrossResult:
    """The transformed two-thread program plus bookkeeping."""

    def __init__(self, program: ThreadProgram, carried: list[Register]) -> None:
        self.program = program
        self.carried = carried


def _clone(inst: Instruction) -> Instruction:
    return Instruction(
        inst.opcode,
        dest=inst.dest,
        srcs=list(inst.srcs),
        imm=inst.imm,
        targets=list(inst.targets),
        region=inst.region,
        queue=inst.queue,
        origin=inst,
        attrs=dict(inst.attrs),
    )


def _linearize(loop: Loop) -> tuple[list[Instruction], Instruction, int]:
    """Walk the unique in-loop path from the header.

    Returns (non-terminator instructions in execution order, the exit
    branch, the index into the instruction list where the branch sits
    -- everything before it belongs to the pre-test part of the
    iteration, everything at or after it to the post-test part).
    """
    order: list[Instruction] = []
    exit_branch: Optional[Instruction] = None
    branch_pos = -1
    label = loop.header
    visited: set[str] = set()
    while True:
        if label in visited:
            raise DoacrossError("loop body revisits a block (not single-path)")
        visited.add(label)
        block = loop.function.block(label)
        term = block.terminator
        for inst in block:
            if inst is term or inst.opcode is Opcode.NOP:
                continue
            order.append(inst)
        if term.opcode is Opcode.JMP:
            nxt = term.targets[0]
        elif term.opcode is Opcode.BR:
            if exit_branch is not None:
                raise DoacrossError("more than one conditional branch in loop")
            exit_branch = term
            branch_pos = len(order)
            inside = [t for t in term.targets if t in loop.body]
            if len(inside) != 1:
                raise DoacrossError("exit branch must have one in-loop target")
            nxt = inside[0]
        else:
            raise DoacrossError("unexpected terminator in loop")
        if nxt == loop.header:
            break
        label = nxt
    if exit_branch is None:
        raise DoacrossError("loop has no exit branch")
    return order, exit_branch, branch_pos


def _carried_registers(
    function: Function,
    loop: Loop,
    alias_model: AliasModel,
    assume_no_carried_memory: bool,
) -> list[Register]:
    graph = build_dependence_graph(function, loop, alias_model)
    carried: set[Register] = set()
    for arc in graph.arcs:
        if not arc.loop_carried:
            continue
        if arc.kind is DepKind.DATA:
            carried.add(arc.register)
        elif arc.kind is DepKind.MEMORY and not assume_no_carried_memory:
            raise DoacrossError(
                f"loop-carried memory dependence {arc!r}; DOACROSS would "
                "need synchronisation the transformation does not provide"
            )
    return sorted(carried)


def doacross(
    function: Function,
    loop: Optional[Loop] = None,
    alias_model: Optional[AliasModel] = None,
    assume_no_carried_memory: bool = False,
) -> DoacrossResult:
    """Transform ``loop`` into a two-thread DOACROSS program."""
    if loop is None:
        loops = find_loops(function)
        if not loops:
            raise DoacrossError(f"{function.name} contains no loops")
        loop = loops[0]
    alias_model = alias_model or AliasModel()
    body, exit_branch, branch_pos = _linearize(loop)
    carried = _carried_registers(
        function, loop, alias_model, assume_no_carried_memory
    )

    defs_of: dict[Register, list[Instruction]] = {}
    for inst in body:
        for reg in inst.defined_registers():
            defs_of.setdefault(reg, []).append(inst)
    for reg in carried:
        if len(defs_of.get(reg, [])) != 1:
            raise DoacrossError(
                f"carried register {reg} must have exactly one definition"
            )

    liveness = compute_liveness(function)
    live_outs = sorted(loop_live_outs(function, loop, liveness))
    if not set(live_outs) <= set(carried):
        raise DoacrossError(
            f"live-outs {live_outs} exceed carried registers {carried}"
        )
    live_ins = sorted(loop_live_ins(function, loop, liveness))
    invariant_ins = [r for r in live_ins if r not in carried]

    exits = loop.exit_targets()
    if len(exits) != 1:
        raise DoacrossError("DOACROSS supports exactly one loop exit target")
    preheader = loop.preheader()
    if preheader is None:
        raise DoacrossError("loop lacks a unique preheader")

    alloc = QueueAllocator()
    flag_q = {0: alloc.allocate(), 1: alloc.allocate()}  # keyed by sender
    carried_q = {(reg, t): alloc.allocate() for t in (0, 1) for reg in carried}
    livein_q = {reg: alloc.allocate() for reg in invariant_ins}
    liveout_q = {reg: alloc.allocate() for reg in live_outs}

    exit_taken_leaves = exit_branch.targets[0] not in loop.body
    shape = _Shape(
        function=function,
        loop=loop,
        body=body,
        branch_pos=branch_pos,
        exit_branch=exit_branch,
        exit_taken_leaves=exit_taken_leaves,
        carried=carried,
        defs_of=defs_of,
        flag_q=flag_q,
        carried_q=carried_q,
        livein_q=livein_q,
        liveout_q=liveout_q,
        exit_target=exits[0],
        preheader=preheader,
    )
    threads = [_build_thread(0, shape), _build_thread(1, shape)]
    program = ThreadProgram(threads, name=f"{function.name}@doacross")
    return DoacrossResult(program, carried)


class _Shape:
    """All the per-loop facts both thread builders need."""

    def __init__(self, **kwargs) -> None:
        self.__dict__.update(kwargs)


def _build_thread(tid: int, shape: _Shape) -> Function:
    other = 1 - tid
    function: Function = shape.function
    loop: Loop = shape.loop
    func = Function(f"{function.name}@doacross{tid}")
    # Reserve every register the original function touches so fresh
    # scratch registers cannot clash with copied code.
    for inst in function.instructions():
        for reg in inst.defined_registers() + inst.used_registers():
            func.note_register(reg)
    flag_reg = func.new_reg(RegClass.GEN)
    stop_pred = func.new_reg(RegClass.PRED)

    if tid == 0:
        for block in function.blocks():
            if block.label in loop.body:
                continue
            copy = func.add_block(block.label)
            for inst in block:
                copy.append(_clone(inst))
        func.entry_label = function.entry_label
        pre = func.block(shape.preheader)
        for reg in sorted(shape.livein_q):
            pre.insert_before_terminator(
                Instruction(Opcode.PRODUCE, srcs=[reg], queue=shape.livein_q[reg])
            )
        pre.retarget(loop.header, "da_header")
    else:
        entry = func.add_block("entry", entry=True)
        for reg in sorted(shape.livein_q):
            entry.append(
                Instruction(Opcode.CONSUME, dest=reg, queue=shape.livein_q[reg])
            )
        entry.append(Instruction(Opcode.JMP, targets=["da_wait"]))

    def emit_iteration_inst(block, inst: Instruction) -> None:
        block.append(_clone(inst))
        for reg in inst.defined_registers():
            if reg in shape.carried and shape.defs_of[reg][0] is inst:
                block.append(
                    Instruction(
                        Opcode.PRODUCE, srcs=[reg],
                        queue=shape.carried_q[(reg, tid)],
                    )
                )

    # Pre-test part of the iteration, ending in the exit branch.
    header = func.add_block("da_header")
    for inst in shape.body[: shape.branch_pos]:
        emit_iteration_inst(header, inst)
    targets = (
        ["da_exit", "da_body"] if shape.exit_taken_leaves else ["da_body", "da_exit"]
    )
    header.append(
        Instruction(Opcode.BR, srcs=[shape.exit_branch.srcs[0]], targets=targets)
    )

    # Post-test part: first signal the partner to start its iteration.
    body_block = func.add_block("da_body")
    body_block.append(Instruction(Opcode.MOV, dest=flag_reg, imm=1))
    body_block.append(
        Instruction(Opcode.PRODUCE, srcs=[flag_reg], queue=shape.flag_q[tid])
    )
    for inst in shape.body[shape.branch_pos:]:
        emit_iteration_inst(body_block, inst)
    body_block.append(Instruction(Opcode.JMP, targets=["da_wait"]))

    # Wait for the partner's verdict about the next iteration.
    wait = func.add_block("da_wait")
    wait.append(Instruction(Opcode.CONSUME, dest=flag_reg, queue=shape.flag_q[other]))
    wait.append(Instruction(Opcode.CMP_EQ, dest=stop_pred, srcs=[flag_reg], imm=0))
    wait.append(
        Instruction(Opcode.BR, srcs=[stop_pred], targets=["da_finish", "da_recv"])
    )
    recv = func.add_block("da_recv")
    for reg in shape.carried:
        recv.append(
            Instruction(
                Opcode.CONSUME, dest=reg, queue=shape.carried_q[(reg, other)]
            )
        )
    recv.append(Instruction(Opcode.JMP, targets=["da_header"]))

    # This thread hit the exit condition: stop the partner.
    exit_block = func.add_block("da_exit")
    exit_block.append(Instruction(Opcode.MOV, dest=flag_reg, imm=0))
    exit_block.append(
        Instruction(Opcode.PRODUCE, srcs=[flag_reg], queue=shape.flag_q[tid])
    )
    if tid == 0:
        exit_block.append(Instruction(Opcode.JMP, targets=[shape.exit_target]))
    else:
        for reg in sorted(shape.liveout_q):
            exit_block.append(
                Instruction(Opcode.PRODUCE, srcs=[reg], queue=shape.liveout_q[reg])
            )
        exit_block.append(Instruction(Opcode.RET))

    # The partner hit the exit condition first.
    finish = func.add_block("da_finish")
    if tid == 0:
        for reg in sorted(shape.liveout_q):
            finish.append(
                Instruction(Opcode.CONSUME, dest=reg, queue=shape.liveout_q[reg])
            )
        finish.append(Instruction(Opcode.JMP, targets=[shape.exit_target]))
    else:
        finish.append(Instruction(Opcode.RET))

    func.sync_register_counter()
    return func
