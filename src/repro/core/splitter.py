"""Code splitting: turn one loop + partition into a thread pipeline.

Implements Steps 3 and 4 of the DSWP algorithm (Fig. 3 lines 7-8,
Sections 2.2.3 and 2.2.4):

* compute each thread's *relevant basic blocks* -- blocks holding its
  instructions, blocks holding the sources of its incoming dependences
  (so consumes sit at the position, and hence under the control
  conditions, of the dependence source), and blocks holding the
  branches it must duplicate;
* create per-thread copies of those blocks, placing owned instructions
  in original order, consumes at dependence-source positions, produces
  right after their source (or right before it for branch-condition
  flows), and duplicated branches fed by consumed predicates;
* fix branch targets whose original target has no counterpart in the
  thread by walking to the *closest relevant post-dominator*;
* insert initial flows (loop live-ins) in the main thread's preheader
  and matching consumes at each auxiliary thread's entry, and final
  flows (loop live-outs) in auxiliary post-loop code with matching
  consumes on the main thread's loop exits.

The required branch set is closed transitively over the DSWP
control-dependence arcs, and every loop-exit branch is replicated into
every thread so each thread terminates its loop on the same iteration.
As a safety net, if an "irrelevant" branch turns out to steer control
between two different relevant targets, it is promoted to a duplicated
branch and the split is re-run (this also covers conditional control
dependences the PDG pass may have expressed only indirectly).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.pdg import DependenceGraph, DepKind
from repro.core.flows import BoundaryFlow, FlowKind, FlowPlan, LoopFlow, QueueAllocator
from repro.core.partition import Partition, PartitionError
from repro.interp.multithread import ThreadProgram
from repro.ir.basicblock import BasicBlock
from repro.ir.dominance import (
    VIRTUAL_EXIT,
    postdominator_tree,
    postdominator_tree_of_graph,
)
from repro.analysis.controldep import loop_subgraph
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.loops import Loop
from repro.ir.types import Opcode


class SplitError(RuntimeError):
    """Raised when the loop cannot be split (missing preheader etc.)."""


class _PromoteBranch(Exception):
    """Internal: a branch believed irrelevant must be duplicated."""

    def __init__(self, branch: Instruction, thread: int) -> None:
        super().__init__(f"promote {branch.render()} into thread {thread}")
        self.branch = branch
        self.thread = thread


class SplitResult:
    """The transformed thread pipeline plus bookkeeping."""

    def __init__(
        self,
        program: ThreadProgram,
        flow_plan: FlowPlan,
        partition: Partition,
        assignment: dict[Instruction, int],
    ) -> None:
        self.program = program
        self.flow_plan = flow_plan
        self.partition = partition
        self.assignment = assignment


def _clone(inst: Instruction) -> Instruction:
    return Instruction(
        inst.opcode,
        dest=inst.dest,
        srcs=list(inst.srcs),
        imm=inst.imm,
        targets=list(inst.targets),
        region=inst.region,
        queue=inst.queue,
        origin=inst,
        attrs=dict(inst.attrs),
    )


class LoopSplitter:
    """Splits one loop according to a partition; see module docstring."""

    def __init__(
        self,
        function: Function,
        loop: Loop,
        graph: DependenceGraph,
        partition: Partition,
        queue_limit: int = 256,
        allocator: Optional[QueueAllocator] = None,
    ) -> None:
        self.function = function
        self.loop = loop
        self.graph = graph
        self.partition = partition
        self.threads = len(partition)
        self.queue_limit = queue_limit
        #: Shared allocator (multi-loop programs hand one in so queue
        #: ids never collide across loops); fresh per split otherwise.
        self._allocator = allocator
        self.assignment = partition.assignment()
        self._inst_block: dict[int, str] = {}
        for block in loop.blocks():
            for inst in block:
                self._inst_block[inst.uid] = block.label
        # Postdominators: within the loop region (aux retargeting) and
        # function-wide (main-thread retargeting past loop exits).
        succs, exits = loop_subgraph(loop)
        if not exits:
            raise SplitError("loop has no exit edges; cannot pipeline")
        self._pdt_loop = postdominator_tree_of_graph(succs, exits)
        self._pdt_func = postdominator_tree(function)
        # Filled by plan()/build():
        self.plan: FlowPlan = FlowPlan(QueueAllocator(queue_limit))
        self._placements: dict[int, set[Instruction]] = {}
        self._duplicated: dict[int, set[Instruction]] = {}
        self._extra_needed: dict[int, set[Instruction]] = {
            i: set() for i in range(self.threads)
        }
        self._relevant: dict[int, set[str]] = {}
        self._consumes_at: dict[tuple[int, int], list[LoopFlow]] = {}

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _exit_branches(self) -> list[Instruction]:
        out = []
        for block in self.loop.blocks():
            term = block.terminator
            if term is not None and term.is_branch and any(
                t not in self.loop.body for t in term.targets
            ):
                out.append(term)
        return out

    def _plan_flows(self) -> None:
        self.plan = FlowPlan(self._allocator or QueueAllocator(self.queue_limit))
        self._placements = {i: set() for i in range(self.threads)}
        for arc in self.graph.arcs:
            src_t = self.assignment[arc.src]
            dst_t = self.assignment[arc.dst]
            if src_t == dst_t:
                continue
            if src_t > dst_t:
                raise PartitionError(
                    f"arc {arc!r} flows backward across the pipeline"
                )
            if arc.kind is DepKind.DATA:
                self.plan.add_data_flow(arc.src, arc.register, src_t, dst_t)
                self._placements[dst_t].add(arc.src)
            elif arc.kind is DepKind.MEMORY:
                self.plan.add_memory_flow(arc.src, src_t, dst_t)
                self._placements[dst_t].add(arc.src)
            elif arc.kind is DepKind.OUTPUT:
                raise PartitionError(
                    "output-dependent live-out definitions split across "
                    f"threads: {arc!r}"
                )
            # CONTROL arcs are realised through branch duplication below.

        # Branch duplication: transitive closure over control arcs.
        ctrl_sources: dict[int, set[Instruction]] = {}
        for arc in self.graph.arcs:
            if arc.kind is DepKind.CONTROL:
                ctrl_sources.setdefault(arc.dst.uid, set()).add(arc.src)
        exit_branches = self._exit_branches()
        self._duplicated = {}
        for i in range(self.threads):
            owned = [x for x, t in self.assignment.items() if t == i]
            seeds = (
                owned
                + sorted(self._placements[i], key=lambda x: x.uid)
                + sorted(self._extra_needed[i], key=lambda x: x.uid)
                + exit_branches
            )
            seen: set[int] = set()
            present: dict[int, Instruction] = {}
            work: list[Instruction] = []
            for inst in seeds:
                if inst.uid not in seen:
                    seen.add(inst.uid)
                    present[inst.uid] = inst
                    work.append(inst)
            while work:
                node = work.pop()
                for branch in ctrl_sources.get(node.uid, ()):
                    if branch.uid not in seen:
                        seen.add(branch.uid)
                        present[branch.uid] = branch
                        work.append(branch)
            self._duplicated[i] = {
                inst
                for inst in present.values()
                if inst.is_branch and self.assignment.get(inst) != i
            }
            for branch in sorted(self._duplicated[i], key=lambda b: b.uid):
                self.plan.add_control_flow(branch, self.assignment[branch], i)

        # Boundary flows.
        for reg, consumer in self.graph.live_in_uses:
            thread = self.assignment.get(consumer)
            if thread:
                self.plan.add_initial_flow(reg, thread)
        for reg, defs in sorted(
            self.graph.live_out_defs.items(), key=lambda kv: kv[0]
        ):
            def_threads = {self.assignment[d] for d in defs}
            if len(def_threads) != 1:
                raise PartitionError(
                    f"live-out {reg} defined in threads {sorted(def_threads)}"
                )
            thread = def_threads.pop()
            if thread:
                self.plan.add_final_flow(reg, thread)
                # The definition may be conditional: seed the auxiliary
                # thread with the pre-loop value so the flown-back value
                # is correct on paths that never redefine it.
                self.plan.add_initial_flow(reg, thread)

        # Index consume placements: (thread, source uid) -> flows.
        self._consumes_at = {}
        for flow in self.plan.loop_flows:
            if flow.kind is FlowKind.CONTROL:
                continue
            key = (flow.dst_thread, flow.source.uid)
            self._consumes_at.setdefault(key, []).append(flow)
        for flows in self._consumes_at.values():
            flows.sort(key=lambda f: f.queue)

    def _compute_relevant(self) -> None:
        self._relevant = {}
        for i in range(self.threads):
            labels = {self.loop.header}
            for inst, thread in self.assignment.items():
                if thread == i:
                    labels.add(self._inst_block[inst.uid])
            for inst in self._placements[i]:
                labels.add(self._inst_block[inst.uid])
            for branch in self._duplicated[i]:
                labels.add(self._inst_block[branch.uid])
            self._relevant[i] = labels

    # ------------------------------------------------------------------
    # Retargeting
    # ------------------------------------------------------------------
    def _retarget(self, target: str, thread: int, post_label: str) -> str:
        if thread == 0:
            if target not in self.loop.body:
                return target
            for node in self._pdt_func.walk_up(target):
                if node == VIRTUAL_EXIT:
                    break
                if node in self._relevant[0]:
                    return node
                if node not in self.loop.body:
                    return node
            raise SplitError(
                f"no relevant post-dominator for {target} in main thread"
            )
        if target not in self.loop.body:
            return post_label
        for node in self._pdt_loop.walk_up(target):
            if node == "<out>":
                return post_label
            if node == VIRTUAL_EXIT:
                break
            if node in self._relevant[thread]:
                return node
        raise SplitError(
            f"no relevant post-dominator for {target} in thread {thread}"
        )

    # ------------------------------------------------------------------
    # Block construction
    # ------------------------------------------------------------------
    def _emit_consumes(self, thread: int, source: Instruction, block: BasicBlock) -> None:
        for flow in self._consumes_at.get((thread, source.uid), ()):  # sorted
            block.append(
                Instruction(
                    Opcode.CONSUME,
                    dest=flow.register,
                    queue=flow.queue,
                )
            )

    def _emit_produces(self, thread: int, source: Instruction, block: BasicBlock) -> None:
        for flow in self.plan.loop_flows_from(source):
            if flow.src_thread != thread or flow.kind is FlowKind.CONTROL:
                continue
            srcs = [flow.register] if flow.register is not None else []
            block.append(Instruction(Opcode.PRODUCE, srcs=srcs, queue=flow.queue))

    def _build_loop_block(
        self, original: BasicBlock, thread: int, func: Function, post_label: str
    ) -> None:
        new_block = func.add_block(original.label)
        term = original.terminator
        for inst in original:
            if inst is term:
                break
            owner = self.assignment.get(inst)
            if owner == thread:
                new_block.append(_clone(inst))
                self._emit_produces(thread, inst, new_block)
            elif (thread, inst.uid) in self._consumes_at:
                self._emit_consumes(thread, inst, new_block)
        # Terminator.
        if term is None:
            raise SplitError(f"loop block {original.label} unterminated")
        if term.opcode is Opcode.JMP:
            new_block.append(
                Instruction(
                    Opcode.JMP,
                    targets=[self._retarget(term.targets[0], thread, post_label)],
                )
            )
            return
        if term.opcode is Opcode.RET:
            raise SplitError("ret inside loop body")
        # Conditional branch.
        taken = self._retarget(term.targets[0], thread, post_label)
        fall = self._retarget(term.targets[1], thread, post_label)
        owner = self.assignment.get(term)
        if owner == thread:
            # Branch-condition produces go just before the branch.
            for flow in self.plan.loop_flows_from(term):
                if flow.kind is FlowKind.CONTROL and flow.src_thread == thread:
                    new_block.append(
                        Instruction(
                            Opcode.PRODUCE, srcs=[term.srcs[0]], queue=flow.queue
                        )
                    )
            new_block.append(
                Instruction(Opcode.BR, srcs=[term.srcs[0]], targets=[taken, fall],
                            origin=term)
            )
        elif term in self._duplicated[thread]:
            flow = next(
                f
                for f in self.plan.loop_flows
                if f.kind is FlowKind.CONTROL
                and f.source is term
                and f.dst_thread == thread
            )
            new_block.append(
                Instruction(Opcode.CONSUME, dest=term.srcs[0], queue=flow.queue)
            )
            new_block.append(
                Instruction(Opcode.BR, srcs=[term.srcs[0]], targets=[taken, fall],
                            origin=term)
            )
        else:
            if taken != fall:
                raise _PromoteBranch(term, thread)
            new_block.append(Instruction(Opcode.JMP, targets=[taken]))

    # ------------------------------------------------------------------
    # Thread assembly
    # ------------------------------------------------------------------
    def _build_main(self) -> Function:
        func = Function(f"{self.function.name}@main")
        post_label = "<invalid>"  # main never exits to a shared post block
        for block in self.function.blocks():
            if block.label not in self.loop.body:
                copy = func.add_block(block.label, entry=block.label == self.function.entry_label)
                for inst in block:
                    copy.append(_clone(inst))
            elif block.label in self._relevant[0]:
                self._build_loop_block(block, 0, func, post_label)
        func.entry_label = self.function.entry_label

        # Initial flows: produced at the end of the preheader.
        preheader = self.loop.preheader()
        if preheader is None:
            raise SplitError(
                f"loop {self.loop.header} lacks a unique preheader"
            )
        pre_block = func.block(preheader)
        for flow in sorted(self.plan.initial_flows, key=lambda f: f.queue):
            pre_block.insert_before_terminator(
                Instruction(Opcode.PRODUCE, srcs=[flow.register], queue=flow.queue)
            )

        # Final flows: consumed on every loop exit edge, in fresh
        # staging blocks spliced onto the exit edges.
        if self.plan.final_flows:
            staging: dict[str, str] = {}
            for block in [func.block(lbl) for lbl in sorted(self._relevant[0])
                          if func.has_block(lbl)]:
                term = block.terminator
                if term is None:
                    continue
                for idx, target in enumerate(list(term.targets)):
                    if target in self.loop.body or target.startswith("dswp_exit_"):
                        continue
                    label = staging.get(target)
                    if label is None:
                        counter = len(staging)
                        label = f"dswp_exit_{counter}"
                        while func.has_block(label):
                            # The function may carry staging blocks from
                            # an earlier split (multi-loop programs).
                            counter += 1
                            label = f"dswp_exit_{counter}"
                        staging[target] = label
                        stage_block = func.add_block(label)
                        for flow in sorted(
                            self.plan.final_flows, key=lambda f: f.queue
                        ):
                            stage_block.append(
                                Instruction(
                                    Opcode.CONSUME,
                                    dest=flow.register,
                                    queue=flow.queue,
                                )
                            )
                        stage_block.append(Instruction(Opcode.JMP, targets=[target]))
                    term.targets[idx] = label
        func.sync_register_counter()
        return func

    def _build_aux(self, thread: int) -> Function:
        func = Function(f"{self.function.name}@t{thread}")
        entry = func.add_block("entry", entry=True)
        for flow in sorted(self.plan.initial_flows, key=lambda f: f.queue):
            if flow.thread == thread:
                entry.append(
                    Instruction(Opcode.CONSUME, dest=flow.register, queue=flow.queue)
                )
        entry.append(Instruction(Opcode.JMP, targets=[self.loop.header]))
        post_label = "post"
        for block in self.loop.blocks():
            if block.label in self._relevant[thread]:
                self._build_loop_block(block, thread, func, post_label)
        post = func.add_block(post_label)
        for flow in sorted(self.plan.final_flows, key=lambda f: f.queue):
            if flow.thread == thread:
                post.append(
                    Instruction(Opcode.PRODUCE, srcs=[flow.register], queue=flow.queue)
                )
        post.append(Instruction(Opcode.RET))
        func.sync_register_counter()
        return func

    # ------------------------------------------------------------------
    def split(self) -> SplitResult:
        """Run the split, retrying after branch promotions."""
        max_rounds = 4 + sum(
            1 for inst in self.loop.instructions() if inst.is_branch
        ) * self.threads
        for _ in range(max_rounds):
            self._plan_flows()
            self._compute_relevant()
            try:
                functions = [self._build_main()] + [
                    self._build_aux(i) for i in range(1, self.threads)
                ]
            except _PromoteBranch as promo:
                self._extra_needed[promo.thread].add(promo.branch)
                continue
            program = ThreadProgram(functions, name=f"{self.function.name}@dswp")
            return SplitResult(program, self.plan, self.partition, self.assignment)
        raise SplitError("branch promotion did not converge")


def split_loop(
    function: Function,
    loop: Loop,
    graph: DependenceGraph,
    partition: Partition,
    queue_limit: int = 256,
) -> SplitResult:
    """Split ``loop`` into the thread pipeline dictated by ``partition``."""
    return LoopSplitter(function, loop, graph, partition, queue_limit).split()
