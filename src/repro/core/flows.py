"""Flow (produce/consume pair) planning for the DSWP splitter.

Section 2.2.4 classifies flows two ways:

by dependence type
    DATA (a register value), CONTROL (a branch direction feeding a
    duplicated branch), MEMORY (a valueless token enforcing memory or
    system-call ordering);

by loop position
    LOOP flows (inside the loop, once per occurrence of the source),
    INITIAL flows (loop live-ins delivered to auxiliary threads before
    the loop), FINAL flows (loop live-outs delivered back to the main
    thread after the loop).

:class:`FlowPlan` performs the *redundant flow elimination* of the
paper by keying loop flows on (source instruction, register, consuming
thread): a value is communicated to a thread at most once per dynamic
execution of its source, no matter how many instructions in that thread
use it.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.ir.instruction import Instruction
from repro.ir.types import Register


class FlowKind(enum.Enum):
    DATA = "data"
    CONTROL = "control"
    MEMORY = "memory"


class LoopFlow:
    """A produce/consume pair inside the loop."""

    __slots__ = ("kind", "queue", "source", "register", "src_thread", "dst_thread")

    def __init__(
        self,
        kind: FlowKind,
        queue: int,
        source: Instruction,
        register: Optional[Register],
        src_thread: int,
        dst_thread: int,
    ) -> None:
        self.kind = kind
        self.queue = queue
        self.source = source
        self.register = register
        self.src_thread = src_thread
        self.dst_thread = dst_thread

    def __repr__(self) -> str:
        return (
            f"<{self.kind.value} flow q{self.queue} t{self.src_thread}->"
            f"t{self.dst_thread} src={self.source.render()} reg={self.register}>"
        )


class BoundaryFlow:
    """An initial or final flow (register value across the loop boundary)."""

    __slots__ = ("queue", "register", "thread", "final")

    def __init__(self, queue: int, register: Register, thread: int, final: bool) -> None:
        self.queue = queue
        self.register = register
        self.thread = thread  # the auxiliary thread involved
        self.final = final

    def __repr__(self) -> str:
        direction = "final" if self.final else "initial"
        return f"<{direction} flow q{self.queue} {self.register} thread {self.thread}>"


class QueueAllocator:
    """Hands out queue ids; bounded by the synchronization array size."""

    def __init__(self, limit: int = 256) -> None:
        self.limit = limit
        self._next = 0

    def allocate(self) -> int:
        if self._next >= self.limit:
            raise RuntimeError(
                f"loop requires more than {self.limit} queues; "
                "the synchronization array is exhausted"
            )
        qid = self._next
        self._next += 1
        return qid

    @property
    def used(self) -> int:
        return self._next


class FlowPlan:
    """All flows a partitioning requires, deduplicated."""

    def __init__(self, allocator: Optional[QueueAllocator] = None) -> None:
        self.allocator = allocator or QueueAllocator()
        self.loop_flows: list[LoopFlow] = []
        self.initial_flows: list[BoundaryFlow] = []
        self.final_flows: list[BoundaryFlow] = []
        self._loop_keys: dict[tuple, LoopFlow] = {}
        self._initial_keys: dict[tuple[Register, int], BoundaryFlow] = {}
        self._final_keys: dict[tuple[Register, int], BoundaryFlow] = {}

    # ------------------------------------------------------------------
    def add_data_flow(
        self, source: Instruction, register: Register, src_thread: int, dst_thread: int
    ) -> LoopFlow:
        key = ("data", source.uid, register, dst_thread)
        flow = self._loop_keys.get(key)
        if flow is None:
            flow = LoopFlow(
                FlowKind.DATA, self.allocator.allocate(), source, register,
                src_thread, dst_thread,
            )
            self._loop_keys[key] = flow
            self.loop_flows.append(flow)
        return flow

    def add_control_flow(
        self, branch: Instruction, src_thread: int, dst_thread: int
    ) -> LoopFlow:
        key = ("control", branch.uid, dst_thread)
        flow = self._loop_keys.get(key)
        if flow is None:
            flow = LoopFlow(
                FlowKind.CONTROL, self.allocator.allocate(), branch,
                branch.srcs[0], src_thread, dst_thread,
            )
            self._loop_keys[key] = flow
            self.loop_flows.append(flow)
        return flow

    def add_memory_flow(
        self, source: Instruction, src_thread: int, dst_thread: int
    ) -> LoopFlow:
        key = ("memory", source.uid, dst_thread)
        flow = self._loop_keys.get(key)
        if flow is None:
            flow = LoopFlow(
                FlowKind.MEMORY, self.allocator.allocate(), source, None,
                src_thread, dst_thread,
            )
            self._loop_keys[key] = flow
            self.loop_flows.append(flow)
        return flow

    def add_initial_flow(self, register: Register, thread: int) -> BoundaryFlow:
        key = (register, thread)
        flow = self._initial_keys.get(key)
        if flow is None:
            flow = BoundaryFlow(self.allocator.allocate(), register, thread, final=False)
            self._initial_keys[key] = flow
            self.initial_flows.append(flow)
        return flow

    def add_final_flow(self, register: Register, thread: int) -> BoundaryFlow:
        key = (register, thread)
        flow = self._final_keys.get(key)
        if flow is None:
            flow = BoundaryFlow(self.allocator.allocate(), register, thread, final=True)
            self._final_keys[key] = flow
            self.final_flows.append(flow)
        return flow

    # ------------------------------------------------------------------
    def loop_flows_from(self, source: Instruction) -> list[LoopFlow]:
        """Loop flows whose source is ``source`` (stable queue order)."""
        return sorted(
            (f for f in self.loop_flows if f.source is source),
            key=lambda f: f.queue,
        )

    def counts(self) -> dict[str, int]:
        """Flow counts in Table 1's three columns: init / loop / final."""
        return {
            "initial": len(self.initial_flows),
            "loop": len(self.loop_flows),
            "final": len(self.final_flows),
        }
