"""Loop unrolling (the enabling transformation of Sections 5.1/5.3).

The paper's case studies apply unrolling before DSWP: epicdec gains
another 40% once the loop is unrolled 8x (more per-iteration work to
balance across the pipeline), and 179.art's accumulator expansion is
unrolling plus reassociation.

This is the general multi-exit unroll: the whole loop body (arbitrary
control flow) is replicated ``factor`` times; within a replica all
in-loop edges stay local, every back edge advances to the *next*
replica's header (the last wraps to the first), and every exit edge
keeps leaving the loop.  Each replica retains the loop's exit tests, so
the transformation is valid for any trip count.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.loops import Loop, find_loop_by_header, find_loops
from repro.ir.types import Opcode


class UnrollError(RuntimeError):
    """The loop cannot be unrolled."""


def _clone(inst: Instruction) -> Instruction:
    return Instruction(
        inst.opcode,
        dest=inst.dest,
        srcs=list(inst.srcs),
        imm=inst.imm,
        targets=list(inst.targets),
        region=inst.region,
        queue=inst.queue,
        origin=inst,
        attrs=dict(inst.attrs),
    )


def unroll_loop(function: Function, loop: Optional[Loop] = None,
                factor: int = 4) -> Function:
    """Return a new function with ``loop`` unrolled ``factor`` times."""
    if factor < 1:
        raise UnrollError("factor must be >= 1")
    if loop is None:
        loops = find_loops(function)
        if not loops:
            raise UnrollError(f"{function.name} contains no loops")
        loop = loops[0]

    out = Function(f"{function.name}@u{factor}")
    for block in function.blocks():
        if block.label in loop.body:
            continue
        copy = out.add_block(block.label,
                             entry=block.label == function.entry_label)
        for inst in block:
            copy.append(_clone(inst))
    out.entry_label = function.entry_label

    def replica(label: str, copy: int) -> str:
        return label if copy == 0 else f"{label}@u{copy}"

    for copy in range(factor):
        for block in loop.blocks():
            new_block = out.add_block(replica(block.label, copy))
            for inst in block:
                cloned = _clone(inst)
                if cloned.targets:
                    new_targets = []
                    for target in cloned.targets:
                        if target not in loop.body:
                            new_targets.append(target)  # exit edge
                        elif target == loop.header:
                            # Back edge: fall into the next replica.
                            new_targets.append(
                                replica(loop.header, (copy + 1) % factor)
                            )
                        else:
                            new_targets.append(replica(target, copy))
                    cloned.targets = new_targets
                new_block.append(cloned)
    out.sync_register_counter()
    return out


def unrolled_loop(function: Function, original_header: str, factor: int):
    """Convenience: unroll and return (new function, its loop)."""
    loop = find_loop_by_header(function, original_header)
    new_function = unroll_loop(function, loop, factor)
    return new_function, find_loop_by_header(new_function, original_header)
