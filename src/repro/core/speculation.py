"""Speculative loop-termination DSWP (the Section 5.4 proposal).

gzip's ``deflate_fast`` loop defeats DSWP because the computation of
the loop-termination condition is serialised with the rest of the
iteration: the dependence graph is one giant SCC.  The paper's
suggested fix: *"move loop termination detection to the consumer and
provide support that will allow the latter to correctly reconcile all
producer thread side-effects with the architectural state.  Such
speculation support will improve the applicability of DSWP."*

This module implements a bounded, software-only version of that idea
(a precursor of the later Spec-DSWP work):

* the control dependences **from the loop-exit branches** are
  speculated away when re-condensing the dependence graph, which
  typically shatters the giant SCC into the data recurrence plus
  bookkeeping;
* the **producer** thread runs the (side-effect-free) recurrence slice
  *without evaluating any exit condition* -- it speculatively executes
  iterations and produces the recurrence values;
* the **consumer** (main) thread keeps the original control flow: it
  consumes the values, evaluates the exit branches, performs all
  stores, and owns the loop live-outs;
* speculation is bounded by a **credit protocol**: the main thread
  pre-charges ``window`` credits before the loop, returns one credit
  per completed iteration, and sends a zero credit when the loop
  exits; the producer consumes one credit per iteration and retires on
  the zero.  The producer therefore overruns the real trip count by at
  most ``window`` iterations.

Reconciliation is trivial *by construction* rather than by hardware
support: the transformation refuses any loop whose speculative slice
contains a store, an impure call, or a load that may alias a consumer
store -- the producer's only side effects are register writes and
queue pushes, both discarded on over-speculated iterations.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.memdep import AliasModel
from repro.analysis.pdg import (
    DepArc,
    DependenceGraph,
    DepKind,
    build_dependence_graph,
)
from repro.analysis.scc import condense
from repro.core.flows import QueueAllocator
from repro.interp.multithread import ThreadProgram
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.loops import Loop, find_loops
from repro.ir.types import Opcode, RegClass


class SpeculationError(RuntimeError):
    """The loop cannot be handled by termination speculation."""


class SpeculativeDSWPResult:
    """Outcome of :func:`speculative_dswp`."""

    def __init__(
        self,
        program: ThreadProgram,
        producer_instructions: list[Instruction],
        window: int,
        speculated_branches: list[Instruction],
    ) -> None:
        self.program = program
        self.producer_instructions = producer_instructions
        self.window = window
        self.speculated_branches = speculated_branches

    def __repr__(self) -> str:
        return (
            f"<SpeculativeDSWP {len(self.producer_instructions)} producer "
            f"instructions, window={self.window}, "
            f"{len(self.speculated_branches)} speculated branches>"
        )


def _clone(inst: Instruction) -> Instruction:
    return Instruction(
        inst.opcode,
        dest=inst.dest,
        srcs=list(inst.srcs),
        imm=inst.imm,
        targets=list(inst.targets),
        region=inst.region,
        queue=inst.queue,
        origin=inst,
        attrs=dict(inst.attrs),
    )


def _linear_shape(loop: Loop) -> tuple[list[Instruction], str]:
    """Check the supported shape: a single path through the loop whose
    conditional branches are all loop exits.  Returns (instructions in
    order including exit branches, exit label... ) -- raises otherwise.
    """
    order: list[Instruction] = []
    label = loop.header
    visited: set[str] = set()
    while True:
        if label in visited:
            raise SpeculationError("loop is not single-path")
        visited.add(label)
        block = loop.function.block(label)
        term = block.terminator
        for inst in block:
            if inst is term or inst.opcode is Opcode.NOP:
                continue
            order.append(inst)
        if term.opcode is Opcode.JMP:
            nxt = term.targets[0]
        elif term.opcode is Opcode.BR:
            inside = [t for t in term.targets if t in loop.body]
            outside = [t for t in term.targets if t not in loop.body]
            if len(inside) != 1 or len(outside) != 1:
                raise SpeculationError(
                    "every conditional branch must be a loop exit"
                )
            order.append(term)
            nxt = inside[0]
        else:
            raise SpeculationError("unexpected terminator")
        if nxt == loop.header:
            return order, label
        label = nxt


def _speculative_partition(
    graph: DependenceGraph, exit_branches: list[Instruction]
) -> tuple[set[int], set[int], "object"]:
    """Re-condense without the exit branches' control arcs and find the
    maximal *safe* producer down-set (no stores/calls/exit branches)."""
    exit_ids = {b.uid for b in exit_branches}
    kept: dict[Instruction, set[Instruction]] = {n: set() for n in graph.nodes}
    for arc in graph.arcs:
        if arc.kind is DepKind.CONTROL and arc.src.uid in exit_ids:
            continue  # speculated away
        kept[arc.src].add(arc.dst)
    dag = condense(graph.nodes, kept)
    if len(dag) <= 1:
        raise SpeculationError(
            "loop stays a single SCC even with termination speculated"
        )

    # Termination *detection* moves to the consumer wholesale: the
    # compares whose only consumers are exit branches travel with them
    # (streaming one recurrence value beats streaming every predicate).
    detection: set[int] = set()
    for node in graph.nodes:
        if node.dest is None or not node.dest.is_predicate:
            continue
        outgoing = [a for a in graph.arcs
                    if a.src is node and a.kind is DepKind.DATA]
        if outgoing and all(a.dst.uid in exit_ids for a in outgoing):
            detection.add(node.uid)

    def unsafe(members) -> bool:
        return any(
            inst.is_store
            or (inst.is_call and not inst.attrs.get("pure", False))
            or inst.uid in exit_ids
            or inst.uid in detection
            for inst in members
        )

    # Producer = the *minimal* slice sustaining the loop recurrences:
    # every multi-node (or self-feeding) SCC plus everything it
    # transitively depends on.  All other work -- detection, stores,
    # and any off-recurrence computation -- stays with the consumer so
    # it overlaps with the critical path instead of lengthening it.
    preds = dag.predecessors()
    node_succs = {n.uid: {d.uid for d in dsts} for n, dsts in kept.items()}
    recurrences = {
        sid
        for sid, members in enumerate(dag.sccs)
        if len(members) > 1
        or any(m.uid in node_succs.get(m.uid, ()) for m in members)
    }
    producer: set[int] = set()
    work = sorted(recurrences)
    while work:
        sid = work.pop()
        if sid in producer:
            continue
        producer.add(sid)
        work.extend(preds[sid])
    if any(unsafe(dag.sccs[sid]) for sid in producer):
        raise SpeculationError(
            "a loop recurrence (or its inputs) has side effects; "
            "speculative execution would be unrecoverable"
        )
    consumer = set(range(len(dag))) - producer
    if not producer or not consumer:
        raise SpeculationError("no useful speculative cut exists")
    return producer, consumer, dag


def speculative_dswp(
    function: Function,
    loop: Optional[Loop] = None,
    window: int = 8,
    alias_model: Optional[AliasModel] = None,
    queue_limit: int = 256,
) -> SpeculativeDSWPResult:
    """Apply termination-speculating DSWP to a gzip-shaped loop."""
    if window < 1:
        raise SpeculationError("window must be >= 1")
    if loop is None:
        loops = find_loops(function)
        if not loops:
            raise SpeculationError(f"{function.name} contains no loops")
        loop = loops[0]
    order, _ = _linear_shape(loop)
    graph = build_dependence_graph(function, loop, alias_model)
    exit_branches = [i for i in order if i.is_branch]
    if not exit_branches:
        raise SpeculationError("loop has no exit branch")
    producer_sccs, consumer_sccs, dag = _speculative_partition(
        graph, exit_branches
    )
    scc_of = dag.scc_of()
    producer_set = {
        inst.uid for inst in graph.nodes if scc_of[inst] in producer_sccs
    }

    # Safety: a consumer store aliasing a producer load would make the
    # producer read unreconciled state while running ahead.
    for arc in graph.arcs:
        if arc.kind is DepKind.MEMORY and (
            (arc.src.uid in producer_set) != (arc.dst.uid in producer_set)
        ):
            raise SpeculationError(
                f"memory dependence crosses the speculative cut: {arc!r}"
            )

    preheader = loop.preheader()
    if preheader is None:
        raise SpeculationError("loop lacks a unique preheader")
    exits = loop.exit_targets()

    alloc = QueueAllocator(queue_limit)
    credit_q = alloc.allocate()
    data_q: dict[tuple[int, object], int] = {}
    # One queue per (producer instruction, register) consumed downstream.
    consumer_uses: set[tuple[int, object]] = set()
    for arc in graph.arcs:
        if (
            arc.kind is DepKind.DATA
            and arc.src.uid in producer_set
            and arc.dst.uid not in producer_set
        ):
            key = (arc.src.uid, arc.register)
            if key not in data_q:
                data_q[key] = alloc.allocate()
            consumer_uses.add(key)
    # Loop live-outs defined in the producer must also be streamed, so
    # the consumer's (architectural) register state is always the
    # non-speculative one -- this is the "reconciliation" the paper
    # asks hardware for, done by never letting speculative state
    # escape the producer.
    for reg, defs in graph.live_out_defs.items():
        for def_inst in defs:
            if def_inst.uid in producer_set:
                key = (def_inst.uid, reg)
                if key not in data_q:
                    data_q[key] = alloc.allocate()
                consumer_uses.add(key)
    # Producer live-ins (values defined before the loop that it reads).
    livein_q: dict[object, int] = {}
    for reg, consumer_inst in graph.live_in_uses:
        if consumer_inst.uid in producer_set and reg not in livein_q:
            livein_q[reg] = alloc.allocate()

    main = _build_consumer(
        function, loop, order, producer_set, data_q, livein_q, credit_q,
        window,
    )
    producer = _build_producer(
        function, loop, order, producer_set, data_q, livein_q, credit_q,
    )
    program = ThreadProgram([main, producer],
                            name=f"{function.name}@spec-dswp")
    producer_insts = [i for i in order if i.uid in producer_set]
    return SpeculativeDSWPResult(program, producer_insts, window,
                                 exit_branches)


def _build_consumer(
    function: Function,
    loop: Loop,
    order: list[Instruction],
    producer_set: set[int],
    data_q: dict,
    livein_q: dict,
    credit_q: int,
    window: int,
) -> Function:
    """The main thread: original control flow, producer instructions
    replaced by consumes, plus the credit protocol."""
    func = Function(f"{function.name}@spec-main")
    for inst in function.instructions():
        for reg in inst.defined_registers() + inst.used_registers():
            func.note_register(reg)
    credit_reg = func.new_reg(RegClass.GEN)

    for block in function.blocks():
        copy = func.add_block(block.label,
                              entry=block.label == function.entry_label)
        in_loop = block.label in loop.body
        for inst in block:
            if in_loop and inst.uid in producer_set:
                # Replaced by consumes of the flows it feeds.
                for (src_uid, reg), qid in sorted(data_q.items(),
                                                  key=lambda kv: kv[1]):
                    if src_uid == inst.uid:
                        copy.append(
                            Instruction(Opcode.CONSUME, dest=reg, queue=qid)
                        )
                continue
            copy.append(_clone(inst))
        if in_loop and block.label in {l for l in loop.latches()}:
            # One credit back per completed iteration, placed before
            # the back-edge terminator.
            copy.insert_before_terminator(
                Instruction(Opcode.MOV, dest=credit_reg, imm=1)
            )
            copy.insert_before_terminator(
                Instruction(Opcode.PRODUCE, srcs=[credit_reg], queue=credit_q)
            )
    func.entry_label = function.entry_label

    # Preheader: live-ins for the producer, then the pre-charge credits.
    pre = func.block(loop.preheader())
    for reg, qid in sorted(livein_q.items(), key=lambda kv: kv[1]):
        pre.insert_before_terminator(
            Instruction(Opcode.PRODUCE, srcs=[reg], queue=qid)
        )
    pre.insert_before_terminator(
        Instruction(Opcode.MOV, dest=credit_reg, imm=1)
    )
    for _ in range(window):
        pre.insert_before_terminator(
            Instruction(Opcode.PRODUCE, srcs=[credit_reg], queue=credit_q)
        )

    # Exit edges: send the stop credit through fresh staging blocks.
    staging: dict[str, str] = {}
    for label in sorted(loop.body):
        block = func.block(label)
        term = block.terminator
        if term is None:
            continue
        for idx, target in enumerate(list(term.targets)):
            if target in loop.body or target.startswith("spec_exit_"):
                continue
            stage_label = staging.get(target)
            if stage_label is None:
                stage_label = f"spec_exit_{len(staging)}"
                staging[target] = stage_label
                stage = func.add_block(stage_label)
                stage.append(Instruction(Opcode.MOV, dest=credit_reg, imm=0))
                stage.append(
                    Instruction(Opcode.PRODUCE, srcs=[credit_reg],
                                queue=credit_q)
                )
                stage.append(Instruction(Opcode.JMP, targets=[target]))
            term.targets[idx] = stage_label
    func.sync_register_counter()
    return func


def _build_producer(
    function: Function,
    loop: Loop,
    order: list[Instruction],
    producer_set: set[int],
    data_q: dict,
    livein_q: dict,
    credit_q: int,
) -> Function:
    """The speculative thread: credit gate + recurrence slice, no exits."""
    func = Function(f"{function.name}@spec-producer")
    for inst in function.instructions():
        for reg in inst.defined_registers() + inst.used_registers():
            func.note_register(reg)
    credit_reg = func.new_reg(RegClass.GEN)
    stop_pred = func.new_reg(RegClass.PRED)

    entry = func.add_block("entry", entry=True)
    for reg, qid in sorted(livein_q.items(), key=lambda kv: kv[1]):
        entry.append(Instruction(Opcode.CONSUME, dest=reg, queue=qid))
    entry.append(Instruction(Opcode.JMP, targets=["header"]))

    header = func.add_block("header")
    header.append(Instruction(Opcode.CONSUME, dest=credit_reg, queue=credit_q))
    header.append(
        Instruction(Opcode.CMP_EQ, dest=stop_pred, srcs=[credit_reg], imm=0)
    )
    header.append(
        Instruction(Opcode.BR, srcs=[stop_pred], targets=["done", "work"])
    )

    work = func.add_block("work")
    for inst in order:
        if inst.uid not in producer_set:
            continue
        work.append(_clone(inst))
        for (src_uid, reg), qid in sorted(data_q.items(), key=lambda kv: kv[1]):
            if src_uid == inst.uid:
                work.append(
                    Instruction(Opcode.PRODUCE, srcs=[reg], queue=qid)
                )
    work.append(Instruction(Opcode.JMP, targets=["header"]))

    done = func.add_block("done")
    done.append(Instruction(Opcode.RET))
    func.sync_register_counter()
    return func
