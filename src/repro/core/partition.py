"""Thread partitioning: the TPP heuristic and partition utilities.

Implements Section 2.2.2 of the paper:

* :class:`Partition` -- a *valid partitioning* per Definition 1: an
  ordered sequence of SCC sets such that every DAG_SCC arc flows
  forward (``i <= j``), each SCC in exactly one set.
* :func:`heuristic_partition` -- the paper's load-balancing heuristic:
  keep a candidate set of SCC nodes whose predecessors are assigned;
  repeatedly take the candidate with the largest estimated cycles
  (ties broken in favour of candidates that reduce the number of
  outgoing dependences from the current partition); close a partition
  when its estimated cycles approach ``total / threads``.
* :func:`enumerate_two_way_partitions` -- all valid 2-thread cuts of
  the DAG_SCC (the "best manually directed" search of Fig. 6(a) and
  the partition sweep of Fig. 7).

The optimal TPP is NP-complete (reduction from bin packing); the
heuristic plus the exhaustive 2-way enumerator bound it from both
sides in the benchmarks.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.pdg import DependenceGraph, DepKind
from repro.analysis.profiling import LoopProfile
from repro.analysis.scc import DagScc
from repro.ir.instruction import Instruction


class PartitionError(ValueError):
    """Raised for invalid partitions or unpartitionable graphs."""


class Partition:
    """A valid partitioning: ``stages[i]`` is the set of SCC ids of
    pipeline stage *i* (stage 0 runs in the main thread)."""

    def __init__(self, dag: DagScc, stages: list[set[int]]) -> None:
        self.dag = dag
        self.stages = [set(s) for s in stages]
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check Definition 1 (valid partitioning)."""
        seen: set[int] = set()
        for stage in self.stages:
            if stage & seen:
                raise PartitionError("SCC assigned to multiple stages")
            seen |= stage
        if seen != set(range(len(self.dag))):
            raise PartitionError(
                f"stages cover {sorted(seen)} but DAG has {len(self.dag)} SCCs"
            )
        stage_of = self.stage_of_scc()
        for src, dsts in self.dag.edges.items():
            for dst in dsts:
                if stage_of[src] > stage_of[dst]:
                    raise PartitionError(
                        f"dependence SCC{src} -> SCC{dst} flows backward "
                        f"(stage {stage_of[src]} -> {stage_of[dst]})"
                    )

    def stage_of_scc(self) -> dict[int, int]:
        out: dict[int, int] = {}
        for idx, stage in enumerate(self.stages):
            for scc in stage:
                out[scc] = idx
        return out

    def assignment(self) -> dict[Instruction, int]:
        """Instruction -> stage index."""
        out: dict[Instruction, int] = {}
        for idx, stage in enumerate(self.stages):
            for scc_id in stage:
                for inst in self.dag.sccs[scc_id]:
                    out[inst] = idx
        return out

    def __len__(self) -> int:
        return len(self.stages)

    def __repr__(self) -> str:
        return f"<Partition {[sorted(s) for s in self.stages]}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self.stages == other.stages


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------

def estimated_scc_cycles(
    dag: DagScc,
    graph: DependenceGraph,
    profile: LoopProfile,
    latency_of,
) -> list[float]:
    """Estimated cycles per iteration spent in each SCC.

    ``latency_of(inst)`` supplies per-instruction latency; the profile
    supplies the average executions per loop iteration (Section 2.2.2).
    """
    cycles = []
    for members in dag.sccs:
        total = 0.0
        for inst in members:
            weight = profile.instruction_weight(graph.function, inst)
            total += latency_of(inst) * weight
        cycles.append(total)
    return cycles


def cut_flow_count(dag: DagScc, stages: list[set[int]]) -> int:
    """Number of DAG_SCC arcs crossing stage boundaries (proxy for the
    produce/consume pairs a partition will need)."""
    stage_of: dict[int, int] = {}
    for idx, stage in enumerate(stages):
        for scc in stage:
            stage_of[scc] = idx
    count = 0
    for src, dsts in dag.edges.items():
        for dst in dsts:
            if stage_of.get(src) != stage_of.get(dst):
                count += 1
    return count


# ----------------------------------------------------------------------
# The TPP heuristic
# ----------------------------------------------------------------------

def heuristic_partition(
    dag: DagScc,
    scc_cycles: list[float],
    threads: int = 2,
) -> Partition:
    """The paper's load-balance heuristic (Section 2.2.2).

    Maintains the candidate set (SCCs whose predecessors are all
    assigned), picks the candidate with the largest estimated cycles,
    breaking ties toward candidates that reduce the current partition's
    outgoing dependences, and closes the current partition when its
    load reaches ``total / threads``.
    """
    if threads < 1:
        raise PartitionError("need at least one thread")
    n = len(dag)
    if n == 0:
        raise PartitionError("empty DAG_SCC")
    total = sum(scc_cycles)
    target = total / threads
    preds = dag.predecessors()
    unassigned_preds = {sid: len(ps) for sid, ps in preds.items()}
    candidates = {sid for sid, k in unassigned_preds.items() if k == 0}

    stages: list[set[int]] = [set()]
    current_load = 0.0

    def outgoing_reduction(sid: int) -> int:
        """How many arcs from the current partition land on ``sid``."""
        current = stages[-1]
        return sum(1 for p in preds[sid] if p in current)

    assigned = 0
    while assigned < n:
        best = max(
            sorted(candidates),
            key=lambda sid: (scc_cycles[sid], outgoing_reduction(sid), -sid),
        )
        # Close the current partition when its load reached its share,
        # or when adding the pick would overshoot the share by more
        # than not adding it undershoots (bin-packing style), as long
        # as more partitions may still be opened.
        if len(stages) < threads and stages[-1]:
            projected = current_load + scc_cycles[best]
            overshoot = projected - target
            undershoot = target - current_load
            if current_load >= target or (
                projected > target and overshoot > undershoot
            ):
                stages.append(set())
                current_load = 0.0
        candidates.discard(best)
        stages[-1].add(best)
        current_load += scc_cycles[best]
        assigned += 1
        for succ in dag.edges.get(best, ()):
            unassigned_preds[succ] -= 1
            if unassigned_preds[succ] == 0:
                candidates.add(succ)
    return Partition(dag, stages)


# ----------------------------------------------------------------------
# Exhaustive 2-way enumeration (Fig. 6(a) "best manual", Fig. 7)
# ----------------------------------------------------------------------

def enumerate_two_way_partitions(
    dag: DagScc, limit: int = 4096
) -> list[Partition]:
    """Every valid 2-stage partitioning of the DAG_SCC.

    A valid first stage is a non-empty, non-total *down-set* (closed
    under predecessors) of the DAG.  DAGs here are small (Table 1 shows
    3-36 SCCs), but ``limit`` guards against pathological inputs.
    """
    n = len(dag)
    preds = dag.predecessors()
    order = dag.topological_order()
    downsets: list[frozenset[int]] = []
    seen: set[frozenset[int]] = set()

    def extend(current: frozenset[int]) -> None:
        if len(downsets) >= limit:
            return
        for sid in order:
            if len(downsets) >= limit:
                return
            if sid in current:
                continue
            if all(p in current for p in preds[sid]):
                candidate = frozenset(current | {sid})
                if candidate not in seen and len(candidate) < n:
                    seen.add(candidate)
                    downsets.append(candidate)
                    extend(candidate)

    extend(frozenset())
    partitions = []
    for downset in sorted(downsets, key=lambda s: (len(s), sorted(s))):
        partitions.append(Partition(dag, [set(downset), set(range(n)) - set(downset)]))
    return partitions


def random_partition(dag: DagScc, rng, threads: int = 2) -> Partition:
    """A random *valid* partitioning with at most ``threads`` stages.

    Walks the DAG_SCC in topological order and places each SCC on a
    stage no earlier than all of its predecessors, so every arc flows
    forward (Definition 1).  Empty stages are dropped.  This is the
    partition-enumeration hook the differential fuzzer uses to explore
    cuts the TPP heuristic would never pick.

    Args:
        dag: The condensed dependence graph.
        rng: A ``random.Random``-like object (``randint`` is used).
        threads: Maximum number of pipeline stages.
    """
    if threads < 1:
        raise PartitionError("need at least one thread")
    preds = dag.predecessors()
    stage_of: dict[int, int] = {}
    for sid in dag.topological_order():
        earliest = max((stage_of[p] for p in preds[sid]), default=0)
        stage_of[sid] = rng.randint(earliest, threads - 1)
    stages: list[set[int]] = [set() for _ in range(threads)]
    for sid, stage in stage_of.items():
        stages[stage].add(sid)
    return Partition(dag, [s for s in stages if s])


def single_stage_partition(dag: DagScc) -> Partition:
    """The trivial partition (DSWP declined; everything in one thread)."""
    return Partition(dag, [set(range(len(dag)))])
