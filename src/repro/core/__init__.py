"""The paper's contribution: the DSWP transformation and its baselines."""

from repro.core.doacross import DoacrossError, doacross
from repro.core.doall import DoallError, DoallResult, Reduction, doall
from repro.core.dswp import DSWPResult, dswp
from repro.core.estimate import PartitionEstimate, estimate_partition
from repro.core.flows import (
    BoundaryFlow,
    FlowKind,
    FlowPlan,
    LoopFlow,
    QueueAllocator,
)
from repro.core.optimize import hoist_initial_flows, optimize_flows, sink_final_flows
from repro.core.speculation import (
    SpeculationError,
    SpeculativeDSWPResult,
    speculative_dswp,
)
from repro.core.unroll import UnrollError, unroll_loop, unrolled_loop
from repro.core.program import MultiLoopResult, TransformedLoop, dswp_program
from repro.core.parallel_stage import (
    ParallelStageError,
    ParallelStageResult,
    parallel_stage_dswp,
)
from repro.core.partition import (
    Partition,
    PartitionError,
    cut_flow_count,
    enumerate_two_way_partitions,
    estimated_scc_cycles,
    heuristic_partition,
    single_stage_partition,
)
from repro.core.splitter import LoopSplitter, SplitError, SplitResult, split_loop

__all__ = [
    "BoundaryFlow",
    "DSWPResult",
    "DoacrossError",
    "DoallError",
    "DoallResult",
    "FlowKind",
    "FlowPlan",
    "LoopFlow",
    "LoopSplitter",
    "MultiLoopResult",
    "ParallelStageError",
    "ParallelStageResult",
    "Partition",
    "PartitionError",
    "PartitionEstimate",
    "QueueAllocator",
    "Reduction",
    "SplitError",
    "SpeculationError",
    "SpeculativeDSWPResult",
    "SplitResult",
    "TransformedLoop",
    "UnrollError",
    "cut_flow_count",
    "doacross",
    "doall",
    "dswp",
    "dswp_program",
    "enumerate_two_way_partitions",
    "estimate_partition",
    "estimated_scc_cycles",
    "heuristic_partition",
    "hoist_initial_flows",
    "optimize_flows",
    "parallel_stage_dswp",
    "single_stage_partition",
    "sink_final_flows",
    "speculative_dswp",
    "split_loop",
    "unroll_loop",
    "unrolled_loop",
]
