"""Static profitability estimation for candidate partitions.

After choosing a partitioning, the TPP step estimates whether it will
pay off by considering the cost of the produce and consume instructions
it requires (Section 2.2.2).  The thread pipeline's throughput is
limited by its slowest stage, so the estimate is::

    est_speedup = total_cycles / max_i(stage_cycles_i + flow_overhead_i)

where flow overhead charges one M-slot-ish cycle per produce/consume
occurrence per iteration (weighted by the profile weight of the flow's
source instruction).
"""

from __future__ import annotations

from repro.analysis.pdg import DependenceGraph
from repro.analysis.profiling import LoopProfile
from repro.analysis.scc import DagScc
from repro.core.flows import FlowPlan
from repro.core.partition import Partition, estimated_scc_cycles


class PartitionEstimate:
    """Estimated per-stage cycles and speedup for one partition."""

    def __init__(
        self,
        stage_cycles: list[float],
        flow_overhead: list[float],
        total_cycles: float,
    ) -> None:
        self.stage_cycles = stage_cycles
        self.flow_overhead = flow_overhead
        self.total_cycles = total_cycles

    @property
    def bottleneck(self) -> float:
        return max(
            s + f for s, f in zip(self.stage_cycles, self.flow_overhead)
        )

    @property
    def speedup(self) -> float:
        if self.bottleneck <= 0:
            return 1.0
        return self.total_cycles / self.bottleneck

    def profitable(self, threshold: float = 1.02) -> bool:
        """Is the estimated speedup worth the transformation?"""
        return self.speedup >= threshold

    def __repr__(self) -> str:
        stages = [
            f"{s:.1f}+{f:.1f}"
            for s, f in zip(self.stage_cycles, self.flow_overhead)
        ]
        return f"<Estimate stages=[{', '.join(stages)}] speedup={self.speedup:.2f}x>"


def estimate_partition(
    partition: Partition,
    dag: DagScc,
    graph: DependenceGraph,
    profile: LoopProfile,
    latency_of,
    flow_plan: FlowPlan,
    flow_cost: float = 1.0,
) -> PartitionEstimate:
    """Estimate stage cycles and speedup for ``partition``.

    ``flow_plan`` must be the deduplicated plan for this partition (the
    splitter's planning pass), so the overhead counts real queues, not
    raw dependence arcs.
    """
    scc_cycles = estimated_scc_cycles(dag, graph, profile, latency_of)
    stage_cycles = [
        sum(scc_cycles[scc] for scc in stage) for stage in partition.stages
    ]
    overhead = [0.0] * len(partition)
    for flow in flow_plan.loop_flows:
        weight = profile.instruction_weight(graph.function, flow.source)
        overhead[flow.src_thread] += flow_cost * weight
        overhead[flow.dst_thread] += flow_cost * weight
    total = sum(scc_cycles)
    return PartitionEstimate(stage_cycles, overhead, total)
