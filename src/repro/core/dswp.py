"""The DSWP driver: the algorithm of Fig. 3, end to end.

::

    DSWP(loop L)
      (1) G        <- build dependence graph(L)
      (2) SCCs     <- find strongly connected components(G)
      (3) if |SCCs| = 1 then return
      (4) DAG_SCC  <- coalesce SCCs(G, SCCs)
      (5) P        <- TPP algorithm(DAG_SCC, L)
      (6) if |P| = 1 then return
      (7) split code into loops(L, P)
      (8) insert necessary flows(L, P)

:func:`dswp` runs all eight steps and returns a :class:`DSWPResult`
either holding the transformed :class:`ThreadProgram` or explaining why
the transformation was declined (single SCC, or estimated
unprofitability), which the Table-1 and case-study benchmarks report.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.memdep import AliasModel
from repro.analysis.pdg import DependenceGraph, build_dependence_graph
from repro.analysis.profiling import LoopProfile
from repro.analysis.scc import DagScc
from repro.core.estimate import PartitionEstimate, estimate_partition
from repro.core.flows import FlowPlan
from repro.core.partition import (
    Partition,
    estimated_scc_cycles,
    heuristic_partition,
)
from repro.core.splitter import LoopSplitter, SplitResult
from repro.interp.multithread import ThreadProgram
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.loops import Loop, find_loops
from repro.ir.verifier import verify_function
from repro.machine.config import static_latency


class DSWPResult:
    """Outcome of running DSWP on one loop."""

    def __init__(
        self,
        function: Function,
        loop: Loop,
        graph: DependenceGraph,
        dag: DagScc,
        applied: bool,
        reason: Optional[str] = None,
        partition: Optional[Partition] = None,
        estimate: Optional[PartitionEstimate] = None,
        split: Optional[SplitResult] = None,
    ) -> None:
        self.function = function
        self.loop = loop
        self.graph = graph
        self.dag = dag
        self.applied = applied
        self.reason = reason
        self.partition = partition
        self.estimate = estimate
        self._split = split

    @property
    def program(self) -> ThreadProgram:
        if self._split is None:
            raise ValueError(f"DSWP was not applied: {self.reason}")
        return self._split.program

    @property
    def flow_plan(self) -> FlowPlan:
        if self._split is None:
            raise ValueError(f"DSWP was not applied: {self.reason}")
        return self._split.flow_plan

    @property
    def num_sccs(self) -> int:
        return len(self.dag)

    def flow_counts(self) -> dict[str, int]:
        """Initial/loop/final flow counts (Table 1's last columns)."""
        if self._split is None:
            return {"initial": 0, "loop": 0, "final": 0}
        return self.flow_plan.counts()

    def __repr__(self) -> str:
        state = "applied" if self.applied else f"declined ({self.reason})"
        return f"<DSWP {self.function.name}/{self.loop.header}: {state}>"


def dswp(
    function: Function,
    loop: Optional[Loop] = None,
    threads: int = 2,
    alias_model: Optional[AliasModel] = None,
    profile: Optional[LoopProfile] = None,
    latency_of: Callable[[Instruction], float] = static_latency,
    partition: Optional[Partition] = None,
    queue_limit: int = 256,
    require_profitable: bool = True,
    profit_threshold: float = 1.02,
    graph_transform: Optional[Callable[[DependenceGraph], None]] = None,
) -> DSWPResult:
    """Apply DSWP to ``loop`` (default: the largest loop of ``function``).

    Args:
        function: The function containing the loop.  It is not
            modified; the result holds fresh per-thread functions.
        loop: Target loop; must have a unique preheader.
        threads: Maximum pipeline stages (``t`` in Definition 1).
        alias_model: Memory analysis precision (default: region-based).
        profile: Execution profile; uniform weights if omitted.
        latency_of: Per-instruction latency estimate for the heuristic.
        partition: Use this partition instead of the TPP heuristic
            (the "manually directed" mode of Fig. 6(a)).
        queue_limit: Synchronization-array queue budget.
        require_profitable: Decline the transformation when the static
            estimate sees no speedup (Fig. 3 line 6).  The estimate is
            still attached to the result when a partition was given.
        profit_threshold: Minimum estimated speedup to proceed.
        graph_transform: Optional mutation applied to the freshly built
            dependence graph before SCC condensation.  Used by the
            differential fuzzer's fault injector to emulate splitter
            bugs (dropped cross-thread dependence arcs); never set on
            correctness-critical paths.
    """
    if loop is None:
        loops = find_loops(function)
        if not loops:
            raise ValueError(f"{function.name} contains no loops")
        loop = loops[0]
    for other in find_loops(function):
        if other.header != loop.header and loop.body < other.body:
            # The loop is entered once per iteration of an enclosing
            # loop; the single-shot thread pipeline built here would
            # desynchronise on the second entry.  The master-queue
            # runtime (repro.core.program.dswp_program) handles this
            # case, exactly as Section 3 of the paper prescribes.
            graph = build_dependence_graph(function, loop, alias_model)
            return DSWPResult(
                function, loop, graph, graph.dag_scc(), applied=False,
                reason=(
                    "loop is nested inside another loop (re-entered); "
                    "use dswp_program's master-queue runtime"
                ),
            )
    graph = build_dependence_graph(function, loop, alias_model)
    if graph_transform is not None:
        graph_transform(graph)
    dag = graph.dag_scc()
    if len(dag) <= 1:
        return DSWPResult(
            function, loop, graph, dag, applied=False,
            reason="dependence graph has a single SCC",
        )
    profile = profile or LoopProfile.uniform(loop)
    scc_cycles = estimated_scc_cycles(dag, graph, profile, latency_of)
    if partition is None:
        partition = heuristic_partition(dag, scc_cycles, threads=threads)
    if len(partition) <= 1:
        return DSWPResult(
            function, loop, graph, dag, applied=False,
            reason="heuristic produced a single partition",
            partition=partition,
        )

    splitter = LoopSplitter(function, loop, graph, partition, queue_limit)
    split = splitter.split()
    estimate = estimate_partition(
        partition, dag, graph, profile, latency_of, split.flow_plan
    )
    if require_profitable and not estimate.profitable(profit_threshold):
        return DSWPResult(
            function, loop, graph, dag, applied=False,
            reason=f"estimated speedup {estimate.speedup:.2f}x below threshold",
            partition=partition, estimate=estimate,
        )
    for fn in split.program.threads:
        verify_function(fn)
    return DSWPResult(
        function, loop, graph, dag, applied=True,
        partition=partition, estimate=estimate, split=split,
    )
