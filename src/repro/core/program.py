"""Whole-program DSWP: several loops sharing one auxiliary thread (§3).

The paper's compiler creates the auxiliary thread once, at program
start.  The main thread sends the address of the current loop's
auxiliary function on a dedicated *master queue* before entering each
optimised loop; the auxiliary thread blocks on that queue, dispatches,
runs the loop's auxiliary code, and loops back.  A NULL function
pointer terminates it.

Our IR has no indirect calls, so dispatch is a compare/branch chain on
small integer loop ids -- semantically the same mechanism:

* the main thread produces ``loop_id`` on the master queue in each
  transformed loop's preheader, and ``0`` before returning;
* each auxiliary thread is one function: a ``master`` block consuming
  the id, a dispatch chain, one renamed copy of each loop's auxiliary
  code whose exit jumps back to ``master``, and a ``ret`` on id 0.

:func:`dswp_program` applies DSWP to any number of loops in one
function this way, with a shared queue allocator so ids never collide.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.memdep import AliasModel
from repro.analysis.pdg import build_dependence_graph
from repro.analysis.profiling import LoopProfile
from repro.core.flows import QueueAllocator
from repro.core.partition import heuristic_partition, estimated_scc_cycles
from repro.core.splitter import LoopSplitter, SplitResult
from repro.interp.multithread import ThreadProgram
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.loops import find_loop_by_header, find_loops
from repro.ir.types import Opcode, RegClass
from repro.machine.config import static_latency


class TransformedLoop:
    """Bookkeeping for one loop the program transformation handled."""

    def __init__(self, header: str, loop_id: int,
                 split: Optional[SplitResult], reason: Optional[str]) -> None:
        self.header = header
        self.loop_id = loop_id  # 0 when not transformed
        self.split = split
        self.reason = reason

    @property
    def applied(self) -> bool:
        return self.split is not None


class MultiLoopResult:
    """Outcome of :func:`dswp_program`."""

    def __init__(self, program: ThreadProgram, loops: list[TransformedLoop],
                 master_queues: dict[int, int]) -> None:
        self.program = program
        self.loops = loops
        #: auxiliary thread index -> its master queue id.
        self.master_queues = master_queues

    @property
    def applied_loops(self) -> list[TransformedLoop]:
        return [t for t in self.loops if t.applied]


def dswp_program(
    function: Function,
    loop_headers: Optional[list[str]] = None,
    threads: int = 2,
    alias_model: Optional[AliasModel] = None,
    profiles: Optional[dict[str, LoopProfile]] = None,
    queue_limit: int = 256,
) -> MultiLoopResult:
    """Apply DSWP to several loops of ``function`` with one auxiliary
    thread per pipeline stage, multiplexed through master queues.

    Loops that cannot be transformed (single SCC, no valid multi-stage
    partition, or nested inside an already-transformed loop) are left
    sequential in the main thread.
    """
    if loop_headers is None:
        loop_headers = [l.header for l in find_loops(function)]
    allocator = QueueAllocator(queue_limit)
    master_queues = {i: allocator.allocate() for i in range(1, threads)}

    current_main = function
    transformed: list[TransformedLoop] = []
    aux_sections: dict[int, list[tuple[int, Function]]] = {
        i: [] for i in range(1, threads)
    }
    next_id = 1
    consumed_blocks: set[str] = set()

    for header in loop_headers:
        if header in consumed_blocks:
            transformed.append(TransformedLoop(
                header, 0, None, "inside an already-transformed loop"))
            continue
        try:
            loop = find_loop_by_header(current_main, header)
        except KeyError:
            transformed.append(TransformedLoop(
                header, 0, None, "loop disappeared during transformation"))
            continue
        graph = build_dependence_graph(current_main, loop, alias_model)
        dag = graph.dag_scc()
        if len(dag) <= 1:
            transformed.append(TransformedLoop(
                header, 0, None, "single SCC"))
            continue
        profile = (profiles or {}).get(header) or LoopProfile.uniform(loop)
        cycles = estimated_scc_cycles(dag, graph, profile, static_latency)
        partition = heuristic_partition(dag, cycles, threads=threads)
        if len(partition) <= 1:
            transformed.append(TransformedLoop(
                header, 0, None, "unpartitionable"))
            continue
        split = LoopSplitter(current_main, loop, graph, partition,
                             allocator=allocator).split()
        loop_id = next_id
        next_id += 1
        consumed_blocks |= loop.body
        main_fn = split.program.threads[0]
        _announce_loop(main_fn, loop, master_queues, len(partition), loop_id)
        for stage in range(1, len(partition)):
            aux_sections[stage].append((loop_id, split.program.threads[stage]))
        transformed.append(TransformedLoop(header, loop_id, split, None))
        current_main = main_fn

    _announce_termination(current_main, master_queues, aux_sections)
    aux_threads = [
        _build_master_thread(function.name, stage, master_queues[stage],
                             aux_sections[stage])
        for stage in sorted(aux_sections)
        if aux_sections[stage]
    ]
    program = ThreadProgram([current_main] + aux_threads,
                            name=f"{function.name}@dswp-program")
    return MultiLoopResult(program, transformed, master_queues)


def _announce_loop(main_fn: Function, loop, master_queues: dict[int, int],
                   stages: int, loop_id: int) -> None:
    """Produce the loop id on each participating stage's master queue
    at the top of the loop's preheader."""
    preheader = main_fn.block(loop.preheader())
    main_fn.sync_register_counter()
    reg = main_fn.new_reg(RegClass.GEN)
    announcements = [Instruction(Opcode.MOV, dest=reg, imm=loop_id)]
    for stage in range(1, stages):
        announcements.append(
            Instruction(Opcode.PRODUCE, srcs=[reg], queue=master_queues[stage])
        )
    for pos, inst in enumerate(announcements):
        preheader.instructions.insert(pos, inst)


def _announce_termination(main_fn: Function, master_queues: dict[int, int],
                          aux_sections: dict[int, list]) -> None:
    """Produce the terminate signal (id 0) before every return."""
    main_fn.sync_register_counter()
    reg = main_fn.new_reg(RegClass.GEN)
    for block in main_fn.exit_blocks():
        block.insert_before_terminator(Instruction(Opcode.MOV, dest=reg, imm=0))
        for stage, sections in aux_sections.items():
            if sections:
                block.insert_before_terminator(
                    Instruction(Opcode.PRODUCE, srcs=[reg],
                                queue=master_queues[stage])
                )


def _build_master_thread(base_name: str, stage: int, master_queue: int,
                         sections: list[tuple[int, Function]]) -> Function:
    """One auxiliary thread: master dispatch loop + per-loop sections."""
    func = Function(f"{base_name}@aux{stage}")
    for _, section in sections:
        for inst in section.instructions():
            for reg in inst.defined_registers() + inst.used_registers():
                func.note_register(reg)
    id_reg = func.new_reg(RegClass.GEN)
    match_pred = func.new_reg(RegClass.PRED)

    master = func.add_block("master", entry=True)
    master.append(Instruction(Opcode.CONSUME, dest=id_reg, queue=master_queue))
    master.append(Instruction(Opcode.JMP, targets=["dispatch_0"]))

    # Dispatch chain: id 0 -> done; id k -> section k's entry.
    done_label = "master_done"
    chain = [(0, done_label)] + [
        (loop_id, f"L{loop_id}_{sections_entry(section)}")
        for loop_id, section in sections
    ]
    for idx, (loop_id, target) in enumerate(chain):
        block = func.add_block(f"dispatch_{idx}")
        block.append(
            Instruction(Opcode.CMP_EQ, dest=match_pred, srcs=[id_reg],
                        imm=loop_id)
        )
        fall = f"dispatch_{idx + 1}" if idx + 1 < len(chain) else "master"
        block.append(
            Instruction(Opcode.BR, srcs=[match_pred], targets=[target, fall])
        )

    done = func.add_block(done_label)
    done.append(Instruction(Opcode.RET))

    for loop_id, section in sections:
        prefix = f"L{loop_id}_"
        for block in section.blocks():
            copy = func.add_block(prefix + block.label)
            for inst in block:
                cloned = _clone(inst)
                if cloned.opcode is Opcode.RET:
                    # End of this loop's auxiliary work: back to master.
                    cloned = Instruction(Opcode.JMP, targets=["master"])
                elif cloned.targets:
                    cloned.targets = [prefix + t for t in cloned.targets]
                copy.append(cloned)
    return func


def sections_entry(section: Function) -> str:
    return section.entry_label


def _clone(inst: Instruction) -> Instruction:
    return Instruction(
        inst.opcode,
        dest=inst.dest,
        srcs=list(inst.srcs),
        imm=inst.imm,
        targets=list(inst.targets),
        region=inst.region,
        queue=inst.queue,
        origin=inst,
        attrs=dict(inst.attrs),
    )
