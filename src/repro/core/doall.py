"""DOALL parallelization for independent-iteration loops (§4.1).

Table 1's footnote marks three of the selected loops (129.compress,
179.art, jpegenc) as DOALL, and the paper notes that "although DSWP can
be applied to these loops, parallelizing them as independent threads is
likely more efficient because it avoids all overhead of inter-thread
communication during loop execution."  This module implements that
comparison point: iterations are interleaved across threads with *no*
per-iteration communication -- only live-ins before the loop and
reduction partials after it.

Applicability (checked, :class:`DoallError` otherwise):

* a counted induction: the loop-exit test compares an induction
  register stepped by a constant against a bound;
* every other recurrence is a recognised *reduction*: an
  ``add``/``fadd`` of the accumulator with a loop-varying operand,
  optionally followed by a power-of-two mask (modular addition, which
  combines associatively);
* no loop-carried memory conflicts (the region/affine model must prove
  iterations independent) and no impure calls;
* loop live-outs limited to reductions (the induction's final value,
  which differs under interleaving, must be dead after the loop).

Thread ``t`` starts at ``i + t*step`` and strides ``threads*step``;
auxiliary threads receive the loop live-ins once, zero their private
reduction partials, and send the partials back when they finish; the
main thread folds them in after its own share.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.liveness import compute_liveness, loop_live_ins, loop_live_outs
from repro.analysis.memdep import AliasModel, needs_ordering
from repro.analysis.pdg import DependenceGraph, DepKind, build_dependence_graph
from repro.core.flows import QueueAllocator
from repro.interp.multithread import ThreadProgram
from repro.ir.function import Function
from repro.ir.instruction import Instruction
from repro.ir.loops import Loop, find_loops
from repro.ir.types import Opcode, RegClass, Register


class DoallError(RuntimeError):
    """The loop is not (provably) DOALL."""


class Reduction:
    """One recognised reduction: accumulate then (optionally) mask."""

    def __init__(self, register: Register, accumulate: Instruction,
                 mask: Optional[Instruction]) -> None:
        self.register = register
        self.accumulate = accumulate
        self.mask = mask  # the `and acc, acc, 2^k-1` instruction, if any

    @property
    def opcode(self) -> Opcode:
        return self.accumulate.opcode

    def __repr__(self) -> str:
        masked = " masked" if self.mask is not None else ""
        return f"<Reduction {self.register} via {self.opcode.value}{masked}>"


class Induction:
    """The loop's counted induction: ``add i, i, step`` + exit test."""

    def __init__(self, register: Register, step_inst: Instruction,
                 step: int) -> None:
        self.register = register
        self.step_inst = step_inst
        self.step = step


class DoallResult:
    def __init__(self, program: ThreadProgram, induction: Induction,
                 reductions: list[Reduction]) -> None:
        self.program = program
        self.induction = induction
        self.reductions = reductions


def _clone(inst: Instruction) -> Instruction:
    return Instruction(
        inst.opcode,
        dest=inst.dest,
        srcs=list(inst.srcs),
        imm=inst.imm,
        targets=list(inst.targets),
        region=inst.region,
        queue=inst.queue,
        origin=inst,
        attrs=dict(inst.attrs),
    )


_ADDITIVE = (Opcode.ADD, Opcode.FADD)


def _recognise_induction(graph: DependenceGraph, scc) -> Optional[Induction]:
    """Is this SCC a counted induction + exit test?"""
    adds = [i for i in scc if i.opcode is Opcode.ADD]
    cmps = [i for i in scc if i.opcode in
            (Opcode.CMP_GE, Opcode.CMP_GT, Opcode.CMP_LE, Opcode.CMP_LT)]
    branches = [i for i in scc if i.is_branch]
    others = [i for i in scc if i not in adds + cmps + branches]
    if len(adds) != 1 or len(cmps) != 1 or len(branches) != 1 or others:
        return None
    add = adds[0]
    if (add.dest is None or add.imm is None or add.imm <= 0
            or add.srcs != [add.dest]):
        return None
    cmp_inst = cmps[0]
    if add.dest not in cmp_inst.used_registers():
        return None
    return Induction(add.dest, add, add.imm)


def _recognise_reduction(scc) -> Optional[Reduction]:
    """Is this SCC `acc = acc (f)add x` (+ optional power-of-two mask)?"""
    if len(scc) == 1:
        inst = scc[0]
        if (inst.opcode in _ADDITIVE and inst.dest is not None
                and inst.dest in inst.used_registers()):
            return Reduction(inst.dest, inst, None)
        return None
    if len(scc) == 2:
        adds = [i for i in scc if i.opcode in _ADDITIVE]
        masks = [i for i in scc if i.opcode is Opcode.AND]
        if len(adds) != 1 or len(masks) != 1:
            return None
        add, mask = adds[0], masks[0]
        acc = mask.dest
        if acc is None or add.dest is None:
            return None
        # add reads acc (carried), defines a temp the mask folds back.
        if acc not in add.used_registers():
            return None
        if mask.srcs != [add.dest] or mask.imm is None:
            return None
        if mask.imm & (mask.imm + 1) != 0:
            return None  # not 2^k - 1: modular combination unproven
        return Reduction(acc, add, mask)
    return None


def doall(
    function: Function,
    loop: Optional[Loop] = None,
    threads: int = 2,
    alias_model: Optional[AliasModel] = None,
    queue_limit: int = 256,
) -> DoallResult:
    """Parallelize ``loop`` as independent interleaved iterations."""
    if threads < 2:
        raise DoallError("need at least two threads")
    if loop is None:
        loops = find_loops(function)
        if not loops:
            raise DoallError(f"{function.name} contains no loops")
        loop = loops[0]
    alias_model = alias_model or AliasModel()
    graph = build_dependence_graph(function, loop, alias_model)
    dag = graph.dag_scc()

    for inst in graph.nodes:
        if inst.is_call and not inst.attrs.get("pure", False):
            raise DoallError("impure call inside the loop")
    for a in graph.nodes:
        for b in graph.nodes:
            if a is b or not (a.is_memory or a.is_call):
                continue
            if not (b.is_memory or b.is_call):
                continue
            if needs_ordering(a, b) and alias_model.conflicts_cross_iteration(a, b):
                raise DoallError(
                    f"loop-carried memory conflict: {a.render()} vs {b.render()}"
                )

    induction: Optional[Induction] = None
    reductions: list[Reduction] = []
    for scc in dag.sccs:
        if len(scc) == 1 and not _is_recurrent(graph, scc[0]):
            continue
        found = _recognise_induction(graph, scc)
        if found is not None:
            if induction is not None:
                raise DoallError("multiple counted inductions")
            induction = found
            continue
        red = _recognise_reduction(scc)
        if red is not None:
            reductions.append(red)
            continue
        raise DoallError(
            f"unrecognised recurrence: {[i.render() for i in scc]}"
        )
    if induction is None:
        raise DoallError("no counted induction found")

    liveness = compute_liveness(function)
    live_outs = loop_live_outs(function, loop, liveness)
    reduction_regs = {r.register for r in reductions}
    illegal = live_outs - reduction_regs
    if illegal:
        raise DoallError(
            f"live-outs {sorted(illegal)} are not reductions; their "
            "interleaved final values would differ"
        )
    live_ins = sorted(loop_live_ins(function, loop, liveness))
    preheader = loop.preheader()
    if preheader is None:
        raise DoallError("loop lacks a unique preheader")

    alloc = QueueAllocator(queue_limit)
    livein_q = {(reg, t): alloc.allocate()
                for t in range(1, threads) for reg in live_ins}
    partial_q = {(red.register, t): alloc.allocate()
                 for t in range(1, threads) for red in reductions}

    funcs = [
        _build_thread(t, threads, function, loop, induction, reductions,
                      live_ins, livein_q, partial_q, preheader)
        for t in range(threads)
    ]
    program = ThreadProgram(funcs, name=f"{function.name}@doall")
    return DoallResult(program, induction, reductions)


def _is_recurrent(graph: DependenceGraph, inst: Instruction) -> bool:
    """Does a singleton SCC actually feed itself (self arc)?"""
    return any(a.src is inst and a.dst is inst for a in graph.arcs)


def _build_thread(tid, threads, function, loop, induction, reductions,
                  live_ins, livein_q, partial_q, preheader) -> Function:
    func = Function(f"{function.name}@doall{tid}")
    for inst in function.instructions():
        for reg in inst.defined_registers() + inst.used_registers():
            func.note_register(reg)
    tmp = func.new_reg(RegClass.GEN)

    if tid == 0:
        for block in function.blocks():
            copy = func.add_block(block.label)
            for inst in block:
                cloned = _clone(inst)
                if block.label in loop.body:
                    cloned = _retune(cloned, induction, threads)
                copy.append(cloned)
        func.entry_label = function.entry_label
        pre = func.block(preheader)
        for (reg, t), qid in sorted(livein_q.items(), key=lambda kv: kv[1]):
            pre.insert_before_terminator(
                Instruction(Opcode.PRODUCE, srcs=[reg], queue=qid)
            )
        # Fold in the partials at every loop exit, via staging blocks.
        staging: dict[str, str] = {}
        for label in sorted(loop.body):
            term = func.block(label).terminator
            if term is None:
                continue
            for idx, target in enumerate(list(term.targets)):
                if target in loop.body or target.startswith("doall_exit_"):
                    continue
                stage_label = staging.get(target)
                if stage_label is None:
                    stage_label = f"doall_exit_{len(staging)}"
                    while func.has_block(stage_label):
                        stage_label = f"doall_exit_{len(staging)}x"
                    staging[target] = stage_label
                    stage = func.add_block(stage_label)
                    for red in reductions:
                        for t in range(1, threads):
                            qid = partial_q[(red.register, t)]
                            stage.append(Instruction(
                                Opcode.CONSUME, dest=tmp, queue=qid
                            ))
                            stage.append(Instruction(
                                red.opcode, dest=red.register,
                                srcs=[red.register, tmp],
                            ))
                            if red.mask is not None:
                                stage.append(Instruction(
                                    Opcode.AND, dest=red.register,
                                    srcs=[red.register], imm=red.mask.imm,
                                ))
                    stage.append(Instruction(Opcode.JMP, targets=[target]))
                term.targets[idx] = stage_label
        func.sync_register_counter()
        return func

    # Auxiliary thread: live-ins once, private partials, strided loop.
    entry = func.add_block("entry", entry=True)
    for (reg, t), qid in sorted(livein_q.items(), key=lambda kv: kv[1]):
        if t == tid:
            entry.append(Instruction(Opcode.CONSUME, dest=reg, queue=qid))
    for red in reductions:
        entry.append(Instruction(Opcode.MOV, dest=red.register, imm=0))
    entry.append(Instruction(
        Opcode.ADD, dest=induction.register,
        srcs=[induction.register], imm=tid * induction.step,
    ))
    entry.append(Instruction(Opcode.JMP, targets=[loop.header]))
    post_label = "post"
    for block in loop.blocks():
        copy = func.add_block(block.label)
        for inst in block:
            cloned = _retune(_clone(inst), induction, threads)
            if cloned.targets:
                cloned.targets = [
                    t if t in loop.body else post_label
                    for t in cloned.targets
                ]
            copy.append(cloned)
    post = func.add_block(post_label)
    for red in reductions:
        qid = partial_q[(red.register, tid)]
        post.append(Instruction(Opcode.PRODUCE, srcs=[red.register],
                                queue=qid))
    post.append(Instruction(Opcode.RET))
    func.sync_register_counter()
    return func


def _retune(inst: Instruction, induction: Induction, threads: int) -> Instruction:
    """Widen the induction step to ``threads * step``."""
    if inst.origin is induction.step_inst or inst is induction.step_inst:
        inst.imm = induction.step * threads
    return inst
