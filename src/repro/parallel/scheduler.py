"""Cost-aware work-stealing scheduler for the worker pool.

Placement happens in two phases:

1. **Static assignment** -- tasks are grouped by *affinity* (a bench
   sweep groups by ``workload:scale``, so every point of one workload
   prefers the worker whose arena already holds that workload's decoded
   program and cache entries).  Groups are placed longest-first onto
   the least-loaded worker (LPT), which bounds the makespan at 4/3 of
   optimal even before stealing; within a worker's deque the tasks stay
   in descending cost order, so the expensive work starts first.

2. **Stealing** -- a worker that drains its own deque takes the last
   (cheapest, least affine) task from the back of the most-loaded
   victim's deque.  Stealing trades arena warmth for load balance; the
   shared on-disk cache keeps the functional part of that trade cheap.

The scheduler is driven from the pool's dispatch loop in the parent
process, so steal accounting is exact and free of races.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass
class PoolTask:
    """One unit of work for the pool.

    ``fn`` must be a module-level callable (it crosses the process
    boundary by reference) taking ``payload`` as its only argument.
    """

    id: str
    fn: Callable
    payload: object
    cost: float = 1.0
    affinity: Optional[str] = None
    #: Per-task deadline in seconds; ``None`` disables the hung-worker
    #: watchdog for this task.  Only enforced on the parallel path (the
    #: serial lane cannot reap itself).
    timeout: Optional[float] = None


@dataclass
class TaskResult:
    """Outcome of one task, with execution provenance."""

    task: PoolTask
    value: object
    worker: int
    duration: float
    attempts: int = 1
    #: Ran in the driver process after exhausting worker retries.
    degraded: bool = False
    #: Executed by a worker other than its statically assigned owner.
    stolen: bool = False
    #: Transient-failure redispatches (flaky task, undecodable result)
    #: absorbed by the backoff-retry loop before this result landed.
    retries: int = 0
    #: At least one attempt blew its deadline and the worker was reaped.
    timed_out: bool = False


@dataclass
class _WorkerQueue:
    tasks: deque = field(default_factory=deque)
    load: float = 0.0


class StealScheduler:
    """Static LPT-with-affinity assignment plus dispatch-time stealing."""

    def __init__(self, tasks: list[PoolTask], workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self._queues = [_WorkerQueue() for _ in range(workers)]
        self.owner: dict[str, int] = {}
        self.steals = [0] * workers
        self._assign(tasks)

    # ------------------------------------------------------------------
    def _assign(self, tasks: list[PoolTask]) -> None:
        groups: dict[object, list[PoolTask]] = {}
        for index, task in enumerate(tasks):
            # Affinity-less tasks form singleton groups (unique key).
            key = task.affinity if task.affinity is not None else (
                "__solo__", index)
            groups.setdefault(key, []).append(task)
        ordered = sorted(
            groups.values(),
            key=lambda members: (-sum(t.cost for t in members),
                                 members[0].id),
        )
        for members in ordered:
            target = min(range(self.workers),
                         key=lambda w: (self._queues[w].load, w))
            queue = self._queues[target]
            for task in sorted(members, key=lambda t: (-t.cost, t.id)):
                queue.tasks.append(task)
                queue.load += task.cost
                self.owner[task.id] = target

    # ------------------------------------------------------------------
    def pending(self) -> int:
        return sum(len(q.tasks) for q in self._queues)

    def assigned_order(self, worker: int) -> list[str]:
        """The task ids currently queued for ``worker`` (test hook)."""
        return [t.id for t in self._queues[worker].tasks]

    def next_for(self, worker: int) -> Optional[tuple[PoolTask, bool]]:
        """The next task ``worker`` should run, or ``None`` when the
        sweep is drained.  Returns ``(task, stolen)``."""
        queue = self._queues[worker]
        if queue.tasks:
            task = queue.tasks.popleft()
            queue.load -= task.cost
            return task, False
        victim = max(
            (w for w in range(self.workers)
             if w != worker and self._queues[w].tasks),
            key=lambda w: self._queues[w].load,
            default=None,
        )
        if victim is None:
            return None
        task = self._queues[victim].tasks.pop()
        self._queues[victim].load -= task.cost
        self.steals[worker] += 1
        return task, True

    def requeue(self, task: PoolTask, worker: int) -> None:
        """Put ``task`` back at the front of ``worker``'s deque (used
        when a crashed worker's in-flight task is retried)."""
        self._queues[worker].tasks.appendleft(task)
        self._queues[worker].load += task.cost

    def clear_pending(self) -> int:
        """Drop every queued task (cancellation); in-flight tasks are
        unaffected.  Returns how many tasks were dropped."""
        dropped = 0
        for queue in self._queues:
            dropped += len(queue.tasks)
            queue.tasks.clear()
            queue.load = 0.0
        return dropped
