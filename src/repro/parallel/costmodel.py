"""Task cost estimation for the work-stealing scheduler.

Longest-processing-time-first scheduling needs a per-task cost *order*,
not accurate wall-clock predictions.  Every ``BENCH_<figure>.json``
written by the bench runner records per-point durations
(``point_seconds``), so on machines that have benched before the model
is *fitted*: the observed seconds of each ``workload:kind`` pair are
normalised by the sweep scale into a rate, and a point's estimate is
``rate * scale``.  On a cold machine the fallback still produces a
useful order -- cost grows with the sweep scale, and a ``dswp`` point
(transform + two-trace simulation) outweighs a ``base`` point.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Iterable, Optional

#: Cold-start weight of a dswp point relative to a base point: it
#: simulates one trace per pipeline stage and pays the transform.
DSWP_WEIGHT = 2.0


def point_kind(point_id: str) -> tuple[str, str]:
    """``"wc:dswp-full"`` -> ``("wc", "dswp")``."""
    workload, _, label = point_id.partition(":")
    return workload, ("dswp" if label.startswith("dswp") else "base")


class CostModel:
    """Per-``(workload, kind)`` seconds-per-scale rates."""

    def __init__(self, rates: Optional[dict[tuple[str, str], float]] = None,
                 source: str = "cold") -> None:
        self.rates = rates or {}
        self.source = source

    @property
    def fitted(self) -> bool:
        return bool(self.rates)

    def describe(self) -> str:
        if not self.fitted:
            return "cold"
        return f"{self.source} ({len(self.rates)} rates)"

    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, reports: Iterable[dict], source: str = "fitted") -> "CostModel":
        """Fit rates from bench report dicts (``point_seconds`` keyed by
        point id, ``scale`` for normalisation)."""
        samples: dict[tuple[str, str], list[float]] = {}
        for report in reports:
            scale = max(int(report.get("scale", 0) or 0), 1)
            for point_id, seconds in (report.get("point_seconds") or {}).items():
                if not isinstance(seconds, (int, float)) or seconds < 0:
                    continue
                samples.setdefault(point_kind(point_id), []).append(
                    seconds / scale)
        rates = {key: sum(values) / len(values)
                 for key, values in samples.items() if values}
        return cls(rates, source=source)

    @classmethod
    def load(cls, directory: str) -> "CostModel":
        """Fit from every readable ``BENCH_*.json`` in ``directory``;
        unreadable or unfitted history degrades to the cold model."""
        reports = []
        try:
            paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
        except OSError:
            paths = []
        for path in paths:
            try:
                with open(path, encoding="utf-8") as fh:
                    report = json.load(fh)
            except (OSError, ValueError):
                continue
            if isinstance(report, dict):
                reports.append(report)
        model = cls.fit(reports, source=f"fitted from {len(reports)} report(s)")
        return model if model.fitted else cls()

    # ------------------------------------------------------------------
    def estimate(self, workload: str, kind: str, scale: int) -> float:
        """Estimated cost of one sweep point (arbitrary units; only the
        order matters to the scheduler)."""
        scale = max(scale, 1)
        rate = self.rates.get((workload, kind))
        if rate is not None:
            return rate * scale
        # Cold default: cost scales with trip count; average the fitted
        # rates of the same kind if any workload has history.
        kind_rates = [r for (_, k), r in self.rates.items() if k == kind]
        if kind_rates:
            return (sum(kind_rates) / len(kind_rates)) * scale
        return scale * (DSWP_WEIGHT if kind == "dswp" else 1.0)

    def estimate_point(self, spec: dict) -> float:
        """Estimate for a bench sweep-point spec."""
        return self.estimate(spec["workload"], spec.get("kind", "base"),
                             spec.get("scale", 1))
