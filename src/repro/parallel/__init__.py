"""Parallel execution fabric: warm worker pool, shared-memory result
transport and cost-aware work-stealing scheduling.

The fabric replaces ad-hoc per-caller fan-out: callers describe their
work as :class:`PoolTask` items and hand them to a :class:`WorkerPool`;
placement, transport, crash recovery and telemetry are owned here.
Both the bench harness (:mod:`repro.harness.bench`) and the fuzz
campaign (:mod:`repro.fuzz.campaign`) run on it.
"""

from repro.parallel.costmodel import CostModel, point_kind
from repro.parallel.pool import (
    TaskFailed,
    TransientTaskError,
    WorkerPool,
    fresh_arena,
    worker_arena,
)
from repro.parallel.scheduler import PoolTask, StealScheduler, TaskResult
from repro.parallel.shm import (
    SegmentAllocator,
    SegmentChecksumError,
    corrupt_segment,
    decode_result,
    encode_result,
    release_result,
    shm_available,
    sweep_worker_segments,
    wire_segment_names,
)

__all__ = [
    "CostModel",
    "PoolTask",
    "SegmentAllocator",
    "SegmentChecksumError",
    "StealScheduler",
    "TaskFailed",
    "TaskResult",
    "TransientTaskError",
    "WorkerPool",
    "corrupt_segment",
    "decode_result",
    "encode_result",
    "fresh_arena",
    "point_kind",
    "release_result",
    "shm_available",
    "sweep_worker_segments",
    "wire_segment_names",
    "worker_arena",
]
