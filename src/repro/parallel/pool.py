"""Persistent warm worker pool with crash recovery.

The pool is the execution half of the fabric (scheduling lives in
:mod:`repro.parallel.scheduler`, transport in
:mod:`repro.parallel.shm`).  Design points:

* **Warm workers.**  Workers are forked once and live for the pool's
  lifetime.  Each keeps a process-local *arena* (:func:`worker_arena`)
  where task functions park expensive state -- decoded programs, an
  open :class:`~repro.harness.cache.ExperimentCache` handle -- so
  repeated tasks on the same workload never re-decode or re-pickle.
* **Pull dispatch.**  The driver hands each idle worker exactly one
  task; completion triggers the next dispatch.  All scheduling
  decisions (affinity, longest-first order, stealing) happen in the
  driver, so accounting is exact.
* **Lock-free result channels.**  Each worker incarnation reports
  results over its own single-writer pipe; the driver multiplexes them
  with :func:`multiprocessing.connection.wait`.  A shared queue would
  reintroduce the classic fork hazard this design exists to avoid: a
  worker dying inside the queue's locked critical section (its feeder
  thread mid-``send``) leaves the shared lock held forever and
  deadlocks every surviving worker.  With per-incarnation pipes a
  crash can only ever damage the dead worker's own channel.
* **Crash recovery.**  A worker that dies mid-task (OOM kill, induced
  crash in tests) is detected by liveness polling; its pipe is drained
  first -- a fully sent result is still honoured -- then the task is
  retried on a fresh incarnation, and a task that kills its worker
  twice runs *in the driver process* with the result marked
  ``degraded``.  The sweep always completes, and the caller can report
  exactly which results took the fallback path.  Deterministic task
  exceptions are not retried: they surface as :class:`TaskFailed`.
* **Serial fallback.**  ``jobs <= 1`` -- or a platform that cannot
  fork -- runs every task in-process in the same scheduled order, so
  callers never need a second code path and results are bit-identical
  by construction.
* **Segment hygiene.**  Shared-memory segments created by workers are
  unlinked as results are decoded; on shutdown the pool probes past
  each worker incarnation's last acknowledged allocation and sweeps
  anything a crash left behind.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Callable, Optional

from repro.parallel.scheduler import PoolTask, StealScheduler, TaskResult
from repro.parallel.shm import (
    SegmentAllocator,
    decode_result,
    encode_result,
    release_result,
    shm_available,
    sweep_worker_segments,
)

#: Seconds between liveness checks while waiting for results.
POLL_INTERVAL = 0.05

#: Seconds a worker gets to exit cleanly before being terminated.
JOIN_TIMEOUT = 2.0

#: Process-local arena task functions share across a worker's lifetime.
_ARENA: dict = {}


def worker_arena() -> dict:
    """The current process's task arena (worker or driver)."""
    return _ARENA


class fresh_arena:
    """Context manager giving the enclosed code an empty arena.

    Used by in-driver execution lanes (serial runs, verification
    re-runs) so their cache behaviour matches a cold worker.
    """

    def __enter__(self):
        global _ARENA
        self._saved = _ARENA
        _ARENA = {}
        return _ARENA

    def __exit__(self, *exc):
        global _ARENA
        _ARENA = self._saved
        return False


class TaskFailed(RuntimeError):
    """A task raised a (deterministic) exception in its worker."""

    def __init__(self, task_id: str, detail: str) -> None:
        super().__init__(f"task {task_id!r} failed:\n{detail}")
        self.task_id = task_id
        self.detail = detail


def _worker_main(worker_id: int, incarnation: int, inbox, conn,
                 pool_uid: str, use_shm: bool) -> None:
    _ARENA.clear()  # fork copies the driver arena; workers start cold
    allocator = (SegmentAllocator(pool_uid, worker_id, incarnation)
                 if use_shm else None)

    def seq() -> int:
        return allocator.seq if allocator is not None else 0

    while True:
        message = inbox.get()
        if message is None:
            break
        task_id, fn, payload = message
        start = time.perf_counter()
        try:
            value = fn(payload)
            wire = encode_result(value, allocator)
        except BaseException:
            conn.send((task_id, "err", time.perf_counter() - start, seq(),
                       traceback.format_exc()))
            continue
        conn.send((task_id, "ok", time.perf_counter() - start, seq(), wire))
    conn.close()


@dataclass
class _Flight:
    task: PoolTask
    attempts: int
    stolen: bool


class _Worker:
    def __init__(self, worker_id: int, process, inbox, conn,
                 incarnation: int) -> None:
        self.worker_id = worker_id
        self.process = process
        self.inbox = inbox
        #: Driver-side read end of this incarnation's result pipe.
        self.conn = conn
        self.incarnation = incarnation


class WorkerPool:
    """Fork-based persistent pool; see module docstring.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) receives
    per-worker ``pool.*`` telemetry: task counts, busy seconds,
    utilization, steal counts, crash/fallback counters and the
    shared-memory sweep tally.
    """

    def __init__(self, jobs: int, metrics=None, use_shm: Optional[bool] = None,
                 max_worker_attempts: int = 2) -> None:
        self.requested = max(1, jobs)
        self._metrics = metrics
        self._use_shm = shm_available() if use_shm is None else use_shm
        self.max_worker_attempts = max(1, max_worker_attempts)
        self._uid = os.urandom(4).hex()
        self._ctx = None
        if self.requested > 1:
            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:
                self._ctx = None
        #: Worker count actually in effect (1 = serial in-process).
        self.jobs = self.requested if self._ctx is not None else 1
        self._workers: list[_Worker] = []
        self._acked_seq: dict[tuple[int, int], int] = {}
        self._closed = False
        self.crashes = 0
        self.fallbacks = 0
        self.segments_swept = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _start_workers(self) -> None:
        if self._workers or self._ctx is None:
            return
        for worker_id in range(self.jobs):
            inbox = self._ctx.SimpleQueue()
            self._workers.append(self._spawn(worker_id, inbox, 0))

    def _spawn(self, worker_id: int, inbox, incarnation: int) -> _Worker:
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, incarnation, inbox, send_conn,
                  self._uid, self._use_shm),
            daemon=True,
        )
        process.start()
        # The worker owns the only write end now: when it dies, the
        # driver sees EOF instead of waiting for a liveness poll.
        send_conn.close()
        self._acked_seq.setdefault((worker_id, incarnation), 0)
        return _Worker(worker_id, process, inbox, recv_conn, incarnation)

    def _respawn(self, worker_id: int) -> None:
        old = self._workers[worker_id]
        try:
            old.conn.close()
        except OSError:
            pass
        self._workers[worker_id] = self._spawn(worker_id, old.inbox,
                                               old.incarnation + 1)

    def close(self) -> None:
        """Shut workers down and sweep leaked shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.process.is_alive():
                try:
                    worker.inbox.put(None)
                except Exception:
                    pass
        deadline = time.monotonic() + JOIN_TIMEOUT
        for worker in self._workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(JOIN_TIMEOUT)
        for worker in self._workers:
            for message in self._drain(worker):
                if message[1] == "ok":
                    release_result(message[4])
            try:
                worker.conn.close()
            except OSError:
                pass
        for (worker_id, incarnation), acked in sorted(self._acked_seq.items()):
            self.segments_swept += sweep_worker_segments(
                self._uid, worker_id, incarnation, acked)
        if self._metrics is not None and self.segments_swept:
            self._metrics.counter("pool.shm_swept").inc(self.segments_swept)
        self._workers = []

    def _drain(self, worker: _Worker) -> list[tuple]:
        """Read every fully delivered message off a worker's pipe."""
        messages = []
        while True:
            try:
                if not worker.conn.poll(0):
                    return messages
                message = worker.conn.recv()
            except (EOFError, OSError):
                return messages
            self._acked_seq[(worker.worker_id, worker.incarnation)] = \
                message[3]
            messages.append(message)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, tasks: list[PoolTask],
            cancel: Optional[Callable[[TaskResult], bool]] = None,
            ) -> list[TaskResult]:
        """Run ``tasks``; returns results in task order.

        ``cancel`` is called after every completed task; returning True
        drops all still-queued tasks (in-flight ones finish), so the
        returned list may omit cancelled tasks.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if not tasks:
            return []
        ids = [t.id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("task ids must be unique")
        if self.jobs <= 1:
            results = self._run_serial(tasks, cancel)
        else:
            results = self._run_parallel(tasks, cancel)
        return [results[t.id] for t in tasks if t.id in results]

    def _run_serial(self, tasks, cancel) -> dict[str, TaskResult]:
        scheduler = StealScheduler(tasks, 1)
        results: dict[str, TaskResult] = {}
        wall_start = time.perf_counter()
        busy = 0.0
        with fresh_arena():  # cache behaviour matches a cold worker
            while True:
                item = scheduler.next_for(0)
                if item is None:
                    break
                task, _ = item
                start = time.perf_counter()
                try:
                    value = task.fn(task.payload)
                except Exception:
                    raise TaskFailed(task.id,
                                     traceback.format_exc()) from None
                duration = time.perf_counter() - start
                busy += duration
                result = TaskResult(task, value, 0, duration)
                results[task.id] = result
                if cancel is not None and cancel(result):
                    scheduler.clear_pending()
        self._record_run(scheduler, results, time.perf_counter() - wall_start,
                         {0: busy})
        return results

    def _run_parallel(self, tasks, cancel) -> dict[str, TaskResult]:
        self._start_workers()
        state = _RunState(self, StealScheduler(tasks, self.jobs), cancel)
        for worker_id in range(self.jobs):
            state.dispatch(worker_id)
        while state.in_flight:
            conns = {self._workers[w].conn: w for w in state.in_flight}
            try:
                ready = mp_connection.wait(list(conns), timeout=POLL_INTERVAL)
            except OSError:
                ready = []
            progressed = False
            for conn in ready:
                worker_id = conns[conn]
                worker = self._workers[worker_id]
                try:
                    if not conn.poll(0):
                        continue
                    message = conn.recv()
                except (EOFError, OSError):
                    # Writer died: handled by the crash pass below.
                    continue
                progressed = True
                self._acked_seq[(worker_id, worker.incarnation)] = message[3]
                state.deliver(worker_id, message)
            if not progressed:
                self._handle_crashes(state)
        self._record_run(state.scheduler, state.results,
                         time.perf_counter() - state.wall_start, state.busy)
        if state.error is not None:
            raise state.error
        return state.results

    def _handle_crashes(self, state: "_RunState") -> None:
        """Deal with workers that died with a task in flight.

        The dead incarnation's pipe is drained first: a result that was
        fully sent before the crash is honoured (and can never race a
        retry, because the pipe is closed before one is issued).
        """
        for worker_id in list(state.in_flight):
            worker = self._workers[worker_id]
            if worker.process.is_alive():
                continue
            flight = state.in_flight[worker_id]
            delivered = False
            for message in self._drain(worker):
                state.deliver(worker_id, message)
                delivered = delivered or message[0] == flight.task.id
            self.crashes += 1
            self._respawn(worker_id)
            if delivered or worker_id not in state.in_flight:
                continue
            del state.in_flight[worker_id]
            if state.error is not None:
                continue
            if flight.attempts < self.max_worker_attempts:
                flight.attempts += 1
                state.in_flight[worker_id] = flight
                self._workers[worker_id].inbox.put(
                    (flight.task.id, flight.task.fn, flight.task.payload))
                continue
            # The task killed every worker it touched: run it here, in
            # the driver, and mark the result degraded.
            self.fallbacks += 1
            start = time.perf_counter()
            try:
                value = flight.task.fn(flight.task.payload)
            except Exception:
                state.fail(flight.task.id, traceback.format_exc())
                continue
            state.complete(TaskResult(
                flight.task, value, -1, time.perf_counter() - start,
                attempts=flight.attempts, degraded=True,
                stolen=flight.stolen))
            state.dispatch(worker_id)

    # ------------------------------------------------------------------
    def _record_run(self, scheduler, results, wall: float,
                    busy: dict[int, float]) -> None:
        registry = self._metrics
        if registry is None:
            return
        wall = max(wall, 1e-9)
        registry.gauge("pool.workers").set(self.jobs)
        per_worker_tasks: dict[int, int] = {}
        for result in results.values():
            per_worker_tasks[result.worker] = \
                per_worker_tasks.get(result.worker, 0) + 1
        for worker_id in range(self.jobs):
            registry.counter("pool.tasks", worker=worker_id).inc(
                per_worker_tasks.get(worker_id, 0))
            seconds = busy.get(worker_id, 0.0)
            registry.counter("pool.busy_seconds", worker=worker_id).inc(
                seconds)
            registry.gauge("pool.utilization", worker=worker_id).set(
                min(seconds / wall, 1.0))
            registry.counter("pool.steals", worker=worker_id).inc(
                scheduler.steals[worker_id])
        registry.counter("pool.crashes").inc(self.crashes)
        registry.counter("pool.fallback_tasks").inc(
            per_worker_tasks.get(-1, 0))
        registry.gauge("pool.wall_seconds").set(wall)


class _RunState:
    """Book-keeping for one :meth:`WorkerPool.run` parallel invocation."""

    def __init__(self, pool: WorkerPool, scheduler: StealScheduler,
                 cancel) -> None:
        self.pool = pool
        self.scheduler = scheduler
        self.cancel = cancel
        self.results: dict[str, TaskResult] = {}
        self.in_flight: dict[int, _Flight] = {}
        self.busy: dict[int, float] = {}
        self.error: Optional[TaskFailed] = None
        self.wall_start = time.perf_counter()

    def dispatch(self, worker_id: int) -> None:
        if self.error is not None:
            return
        item = self.scheduler.next_for(worker_id)
        if item is None:
            return
        task, stolen = item
        self.in_flight[worker_id] = _Flight(task, 1, stolen)
        self.pool._workers[worker_id].inbox.put(
            (task.id, task.fn, task.payload))

    def fail(self, task_id: str, detail: str) -> None:
        if self.error is None:
            self.error = TaskFailed(task_id, detail)
            self.scheduler.clear_pending()

    def complete(self, result: TaskResult) -> None:
        self.results[result.task.id] = result
        if result.worker >= 0:
            self.busy[result.worker] = \
                self.busy.get(result.worker, 0.0) + result.duration
        if (self.cancel is not None and self.error is None
                and self.cancel(result)):
            self.scheduler.clear_pending()

    def deliver(self, worker_id: int, message: tuple) -> None:
        """Process one pipe message from ``worker_id``."""
        task_id, status, duration, _seq, body = message
        flight = self.in_flight.get(worker_id)
        if flight is None or flight.task.id != task_id:
            # A message for a task this run no longer tracks (e.g. it
            # already completed via the driver fallback): discard, but
            # never leak its segments.
            if status == "ok":
                release_result(body)
            return
        del self.in_flight[worker_id]
        if status == "err":
            self.fail(task_id, body)
        else:
            try:
                value = decode_result(body)
            except Exception:
                self.fail(task_id, traceback.format_exc())
                return
            self.complete(TaskResult(flight.task, value, worker_id, duration,
                                     flight.attempts, stolen=flight.stolen))
        if self.error is None:
            self.dispatch(worker_id)
