"""Persistent warm worker pool with crash, hang and flake recovery.

The pool is the execution half of the fabric (scheduling lives in
:mod:`repro.parallel.scheduler`, transport in
:mod:`repro.parallel.shm`).  Design points:

* **Warm workers.**  Workers are forked once and live for the pool's
  lifetime.  Each keeps a process-local *arena* (:func:`worker_arena`)
  where task functions park expensive state -- decoded programs, an
  open :class:`~repro.harness.cache.ExperimentCache` handle -- so
  repeated tasks on the same workload never re-decode or re-pickle.
* **Pull dispatch.**  The driver hands each idle worker exactly one
  task; completion triggers the next dispatch.  All scheduling
  decisions (affinity, longest-first order, stealing) happen in the
  driver, so accounting is exact.
* **Lock-free result channels.**  Each worker incarnation reports
  results over its own single-writer pipe; the driver multiplexes them
  with :func:`multiprocessing.connection.wait`.  A shared queue would
  reintroduce the classic fork hazard this design exists to avoid: a
  worker dying inside the queue's locked critical section (its feeder
  thread mid-``send``) leaves the shared lock held forever and
  deadlocks every surviving worker.  With per-incarnation pipes a
  crash can only ever damage the dead worker's own channel.
* **Crash recovery.**  A worker that dies mid-task (OOM kill, induced
  crash in tests) is detected by liveness polling; its pipe is drained
  first -- a fully sent result is still honoured -- then the task is
  retried on a fresh incarnation, and a task that kills its worker
  twice runs *in the driver process* with the result marked
  ``degraded``.  The sweep always completes, and the caller can report
  exactly which results took the fallback path.  Deterministic task
  exceptions are not retried: they surface as :class:`TaskFailed`.
* **Hang recovery.**  A task may carry a deadline
  (:attr:`~repro.parallel.scheduler.PoolTask.timeout`); a worker that
  blows it is *reaped* -- ``terminate()``, escalating to ``kill()``
  when it ignores the signal -- and the task is rerouted exactly like
  a crash.  Its pipe is drained first, so a result that was fully sent
  moments before the deadline is still honoured.
* **Transient retry.**  A task that raises :class:`TransientTaskError`
  (or whose result arrives undecodable -- e.g. a corrupted
  shared-memory segment) is redispatched to the same worker after a
  jittered exponential backoff, up to ``max_task_retries`` times,
  before the in-driver fallback.  Deterministic failures stay
  fail-fast.
* **Forensics.**  Every crash, reap, transient retry and driver
  fallback appends an :class:`~repro.resilience.incident.IncidentReport`
  (``domain="pool"``) to :attr:`WorkerPool.incidents`, so a degraded
  sweep is diagnosable from artifacts alone.
* **Serial fallback.**  ``jobs <= 1`` -- or a platform that cannot
  fork -- runs every task in-process in the same scheduled order, so
  callers never need a second code path and results are bit-identical
  by construction.
* **Segment hygiene.**  Shared-memory segments created by workers are
  unlinked as results are decoded; on shutdown the pool probes past
  each worker incarnation's last acknowledged allocation and sweeps
  anything a crash left behind.
* **Chaos injection.**  ``WorkerPool(chaos=plan)`` arms a
  :class:`~repro.chaos.ChaosPlan`: workers consult it before and after
  each task attempt and deterministically kill, hang, slow, flake or
  corrupt themselves (see ``docs/CHAOS.md``).  The driver is never
  perturbed, so the recovery paths above -- not the fault injection --
  decide what the caller observes.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import random
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Optional

from repro.parallel.scheduler import PoolTask, StealScheduler, TaskResult
from repro.parallel.shm import (
    SegmentAllocator,
    decode_result,
    encode_result,
    release_result,
    shm_available,
    sweep_worker_segments,
)
from repro.resilience.incident import IncidentReport

#: Seconds between liveness checks while waiting for results.
POLL_INTERVAL = 0.05

#: Seconds a worker gets to exit cleanly before being terminated, and
#: to die after ``terminate()`` before the escalation to ``kill()``.
JOIN_TIMEOUT = 2.0

#: Retained :class:`IncidentReport` objects per pool (counters keep
#: exact totals past the cap; the reports are forensic samples).
INCIDENT_CAP = 64

#: Process-local arena task functions share across a worker's lifetime.
_ARENA: dict = {}


def worker_arena() -> dict:
    """The current process's task arena (worker or driver)."""
    return _ARENA


class fresh_arena:
    """Context manager giving the enclosed code an empty arena.

    Used by in-driver execution lanes (serial runs, verification
    re-runs) so their cache behaviour matches a cold worker.
    """

    def __enter__(self):
        global _ARENA
        self._saved = _ARENA
        _ARENA = {}
        return _ARENA

    def __exit__(self, *exc):
        global _ARENA
        _ARENA = self._saved
        return False


class TaskFailed(RuntimeError):
    """A task raised a (deterministic) exception in its worker."""

    def __init__(self, task_id: str, detail: str) -> None:
        super().__init__(f"task {task_id!r} failed:\n{detail}")
        self.task_id = task_id
        self.detail = detail


class TransientTaskError(RuntimeError):
    """A task failure worth retrying (flaky I/O, injected chaos flake).

    Raised by task functions -- or by the chaos injector on their
    behalf -- to request the bounded backoff-retry path instead of the
    fail-fast :class:`TaskFailed` surface.  A task that keeps raising
    it past ``max_task_retries`` falls back to the driver process; if
    it still raises there, the failure is treated as deterministic.
    """


def _first_line(text: str) -> str:
    lines = [line for line in str(text).strip().splitlines() if line.strip()]
    return lines[-1] if lines else ""


def _worker_main(worker_id: int, incarnation: int, inbox, conn,
                 pool_uid: str, use_shm: bool, chaos=None) -> None:
    _ARENA.clear()  # fork copies the driver arena; workers start cold
    allocator = (SegmentAllocator(pool_uid, worker_id, incarnation)
                 if use_shm else None)

    def seq() -> int:
        return allocator.seq if allocator is not None else 0

    while True:
        message = inbox.get()
        if message is None:
            break
        task_id, fn, payload, dispatch = message
        action = chaos.action(task_id, dispatch) if chaos is not None else None
        start = time.perf_counter()
        try:
            if action is not None:
                action.apply_before()
            value = fn(payload)
            wire = encode_result(value, allocator)
            if action is not None:
                action.apply_after(wire)
        except TransientTaskError:
            conn.send((task_id, "transient", time.perf_counter() - start,
                       seq(), traceback.format_exc()))
            continue
        except BaseException:
            conn.send((task_id, "err", time.perf_counter() - start, seq(),
                       traceback.format_exc()))
            continue
        conn.send((task_id, "ok", time.perf_counter() - start, seq(), wire))
    conn.close()


@dataclass
class _Flight:
    task: PoolTask
    attempts: int = 1
    stolen: bool = False
    #: Transient redispatches consumed so far.
    retries: int = 0
    #: Total sends to any worker (the attempt index chaos plans see).
    dispatches: int = 0
    #: Monotonic deadline of the current attempt (None = no watchdog).
    deadline: Optional[float] = None
    timed_out: bool = False


class _Worker:
    def __init__(self, worker_id: int, process, inbox, conn,
                 incarnation: int) -> None:
        self.worker_id = worker_id
        self.process = process
        self.inbox = inbox
        #: Driver-side read end of this incarnation's result pipe.
        self.conn = conn
        self.incarnation = incarnation


class WorkerPool:
    """Fork-based persistent pool; see module docstring.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) receives
    per-worker ``pool.*`` telemetry: task counts, busy seconds,
    utilization, steal counts, crash/hang/retry/fallback counters and
    the shared-memory sweep tally.

    ``chaos`` arms a chaos plan (see :mod:`repro.chaos`) that workers
    consult per task attempt; ``max_task_retries``, ``retry_base`` and
    ``retry_cap`` bound the transient-retry backoff loop.
    """

    def __init__(self, jobs: int, metrics=None, use_shm: Optional[bool] = None,
                 max_worker_attempts: int = 2, chaos=None,
                 max_task_retries: int = 3, retry_base: float = 0.05,
                 retry_cap: float = 2.0) -> None:
        self.requested = max(1, jobs)
        self._metrics = metrics
        self._use_shm = shm_available() if use_shm is None else use_shm
        self.max_worker_attempts = max(1, max_worker_attempts)
        self.max_task_retries = max(0, max_task_retries)
        self.retry_base = retry_base
        self.retry_cap = retry_cap
        self._chaos = chaos
        self._uid = os.urandom(4).hex()
        self._ctx = None
        if self.requested > 1:
            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:
                self._ctx = None
        #: Worker count actually in effect (1 = serial in-process).
        self.jobs = self.requested if self._ctx is not None else 1
        self._workers: list[_Worker] = []
        self._acked_seq: dict[tuple[int, int], int] = {}
        self._closed = False
        #: Reentrancy guard for :meth:`close` (a signal handler that
        #: interrupts a close in progress must return, not escalate).
        self._closing = False
        self._close_lock = threading.Lock()
        #: Serialises :meth:`run` across lease holders (reentrant, so a
        #: lease holder's own ``run`` calls nest freely).
        self._lease_lock = threading.RLock()
        self.crashes = 0
        self.fallbacks = 0
        self.timeouts = 0
        self.retries = 0
        self.workers_reaped = 0
        self.workers_killed = 0
        self.segments_swept = 0
        #: Pool-level forensics: one report per crash/reap/retry/
        #: fallback, capped at INCIDENT_CAP (counters stay exact).
        self.incidents: list[IncidentReport] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def _start_workers(self) -> None:
        if self._workers or self._ctx is None:
            return
        for worker_id in range(self.jobs):
            inbox = self._ctx.SimpleQueue()
            self._workers.append(self._spawn(worker_id, inbox, 0))

    def warm(self) -> None:
        """Fork the workers now instead of lazily on the first run.

        Long-lived callers (the compile service) warm the pool from
        their main thread *before* starting auxiliary threads: forking
        a multi-threaded process can copy another thread's held locks
        into the child, and a pool warmed early never has to.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        self._start_workers()

    @contextlib.contextmanager
    def lease(self):
        """Exclusive use of the pool for one logical client.

        Concurrent threads sharing one warm pool (service dispatchers,
        parallel test drivers) each wrap their :meth:`run` calls in a
        lease; holders queue FIFO on the internal lock, and every run
        still gets exact scheduling and accounting because only one
        lease executes at a time.  The lock is reentrant: a lease
        holder may call :meth:`run` (which takes the same lock) or
        nest leases without deadlocking.
        """
        with self._lease_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            yield self

    def _spawn(self, worker_id: int, inbox, incarnation: int) -> _Worker:
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, incarnation, inbox, send_conn,
                  self._uid, self._use_shm, self._chaos),
            daemon=True,
        )
        process.start()
        # The worker owns the only write end now: when it dies, the
        # driver sees EOF instead of waiting for a liveness poll.
        send_conn.close()
        self._acked_seq.setdefault((worker_id, incarnation), 0)
        return _Worker(worker_id, process, inbox, recv_conn, incarnation)

    def _respawn(self, worker_id: int) -> None:
        old = self._workers[worker_id]
        try:
            old.conn.close()
        except OSError:
            pass
        self._workers[worker_id] = self._spawn(worker_id, old.inbox,
                                               old.incarnation + 1)

    def _reap(self, worker_id: int) -> None:
        """Forcibly retire a hung worker incarnation and respawn it.

        ``terminate()`` first; a worker that ignores SIGTERM (stuck in
        uninterruptible state, masked signals) is escalated to
        ``kill()``.  Fully sent results are drained and their segments
        released before the pipe is replaced.
        """
        worker = self._workers[worker_id]
        worker.process.terminate()
        worker.process.join(JOIN_TIMEOUT)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(JOIN_TIMEOUT)
            self.workers_killed += 1
        self.workers_reaped += 1
        for message in self._drain(worker):
            if message[1] == "ok":
                release_result(message[4])
        self._respawn(worker_id)

    def close(self) -> None:
        """Shut workers down and sweep leaked shared-memory segments.

        Shutdown escalates: cooperative sentinel, then ``terminate()``,
        then ``kill()`` for a worker that still lingers past
        ``JOIN_TIMEOUT`` -- a closed pool never leaves processes
        behind.  Escalations are counted in ``workers_killed`` and the
        ``pool.workers_killed`` metric.

        ``close()`` is idempotent and safe to call from signal
        handlers: a second call -- including one that interrupts a
        close already in progress on this or another thread -- returns
        immediately instead of re-escalating terminate/kill against
        workers the first close already reaped (the service's SIGTERM
        drain path closes the pool it may also be closing normally).
        """
        if self._closed or self._closing:
            return
        if not self._close_lock.acquire(blocking=False):
            # A close is mid-flight on another thread (or this call
            # interrupted it from a signal handler): it owns shutdown.
            return
        try:
            if self._closed:
                return
            self._closing = True
            self._closed = True
            self._close_impl()
        finally:
            self._closing = False
            self._close_lock.release()

    def _close_impl(self) -> None:
        killed_before = self.workers_killed
        for worker in self._workers:
            if worker.process.is_alive():
                try:
                    worker.inbox.put(None)
                except Exception:
                    pass
        deadline = time.monotonic() + JOIN_TIMEOUT
        for worker in self._workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(JOIN_TIMEOUT)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(JOIN_TIMEOUT)
                self.workers_killed += 1
                self._incident(
                    "worker-kill",
                    f"worker {worker.worker_id} (incarnation "
                    f"{worker.incarnation}) survived terminate() at "
                    f"shutdown; escalated to kill()",
                    worker=worker.worker_id, incarnation=worker.incarnation)
        for worker in self._workers:
            for message in self._drain(worker):
                if message[1] == "ok":
                    release_result(message[4])
            try:
                worker.conn.close()
            except OSError:
                pass
        for (worker_id, incarnation), acked in sorted(self._acked_seq.items()):
            self.segments_swept += sweep_worker_segments(
                self._uid, worker_id, incarnation, acked)
        if self._metrics is not None:
            if self.segments_swept:
                self._metrics.counter("pool.shm_swept").inc(
                    self.segments_swept)
            if self.workers_killed > killed_before:
                self._metrics.counter("pool.workers_killed").inc(
                    self.workers_killed - killed_before)
        self._workers = []

    def _drain(self, worker: _Worker) -> list[tuple]:
        """Read every fully delivered message off a worker's pipe."""
        messages = []
        while True:
            try:
                if not worker.conn.poll(0):
                    return messages
                message = worker.conn.recv()
            except (EOFError, OSError):
                return messages
            self._acked_seq[(worker.worker_id, worker.incarnation)] = \
                message[3]
            messages.append(message)

    # ------------------------------------------------------------------
    # Forensics
    # ------------------------------------------------------------------
    def _incident(self, kind: str, message: str, **extra) -> None:
        if len(self.incidents) < INCIDENT_CAP:
            self.incidents.append(IncidentReport(
                kind=kind, message=message, domain="pool", extra=extra))
        if self._metrics is not None:
            self._metrics.counter("pool.incidents", kind=kind).inc()

    def _backoff_delay(self, flight: _Flight) -> float:
        """Jittered exponential backoff for transient retry N.

        The jitter is seeded from ``(task id, retry index)`` so replays
        of a chaos schedule sleep identically -- determinism all the
        way down."""
        step = min(self.retry_cap,
                   self.retry_base * (2 ** max(flight.retries - 1, 0)))
        rng = random.Random(f"{flight.task.id}:{flight.retries}")
        return step * (0.5 + 0.5 * rng.random())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, tasks: list[PoolTask],
            cancel: Optional[Callable[[TaskResult], bool]] = None,
            on_result: Optional[Callable[[TaskResult], None]] = None,
            ) -> list[TaskResult]:
        """Run ``tasks``; returns results in task order.

        ``cancel`` is called after every completed task; returning True
        drops all still-queued tasks (in-flight ones finish), so the
        returned list may omit cancelled tasks.  ``on_result`` is
        called with each :class:`TaskResult` the moment it completes
        (execution order, not task order) -- the hook sweep journals
        use to persist progress incrementally.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if not tasks:
            return []
        ids = [t.id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("task ids must be unique")
        # One run at a time: concurrent lease holders queue here (see
        # :meth:`lease`); the lock is reentrant so a holder's own call
        # enters immediately.
        with self._lease_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            if self.jobs <= 1:
                results = self._run_serial(tasks, cancel, on_result)
            else:
                results = self._run_parallel(tasks, cancel, on_result)
        return [results[t.id] for t in tasks if t.id in results]

    def _run_serial(self, tasks, cancel, on_result) -> dict[str, TaskResult]:
        scheduler = StealScheduler(tasks, 1)
        results: dict[str, TaskResult] = {}
        wall_start = time.perf_counter()
        base = self._counter_totals()
        busy = 0.0
        with fresh_arena():  # cache behaviour matches a cold worker
            while True:
                item = scheduler.next_for(0)
                if item is None:
                    break
                task, _ = item
                start = time.perf_counter()
                try:
                    value = task.fn(task.payload)
                except Exception:
                    raise TaskFailed(task.id,
                                     traceback.format_exc()) from None
                duration = time.perf_counter() - start
                busy += duration
                result = TaskResult(task, value, 0, duration)
                results[task.id] = result
                if on_result is not None:
                    on_result(result)
                if cancel is not None and cancel(result):
                    scheduler.clear_pending()
        self._record_run(scheduler, results, time.perf_counter() - wall_start,
                         {0: busy}, base)
        return results

    def _run_parallel(self, tasks, cancel, on_result) -> dict[str, TaskResult]:
        self._start_workers()
        base = self._counter_totals()
        state = _RunState(self, StealScheduler(tasks, self.jobs), cancel,
                          on_result)
        for worker_id in range(self.jobs):
            state.dispatch(worker_id)
        while state.in_flight or state.delayed:
            timeout = state.wait_timeout()
            conns = {self._workers[w].conn: w for w in state.in_flight}
            if conns:
                try:
                    ready = mp_connection.wait(list(conns), timeout=timeout)
                except OSError:
                    ready = []
            else:
                # Only backoff retries pending: just wait them out.
                time.sleep(timeout)
                ready = []
            progressed = False
            for conn in ready:
                worker_id = conns[conn]
                worker = self._workers[worker_id]
                try:
                    if not conn.poll(0):
                        continue
                    message = conn.recv()
                except (EOFError, OSError):
                    # Writer died: handled by the crash pass below.
                    continue
                progressed = True
                self._acked_seq[(worker_id, worker.incarnation)] = message[3]
                state.deliver(worker_id, message)
            state.release_due_retries()
            # Deadlines are checked every iteration: a hung worker must
            # not hide behind healthy workers' steady message flow.
            self._handle_timeouts(state)
            if not progressed:
                self._handle_crashes(state)
        self._record_run(state.scheduler, state.results,
                         time.perf_counter() - state.wall_start, state.busy,
                         base, state.retry_counts, state.timeout_counts)
        if state.error is not None:
            raise state.error
        return state.results

    def _handle_crashes(self, state: "_RunState") -> None:
        """Deal with workers that died with a task in flight.

        The dead incarnation's pipe is drained first: a result that was
        fully sent before the crash is honoured (and can never race a
        retry, because the pipe is closed before one is issued).
        """
        for worker_id in list(state.in_flight):
            worker = self._workers[worker_id]
            if worker.process.is_alive():
                continue
            flight = state.in_flight[worker_id]
            delivered = False
            for message in self._drain(worker):
                state.deliver(worker_id, message)
                delivered = delivered or message[0] == flight.task.id
            self.crashes += 1
            exitcode = worker.process.exitcode
            self._respawn(worker_id)
            if delivered or state.in_flight.get(worker_id) is not flight:
                continue
            del state.in_flight[worker_id]
            self._incident(
                "worker-crash",
                f"worker {worker_id} (incarnation {worker.incarnation}) "
                f"died with task {flight.task.id!r} in flight "
                f"(exit code {exitcode}, attempt {flight.attempts})",
                task=flight.task.id, worker=worker_id,
                incarnation=worker.incarnation, exitcode=exitcode,
                attempt=flight.attempts)
            if state.error is not None:
                continue
            if flight.attempts < self.max_worker_attempts:
                flight.attempts += 1
                state.send(worker_id, flight)
                continue
            # The task killed every worker it touched: run it here, in
            # the driver, and mark the result degraded.
            self._fallback(state, worker_id, flight)

    def _handle_timeouts(self, state: "_RunState") -> None:
        """Reap workers whose in-flight task blew its deadline.

        Mirrors the crash path: drain first (a result fully sent just
        before the deadline is honoured), then terminate -> kill ->
        respawn, then reroute the task -- retry on the fresh
        incarnation, or the in-driver fallback once worker attempts are
        exhausted.  The fallback runs without a deadline: a task that
        is genuinely slow (rather than hung) still completes there.
        """
        now = time.monotonic()
        for worker_id in list(state.in_flight):
            flight = state.in_flight.get(worker_id)
            if (flight is None or flight.deadline is None
                    or now < flight.deadline):
                continue
            worker = self._workers[worker_id]
            if not worker.process.is_alive():
                continue  # dead, not hung: the crash pass owns it
            for message in self._drain(worker):
                state.deliver(worker_id, message)
            if state.in_flight.get(worker_id) is not flight:
                continue  # the drain delivered its result after all
            del state.in_flight[worker_id]
            self.timeouts += 1
            state.timeout_counts[worker_id] = \
                state.timeout_counts.get(worker_id, 0) + 1
            flight.timed_out = True
            self._incident(
                "worker-hang",
                f"task {flight.task.id!r} missed its "
                f"{flight.task.timeout:.3f}s deadline on worker "
                f"{worker_id} (incarnation {worker.incarnation}, attempt "
                f"{flight.attempts}); reaping the worker",
                task=flight.task.id, worker=worker_id,
                incarnation=worker.incarnation,
                deadline_seconds=flight.task.timeout,
                attempt=flight.attempts)
            self._reap(worker_id)
            if state.error is not None:
                continue
            if flight.attempts < self.max_worker_attempts:
                flight.attempts += 1
                state.send(worker_id, flight)
            else:
                self._fallback(state, worker_id, flight)

    def _transient(self, state: "_RunState", worker_id: int, flight: _Flight,
                   detail: str, kind: str = "task-transient") -> None:
        """Route a transient failure: backoff retry, then fallback."""
        if state.in_flight.get(worker_id) is flight:
            del state.in_flight[worker_id]
        if state.error is not None:
            return
        if flight.retries < self.max_task_retries:
            flight.retries += 1
            self.retries += 1
            state.retry_counts[worker_id] = \
                state.retry_counts.get(worker_id, 0) + 1
            delay = self._backoff_delay(flight)
            self._incident(
                kind,
                f"task {flight.task.id!r} failed transiently on worker "
                f"{worker_id} ({_first_line(detail)}); retry "
                f"{flight.retries}/{self.max_task_retries} in {delay:.3f}s",
                task=flight.task.id, worker=worker_id,
                retry=flight.retries, backoff_seconds=round(delay, 6),
                detail=_first_line(detail))
            state.delayed[worker_id] = (time.monotonic() + delay, flight)
            return
        self._incident(
            kind,
            f"task {flight.task.id!r} exhausted {self.max_task_retries} "
            f"transient retries ({_first_line(detail)}); running in the "
            f"driver",
            task=flight.task.id, worker=worker_id,
            retry=flight.retries, detail=_first_line(detail))
        self._fallback(state, worker_id, flight)

    def _fallback(self, state: "_RunState", worker_id: int,
                  flight: _Flight) -> None:
        """Run a task in the driver process; the result is degraded."""
        self.fallbacks += 1
        self._incident(
            "driver-fallback",
            f"task {flight.task.id!r} degraded to in-driver execution "
            f"(attempts {flight.attempts}, transient retries "
            f"{flight.retries}, timed out: {flight.timed_out})",
            task=flight.task.id, attempts=flight.attempts,
            retries=flight.retries, timed_out=flight.timed_out)
        start = time.perf_counter()
        try:
            value = flight.task.fn(flight.task.payload)
        except Exception:
            state.fail(flight.task.id, traceback.format_exc())
            return
        state.complete(TaskResult(
            flight.task, value, -1, time.perf_counter() - start,
            attempts=flight.attempts, degraded=True,
            stolen=flight.stolen, retries=flight.retries,
            timed_out=flight.timed_out))
        state.dispatch(worker_id)

    # ------------------------------------------------------------------
    def _counter_totals(self) -> dict[str, int]:
        return {
            "crashes": self.crashes,
            "fallbacks": self.fallbacks,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "workers_reaped": self.workers_reaped,
            "workers_killed": self.workers_killed,
        }

    def _record_run(self, scheduler, results, wall: float,
                    busy: dict[int, float], base: dict[str, int],
                    retry_counts: Optional[dict[int, int]] = None,
                    timeout_counts: Optional[dict[int, int]] = None) -> None:
        registry = self._metrics
        if registry is None:
            return
        wall = max(wall, 1e-9)
        registry.gauge("pool.workers").set(self.jobs)
        per_worker_tasks: dict[int, int] = {}
        for result in results.values():
            per_worker_tasks[result.worker] = \
                per_worker_tasks.get(result.worker, 0) + 1
        for worker_id in range(self.jobs):
            registry.counter("pool.tasks", worker=worker_id).inc(
                per_worker_tasks.get(worker_id, 0))
            seconds = busy.get(worker_id, 0.0)
            registry.counter("pool.busy_seconds", worker=worker_id).inc(
                seconds)
            registry.gauge("pool.utilization", worker=worker_id).set(
                min(seconds / wall, 1.0))
            registry.counter("pool.steals", worker=worker_id).inc(
                scheduler.steals[worker_id])
            registry.counter("pool.retries", worker=worker_id).inc(
                (retry_counts or {}).get(worker_id, 0))
            registry.counter("pool.timeouts", worker=worker_id).inc(
                (timeout_counts or {}).get(worker_id, 0))
        # Pool-level counters record this run's delta (the attributes
        # are pool-lifetime totals; a registry shared across runs must
        # not double count).
        for name, total in self._counter_totals().items():
            registry.counter(f"pool.{name}").inc(total - base[name])
        registry.counter("pool.fallback_tasks").inc(
            per_worker_tasks.get(-1, 0))
        registry.gauge("pool.wall_seconds").set(wall)


class _RunState:
    """Book-keeping for one :meth:`WorkerPool.run` parallel invocation."""

    def __init__(self, pool: WorkerPool, scheduler: StealScheduler,
                 cancel, on_result=None) -> None:
        self.pool = pool
        self.scheduler = scheduler
        self.cancel = cancel
        self.on_result = on_result
        self.results: dict[str, TaskResult] = {}
        self.in_flight: dict[int, _Flight] = {}
        #: worker id -> (monotonic due time, flight) backoff retries.
        self.delayed: dict[int, tuple[float, _Flight]] = {}
        self.busy: dict[int, float] = {}
        self.retry_counts: dict[int, int] = {}
        self.timeout_counts: dict[int, int] = {}
        self.error: Optional[TaskFailed] = None
        self.wall_start = time.perf_counter()

    # ------------------------------------------------------------------
    def wait_timeout(self) -> float:
        """How long the dispatch loop may sleep before the next
        deadline or backoff retry comes due."""
        timeout = POLL_INTERVAL
        now = time.monotonic()
        for flight in self.in_flight.values():
            if flight.deadline is not None:
                timeout = min(timeout, flight.deadline - now)
        for due, _ in self.delayed.values():
            timeout = min(timeout, due - now)
        return max(0.0, timeout)

    def release_due_retries(self) -> None:
        now = time.monotonic()
        for worker_id in list(self.delayed):
            due, flight = self.delayed[worker_id]
            if now < due and self.error is None:
                continue
            del self.delayed[worker_id]
            if self.error is not None:
                continue  # an aborted run abandons its retries
            self.send(worker_id, flight)

    def send(self, worker_id: int, flight: _Flight) -> None:
        """(Re)dispatch ``flight`` to ``worker_id``; arms its deadline."""
        flight.dispatches += 1
        flight.deadline = (time.monotonic() + flight.task.timeout
                           if flight.task.timeout is not None else None)
        self.in_flight[worker_id] = flight
        self.pool._workers[worker_id].inbox.put(
            (flight.task.id, flight.task.fn, flight.task.payload,
             flight.dispatches))

    def dispatch(self, worker_id: int) -> None:
        if self.error is not None:
            return
        if worker_id in self.in_flight or worker_id in self.delayed:
            return  # busy (a backoff retry owns this worker)
        item = self.scheduler.next_for(worker_id)
        if item is None:
            return
        task, stolen = item
        self.send(worker_id, _Flight(task, attempts=1, stolen=stolen))

    def fail(self, task_id: str, detail: str) -> None:
        if self.error is None:
            self.error = TaskFailed(task_id, detail)
            self.scheduler.clear_pending()

    def complete(self, result: TaskResult) -> None:
        self.results[result.task.id] = result
        if result.worker >= 0:
            self.busy[result.worker] = \
                self.busy.get(result.worker, 0.0) + result.duration
        if self.on_result is not None:
            self.on_result(result)
        if (self.cancel is not None and self.error is None
                and self.cancel(result)):
            self.scheduler.clear_pending()

    def deliver(self, worker_id: int, message: tuple) -> None:
        """Process one pipe message from ``worker_id``."""
        task_id, status, duration, _seq, body = message
        flight = self.in_flight.get(worker_id)
        if flight is None or flight.task.id != task_id:
            # A message for a task this run no longer tracks (e.g. it
            # already completed via the driver fallback): discard, but
            # never leak its segments.
            if status == "ok":
                release_result(body)
            return
        if status == "transient":
            self.pool._transient(self, worker_id, flight, body)
            return
        del self.in_flight[worker_id]
        if status == "err":
            self.fail(task_id, body)
        else:
            try:
                value = decode_result(body)
            except Exception:
                # Undecodable result (e.g. a corrupted shared-memory
                # segment): release whatever the failed decode left
                # linked, then retry -- the worker itself is healthy.
                release_result(body)
                self.pool._transient(self, worker_id, flight,
                                     traceback.format_exc(),
                                     kind="result-decode")
                return
            self.complete(TaskResult(flight.task, value, worker_id, duration,
                                     flight.attempts, stolen=flight.stolen,
                                     retries=flight.retries,
                                     timed_out=flight.timed_out))
        if self.error is None:
            self.dispatch(worker_id)
