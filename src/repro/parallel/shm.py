"""Shared-memory result transport for the parallel execution fabric.

Worker processes hand results back to the driver through a
``multiprocessing.Queue``.  That pipe is cheap for small payloads but
pickles everything and chunks large messages through a byte stream, so
bulk artefacts -- a :class:`~repro.interp.trace.ColumnarTrace` with
hundreds of thousands of column elements, a pickled
:class:`~repro.machine.stats.SimResult` -- pay twice: once to pickle
and once to squeeze through the pipe.

This module moves those payloads through POSIX shared memory instead:

* a :class:`ColumnarTrace` is *decomposed* -- its three ``array``
  columns travel as raw bytes copied straight into one shared-memory
  segment (no per-element pickling), with only the small static-op
  table and address-overflow side table pickled;
* a :class:`SimResult` (or any other large object) is pickled once and
  the pickle bytes are placed in a segment, so the queue message is a
  fixed-size descriptor either way;
* everything small rides the queue inline, and when shared memory is
  unavailable (platform without ``/dev/shm``, ``REPRO_NO_SHM=1``, or a
  failed segment creation) the transport degrades to plain pickling
  with identical results.

Segment lifecycle is owned by the *pool* (:mod:`repro.parallel.pool`):
workers create segments with deterministic names
(``repro-<pool>-w<worker>i<incarnation>-s<seq>``), the driver unlinks
each segment as soon as it decodes the descriptor, and at shutdown it
probes past the last acknowledged sequence number of every worker
incarnation so segments created by a crashed worker are swept too.
The deterministic, strictly sequential naming is what makes the sweep
exact: the first missing name is the end of the allocation stream.

Every segment descriptor carries a CRC-32 of the payload it points at,
verified on decode.  Without it a scribbled segment (a crashing worker,
a stray writer, injected chaos) could decode *silently wrong* -- the
trace columns are raw bytes, so damage there changes data rather than
breaking a pickle.  A checksum mismatch raises
:class:`SegmentChecksumError`, which the pool treats like any other
decode failure: release the segments, retry the task.
"""

from __future__ import annotations

import os
import pickle
import zlib
from typing import Optional

from repro.interp.trace import ColumnarTrace

try:  # pragma: no cover - import always succeeds on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic platforms
    _shared_memory = None

#: Payloads whose encoded size is below this ride the queue inline;
#: the segment round-trip only pays off for bulk data.
DEFAULT_THRESHOLD = 16 * 1024

#: Kill switch for tests and constrained environments.
NO_SHM_ENV = "REPRO_NO_SHM"
THRESHOLD_ENV = "REPRO_SHM_THRESHOLD"


def shm_available() -> bool:
    """Whether shared-memory transport can be used at all."""
    return _shared_memory is not None and not os.environ.get(NO_SHM_ENV)


def transport_threshold() -> int:
    try:
        return int(os.environ[THRESHOLD_ENV])
    except (KeyError, ValueError):
        return DEFAULT_THRESHOLD


class SegmentChecksumError(ValueError):
    """A shared-memory payload failed its CRC check on decode."""


def segment_name(pool_uid: str, worker_id: int, incarnation: int,
                 seq: int) -> str:
    return f"repro-{pool_uid}-w{worker_id}i{incarnation}-s{seq}"


def _untrack(segment) -> None:
    """Detach ``segment`` from this process's resource tracker.

    The creating worker hands ownership to the driver; without this the
    worker-side tracker would warn about (and try to unlink) segments
    the driver is still reading.
    """
    try:  # pragma: no cover - tracker layout is a CPython detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


class SegmentAllocator:
    """Per-worker allocator of sequentially named segments.

    ``seq`` is the allocation high-water mark; the worker reports it
    with every result so the driver always knows how many segments this
    incarnation has created, even when a descriptor is lost to a crash.
    """

    def __init__(self, pool_uid: str, worker_id: int,
                 incarnation: int = 0) -> None:
        self.pool_uid = pool_uid
        self.worker_id = worker_id
        self.incarnation = incarnation
        self.seq = 0
        self.enabled = shm_available()
        self.threshold = transport_threshold()

    def create(self, nbytes: int):
        """A new segment of at least ``nbytes``, or ``None`` to fall
        back to inline pickling (allocation failures disable the
        allocator for the rest of the worker's life)."""
        if not self.enabled:
            return None
        name = segment_name(self.pool_uid, self.worker_id,
                            self.incarnation, self.seq)
        try:
            segment = _shared_memory.SharedMemory(
                create=True, size=max(nbytes, 1), name=name)
        except OSError:
            self.enabled = False
            return None
        self.seq += 1
        _untrack(segment)
        return segment


# ----------------------------------------------------------------------
# Wire format.  A wire value is a small picklable tuple tagged with its
# encoding; containers encode recursively so a task may return e.g.
# ``{"trace": ColumnarTrace, "summary": {...}}``.
# ----------------------------------------------------------------------

def encode_result(value, allocator: Optional[SegmentAllocator]):
    """Encode a task result for the queue, spilling bulk to shm."""
    if isinstance(value, ColumnarTrace):
        return _encode_trace(value, allocator)
    if isinstance(value, tuple):
        return ("tuple", [encode_result(v, allocator) for v in value])
    if isinstance(value, list):
        return ("list", [encode_result(v, allocator) for v in value])
    if isinstance(value, dict):
        return ("dict", [(k, encode_result(v, allocator))
                         for k, v in value.items()])
    if _is_inline(value):
        return ("inline", value)
    return _encode_pickle(value, allocator)


_INLINE_TYPES = (type(None), bool, int, float, str, bytes)


def _is_inline(value) -> bool:
    return isinstance(value, _INLINE_TYPES)


def _encode_trace(trace: ColumnarTrace, allocator):
    sids, addrs, takens = trace.column_bytes()
    side = pickle.dumps((trace.statics, dict(trace._addr_overflow)),
                        protocol=pickle.HIGHEST_PROTOCOL)
    lengths = (len(sids), len(addrs), len(takens), len(side))
    total = sum(lengths)
    if allocator is None or total < allocator.threshold:
        return ("trace-inline", (sids, addrs, takens, side))
    segment = allocator.create(total)
    if segment is None:
        return ("trace-inline", (sids, addrs, takens, side))
    offset, crc = 0, 0
    for chunk in (sids, addrs, takens, side):
        segment.buf[offset:offset + len(chunk)] = chunk
        offset += len(chunk)
        crc = zlib.crc32(chunk, crc)
    segment.close()
    return ("trace-shm", (segment.name, lengths, crc))


def _encode_pickle(value, allocator):
    blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    if allocator is None or len(blob) < allocator.threshold:
        return ("pickle-inline", blob)
    segment = allocator.create(len(blob))
    if segment is None:
        return ("pickle-inline", blob)
    segment.buf[:len(blob)] = blob
    segment.close()
    return ("pickle-shm", (segment.name, len(blob), zlib.crc32(blob)))


def _attach(name: str):
    return _shared_memory.SharedMemory(name=name)


def _consume_segment(name: str) -> bytes:
    """Attach, copy out, close and unlink one segment."""
    segment = _attach(name)
    try:
        data = bytes(segment.buf)
    finally:
        segment.close()
        segment.unlink()
    return data


def _verify(name: str, data: bytes, crc: int) -> None:
    actual = zlib.crc32(data)
    if actual != crc:
        raise SegmentChecksumError(
            f"segment {name!r}: payload CRC {actual:#010x} != "
            f"recorded {crc:#010x} (corrupted in transit)")


def decode_result(wire):
    """Invert :func:`encode_result`, unlinking any segments used."""
    tag, body = wire
    if tag == "inline":
        return body
    if tag == "pickle-inline":
        return pickle.loads(body)
    if tag == "pickle-shm":
        name, length, crc = body
        data = _consume_segment(name)[:length]
        _verify(name, data, crc)
        return pickle.loads(data)
    if tag == "trace-inline":
        sids, addrs, takens, side = body
        statics, overflow = pickle.loads(side)
        return ColumnarTrace.from_column_bytes(
            statics, sids, addrs, takens, overflow)
    if tag == "trace-shm":
        name, lengths, crc = body
        data = _consume_segment(name)
        _verify(name, data[:sum(lengths)], crc)
        chunks, offset = [], 0
        for length in lengths:
            chunks.append(data[offset:offset + length])
            offset += length
        statics, overflow = pickle.loads(chunks[3])
        return ColumnarTrace.from_column_bytes(
            statics, chunks[0], chunks[1], chunks[2], overflow)
    if tag == "tuple":
        return tuple(decode_result(v) for v in body)
    if tag == "list":
        return [decode_result(v) for v in body]
    if tag == "dict":
        return {k: decode_result(v) for k, v in body}
    raise ValueError(f"unknown wire tag {tag!r}")


def release_result(wire) -> None:
    """Unlink a wire value's segments without decoding it.

    Used for duplicate results (a task retried after a worker crash can
    complete twice); the duplicate's payload is discarded but its
    segments must not leak.
    """
    tag, body = wire
    if tag in ("pickle-shm", "trace-shm"):
        try:
            segment = _attach(body[0])
        except FileNotFoundError:
            return
        segment.close()
        segment.unlink()
    elif tag in ("tuple", "list"):
        for v in body:
            release_result(v)
    elif tag == "dict":
        for _, v in body:
            release_result(v)


def wire_segment_names(wire) -> list[str]:
    """Every shared-memory segment name referenced by a wire value.

    Used by the chaos injector (to corrupt a result's segments before
    the driver attaches) and by tests asserting segment hygiene; the
    walk mirrors :func:`release_result` without touching the segments.
    """
    tag, body = wire
    if tag in ("pickle-shm", "trace-shm"):
        return [body[0]]
    if tag in ("tuple", "list"):
        return [name for v in body for name in wire_segment_names(v)]
    if tag == "dict":
        return [name for _, v in body for name in wire_segment_names(v)]
    return []


def corrupt_segment(name: str, garbage: bytes = b"\xff" * 24) -> bool:
    """Overwrite the head of segment ``name`` with ``garbage``.

    Chaos-injection primitive: the segment stays attachable (the driver
    sees a normal descriptor) but its payload no longer unpickles /
    decodes, exercising the decode-failure retry path.  Returns whether
    a segment was actually corrupted.
    """
    if _shared_memory is None:
        return False
    try:
        segment = _attach(name)
    except (FileNotFoundError, OSError):
        return False
    try:
        n = min(len(garbage), segment.size)
        segment.buf[:n] = garbage[:n]
    finally:
        segment.close()
    return True


def sweep_worker_segments(pool_uid: str, worker_id: int, incarnation: int,
                          start_seq: int) -> int:
    """Unlink segments a (possibly crashed) worker left behind.

    Probes sequence numbers from ``start_seq`` upward until the first
    missing name -- allocation is strictly sequential, so that is the
    end of the stream.  Returns how many segments were swept.
    """
    if _shared_memory is None:
        return 0
    swept = 0
    seq = start_seq
    while True:
        name = segment_name(pool_uid, worker_id, incarnation, seq)
        try:
            segment = _attach(name)
        except (FileNotFoundError, OSError):
            return swept
        segment.close()
        segment.unlink()
        swept += 1
        seq += 1
