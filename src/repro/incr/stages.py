"""Executable stage wrappers: run-or-reuse against the artifact store.

Each function implements one node of the stage graph
(:mod:`repro.incr.dag`) with the same contract:

1. derive the stage key from the live inputs;
2. if the store holds a valid receipt whose artifacts decode, serve
   the cached output (a *hit* -- no compute);
3. otherwise run the underlying pipeline stage, record the artifacts
   under their **semantic** content digests, write the receipt, and
   return the freshly computed output (a *miss*).

The semantic digests (trace content, profile counts, point summaries)
are what downstream keys consume, so an upstream stage that re-runs --
after a code edit -- but reproduces identical output leaves every
downstream receipt valid: early cutoff.

Every caller shares these wrappers: bench workers
(:mod:`repro.harness.bench`), the in-process runner
(:func:`repro.harness.runner.run_experiment` with ``store=``) and the
service worker (:mod:`repro.service.worker`), which is what lets a
served request reuse a prefix a bench sweep already computed when they
share a store directory.

Corrupt or missing artifacts behind a receipt degrade to a recompute
(the store's corruption-is-a-miss discipline); a torn write can cost
time, never correctness.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.analysis.profiling import LoopProfile
from repro.harness.cache import _alias_key, _partition_key
from repro.harness.runner import BaselineRun, DSWPRun, run_baseline, run_dswp
from repro.incr import dag
from repro.machine.fingerprint import case_fingerprint, content_digest, \
    memory_digest, trace_digest


class StageOutcome:
    """One stage execution: its output plus provenance for receipts.

    ``outputs`` is exactly what the stage's receipt records (artifact
    addresses and semantic digests); downstream stage keys read from
    it, so a cached and a fresh outcome are interchangeable."""

    __slots__ = ("value", "key", "outputs", "hit", "seconds")

    def __init__(self, value, key: str, outputs: dict, hit: bool,
                 seconds: float) -> None:
        self.value = value
        self.key = key
        self.outputs = outputs
        self.hit = hit
        self.seconds = seconds


_case_fp_memo: dict[int, tuple] = {}
_trace_digest_memo: dict[int, tuple] = {}


def case_fp(case) -> str:
    """Case fingerprint, memoised per case object (pinned: an ``id()``
    key alone is a use-after-free -- see
    :meth:`repro.harness.cache.ExperimentCache.digest`)."""
    key = id(case)
    entry = _case_fp_memo.get(key)
    if entry is not None and entry[0] is case:
        return entry[1]
    digest = case_fingerprint(case)
    _case_fp_memo[key] = (case, digest)
    return digest


def _trace_content(trace) -> str:
    """Salt-free trace content digest, memoised per trace object."""
    key = id(trace)
    entry = _trace_digest_memo.get(key)
    if entry is not None and entry[0] is trace:
        return entry[1]
    digest = trace_digest(trace)
    _trace_digest_memo[key] = (trace, digest)
    return digest


def traces_content(traces) -> str:
    """Semantic digest of an ordered trace set -- the simulate stage's
    upstream identity, shared by the base (one baseline trace) and
    dswp (per-thread traces) flavours."""
    return content_digest(["traces", [_trace_content(t) for t in traces]])


def _baseline_content(run: BaselineRun) -> str:
    """Semantic digest of an interpret stage's full output: the trace,
    the profile the partitioner reads, and the final functional state
    supervised fallbacks serve."""
    profile = run.profile
    return content_digest({
        "kind": "baseline-run",
        "trace": _trace_content(run.trace),
        "blocks": sorted(profile.block_counts.items()),
        "trips": profile.header_trips,
        "memory": memory_digest(
            run.memory.snapshot() if run.memory is not None else {}),
        "regs": sorted((str(reg), value) for reg, value in run.regs.items()),
    })


# ----------------------------------------------------------------------
# interpret
# ----------------------------------------------------------------------

def interpret_stage(store, case, check: bool = True) -> StageOutcome:
    """Baseline interpretation (trace + profile), run-or-reuse."""
    t0 = time.perf_counter()
    key = dag.interpret_key(case_fp(case), check)
    receipt = store.get_receipt(key)
    if receipt is not None:
        data = store.get_artifact(receipt["outputs"].get("artifact"))
        if isinstance(data, dict) and "trace" in data and "profile" in data:
            # Rebind the profile to the live case's loop: the pickled
            # profile carries a *copy* of the loop whose instruction
            # objects can never match the live function by identity,
            # so every instruction weight would read as 0.0 and the
            # partition heuristic would silently flip.
            loaded = data["profile"]
            profile = LoopProfile(loaded.block_counts, loaded.header_trips,
                                  case.loop)
            run = BaselineRun(case, data["trace"], profile,
                              memory=data.get("memory"),
                              regs=data.get("regs"))
            return StageOutcome(run, key, dict(receipt["outputs"]), True,
                                time.perf_counter() - t0)
    run = run_baseline(case, check=check)
    content = _baseline_content(run)
    store.put_artifact(content, {
        "trace": run.trace, "profile": run.profile,
        "memory": run.memory, "regs": run.regs,
    })
    outputs = {
        "artifact": content,
        "content": content,
        "traces": traces_content([run.trace]),
    }
    store.put_receipt(key, outputs, meta={"case": case.name, "check": check})
    return StageOutcome(run, key, outputs, False, time.perf_counter() - t0)


# ----------------------------------------------------------------------
# transform
# ----------------------------------------------------------------------

def transform_stage(
    store,
    case,
    interp: StageOutcome,
    partition=None,
    alias_model=None,
    threads: int = 2,
    check: bool = True,
) -> StageOutcome:
    """DSWP transform + functional pipeline execution, run-or-reuse."""
    t0 = time.perf_counter()
    key = dag.transform_key(
        case_fp(case),
        interp.outputs.get("content", ""),
        partition_key=_partition_key(partition),
        alias_key=_alias_key(alias_model),
        threads=threads,
        check=check,
    )
    receipt = store.get_receipt(key)
    if receipt is not None:
        data = store.get_artifact(receipt["outputs"].get("artifact"))
        if isinstance(data, dict) and "result" in data and "traces" in data:
            run = DSWPRun(data["result"], data["traces"])
            return StageOutcome(run, key, dict(receipt["outputs"]), True,
                                time.perf_counter() - t0)
    run = run_dswp(case, interp.value, partition=partition,
                   alias_model=alias_model, threads=threads, check=check)
    traces = traces_content(run.traces)
    address = content_digest({"kind": "dswp-run", "key": key,
                              "traces": traces})
    store.put_artifact(address, {"result": run.result, "traces": run.traces})
    outputs = {"artifact": address, "traces": traces}
    store.put_receipt(key, outputs, meta={"case": case.name})
    return StageOutcome(run, key, outputs, False, time.perf_counter() - t0)


# ----------------------------------------------------------------------
# simulate (point summaries -- bench's unit of reuse)
# ----------------------------------------------------------------------

def summary_address(summary: dict) -> str:
    """Content address of one point summary (cycles/ipcs/instructions;
    the spec-level ``id`` stays outside -- identical simulations from
    different figures share the artifact)."""
    return content_digest(["point-summary", summary])


def load_point_summary(store, traces: str,
                       machine_spec: dict) -> tuple[str, Optional[dict]]:
    """Look up a simulate stage's recorded summary.  Returns
    ``(stage_key, summary | None)``; any malformed entry is a miss.

    Summaries are small enough to live inline in the receipt (one
    store entry per point, not two); a receipt carrying only the
    summary's address (an older or external writer) falls back to the
    artifact load."""
    key = dag.simulate_key(traces, machine_spec)
    receipt = store.get_receipt(key)
    if receipt is None:
        return key, None
    summary = receipt.get("inline")
    if not _summary_ok(summary):
        summary = store.get_artifact(receipt["outputs"].get("summary"))
    if not _summary_ok(summary):
        return key, None
    return key, summary


def _summary_ok(summary) -> bool:
    return (isinstance(summary, dict) and "cycles" in summary
            and "ipcs" in summary and "instructions" in summary)


def store_point_summary(store, traces: str, machine_spec: dict,
                        summary: dict) -> str:
    """Record one simulate stage's output; returns its stage key.

    The summary rides inline in the receipt; its semantic address is
    still recorded in ``outputs`` so the stage's identity is
    content-derived like every other."""
    key = dag.simulate_key(traces, machine_spec)
    store.put_receipt(key, {"summary": summary_address(summary)},
                      inline=dict(summary))
    return key
