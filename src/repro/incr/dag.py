"""The experiment stage graph and its content-addressed keys.

The pipeline every figure point runs is a fixed four-stage chain::

    interpret --(baseline trace+profile)--> transform --(thread traces)
              --> simulate --(point summary)--> figure

Each stage's *key* is a content hash of everything that can change its
output, and nothing else:

* a **code-version fingerprint** -- sha256 over the source text of the
  packages the stage executes (plus explicit version constants such as
  :data:`repro.machine.batch.CODEGEN_VERSION` for ``simulate``), so
  editing ``machine/`` rolls only the simulate keys and editing the
  analyses rolls transform but not interpret;
* the **upstream output digests** -- *semantic* content digests of the
  artefacts the stage consumes (trace content, profile counts), not
  serialisation bytes, so a re-run upstream stage that reproduces
  identical output leaves the downstream key unchanged (early cutoff);
* the **parameters** -- case fingerprint, partition/alias/threads
  knobs, canonical machine spec.

Workload *content* enters only through the case fingerprint: editing
one workload's body invalidates exactly that workload's subtree, and
editing the workload *package* invalidates nothing (the registry is
deliberately outside every stage's code fingerprint).

All hashing goes through :mod:`repro.machine.fingerprint` -- the same
canonical hasher the experiment cache, the batched simulator and the
service protocol key on -- so one stage artefact is addressable from
bench, batch and serve paths alike.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
from typing import Optional

from repro.machine.fingerprint import content_digest

#: Stage kinds, in pipeline order.  ``figure`` is the driver-side
#: aggregation stage; the first three are the compute stages workers
#: execute.
STAGE_INTERPRET = "interpret"
STAGE_TRANSFORM = "transform"
STAGE_SIMULATE = "simulate"
STAGE_FIGURE = "figure"
STAGES = (STAGE_INTERPRET, STAGE_TRANSFORM, STAGE_SIMULATE, STAGE_FIGURE)
COMPUTE_STAGES = (STAGE_INTERPRET, STAGE_TRANSFORM, STAGE_SIMULATE)

#: The packages whose source text versions each stage.  ``repro.ir``
#: and ``repro.interp`` feed interpret; the transform adds the
#: analyses and the partitioner; simulate is the timing model alone.
#: ``repro.workloads`` appears nowhere: workload content is keyed by
#: the case fingerprint, per workload.
STAGE_PACKAGES = {
    STAGE_INTERPRET: ("repro.ir", "repro.interp"),
    STAGE_TRANSFORM: ("repro.ir", "repro.interp", "repro.analysis",
                      "repro.core"),
    STAGE_SIMULATE: ("repro.machine",),
    STAGE_FIGURE: (),
}

#: Bump when the figure aggregation (point summary shape, ordering)
#: changes meaning.
FIGURE_VERSION = 1

#: Test hook: extra salt mixed into one stage's version, so the
#: invalidation tests can model "this layer's code changed" without
#: rewriting source files.  Empty in production.
_VERSION_SALTS: dict[str, str] = {}

_code_fp_memo: dict[str, str] = {}


def code_fingerprint(package: str) -> str:
    """sha256 over a package's ``.py`` source files, path-relative.

    Memoised per process -- source files do not change under a running
    driver, and a sweep computes thousands of stage keys.  Files are
    walked in sorted relative order so the digest is independent of
    directory enumeration order, and file *paths* are hashed alongside
    contents so moving code between modules registers as a change.
    """
    cached = _code_fp_memo.get(package)
    if cached is not None:
        return cached
    spec = importlib.util.find_spec(package)
    if spec is None or not spec.submodule_search_locations:
        raise ValueError(f"cannot locate package {package!r}")
    h = hashlib.sha256()
    for root in sorted(spec.submodule_search_locations):
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                h.update(rel.encode() + b"\0")
                with open(path, "rb") as fh:
                    h.update(fh.read())
                h.update(b"\0")
    digest = h.hexdigest()
    _code_fp_memo[package] = digest
    return digest


def stage_version(kind: str) -> str:
    """The code-version component of one stage kind's keys.

    Combines the package source fingerprints with any explicit version
    constants the stage's artefact formats carry (read at call time so
    a monkeypatched :data:`~repro.machine.batch.CODEGEN_VERSION` bump
    behaves exactly like an edit to ``machine/``).
    """
    parts: list = [kind, [code_fingerprint(p) for p in STAGE_PACKAGES[kind]],
                   _VERSION_SALTS.get(kind, "")]
    if kind == STAGE_SIMULATE:
        from repro.machine import batch

        parts.append(batch.CODEGEN_VERSION)
    if kind == STAGE_FIGURE:
        parts.append(FIGURE_VERSION)
        # A figure aggregates simulate output, so a simulate-layer
        # change reaches it through the simulate *keys* it digests --
        # no code fingerprint of its own needed beyond the version.
    return content_digest(parts)


def pipeline_version() -> str:
    """One digest covering every compute stage's version -- the code
    component of the service's response-cache keys."""
    return content_digest([stage_version(kind) for kind in COMPUTE_STAGES])


# ----------------------------------------------------------------------
# Stage keys
# ----------------------------------------------------------------------

def _stage_key(kind: str, payload: dict) -> str:
    return content_digest({"stage": kind, "version": stage_version(kind),
                           **payload})


def interpret_key(case_fp: str, check: bool = True) -> str:
    """Baseline interpretation of one case (trace + profile + final
    functional state)."""
    return _stage_key(STAGE_INTERPRET, {"case": case_fp, "check": check})


def transform_key(
    case_fp: str,
    baseline_content: str,
    partition_key=None,
    alias_key: Optional[str] = None,
    threads: int = 2,
    check: bool = True,
) -> str:
    """DSWP transform + pipeline execution (thread traces).

    ``baseline_content`` is the *semantic* digest of the interpret
    stage's output (recorded in its receipt), so an interpret re-run
    with identical output leaves this key -- and every cached
    transform -- valid.
    """
    return _stage_key(STAGE_TRANSFORM, {
        "case": case_fp,
        "baseline": baseline_content,
        "partition": partition_key,
        "alias": alias_key,
        "threads": threads,
        "check": check,
    })


def simulate_key(traces_content: str, machine_spec: dict) -> str:
    """Timing simulation of one trace set on one machine config.

    Keyed on the traces' semantic content digest -- not on which stage
    produced them -- so the base and dswp flavours, bench and service,
    all address the same simulation."""
    return _stage_key(STAGE_SIMULATE, {"traces": traces_content,
                                       "machine": machine_spec})


def figure_key(figure: str, scale: int, simulate_keys: list) -> str:
    """Figure aggregation over the ordered simulate stages.

    Digests the simulate *keys* (not their output digests): any
    rescheduled simulate stage -- including a pure code-version bump --
    re-runs the aggregation, which is what makes a warm no-op run's
    ``scheduled == 0`` a meaningful proof."""
    return _stage_key(STAGE_FIGURE, {"figure": figure, "scale": scale,
                                     "simulates": list(simulate_keys)})
