"""Persistent content-addressed artifact store for the stage graph.

Layered on :class:`~repro.harness.cache.ShardedExperimentCache`, which
supplies everything the store needs from a concurrent filesystem
layer and nothing it has to re-invent:

* **lock-free concurrent writers** -- every disk write is a unique tmp
  file (pid + counter) finished by one atomic ``os.replace``; racing
  writers of the same entry both leave a valid file, in either order;
* **corruption is a miss** -- a torn, truncated or garbage entry is
  evicted, counted (``corrupt_evictions``) and recomputed, never
  decoded into the pipeline;
* **sha256-routed shards** -- entries spread over ``shard-<i>``
  subdirectories with per-shard locks, so concurrent readers of
  different keys never contend in-process and two shards never race on
  one file.

Two entry kinds live on top:

* ``artifact`` -- a stage *output*, addressed by a semantic content
  digest the stage layer computes (trace content, profile counts --
  never pickle bytes, which vary across processes);
* ``receipt`` -- the proof one stage ran: maps a stage input key
  (:mod:`repro.incr.dag`) to its outputs' addresses plus their
  semantic digests.  A stage is *valid* iff its receipt decodes and
  every referenced artifact exists.

Pins (`pins/*.json` beside the shards) mark the entries an in-flight
plan depends on; ``cache gc`` refuses to collect them (see
:mod:`repro.incr.gc`).
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Optional

from repro.harness.cache import ShardedExperimentCache

#: A pin older than this is presumed leaked by a killed driver and no
#: longer protects its entries (docs/INCREMENTAL.md, gc runbook).
PIN_TTL_SECONDS = 24 * 3600

ARTIFACT_KIND = "artifact"
RECEIPT_KIND = "receipt"


class ArtifactStore:
    """Content-addressed stage outputs + receipts; see module docstring.

    ``persist_dir=None`` keeps everything in memory -- the pure-compute
    configuration the verification lanes use for independent re-runs.
    The underlying sharded cache is exposed as :attr:`objects` so
    layers with their own keying discipline (the batched simulator's
    annotation cache) can share the store's persistence without going
    through receipts.
    """

    def __init__(self, persist_dir: Optional[str] = None, shards: int = 8,
                 log: Optional[Callable[[str], None]] = None,
                 metrics=None) -> None:
        self.persist_dir = persist_dir
        self.objects = ShardedExperimentCache(
            persist_dir=persist_dir, shards=shards, log=log, metrics=metrics)

    # ------------------------------------------------------------------
    # Artifacts
    # ------------------------------------------------------------------
    def put_artifact(self, digest: str, obj: object) -> str:
        """Store ``obj`` under its semantic content ``digest``.

        Idempotent by construction: two workers producing the same
        content write the same address, and the atomic rename makes
        either write a complete, valid entry."""
        self.objects.put_object(ARTIFACT_KIND, digest, obj)
        return digest

    def get_artifact(self, digest: str):
        """Load one artifact; ``None`` on any miss (absent or corrupt)."""
        return self.objects.get_object(ARTIFACT_KIND, digest)

    def has_artifact(self, digest: str) -> bool:
        """Existence probe without decoding (planner-side validity)."""
        return self.objects.has_object(ARTIFACT_KIND, digest)

    # ------------------------------------------------------------------
    # Receipts
    # ------------------------------------------------------------------
    def put_receipt(self, stage_key: str, outputs: dict,
                    meta: Optional[dict] = None,
                    inline: Optional[dict] = None) -> None:
        """Record that the stage keyed ``stage_key`` ran and produced
        ``outputs`` (name -> artifact address / semantic digest).

        ``inline`` carries a small output by value inside the receipt
        itself (point summaries), trading content-addressed sharing for
        one store entry instead of two."""
        record = {
            "outputs": dict(outputs),
            "meta": dict(meta or {}),
        }
        if inline is not None:
            record["inline"] = dict(inline)
        self.objects.put_object(RECEIPT_KIND, stage_key, record)

    def get_receipt(self, stage_key: str) -> Optional[dict]:
        """Load one receipt; shape-validated so a stale or foreign
        payload reads as a miss, never as a malformed plan input."""
        receipt = self.objects.get_object(RECEIPT_KIND, stage_key)
        if (not isinstance(receipt, dict)
                or not isinstance(receipt.get("outputs"), dict)):
            return None
        return receipt

    # ------------------------------------------------------------------
    # Pins: gc refusal for in-flight plans
    # ------------------------------------------------------------------
    def _pin_dir(self) -> Optional[str]:
        if self.persist_dir is None:
            return None
        return os.path.join(self.persist_dir, "pins")

    def _entry_path(self, kind: str, key) -> Optional[str]:
        """Absolute disk path of one entry (present or not)."""
        if self.persist_dir is None:
            return None
        index = self.objects.shard_index(key)
        return self.objects._shards[index]._entry_path(kind, key)

    def pin(self, plan_id: str, receipts: list, artifacts: list) -> Optional[str]:
        """Write a pin file protecting the given receipt keys and
        artifact digests from ``cache gc`` while a plan is in flight.

        Returns the pin path (``None`` for in-memory stores).  Pins are
        advisory and self-expiring (:data:`PIN_TTL_SECONDS`): a killed
        driver leaks at most one collection cycle's worth of
        protection, never a permanent exclusion."""
        pin_dir = self._pin_dir()
        if pin_dir is None:
            return None
        paths = []
        for key in receipts:
            path = self._entry_path(RECEIPT_KIND, key)
            if path is not None:
                paths.append(os.path.relpath(path, self.persist_dir))
        for digest in artifacts:
            path = self._entry_path(ARTIFACT_KIND, digest)
            if path is not None:
                paths.append(os.path.relpath(path, self.persist_dir))
        os.makedirs(pin_dir, exist_ok=True)
        pin_path = os.path.join(pin_dir, f"{plan_id}.json")
        tmp = f"{pin_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"created": time.time(), "paths": sorted(set(paths))},
                      fh)
        os.replace(tmp, pin_path)
        return pin_path

    def unpin(self, plan_id: str) -> None:
        """Drop a plan's pin (idempotent; missing pins are fine)."""
        pin_dir = self._pin_dir()
        if pin_dir is None:
            return
        try:
            os.remove(os.path.join(pin_dir, f"{plan_id}.json"))
        except OSError:
            pass

    @staticmethod
    def pinned_paths(persist_dir: str) -> set[str]:
        """Every store-relative path protected by a live pin.

        Unreadable or expired pin files protect nothing (a corrupt pin
        must not permanently exempt entries from collection)."""
        pin_dir = os.path.join(persist_dir, "pins")
        pinned: set[str] = set()
        try:
            names = os.listdir(pin_dir)
        except OSError:
            return pinned
        now = time.time()
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(pin_dir, name), encoding="utf-8") as fh:
                    record = json.load(fh)
                created = float(record.get("created", 0.0))
                if now - created > PIN_TTL_SECONDS:
                    continue
                for rel in record.get("paths", ()):
                    if isinstance(rel, str):
                        pinned.add(rel)
            except (OSError, ValueError, TypeError):
                continue
        return pinned

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Aggregated flat-int counters (see
        :meth:`~repro.harness.cache.ExperimentCache.stats`)."""
        return self.objects.stats()
