"""Content-addressed incremental experiment DAG.

The pipeline behind every figure point -- interpret, transform,
simulate, aggregate -- is modelled as a stage graph whose nodes are
keyed by content hashes of their code version, upstream artefact
digests and parameters (:mod:`repro.incr.dag`), whose outputs live in
a persistent content-addressed artifact store
(:mod:`repro.incr.store`), and whose scheduler proves which stages are
still valid before emitting only the invalidated remainder as pool
tasks (:mod:`repro.incr.plan`).

See ``docs/INCREMENTAL.md`` for the full key-derivation and
invalidation rules, and :mod:`repro.incr.gc` for the store collector.
"""

from repro.incr.dag import (
    COMPUTE_STAGES,
    STAGES,
    code_fingerprint,
    figure_key,
    interpret_key,
    pipeline_version,
    simulate_key,
    stage_version,
    transform_key,
)
from repro.incr.plan import FigurePlan, build_figure_plan, finalize_figure
from repro.incr.stages import (
    StageOutcome,
    interpret_stage,
    load_point_summary,
    store_point_summary,
    transform_stage,
)
from repro.incr.store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "COMPUTE_STAGES",
    "FigurePlan",
    "STAGES",
    "StageOutcome",
    "build_figure_plan",
    "code_fingerprint",
    "figure_key",
    "finalize_figure",
    "interpret_key",
    "interpret_stage",
    "load_point_summary",
    "pipeline_version",
    "simulate_key",
    "stage_version",
    "store_point_summary",
    "transform_key",
    "transform_stage",
]
