"""The incremental scheduler: prove validity, emit only invalid work.

:func:`build_figure_plan` walks one figure sweep's requested points
against the artifact store *before* any worker is spawned:

* per functional group (workload x scale x kind) it derives the
  interpret / transform stage keys and checks their receipts and
  artifacts exist (existence probes -- large trace artifacts are never
  decoded on the planning path);
* per point it derives the simulate key from the recorded trace
  content digest and loads the (tiny) point summary when valid;
* points whose whole chain is proven valid are **served** from the
  store; everything else stays **pending** and becomes pool tasks --
  whole groups in batched mode (a batch re-simulates together), single
  points otherwise.

Stage accounting (``incr.stage.{hit,miss,scheduled}``):

* **hit** -- receipt proven valid and the stage will *not* execute
  (served outright, or store-hit inside a scheduled task: a valid
  interpret under an invalid simulate still counts as the hit it is);
* **miss** -- receipt absent/invalid at plan time, including stages
  whose key is unknowable because an upstream stage is invalid;
* **scheduled** -- the stage will execute compute.  Every miss is
  scheduled; additionally, a valid simulate inside a scheduled batch
  group re-runs with its group (the differential campaign needs every
  config), so it counts as scheduled without being a miss.

Stages are deduplicated by key across points and groups (the base and
dswp flavours of one workload share one interpret stage; it is
counted -- and executed -- once).

The plan pins every receipt and artifact it depends on
(``pins/<plan>.json``) so a concurrent ``cache gc`` cannot collect
entries out from under an in-flight sweep; :meth:`FigurePlan.release`
drops the pin when the run completes.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.incr import dag, stages

_plan_seq = 0


def canonical_machine(spec: dict) -> dict:
    """The fully-defaulted machine spec (two sweep specs that elide vs
    spell a default must share one simulate stage)."""
    return {
        "core": spec.get("core", "full"),
        "comm_latency": spec.get("comm_latency", 1),
        "queue_size": spec.get("queue_size", 32),
    }


class FigurePlan:
    """One sweep's proven/pending partition; see module docstring."""

    def __init__(self, figure: str, scale: int, batch: bool,
                 check: bool) -> None:
        global _plan_seq
        _plan_seq += 1
        self.figure = figure
        self.scale = scale
        self.batch = batch
        self.check = check
        self.plan_id = f"plan-{os.getpid()}-{_plan_seq}"
        #: Point id -> summary dict (with ``id``) served from the store.
        self.served: dict[str, dict] = {}
        #: Sweep-order specs that must run as pool tasks.
        self.pending: list[dict] = []
        #: Stage key -> (kind, hit, miss, scheduled) -- deduplicated.
        self._status: dict = {}
        #: Point id -> simulate stage key (None while unknowable).
        self.simulate_keys: dict[str, Optional[str]] = {}
        self.figure_stage_key: Optional[str] = None
        self.figure_hit = False
        self.plan_seconds = 0.0
        self._store = None
        self._pinned = False
        self._case_cache: dict = {}

    # ------------------------------------------------------------------
    def _mark(self, key, kind: str, hit: bool, miss: bool,
              scheduled: bool) -> None:
        prev = self._status.get(key)
        if prev is None:
            self._status[key] = [kind, hit, miss, scheduled]
        else:
            prev[3] = prev[3] or scheduled
            prev[1] = prev[1] and hit

    def counts(self) -> dict[str, dict[str, int]]:
        out = {kind: {"hit": 0, "miss": 0, "scheduled": 0}
               for kind in dag.STAGES}
        for kind, hit, miss, scheduled in self._status.values():
            if hit and not scheduled:
                out[kind]["hit"] += 1
            if miss:
                out[kind]["miss"] += 1
            if scheduled:
                out[kind]["scheduled"] += 1
        return out

    def scheduled_total(self) -> int:
        return sum(1 for _, _, _, s in self._status.values() if s)

    def compute_scheduled(self) -> int:
        return sum(1 for kind, _, _, s in self._status.values()
                   if s and kind != dag.STAGE_FIGURE)

    def report(self) -> dict:
        """The ``incr`` block of ``BENCH_<figure>.json``."""
        return {
            "plan_id": self.plan_id,
            "plan_seconds": self.plan_seconds,
            "stages": self.counts(),
            "scheduled_total": self.scheduled_total(),
            "compute_scheduled": self.compute_scheduled(),
            "served_points": sorted(self.served),
            "pending_points": [spec["id"] for spec in self.pending],
            "figure_stage": ("hit" if self.figure_hit else "scheduled"),
        }

    def record_metrics(self, registry) -> None:
        for kind, row in self.counts().items():
            for outcome in ("hit", "miss", "scheduled"):
                if row[outcome]:
                    registry.counter(f"incr.stage.{outcome}",
                                     stage=kind).inc(row[outcome])

    # ------------------------------------------------------------------
    def release(self) -> None:
        """Drop the gc pin (idempotent; call when the sweep is done)."""
        if self._store is not None and self._pinned:
            self._store.unpin(self.plan_id)
            self._pinned = False


def build_figure_plan(store, figure: str, scale: int, points: list[dict],
                      batch: bool = True, check: bool = True) -> FigurePlan:
    """Prove which of ``points`` the store can serve; see module doc."""
    from repro.workloads import get_workload

    t0 = time.perf_counter()
    plan = FigurePlan(figure, scale, batch, check)
    plan._store = store

    pin_receipts: list[str] = []
    pin_artifacts: list[str] = []

    # Group in sweep order by (workload, scale, kind) -- the same
    # grouping the batched dispatch uses.
    groups: dict[tuple, list[dict]] = {}
    for spec in points:
        groups.setdefault(
            (spec["workload"], spec["scale"], spec["kind"]), []).append(spec)

    for (workload, wscale, kind), group in groups.items():
        case = plan._case_cache.get((workload, wscale))
        if case is None:
            case = get_workload(workload).build(scale=wscale)
            plan._case_cache[(workload, wscale)] = case
        cfp = stages.case_fp(case)

        ikey = dag.interpret_key(cfp, check)
        irec = store.get_receipt(ikey)
        iart = irec["outputs"].get("artifact") if irec is not None else None
        ivalid = iart is not None and store.has_artifact(iart)
        plan._mark(ikey, dag.STAGE_INTERPRET, ivalid, not ivalid,
                   not ivalid)

        traces_key: Optional[str] = None
        tkey: Optional[str] = None
        tart: Optional[str] = None
        if kind == "base":
            tvalid = True
            if ivalid:
                traces_key = irec["outputs"].get("traces")
                tvalid = traces_key is not None
        else:
            tvalid = False
            content = (irec["outputs"].get("content")
                       if ivalid else None)
            if content is not None:
                tkey = dag.transform_key(cfp, content, check=check)
                trec = store.get_receipt(tkey)
                tart = (trec["outputs"].get("artifact")
                        if trec is not None else None)
                tvalid = tart is not None and store.has_artifact(tart)
                plan._mark(tkey, dag.STAGE_TRANSFORM, tvalid, not tvalid,
                           not tvalid)
                if tvalid:
                    traces_key = trec["outputs"].get("traces")
                    tvalid = traces_key is not None
            else:
                # Key unknowable below an invalid interpret: one
                # synthetic pending node per group.
                plan._mark(("pending", dag.STAGE_TRANSFORM, workload,
                            wscale, kind),
                           dag.STAGE_TRANSFORM, False, True, True)

        group_summaries: dict[str, Optional[dict]] = {}
        for spec in group:
            machine = canonical_machine(spec["machine"])
            if traces_key is not None:
                skey, summary = stages.load_point_summary(
                    store, traces_key, machine)
                plan.simulate_keys[spec["id"]] = skey
                valid = summary is not None
                plan._mark(skey, dag.STAGE_SIMULATE, valid, not valid,
                           not valid)
            else:
                skey, summary, valid = None, None, False
                plan.simulate_keys[spec["id"]] = None
                plan._mark(("pending", dag.STAGE_SIMULATE, spec["id"]),
                           dag.STAGE_SIMULATE, False, True, True)
            group_summaries[spec["id"]] = summary

        chain_ok = ivalid and tvalid
        group_ok = chain_ok and all(
            s is not None for s in group_summaries.values())
        for spec in group:
            summary = group_summaries[spec["id"]]
            point_ok = chain_ok and summary is not None
            serve = group_ok if batch else point_ok
            if serve:
                plan.served[spec["id"]] = {"id": spec["id"], **summary}
                if plan.simulate_keys[spec["id"]] is not None:
                    pin_receipts.append(plan.simulate_keys[spec["id"]])
            else:
                plan.pending.append(spec)
                # A valid simulate dragged along by its batch group
                # re-runs with it.
                if batch and point_ok:
                    skey = plan.simulate_keys[spec["id"]]
                    plan._mark(skey, dag.STAGE_SIMULATE, True, False, True)
        if ivalid:
            pin_receipts.append(ikey)
            pin_artifacts.append(iart)
        if tkey is not None and tart is not None:
            pin_receipts.append(tkey)
            pin_artifacts.append(tart)

    # Figure stage: key known only when every simulate key is.
    ordered_keys = [plan.simulate_keys.get(spec["id"]) for spec in points]
    if points and all(key is not None for key in ordered_keys):
        fkey = dag.figure_key(figure, scale, ordered_keys)
        plan.figure_stage_key = fkey
        receipt = store.get_receipt(fkey)
        fart = (receipt["outputs"].get("figure")
                if receipt is not None else None)
        fvalid = fart is not None and store.has_artifact(fart)
        plan.figure_hit = fvalid
        plan._mark(fkey, dag.STAGE_FIGURE, fvalid, not fvalid, not fvalid)
        if fvalid:
            pin_receipts.append(fkey)
            pin_artifacts.append(fart)
    elif points:
        plan._mark(("pending", dag.STAGE_FIGURE, figure, scale),
                   dag.STAGE_FIGURE, False, True, True)

    if store.pin(plan.plan_id, pin_receipts, pin_artifacts) is not None:
        plan._pinned = True
    plan.plan_seconds = time.perf_counter() - t0
    return plan


def finalize_figure(plan: FigurePlan, store, points: list[dict],
                    merged_points: list[dict]) -> dict:
    """Run (or prove) the figure aggregation stage after the sweep.

    Re-derives any simulate keys that were unknowable at plan time from
    the receipts the workers have since written; when the whole chain
    is now on record, the ordered point list is stored as the figure
    artifact and its receipt written.  A chain that is *still*
    incomplete (a degraded point whose stages never landed) leaves the
    stage scheduled-but-unrecorded -- never a receipt for an
    aggregation the store cannot reproduce.
    """
    if plan.figure_hit:
        return {"stage": "hit", "key": plan.figure_stage_key}

    ordered: list[Optional[str]] = []
    for spec in points:
        skey = plan.simulate_keys.get(spec["id"])
        if skey is None:
            skey = _rederive_simulate_key(plan, store, spec)
            plan.simulate_keys[spec["id"]] = skey
        ordered.append(skey)
    if not points or any(key is None for key in ordered):
        return {"stage": "scheduled", "key": None, "recorded": False}

    fkey = dag.figure_key(plan.figure, plan.scale, ordered)
    plan.figure_stage_key = fkey
    clean = [{k: v for k, v in p.items() if k != "degraded"}
             for p in merged_points]
    from repro.machine.fingerprint import content_digest

    address = content_digest(["figure-points", clean])
    store.put_artifact(address, clean)
    store.put_receipt(fkey, {"figure": address},
                      meta={"figure": plan.figure, "scale": plan.scale})
    return {"stage": "scheduled", "key": fkey, "recorded": True}


def _rederive_simulate_key(plan: FigurePlan, store,
                           spec: dict) -> Optional[str]:
    """Walk the now-written receipts to recover one point's simulate
    key; ``None`` when the chain is still incomplete."""
    case = plan._case_cache.get((spec["workload"], spec["scale"]))
    if case is None:
        from repro.workloads import get_workload

        case = get_workload(spec["workload"]).build(scale=spec["scale"])
        plan._case_cache[(spec["workload"], spec["scale"])] = case
    cfp = stages.case_fp(case)
    irec = store.get_receipt(dag.interpret_key(cfp, plan.check))
    if irec is None:
        return None
    if spec["kind"] == "base":
        traces_key = irec["outputs"].get("traces")
    else:
        content = irec["outputs"].get("content")
        if content is None:
            return None
        trec = store.get_receipt(
            dag.transform_key(cfp, content, check=plan.check))
        if trec is None:
            return None
        traces_key = trec["outputs"].get("traces")
    if traces_key is None:
        return None
    return dag.simulate_key(traces_key, canonical_machine(spec["machine"]))
