"""Store garbage collection: LRU by atime, corruption-aware, pin-safe.

``python -m repro cache gc --max-bytes N`` drives :func:`collect` over
one store directory.  The pass is deliberately simple and safe against
concurrent writers:

1. stale ``*.tmp.*`` droppings (a writer died mid-publish) older than a
   grace period are removed -- they were never visible to readers;
2. every ``.pkl`` entry is validated by unpickling; corrupt entries are
   evicted immediately and counted as ``corrupt_evicted`` (the same
   corruption-is-a-miss discipline readers apply, applied eagerly);
3. remaining entries are deleted oldest-access-first until the store
   fits ``max_bytes`` -- except entries pinned by an in-flight plan
   (``pins/*.json``, see :meth:`~repro.incr.store.ArtifactStore.pin`),
   which are never collected while their pin is live.

Deleting an entry a racing reader is mid-way through loading is safe:
the open file handle keeps the bytes readable on POSIX, and a
subsequent miss is recomputed.  Deleting an entry a racing *writer* is
republishing is equally safe: the writer's atomic rename wins or loses
whole, never torn.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Callable, Optional

from repro.incr.store import ArtifactStore

#: Tmp droppings younger than this may belong to a live writer between
#: open and rename; leave them alone.
TMP_GRACE_SECONDS = 15 * 60


def _entry_files(persist_dir: str):
    """Yield ``(relpath, abspath)`` for every store entry file,
    skipping the pins directory."""
    for dirpath, dirnames, filenames in os.walk(persist_dir):
        dirnames[:] = [d for d in dirnames if d != "pins"]
        for name in filenames:
            path = os.path.join(dirpath, name)
            yield os.path.relpath(path, persist_dir), path


def collect(persist_dir: str, max_bytes: Optional[int] = None,
            log: Optional[Callable[[str], None]] = None,
            dry_run: bool = False) -> dict:
    """One collection pass; returns flat-int/byte stats.

    ``max_bytes=None`` validates and sweeps tmp droppings without
    evicting live entries.  ``dry_run`` reports what would be deleted
    without touching the filesystem (corrupt entries included).
    """
    emit = log or (lambda message: None)
    stats = {
        "scanned": 0,
        "bytes_before": 0,
        "bytes_after": 0,
        "evicted": 0,
        "evicted_bytes": 0,
        "corrupt_evicted": 0,
        "tmp_removed": 0,
        "pinned_kept": 0,
    }
    if not os.path.isdir(persist_dir):
        return stats

    pinned = ArtifactStore.pinned_paths(persist_dir)
    now = time.time()
    entries = []  # (atime, size, relpath, path)
    for rel, path in _entry_files(persist_dir):
        try:
            st = os.stat(path)
        except OSError:
            continue
        if ".tmp." in os.path.basename(rel):
            # A dead writer's dropping -- never visible to readers.
            if now - st.st_mtime > TMP_GRACE_SECONDS:
                stats["tmp_removed"] += 1
                if not dry_run:
                    try:
                        os.remove(path)
                    except OSError:
                        pass
            continue
        if not rel.endswith(".pkl"):
            continue
        stats["scanned"] += 1
        stats["bytes_before"] += st.st_size
        try:
            with open(path, "rb") as fh:
                pickle.load(fh)
        except Exception:
            stats["corrupt_evicted"] += 1
            stats["evicted"] += 1
            stats["evicted_bytes"] += st.st_size
            emit(f"gc: corrupt entry evicted: {rel}")
            if not dry_run:
                try:
                    os.remove(path)
                except OSError:
                    pass
            continue
        entries.append((st.st_atime, st.st_size, rel, path))

    live_bytes = sum(size for _, size, _, _ in entries)
    if max_bytes is not None and live_bytes > max_bytes:
        entries.sort()  # oldest atime first
        for atime, size, rel, path in entries:
            if live_bytes <= max_bytes:
                break
            if rel in pinned:
                stats["pinned_kept"] += 1
                emit(f"gc: pinned, kept: {rel}")
                continue
            stats["evicted"] += 1
            stats["evicted_bytes"] += size
            live_bytes -= size
            if not dry_run:
                try:
                    os.remove(path)
                except OSError:
                    pass
    stats["bytes_after"] = live_bytes
    return stats
