"""Machine-readable experiment results (JSON export).

A released artifact needs results that scripts can consume;
:func:`experiment_to_dict` flattens an
:class:`~repro.harness.runner.ExperimentResult` into plain data, and
:func:`results_to_json` serialises a batch.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.harness.runner import ExperimentResult


def experiment_to_dict(result: ExperimentResult) -> dict:
    """Flatten one experiment's headline numbers."""
    dswp = result.dswp_result
    out = {
        "workload": result.workload.name,
        "paper_benchmark": result.workload.paper_benchmark,
        "exec_fraction": result.workload.exec_fraction,
        "baseline": {
            "cycles": result.base_sim.cycles,
            "instructions": result.base_sim.instructions,
            "ipc": result.base_sim.ipc(0),
        },
        "loop_speedup": result.loop_speedup,
        "program_speedup": result.program_speedup,
    }
    if dswp is not None:
        out["dswp"] = {
            "applied": dswp.applied,
            "sccs": dswp.num_sccs,
            "stages": len(dswp.partition) if dswp.partition else 1,
            "flows": dswp.flow_counts(),
            "estimated_speedup": (
                dswp.estimate.speedup if dswp.estimate else None
            ),
        }
    if result.dswp_sim is not None:
        occupancy = result.dswp_sim.occupancy().buckets()
        out["pipeline"] = {
            "cycles": result.dswp_sim.cycles,
            "per_core_ipc": result.dswp_sim.ipcs(),
            "occupancy_buckets": occupancy,
        }
    return out


def results_to_json(results: Iterable[ExperimentResult], indent: int = 2) -> str:
    """Serialise a batch of experiments."""
    return json.dumps([experiment_to_dict(r) for r in results], indent=indent)
