"""Plain-text table/series rendering for the benchmark harness.

Every benchmark prints the same rows/series the paper reports; these
helpers keep the formatting consistent (and diff-able in
``bench_output.txt``).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic for speedups)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def percent(speedup: float) -> str:
    """Render a speedup ratio as the paper's percent-gain style."""
    return f"{(speedup - 1.0) * 100:+.1f}%"
