"""Parallel benchmark runner: ``python -m repro bench``.

Reproduces the machine-configuration sweeps behind Fig. 9(a) (issue
width) and Fig. 9(b) (communication latency) in two modes and compares
them:

* **naive** -- the pre-optimisation pipeline shape: every sweep point
  independently profiles the loop and records the baseline trace in
  *two* object-at-a-time reference-interpreter runs
  (:mod:`repro.interp.reference`, the preserved original interpreter),
  transforms, executes the thread pipeline and simulates, serially.
* **optimized** -- points are grouped by workload, each group shares
  one :class:`~repro.harness.cache.ExperimentCache` (functional work
  runs once per workload, on the predecoded interpreter with columnar
  traces and single-pass trace+profile recording), and the groups fan
  out over ``multiprocessing`` workers.

Both modes must produce *identical* functional results (cycles, IPCs,
instruction counts per point); because the naive mode interprets with
the reference interpreter, the check is an end-to-end differential
test of the predecoded/columnar/cached fast path against the
pre-optimisation pipeline, so a perf win can never silently come from
a behaviour change.  Per-stage wall-clock (interpret / transform /
simulate) is measured in both modes and written to
``BENCH_<figure>.json``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Optional

from repro.analysis.profiling import LoopProfile
from repro.harness.cache import ExperimentCache
from repro.harness.runner import MAX_STEPS, BaselineRun, run_dswp
from repro.interp.reference import run_function_reference
from repro.machine.cmp import simulate
from repro.machine.reference import simulate_reference
from repro.machine.config import (
    FULL_WIDTH_CORE,
    HALF_WIDTH_CORE,
    MachineConfig,
)
from repro.workloads import TABLE1_WORKLOADS, get_workload

FIGURES = ("fig9a", "fig9b")

#: fig9b produce-side latencies (the paper's 1/5/10-cycle series).
FIG9B_LATENCIES = (1, 5, 10)


def _machine(spec: dict) -> MachineConfig:
    core = HALF_WIDTH_CORE if spec.get("core") == "half" else FULL_WIDTH_CORE
    return MachineConfig(core=core, comm_latency=spec.get("comm_latency", 1))


def sweep_points(figure: str, scale: int) -> list[dict]:
    """The sweep points of one figure as small, picklable specs."""
    full = {"core": "full"}
    half = {"core": "half"}
    points = []
    for workload in TABLE1_WORKLOADS:
        name = workload.name
        if figure == "fig9a":
            series = [
                ("base", full), ("base", half),
                ("dswp", full), ("dswp", half),
            ]
        elif figure == "fig9b":
            series = [("base", full)] + [
                ("dswp", {"core": "full", "comm_latency": lat})
                for lat in FIG9B_LATENCIES
            ]
        else:
            raise ValueError(f"unknown figure {figure!r} (want one of {FIGURES})")
        for kind, machine in series:
            label = "-".join(
                [kind, machine["core"]]
                + ([f"comm{machine['comm_latency']}"]
                   if "comm_latency" in machine else [])
            )
            points.append({
                "id": f"{name}:{label}",
                "workload": name,
                "scale": scale,
                "kind": kind,
                "machine": machine,
            })
    return points


def _sim_summary(sim) -> dict:
    return {
        "cycles": sim.cycles,
        "ipcs": sim.ipcs(),
        "instructions": [c.instructions_executed for c in sim.cores],
    }


# ----------------------------------------------------------------------
# Naive mode: one fully independent pipeline run per point, serial.
# ----------------------------------------------------------------------

def _reference_baseline(case) -> BaselineRun:
    """The original ``run_baseline``: profile and trace in two separate
    object-at-a-time interpretations."""
    profiled = run_function_reference(
        case.function, case.memory.clone(), initial_regs=case.initial_regs,
        max_steps=MAX_STEPS, record_profile=True,
        call_handlers=case.call_handlers,
    )
    memory = case.fresh_memory()
    traced = run_function_reference(
        case.function, memory, initial_regs=case.initial_regs,
        max_steps=MAX_STEPS, record_trace=True,
        call_handlers=case.call_handlers,
    )
    case.checker(memory, traced.regs)
    counts = profiled.block_counts or {}
    profile = LoopProfile(counts, counts.get(case.loop.header, 0), case.loop)
    return BaselineRun(case, traced.trace or [], profile)


def run_point_naive(spec: dict) -> tuple[dict, dict]:
    """One sweep point with no reuse: the reference pipeline."""
    stages = {"interpret": 0.0, "transform": 0.0, "simulate": 0.0}
    workload = get_workload(spec["workload"])
    case = workload.build(scale=spec["scale"])
    t0 = time.perf_counter()
    baseline = _reference_baseline(case)
    stages["interpret"] = time.perf_counter() - t0
    if spec["kind"] == "base":
        traces = [baseline.trace]
    else:
        t0 = time.perf_counter()
        # The original pipeline's thread traces were object-entry lists.
        traces = [t.to_entries() for t in run_dswp(case, baseline).traces]
        stages["transform"] = time.perf_counter() - t0
    t0 = time.perf_counter()
    # burst -> inf is the legacy scheduler's run-to-block limit, the
    # canonical schedule the event-driven simulator implements; the old
    # default (64) made shared-L3 contents depend on the polling
    # granularity (see docs/PERFORMANCE.md).
    sim = simulate_reference(traces, _machine(spec["machine"]), burst=1 << 30)
    stages["simulate"] = time.perf_counter() - t0
    return {"id": spec["id"], **_sim_summary(sim)}, stages


# ----------------------------------------------------------------------
# Optimized mode: per-workload groups, cached functional work, fan-out.
# ----------------------------------------------------------------------

def _induced_crash(name: str) -> None:
    """Test hook: deterministically kill a *worker* process.

    ``REPRO_BENCH_CRASH_WORKLOAD=<name>`` makes every worker attempt at
    that workload's group die hard (fork inherits the env, the driver
    process never dies -- ``parent_process()`` guards it).  With
    ``REPRO_BENCH_CRASH_ONCE_DIR`` also set, only the first attempt
    crashes: a marker file records that the crash already happened, so
    the retry succeeds.  This is how the robustness tests exercise the
    retry and the in-process-fallback paths without real worker OOMs.
    """
    if os.environ.get("REPRO_BENCH_CRASH_WORKLOAD") != name:
        return
    if multiprocessing.parent_process() is None:
        return
    marker_dir = os.environ.get("REPRO_BENCH_CRASH_ONCE_DIR")
    if marker_dir:
        marker = os.path.join(marker_dir, f"crashed-{name}")
        if os.path.exists(marker):
            return
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("crashed once\n")
    os._exit(13)


def _run_group(
    group: tuple[str, int, list[dict]],
) -> tuple[list[dict], dict, dict]:
    """All sweep points of one workload, sharing one cache.

    Returns ``(point_results, stage_seconds, cache_stats)``; the cache
    stats travel back across the process boundary so the driver can
    aggregate hit/miss counts over all groups.
    """
    name, scale, specs = group
    _induced_crash(name)
    stages = {"interpret": 0.0, "transform": 0.0, "simulate": 0.0}
    cache = ExperimentCache()
    case = get_workload(name).build(scale=scale)
    t0 = time.perf_counter()
    baseline = cache.baseline(case)
    stages["interpret"] = time.perf_counter() - t0
    results = []
    for spec in specs:
        if spec["kind"] == "base":
            traces = [baseline.trace]
        else:
            t0 = time.perf_counter()
            traces = cache.dswp(case, baseline).traces
            stages["transform"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        sim = simulate(traces, _machine(spec["machine"]))
        stages["simulate"] += time.perf_counter() - t0
        results.append({"id": spec["id"], **_sim_summary(sim)})
    return results, stages, cache.stats()


def _groups(points: list[dict]) -> list[tuple[str, int, list[dict]]]:
    by_workload: dict[tuple[str, int], list[dict]] = {}
    for spec in points:
        by_workload.setdefault((spec["workload"], spec["scale"]), []).append(spec)
    return [(name, scale, specs)
            for (name, scale), specs in by_workload.items()]


def _fan_out(groups, jobs: int):
    """Fan groups over worker processes, surviving worker death.

    A worker that dies (OOM-killed, segfaulting C extension, induced
    crash in tests) breaks the pool: every group still in flight gets
    :class:`BrokenProcessPool` instead of a result.  Those groups are
    retried once in a fresh pool; groups that crash the retry too are
    returned for in-process fallback.  Ordinary exceptions (a bug in
    the group itself) still propagate -- those are deterministic and
    re-running them cannot help.

    Returns ``(outputs, fallback_indices, jobs)``; ``jobs == 1`` means
    the platform cannot fork and the caller should run serially.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return [], [], 1
    outputs: list[Optional[tuple[list[dict], dict, dict]]] = [None] * len(groups)
    # Round 1: one shared pool.  A dying worker breaks the whole pool,
    # so innocent in-flight groups fail alongside the guilty one.
    failed: list[int] = []
    try:
        with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx) as pool:
            futures = {i: pool.submit(_run_group, group)
                       for i, group in enumerate(groups)}
            for i, future in futures.items():
                try:
                    outputs[i] = future.result()
                except BrokenProcessPool:
                    failed.append(i)
    except OSError:
        return [], [], 1
    # Round 2: retry each failed group in its own single-use pool, so a
    # group that crashes again cannot poison the other retries.
    fallback: list[int] = []
    for i in failed:
        try:
            with ProcessPoolExecutor(max_workers=1, mp_context=ctx) as pool:
                outputs[i] = pool.submit(_run_group, groups[i]).result()
        except (BrokenProcessPool, OSError):
            fallback.append(i)
    return outputs, fallback, jobs


def run_optimized(
    points: list[dict], jobs: int,
) -> tuple[list[dict], dict, int, list[str], dict]:
    """Run all points grouped-and-cached, fanned over ``jobs`` workers.

    Falls back to in-process serial execution when ``jobs <= 1`` or the
    platform cannot fork, so the runner works everywhere; the report
    records the worker count actually used.  A group whose worker
    crashes twice is re-run in-process (the sweep always completes) and
    its points are returned as *degraded* so the report can say the
    parallel path failed for them.

    The last return value aggregates every group's
    :meth:`~repro.harness.cache.ExperimentCache.stats` (hits, misses,
    corrupt evictions, entry counts) across workers.
    """
    groups = _groups(points)
    jobs = max(1, min(jobs, len(groups)))
    degraded_ids: list[str] = []
    outputs: list[Optional[tuple[list[dict], dict, dict]]] = []
    if jobs > 1:
        outputs, fallback, jobs = _fan_out(groups, jobs)
        for i in fallback:
            outputs[i] = _run_group(groups[i])
            group_results, _, _ = outputs[i]
            for result in group_results:
                result["degraded"] = True
                degraded_ids.append(result["id"])
    if jobs == 1:
        outputs = [_run_group(g) for g in groups]
        degraded_ids = []
    results = [r for group_results, _, _ in outputs for r in group_results]
    stages = {"interpret": 0.0, "transform": 0.0, "simulate": 0.0}
    cache_stats: dict[str, int] = {}
    for _, group_stages, group_cache in outputs:
        for key, value in group_stages.items():
            stages[key] += value
        for key, value in group_cache.items():
            cache_stats[key] = cache_stats.get(key, 0) + value
    order = {spec["id"]: i for i, spec in enumerate(points)}
    results.sort(key=lambda r: order[r["id"]])
    return results, stages, jobs, degraded_ids, cache_stats


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def run_bench(
    figure: str,
    scale: int,
    jobs: int,
    out_dir: str = ".",
    compare: bool = True,
) -> dict:
    """Run one figure's sweep; returns (and writes) the report dict.

    Every ``BENCH_<figure>.json`` carries a ``provenance`` block (git
    commit, machine configuration digests, sweep scale) and a
    ``metrics`` snapshot (cache hit/miss counters and sweep gauges from
    :class:`~repro.obs.metrics.MetricsRegistry`), so a report on disk
    is attributable to the code and configuration that produced it.
    """
    from repro.obs import MetricsRegistry, record_provenance

    points = sweep_points(figure, scale)

    t0 = time.perf_counter()
    optimized, opt_stages, jobs_used, degraded_ids, cache_stats = (
        run_optimized(points, jobs))
    optimized_seconds = time.perf_counter() - t0

    registry = MetricsRegistry()
    provenance = record_provenance(
        registry,
        machine=MachineConfig(),
        extra={"figure": figure, "bench_scale": scale},
    )
    registry.gauge("bench.points").set(len(points))
    registry.gauge("bench.jobs").set(jobs_used)
    registry.gauge("bench.degraded_points").set(len(degraded_ids))
    for key, value in sorted(cache_stats.items()):
        registry.counter(f"cache.{key}").inc(value)

    report = {
        "figure": figure,
        "scale": scale,
        "jobs": jobs_used,
        "num_points": len(points),
        "points": optimized,
        "degraded_points": degraded_ids,
        "cache_stats": cache_stats,
        "optimized_seconds": optimized_seconds,
        "optimized_stage_seconds": opt_stages,
        "provenance": provenance,
        "metrics": registry.snapshot(),
    }

    if compare:
        naive_stages = {"interpret": 0.0, "transform": 0.0, "simulate": 0.0}
        naive_results = []
        t0 = time.perf_counter()
        for spec in points:
            result, stages = run_point_naive(spec)
            naive_results.append(result)
            for key, value in stages.items():
                naive_stages[key] += value
        naive_seconds = time.perf_counter() - t0
        report["naive_seconds"] = naive_seconds
        report["naive_stage_seconds"] = naive_stages
        report["speedup"] = (
            naive_seconds / optimized_seconds if optimized_seconds > 0 else 0.0
        )
        # The degraded marker records *how* a point ran, not *what* it
        # computed -- strip it before the functional comparison.
        comparable = [{k: v for k, v in r.items() if k != "degraded"}
                      for r in optimized]
        report["functional_identical"] = naive_results == comparable

    path = os.path.join(out_dir, f"BENCH_{figure}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    report["path"] = path
    return report


def format_report(report: dict) -> str:
    lines = [
        f"figure {report['figure']}: {report['num_points']} points, "
        f"scale {report['scale']}, {report['jobs']} worker(s)",
        f"  optimized: {report['optimized_seconds']:.2f}s "
        f"(interpret {report['optimized_stage_seconds']['interpret']:.2f}s, "
        f"transform {report['optimized_stage_seconds']['transform']:.2f}s, "
        f"simulate {report['optimized_stage_seconds']['simulate']:.2f}s)",
    ]
    if "naive_seconds" in report:
        lines.append(
            f"  naive:     {report['naive_seconds']:.2f}s "
            f"(interpret {report['naive_stage_seconds']['interpret']:.2f}s, "
            f"transform {report['naive_stage_seconds']['transform']:.2f}s, "
            f"simulate {report['naive_stage_seconds']['simulate']:.2f}s)"
        )
        identical = "identical" if report["functional_identical"] else "DIVERGED"
        lines.append(
            f"  speedup:   {report['speedup']:.2f}x, functional results {identical}"
        )
    if report.get("degraded_points"):
        lines.append(
            f"  DEGRADED:  {len(report['degraded_points'])} point(s) ran "
            f"in-process after worker crashes: "
            + ", ".join(report["degraded_points"])
        )
    lines.append("  " + summary_line(report))
    lines.append(f"  report:    {report['path']}")
    return "\n".join(lines)


def summary_line(report: dict) -> str:
    """One-line per-sweep digest: points, cache traffic, degradations.

    Printed unconditionally by ``python -m repro bench`` (with or
    without ``--no-compare``) so every sweep leaves a grep-friendly
    record of how much functional work the cache absorbed.
    """
    cache = report.get("cache_stats", {})
    parts = [
        f"summary:   {report['num_points']} points",
        f"cache {cache.get('hits', 0)} hit(s) / {cache.get('misses', 0)} miss(es)",
    ]
    if cache.get("corrupt_evictions"):
        parts.append(f"{cache['corrupt_evictions']} corrupt eviction(s)")
    parts.append(f"{len(report.get('degraded_points', ()))} degraded point(s)")
    return ", ".join(parts)
